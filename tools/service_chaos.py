#!/usr/bin/env python
"""End-to-end chaos drill for the simulation job service.

Boots a real ``repro serve`` process on an ephemeral port, then fires
a fleet of concurrent clients at it under a deterministic
:class:`repro.faults.ServiceFaultPlan`:

* a **duplicate storm** — several clients submit the same job at once;
* a **pool-loss** victim — the worker that accepts one job is killed
  between accept and execute (over-the-wire ``chaos`` crash rule);
* a **mid-stream disconnect** — one client drops its event stream
  partway and must recover by polling;
* a **slow client** — one submission dawdles before sending.

Every client must come back with a ``done`` job, the duplicate storm
must run **exactly one simulation** and hand every client the same
bit-identical payload, and after a SIGTERM drain the server's event
log must pass the ``repro sweep`` accounting audit (exactly one
``queued`` and one terminal event per job). CI runs this drill on
every push and uploads the event log as an artifact.

The drill also audits the PR-9 observability layer: ``GET /metrics``
is scraped *mid-drill* (while clients are in flight) and again after
every client drains; both scrapes must pass
``tools/validate_promtext.py``, and the final counters must reconcile
exactly with the event-log audit (executed == queued events,
completions match terminal events, admissions match HTTP submissions).
The final scrape is written to ``--metrics-out`` and uploaded as a CI
artifact next to the event log.

Usage::

    PYTHONPATH=src python tools/service_chaos.py --events serve_events.jsonl
"""

import argparse
import json
import re
import signal
import subprocess
import sys
import threading
import time

try:
    import validate_promtext          # sys.path[0] == tools/ as a script
except ImportError:                   # imported from elsewhere
    import importlib.util
    import pathlib

    _spec = importlib.util.spec_from_file_location(
        "validate_promtext",
        pathlib.Path(__file__).resolve().parent / "validate_promtext.py")
    validate_promtext = importlib.util.module_from_spec(_spec)
    _spec.loader.exec_module(validate_promtext)

from repro.faults import ServiceFaultPlan
from repro.obs.runtime import parse_promtext
from repro.obs.telemetry import load_events, summarize
from repro.service import ServiceClient

#: Request indices of the chaos plan (the driver's submission order).
STORM = (0, 1, 2, 3)           # duplicate storm: one job, four clients
POOL_LOSS = 4                  # worker dies after accepting this job
DISCONNECT = 5                 # this client drops its event stream
SLOW = 6                       # this client dawdles before submitting

SUBMISSIONS = (
    # (index, payload) — the storm shares one payload verbatim
    *((i, {"workload": "LL11", "config": {"nthreads": 1}}) for i in STORM),
    (POOL_LOSS, {"workload": "LL5", "config": {"nthreads": 1},
                 "sweep_id": "chaos-drill"}),
    (DISCONNECT, {"workload": "LL2", "config": {"nthreads": 1},
                  "sweep_id": "chaos-drill"}),
    (SLOW, {"workload": "LL11", "config": {"nthreads": 2},
            "sweep_id": "chaos-drill"}),
)


def _plan():
    return (ServiceFaultPlan(seed=20260808)
            .pool_loss(indices=[POOL_LOSS])
            .disconnect(indices=[DISCONNECT], after_events=1)
            .slow_client(indices=[SLOW], seconds=0.2))


def _start_server(events_path, workers):
    server = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--workers", str(workers), "--allow-chaos",
         "--events", events_path],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
    banner = server.stdout.readline()
    match = re.search(r"http://[^:]+:(\d+)", banner)
    if match is None:
        server.kill()
        raise SystemExit(f"error: no port in server banner: {banner!r}")
    return server, int(match.group(1))


def _drill(port, plan):
    """Run every submission concurrently; returns
    ``(index -> final doc, errors, mid-drill scrape text)``."""
    docs, errors = {}, []
    barrier = threading.Barrier(len(SUBMISSIONS) + 1)  # +1: the scraper

    def _one(index, payload):
        try:
            barrier.wait(30)
            client = ServiceClient("127.0.0.1", port, retries=6,
                                   backoff=0.1)
            docs[index] = client.run_job(payload, plan=plan, index=index)
        except Exception as error:  # noqa: BLE001 — reported below
            errors.append(f"client {index}: {error!r}")

    threads = [threading.Thread(target=_one, args=spec)
               for spec in SUBMISSIONS]
    for thread in threads:
        thread.start()
    # Scrape /metrics while the fleet is in flight: exposition must be
    # valid at any instant, not only at rest.
    barrier.wait(30)
    time.sleep(0.2)
    mid_scrape = None
    try:
        mid_scrape = ServiceClient("127.0.0.1", port).metrics_text()
    except Exception as error:  # noqa: BLE001 — reported below
        errors.append(f"mid-drill scrape: {error!r}")
    for thread in threads:
        thread.join(300)
    for index, error in ((i, "client thread wedged")
                         for i, t in zip(range(len(threads)), threads)
                         if t.is_alive()):
        errors.append(f"client {index}: {error}")
    return docs, errors, mid_scrape


def _check(docs, errors, health):
    problems = list(errors)
    for index, _ in SUBMISSIONS:
        doc = docs.get(index)
        if doc is None:
            continue        # already reported as a client error
        if doc.get("state") != "done":
            problems.append(f"client {index}: terminal state "
                            f"{doc.get('state')!r}, failure "
                            f"{doc.get('failure')!r}")
    # the duplicate storm coalesced onto one job, one result
    storm = [docs[i] for i in STORM if i in docs]
    if storm:
        ids = {doc["job_id"] for doc in storm}
        payloads = {json.dumps(doc.get("result"), sort_keys=True)
                    for doc in storm}
        if len(ids) != 1:
            problems.append(f"storm split across {len(ids)} job ids")
        if len(payloads) != 1:
            problems.append("storm clients saw differing result payloads")
        if storm[0].get("submissions", 0) < len(STORM):
            problems.append(
                f"storm submissions={storm[0].get('submissions')} < "
                f"{len(STORM)} — duplicates were not coalesced")
    if health is not None:
        if health["jobs"]["done"] != health["jobs"]["total"]:
            problems.append(f"not every job finished: {health['jobs']}")
        if health["admission"]["coalesced"] < len(STORM) - 1:
            problems.append("admission counters show no coalescing")
    return problems


def _sum(samples, name, **match):
    return sum(value for labels, value in samples.get(name, ())
               if all(labels.get(k) == v for k, v in match.items()))


def _check_metrics(mid_scrape, final_scrape, health, events_path):
    """Validate both scrapes and reconcile the final counters against
    the event-log audit — the metrics must tell the same story as the
    telemetry stream and the admission snapshot, exactly."""
    problems = []
    for label, text in (("mid-drill", mid_scrape),
                        ("post-drain", final_scrape)):
        if text is None:
            problems.append(f"{label} /metrics scrape missing")
            continue
        for issue in validate_promtext.validate_text(text):
            problems.append(f"{label} scrape invalid: {issue}")
    if final_scrape is None:
        return problems

    samples = parse_promtext(final_scrape)
    audit = summarize(load_events(events_path))["metrics"]
    checks = (
        ("repro_jobs_executed_total == queued events",
         _sum(samples, "repro_jobs_executed_total"), audit.queued_events),
        ("repro_jobs_completed_total{done} == done + cache hits",
         _sum(samples, "repro_jobs_completed_total", state="done"),
         audit.done + audit.cache_hits),
        ("repro_jobs_completed_total{failed} == failed",
         _sum(samples, "repro_jobs_completed_total", state="failed"),
         audit.failed),
    )
    for label, got, want in checks:
        if got != want:
            problems.append(f"metrics mismatch: {label}: "
                            f"{got:g} != {want:g}")
    if health is not None:
        admission = health["admission"]
        submissions = _sum(samples, "repro_requests_total",
                           route="/v1/jobs", method="POST")
        accounted = (admission["admitted"] + admission["coalesced"]
                     + sum(admission["rejected"].values()))
        if submissions != accounted:
            problems.append(
                f"metrics mismatch: requests_total{{/v1/jobs,POST}} "
                f"{submissions:g} != admitted + coalesced + rejected "
                f"{accounted}")
        if _sum(samples, "repro_jobs_admitted_total") \
                != admission["admitted"]:
            problems.append("metrics mismatch: jobs_admitted_total "
                            "disagrees with admission snapshot")
    return problems


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--events", default="serve_events.jsonl",
                        help="server event log (audited, CI artifact)")
    parser.add_argument("--metrics-out", default="serve_metrics.prom",
                        help="write the final /metrics scrape here "
                             "(validated, CI artifact)")
    parser.add_argument("--workers", type=int, default=2,
                        help="server worker processes (default 2)")
    args = parser.parse_args(argv)

    plan = _plan()
    print(f"chaos drill: {len(SUBMISSIONS)} concurrent clients, {plan}")
    server, port = _start_server(args.events, args.workers)
    final_scrape = None
    try:
        docs, errors, mid_scrape = _drill(port, plan)
        # Final scrape while the server still lives: after every client
        # drained, before the SIGTERM that ends the process.
        try:
            final_scrape = ServiceClient("127.0.0.1", port).metrics_text()
        except Exception as error:  # noqa: BLE001 — reported below
            errors.append(f"post-drain scrape: {error!r}")
        health = ServiceClient("127.0.0.1", port).health()
        server.send_signal(signal.SIGTERM)
        out, _ = server.communicate(timeout=120)
    finally:
        if server.poll() is None:
            server.kill()
            out, _ = server.communicate(timeout=30)
    print(out, end="")
    if final_scrape is not None:
        with open(args.metrics_out, "w") as handle:
            handle.write(final_scrape)
        print(f"chaos drill: final /metrics scrape -> {args.metrics_out}")

    problems = _check(docs, errors, health)
    problems += _check_metrics(mid_scrape, final_scrape, health,
                               args.events)
    if server.returncode != 0:
        problems.append(f"server exited {server.returncode} after SIGTERM")
    if "drained" not in out:
        problems.append("server did not report a graceful drain")
    if problems:
        print(f"chaos drill: FAILED ({len(problems)} problems)",
              file=sys.stderr)
        for problem in problems:
            print(f"  {problem}", file=sys.stderr)
        return 1
    done = sum(1 for doc in docs.values() if doc.get("state") == "done")
    print(f"chaos drill: ok — {done}/{len(SUBMISSIONS)} clients done, "
          f"storm coalesced, pool loss and disconnect recovered, "
          f"metrics reconciled")
    return 0


if __name__ == "__main__":
    sys.exit(main())
