#!/usr/bin/env python
"""Engine throughput profiler: simulated cycles per wall-clock second.

Runs the fixed measurement matrix defined in
:mod:`repro.obs.sentry` — (workload, configuration) pairs sampled from
the paper's experiment sweeps: the cache study's small caches with long
miss penalties, the SU-depth study's 256-entry scheduling unit, and the
fetch-policy study — plus a default-machine point, and reports how many
*simulated* cycles the engine retires per second of host time.

``BENCH_engine.json`` (repo root) records two sets of numbers for this
matrix: ``seed_cycles_per_sec``, measured once on the pre-fast-path
engine, and ``cycles_per_sec``, the current engine — stamped with the
git SHA and Python version that produced them. The file also pins each
entry's simulated cycle count, so an accidental timing-model change
(without an ``ENGINE_VERSION`` bump) fails loudly here too. Every
profiling run is additionally appended to the run ledger
(:mod:`repro.obs.ledger`; disable with ``--no-ledger``), so the full
throughput history survives — the summary file keeps only the latest.

Usage::

    PYTHONPATH=src python tools/perf_profile.py            # report
    PYTHONPATH=src python tools/perf_profile.py --json     # raw JSON
    PYTHONPATH=src python tools/perf_profile.py --update   # rewrite
        the current-engine numbers in BENCH_engine.json
    PYTHONPATH=src python tools/perf_profile.py --smoke    # CI gate:
        fail on >30% cycles/sec regression vs the committed numbers
    PYTHONPATH=src python tools/perf_profile.py --instrumented
        # measure with stall attribution + metrics + null sink attached
    PYTHONPATH=src python tools/perf_profile.py --update-instrumented
        # record off-vs-on throughput in BENCH_engine.json
    PYTHONPATH=src python tools/perf_profile.py --backend batch
        # matrix through one-member BatchEngine groups (cycles must
        # stay bit-identical; --smoke gates that in CI)
    PYTHONPATH=src python tools/perf_profile.py --backend spec
        # matrix through the config-specialized generated engine
        # (cycles must stay bit-identical; --smoke gates that in CI)
    PYTHONPATH=src python tools/perf_profile.py --backend both
        # all three: the interleaved scalar-vs-batch 8-config sweep
        # plus the interleaved interpreter-vs-spec matrix; --update
        # stamps the 'batch' and 'spec' sections (spec_over_scalar)

Timings on shared CI hosts are noisy; the smoke gate therefore measures
best-of-``--reps`` after a warm-up run and allows a generous 30% band.
(``repro check`` is the same comparison with per-flag control; both go
through :func:`repro.obs.sentry.check_baseline`.)
"""

import argparse
import json
import math
import pathlib
import platform
import sys

from repro.obs.sentry import (BATCH_SWEEP_LABEL, MATRIX, SMOKE_TOLERANCE,
                              check_baseline, measure, measure_backends,
                              measure_overhead, measure_spec)

BENCH_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_engine.json"


def geomean(values):
    return math.exp(sum(math.log(v) for v in values) / len(values))


def load_bench():
    try:
        return json.loads(BENCH_PATH.read_text())
    except (OSError, ValueError):
        return None


def report(measured, bench):
    rows = []
    ratios_seed = []
    ratios_base = []
    for label, entry in measured.items():
        line = f"{label:24s} {entry['cycles_per_sec']:>9,d} cyc/s"
        if bench:
            seed = bench.get("seed_cycles_per_sec", {}).get(label)
            base = bench.get("cycles_per_sec", {}).get(label)
            if seed:
                ratio = entry["cycles_per_sec"] / seed
                ratios_seed.append(ratio)
                line += f"  {ratio:5.2f}x vs seed"
            if base:
                ratio = entry["cycles_per_sec"] / base
                ratios_base.append(ratio)
                line += f"  {ratio:5.2f}x vs committed"
        rows.append(line)
    print("\n".join(rows))
    if ratios_seed:
        print(f"{'geomean vs seed engine':24s} {geomean(ratios_seed):9.2f}x")
    if ratios_base:
        print(f"{'geomean vs committed':24s} {geomean(ratios_base):9.2f}x")


def smoke(measured, bench):
    """CI gate: cycle counts exact, throughput within tolerance."""
    if not bench:
        print(f"error: {BENCH_PATH} missing or unreadable", file=sys.stderr)
        return 2
    cycle_failures, perf_failures = check_baseline(
        measured, bench, tolerance=SMOKE_TOLERANCE)
    failures = cycle_failures + perf_failures
    if failures:
        print("perf smoke FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(f"perf smoke ok: {len(measured)} configurations within "
          f"{SMOKE_TOLERANCE:.0%} of committed throughput")
    return 0


def _stamp_provenance(bench):
    """Record which source tree and interpreter produced the numbers."""
    from repro.obs.ledger import git_sha

    bench["git_sha"] = git_sha()
    bench["python"] = platform.python_version()


def update(measured, bench):
    from repro.core.pipeline import ENGINE_VERSION
    bench = bench or {}
    bench["engine_version"] = ENGINE_VERSION
    _stamp_provenance(bench)
    # Rewriting the matrix maps wholesale drops stale labels on purpose
    # — but the batch-sweep aggregate lives in the same maps and is
    # stamped by its own pass (--backend both --update), so carry it.
    old_cycles = bench.get("cycles") or {}
    old_rates = bench.get("cycles_per_sec") or {}
    bench["cycles"] = {k: v["cycles"] for k, v in measured.items()}
    bench["cycles_per_sec"] = {k: v["cycles_per_sec"]
                               for k, v in measured.items()}
    if BATCH_SWEEP_LABEL in old_cycles:
        bench["cycles"][BATCH_SWEEP_LABEL] = old_cycles[BATCH_SWEEP_LABEL]
    if BATCH_SWEEP_LABEL in old_rates:
        bench["cycles_per_sec"][BATCH_SWEEP_LABEL] = \
            old_rates[BATCH_SWEEP_LABEL]
    seed = bench.get("seed_cycles_per_sec")
    if seed:
        ratios = [v["cycles_per_sec"] / seed[k]
                  for k, v in measured.items() if k in seed]
        bench["speedup_vs_seed_geomean"] = round(geomean(ratios), 2)
    BENCH_PATH.write_text(json.dumps(bench, indent=2, sort_keys=True) + "\n")
    print(f"wrote {BENCH_PATH}")


def update_instrumented(measured_off, measured_on, bench):
    """Record instrumentation-off vs -on throughput.

    Writes only the ``instrumentation`` section (plus provenance); the
    committed ``cycles_per_sec`` baseline (measured on a specific host)
    is left untouched so the smoke gate keeps comparing like with like.
    """
    bench = bench or {}
    for label in measured_off:
        if measured_off[label]["cycles"] != measured_on[label]["cycles"]:
            print(f"error: {label}: instrumented run simulated "
                  f"{measured_on[label]['cycles']} cycles, uninstrumented "
                  f"{measured_off[label]['cycles']} — observability must "
                  "not change timing", file=sys.stderr)
            return 1
    _stamp_provenance(bench)
    ratios = [measured_on[k]["cycles_per_sec"] / v["cycles_per_sec"]
              for k, v in measured_off.items()]
    bench["instrumentation"] = {
        "off_cycles_per_sec": {k: v["cycles_per_sec"]
                               for k, v in measured_off.items()},
        "on_cycles_per_sec": {k: v["cycles_per_sec"]
                              for k, v in measured_on.items()},
        "on_over_off_geomean": round(geomean(ratios), 3),
    }
    BENCH_PATH.write_text(json.dumps(bench, indent=2, sort_keys=True) + "\n")
    print(f"wrote {BENCH_PATH} (instrumentation section; "
          f"on/off geomean {bench['instrumentation']['on_over_off_geomean']})")
    return 0


def report_backends(scalar_entry, batch_entry, bench):
    """Print the scalar-vs-batch sweep comparison."""
    ratio = batch_entry["cycles_per_sec"] / scalar_entry["cycles_per_sec"]
    print(f"{BATCH_SWEEP_LABEL:24s} scalar {scalar_entry['cycles_per_sec']:>9,d} "
          f"cyc/s  batch {batch_entry['cycles_per_sec']:>9,d} cyc/s  "
          f"{ratio:5.2f}x batch/scalar")
    committed = (bench or {}).get("batch", {}).get("batch_over_scalar")
    if committed:
        print(f"{'committed batch/scalar':24s} {committed:9.2f}x")


def update_backends(scalar_entry, batch_entry, bench):
    """Stamp the ``batch`` section and the batch-sweep aggregate entry.

    Like ``--update-instrumented``, this leaves the committed scalar
    matrix numbers untouched; it rewrites only the sweep's pinned
    aggregate (``cycles`` / ``cycles_per_sec`` under
    :data:`BATCH_SWEEP_LABEL`) and the ``batch`` info section.
    """
    bench = bench or {}
    _stamp_provenance(bench)
    bench.setdefault("cycles", {})[BATCH_SWEEP_LABEL] = batch_entry["cycles"]
    bench.setdefault("cycles_per_sec", {})[BATCH_SWEEP_LABEL] = \
        batch_entry["cycles_per_sec"]
    ratio = batch_entry["cycles_per_sec"] / scalar_entry["cycles_per_sec"]
    bench["batch"] = {
        "sweep": BATCH_SWEEP_LABEL,
        "scalar_cycles_per_sec": scalar_entry["cycles_per_sec"],
        "batch_cycles_per_sec": batch_entry["cycles_per_sec"],
        "batch_over_scalar": round(ratio, 3),
    }
    BENCH_PATH.write_text(json.dumps(bench, indent=2, sort_keys=True) + "\n")
    print(f"wrote {BENCH_PATH} (batch section; batch/scalar "
          f"{bench['batch']['batch_over_scalar']})")
    return 0


def report_spec(measured_scalar, measured_spec, bench):
    """Print the per-entry interpreter-vs-spec comparison."""
    ratios = []
    for label, scalar_entry in measured_scalar.items():
        spec_entry = measured_spec[label]
        ratio = spec_entry["cycles_per_sec"] / scalar_entry["cycles_per_sec"]
        ratios.append(ratio)
        print(f"{label:24s} scalar {scalar_entry['cycles_per_sec']:>9,d} "
              f"cyc/s  spec {spec_entry['cycles_per_sec']:>9,d} cyc/s  "
              f"{ratio:5.2f}x")
    print(f"{'geomean spec/scalar':24s} {geomean(ratios):9.2f}x")
    committed = (bench or {}).get("spec", {}).get("spec_over_scalar")
    if committed:
        print(f"{'committed spec/scalar':24s} {committed:9.2f}x")


def update_spec(measured_scalar, measured_spec, bench):
    """Stamp the ``spec`` section (interpreter-vs-spec matrix numbers).

    Like the ``batch`` section, this leaves the committed scalar matrix
    baseline untouched — ``measure_spec`` already asserted bit-identical
    stats per rep, so only throughput is news here.
    """
    bench = bench or {}
    _stamp_provenance(bench)
    ratios = [measured_spec[k]["cycles_per_sec"] / v["cycles_per_sec"]
              for k, v in measured_scalar.items()]
    bench["spec"] = {
        "scalar_cycles_per_sec": {k: v["cycles_per_sec"]
                                  for k, v in measured_scalar.items()},
        "spec_cycles_per_sec": {k: v["cycles_per_sec"]
                                for k, v in measured_spec.items()},
        "spec_over_scalar": round(geomean(ratios), 3),
    }
    BENCH_PATH.write_text(json.dumps(bench, indent=2, sort_keys=True) + "\n")
    print(f"wrote {BENCH_PATH} (spec section; spec/scalar "
          f"{bench['spec']['spec_over_scalar']})")
    return 0


def append_ledger(measured, ledger_path=None, backend="scalar"):
    """Append this profiling run to the durable run ledger.

    Every invocation stamps its records with one fresh sweep id, so a
    whole profiling pass can be scoped later with
    ``repro report/diff --sweep``.
    """
    from repro.obs import ledger as ledger_mod
    from repro.obs.sentry import ledger_records
    from repro.obs.telemetry import new_sweep_id

    ledger = ledger_mod.RunLedger(ledger_path)
    try:
        ledger.append_all(ledger_records(
            measured, source="perf_profile",
            timestamp=ledger_mod.utc_now_iso(), backend=backend,
            sweep_id=new_sweep_id()))
    except OSError as error:
        print(f"warning: could not append to run ledger: {error}",
              file=sys.stderr)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="fail on >30%% regression vs BENCH_engine.json")
    parser.add_argument("--update", action="store_true",
                        help="rewrite current-engine numbers in "
                             "BENCH_engine.json")
    parser.add_argument("--json", action="store_true",
                        help="print raw measurements as JSON")
    parser.add_argument("--reps", type=int, default=3,
                        help="timed repetitions per entry (best-of)")
    parser.add_argument("--instrumented", action="store_true",
                        help="measure with attribution, metrics, and a "
                             "null event sink attached")
    parser.add_argument("--update-instrumented", action="store_true",
                        help="measure both off and on, record the "
                             "'instrumentation' section in "
                             "BENCH_engine.json")
    parser.add_argument("--backend", default="scalar",
                        choices=["scalar", "batch", "spec", "both"],
                        help="'batch' runs the matrix through one-member "
                             "BatchEngine groups, 'spec' through the "
                             "config-specialized generated engine; "
                             "'both' runs all three comparisons — the "
                             "interleaved scalar-vs-batch sweep plus the "
                             "interleaved interpreter-vs-spec matrix")
    parser.add_argument("--ledger", default=None, metavar="PATH",
                        help="run-ledger file (default: REPRO_LEDGER or "
                             "~/.cache/repro-sdsp/ledger.jsonl)")
    parser.add_argument("--no-ledger", action="store_true",
                        help="do not append this run to the ledger")
    args = parser.parse_args(argv)
    if args.update_instrumented:
        # Interleaved off/on reps per entry: host speed drift between
        # two separate sweeps would otherwise corrupt the ratio.
        measured_off, measured_on = measure_overhead(args.reps)
        if not args.no_ledger:
            append_ledger(measured_off, args.ledger)
        return update_instrumented(measured_off, measured_on, load_bench())
    if args.backend == "both":
        if args.instrumented:
            print("error: --backend both does not combine with "
                  "--instrumented", file=sys.stderr)
            return 2
        # Interleaved scalar/batch reps of the same sweep, then the
        # interleaved interpreter/spec matrix — each asserts
        # bit-identical stats per rep before any number is reported.
        scalar_entry, batch_entry = measure_backends(args.reps)
        spec_off, spec_on = measure_spec(args.reps)
        if args.json:
            slim = {label: {k: v for k, v in entry.items() if k != "stats"}
                    for label, entry in spec_on.items()}
            print(json.dumps({"scalar": scalar_entry, "batch": batch_entry,
                              "spec_matrix": slim},
                             indent=1, sort_keys=True))
            return 0
        bench = load_bench()
        if args.smoke:
            # The spec side's cycles pin bit-exactly against the same
            # committed matrix labels as the scalar engine.
            return smoke({BATCH_SWEEP_LABEL: batch_entry, **spec_on}, bench)
        if args.update:
            status = update_backends(scalar_entry, batch_entry, bench)
            if status:
                return status
            return update_spec(spec_off, spec_on, load_bench())
        report_backends(scalar_entry, batch_entry, bench)
        report_spec(spec_off, spec_on, bench)
        return 0
    if args.update and args.backend in ("batch", "spec"):
        # The committed matrix baseline is the scalar engine's; batch
        # and spec numbers live in their own sections (--backend both
        # --update).
        print(f"error: --update records the scalar baseline; use "
              f"--backend both --update for the {args.backend} section",
              file=sys.stderr)
        return 2
    measured = measure(args.reps, instrument=args.instrumented,
                       backend=args.backend)
    if not args.no_ledger:
        append_ledger(measured, args.ledger, backend=args.backend)
    if args.json:
        slim = {label: {k: v for k, v in entry.items() if k != "stats"}
                for label, entry in measured.items()}
        print(json.dumps(slim, indent=1, sort_keys=True))
        return 0
    bench = load_bench()
    if args.smoke:
        return smoke(measured, bench)
    if args.update:
        update(measured, bench)
        return 0
    report(measured, bench)
    return 0


if __name__ == "__main__":
    sys.exit(main())
