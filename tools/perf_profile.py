#!/usr/bin/env python
"""Engine throughput profiler: simulated cycles per wall-clock second.

Runs a fixed matrix of (workload, configuration) pairs sampled from the
paper's experiment sweeps — the cache study's small caches with long
miss penalties, the SU-depth study's 256-entry scheduling unit, and the
fetch-policy study — plus a default-machine point, and reports how many
*simulated* cycles the engine retires per second of host time.

``BENCH_engine.json`` (repo root) records two sets of numbers for this
matrix: ``seed_cycles_per_sec``, measured once on the pre-fast-path
engine, and ``cycles_per_sec``, the current engine. The file also pins
each entry's simulated cycle count, so an accidental timing-model
change (without an ``ENGINE_VERSION`` bump) fails loudly here too.

Usage::

    PYTHONPATH=src python tools/perf_profile.py            # report
    PYTHONPATH=src python tools/perf_profile.py --json     # raw JSON
    PYTHONPATH=src python tools/perf_profile.py --update   # rewrite
        the current-engine numbers in BENCH_engine.json
    PYTHONPATH=src python tools/perf_profile.py --smoke    # CI gate:
        fail on >30% cycles/sec regression vs the committed numbers
    PYTHONPATH=src python tools/perf_profile.py --instrumented
        # measure with stall attribution + metrics + null sink attached
    PYTHONPATH=src python tools/perf_profile.py --update-instrumented
        # record off-vs-on throughput in BENCH_engine.json

Timings on shared CI hosts are noisy; the smoke gate therefore measures
best-of-``--reps`` after a warm-up run and allows a generous 30% band.
"""

import argparse
import json
import math
import pathlib
import sys
import time

from repro.core.config import CacheConfig, MachineConfig
from repro.core.pipeline import PipelineSim
from repro.workloads import ALL_WORKLOADS

BENCH_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_engine.json"

#: Allowed relative cycles/sec drop before ``--smoke`` fails.
SMOKE_TOLERANCE = 0.30

#: The fixed measurement matrix: name -> (workload, config kwargs).
#: Keep in sync with the committed ``BENCH_engine.json``.
MATRIX = [
    ("LL2-1t-default", "LL2", dict(nthreads=1)),
    ("LL2-1t-mp64", "LL2",
     dict(nthreads=1,
          cache=CacheConfig(size_bytes=256, assoc=1, miss_penalty=64))),
    ("LL2-4t-mp64", "LL2",
     dict(nthreads=4,
          cache=CacheConfig(size_bytes=256, assoc=1, miss_penalty=64))),
    ("LL5-1t-mp32", "LL5",
     dict(nthreads=1,
          cache=CacheConfig(size_bytes=512, assoc=2, miss_penalty=32))),
    ("Matrix-8t-su256-mp32", "Matrix",
     dict(nthreads=8, su_entries=256,
          cache=CacheConfig(size_bytes=512, assoc=2, miss_penalty=32))),
    ("LL3-8t-icount-su256", "LL3",
     dict(nthreads=8, fetch_policy="icount", su_entries=256)),
]


def _workload(name):
    for workload in ALL_WORKLOADS:
        if workload.name == name:
            return workload
    raise KeyError(name)


def _null_sink(event):
    """Cheapest possible event consumer, for overhead measurement."""


def measure(reps, instrument=False):
    """Best-of-``reps`` cycles/sec for every matrix entry.

    With ``instrument=True``, every run carries the full observability
    load: stall attribution, interval metrics, and an event-bus sink
    that discards events — the worst realistic case for hot-loop
    overhead. Cycle counts must match the uninstrumented engine
    exactly; only wall-clock throughput may differ.
    """
    out = {}
    for label, wname, kwargs in MATRIX:
        config = MachineConfig(**kwargs)
        program = _workload(wname).program(config.nthreads)
        PipelineSim(program, config).run()  # warm caches and JIT-free warmup
        best = 0.0
        cycles = None
        for _ in range(reps):
            sim = PipelineSim(program, config)
            if instrument:
                sim.attach_attribution()
                sim.attach_metrics()
                sim.add_sink(_null_sink)
            start = time.perf_counter()
            stats = sim.run()
            elapsed = time.perf_counter() - start
            cycles = stats.cycles
            best = max(best, cycles / elapsed)
        out[label] = {"cycles": cycles, "cycles_per_sec": round(best)}
    return out


def geomean(values):
    return math.exp(sum(math.log(v) for v in values) / len(values))


def load_bench():
    try:
        return json.loads(BENCH_PATH.read_text())
    except (OSError, ValueError):
        return None


def report(measured, bench):
    rows = []
    ratios_seed = []
    ratios_base = []
    for label, entry in measured.items():
        line = f"{label:24s} {entry['cycles_per_sec']:>9,d} cyc/s"
        if bench:
            seed = bench.get("seed_cycles_per_sec", {}).get(label)
            base = bench.get("cycles_per_sec", {}).get(label)
            if seed:
                ratio = entry["cycles_per_sec"] / seed
                ratios_seed.append(ratio)
                line += f"  {ratio:5.2f}x vs seed"
            if base:
                ratio = entry["cycles_per_sec"] / base
                ratios_base.append(ratio)
                line += f"  {ratio:5.2f}x vs committed"
        rows.append(line)
    print("\n".join(rows))
    if ratios_seed:
        print(f"{'geomean vs seed engine':24s} {geomean(ratios_seed):9.2f}x")
    if ratios_base:
        print(f"{'geomean vs committed':24s} {geomean(ratios_base):9.2f}x")


def smoke(measured, bench):
    """CI gate: cycle counts exact, throughput within tolerance."""
    if not bench:
        print(f"error: {BENCH_PATH} missing or unreadable", file=sys.stderr)
        return 2
    failures = []
    committed = bench.get("cycles_per_sec", {})
    cycle_counts = bench.get("cycles", {})
    for label, entry in measured.items():
        want_cycles = cycle_counts.get(label)
        if want_cycles is not None and entry["cycles"] != want_cycles:
            failures.append(
                f"{label}: simulated {entry['cycles']} cycles, "
                f"committed {want_cycles} — timing model changed; "
                "bump ENGINE_VERSION and re-run --update")
        base = committed.get(label)
        if base and entry["cycles_per_sec"] < base * (1 - SMOKE_TOLERANCE):
            failures.append(
                f"{label}: {entry['cycles_per_sec']:,} cyc/s is more than "
                f"{SMOKE_TOLERANCE:.0%} below committed {base:,}")
    if failures:
        print("perf smoke FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(f"perf smoke ok: {len(measured)} configurations within "
          f"{SMOKE_TOLERANCE:.0%} of committed throughput")
    return 0


def update(measured, bench):
    from repro.core.pipeline import ENGINE_VERSION
    bench = bench or {}
    bench["engine_version"] = ENGINE_VERSION
    bench["cycles"] = {k: v["cycles"] for k, v in measured.items()}
    bench["cycles_per_sec"] = {k: v["cycles_per_sec"]
                               for k, v in measured.items()}
    seed = bench.get("seed_cycles_per_sec")
    if seed:
        ratios = [v["cycles_per_sec"] / seed[k]
                  for k, v in measured.items() if k in seed]
        bench["speedup_vs_seed_geomean"] = round(geomean(ratios), 2)
    BENCH_PATH.write_text(json.dumps(bench, indent=2) + "\n")
    print(f"wrote {BENCH_PATH}")


def update_instrumented(measured_off, measured_on, bench):
    """Record instrumentation-off vs -on throughput.

    Writes only the ``instrumentation`` section; the committed
    ``cycles_per_sec`` baseline (measured on a specific host) is left
    untouched so the smoke gate keeps comparing like with like.
    """
    bench = bench or {}
    for label in measured_off:
        if measured_off[label]["cycles"] != measured_on[label]["cycles"]:
            print(f"error: {label}: instrumented run simulated "
                  f"{measured_on[label]['cycles']} cycles, uninstrumented "
                  f"{measured_off[label]['cycles']} — observability must "
                  "not change timing", file=sys.stderr)
            return 1
    ratios = [measured_on[k]["cycles_per_sec"] / v["cycles_per_sec"]
              for k, v in measured_off.items()]
    bench["instrumentation"] = {
        "off_cycles_per_sec": {k: v["cycles_per_sec"]
                               for k, v in measured_off.items()},
        "on_cycles_per_sec": {k: v["cycles_per_sec"]
                              for k, v in measured_on.items()},
        "on_over_off_geomean": round(geomean(ratios), 3),
    }
    BENCH_PATH.write_text(json.dumps(bench, indent=2) + "\n")
    print(f"wrote {BENCH_PATH} (instrumentation section; "
          f"on/off geomean {bench['instrumentation']['on_over_off_geomean']})")
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="fail on >30%% regression vs BENCH_engine.json")
    parser.add_argument("--update", action="store_true",
                        help="rewrite current-engine numbers in "
                             "BENCH_engine.json")
    parser.add_argument("--json", action="store_true",
                        help="print raw measurements as JSON")
    parser.add_argument("--reps", type=int, default=3,
                        help="timed repetitions per entry (best-of)")
    parser.add_argument("--instrumented", action="store_true",
                        help="measure with attribution, metrics, and a "
                             "null event sink attached")
    parser.add_argument("--update-instrumented", action="store_true",
                        help="measure both off and on, record the "
                             "'instrumentation' section in "
                             "BENCH_engine.json")
    args = parser.parse_args(argv)
    if args.update_instrumented:
        measured_off = measure(args.reps)
        measured_on = measure(args.reps, instrument=True)
        return update_instrumented(measured_off, measured_on, load_bench())
    measured = measure(args.reps, instrument=args.instrumented)
    if args.json:
        print(json.dumps(measured, indent=1))
        return 0
    bench = load_bench()
    if args.smoke:
        return smoke(measured, bench)
    if args.update:
        update(measured, bench)
        return 0
    report(measured, bench)
    return 0


if __name__ == "__main__":
    sys.exit(main())
