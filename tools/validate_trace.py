#!/usr/bin/env python
"""Validate a Chrome/Perfetto ``trace_event`` JSON file.

Checks the structural invariants that ``ui.perfetto.dev`` relies on
(see :func:`repro.obs.export.validate_trace`): timestamps are numeric,
non-negative, and sorted; every duration ("B") event has a matching
"E" on the same track; complete ("X") events carry a non-negative
``dur``. CI runs this on a freshly exported trace so a format
regression fails the build instead of silently producing a file the
viewer rejects.

Usage::

    PYTHONPATH=src python tools/validate_trace.py trace.json
"""

import argparse
import json
import sys

from repro.obs.export import validate_trace


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("file", help="trace JSON file to validate")
    args = parser.parse_args(argv)

    try:
        with open(args.file) as handle:
            trace = json.load(handle)
    except (OSError, ValueError) as exc:
        print(f"error: cannot load {args.file}: {exc}", file=sys.stderr)
        return 2

    errors = validate_trace(trace)
    if errors:
        print(f"{args.file}: INVALID ({len(errors)} problems)",
              file=sys.stderr)
        for error in errors:
            print(f"  {error}", file=sys.stderr)
        return 1
    events = trace.get("traceEvents", [])
    print(f"{args.file}: ok ({len(events)} events)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
