#!/usr/bin/env python
"""Structural validator for Prometheus text exposition (version 0.0.4).

Checks a `/metrics` scrape the way a strict scraper would — grammar,
metadata ordering, duplicate series, histogram shape — without
importing anything from `repro`, so it stays an independent check on
what `repro.obs.runtime` renders:

* every line is a comment, a `# HELP`/`# TYPE` directive, or a sample
  matching the exposition grammar;
* `# TYPE` precedes the first sample of its family, is one of
  counter/gauge/histogram/summary/untyped, and appears at most once;
* no duplicate (sample name, label set);
* counter and histogram sample values are finite and non-negative,
  gauges merely finite;
* each histogram (per label set, ignoring `le`): bucket bounds parse
  and strictly increase, cumulative counts never decrease, a `+Inf`
  bucket exists, `_count` equals the `+Inf` bucket, and `_sum` exists.

Usage: ``python tools/validate_promtext.py FILE`` (or ``-`` for stdin).
Exits 0 when structurally valid, 1 with one problem per line otherwise.
Importable: ``validate_text(text) -> [problems]``.
"""

from __future__ import annotations

import argparse
import math
import re
import sys

NAME_RE = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
HELP_RE = re.compile(r"^# HELP (%s) (.*)$" % NAME_RE)
TYPE_RE = re.compile(r"^# TYPE (%s) (\S+)$" % NAME_RE)
# Quoted label values may contain '{' / '}' (e.g. route="/v1/jobs/{id}"),
# so the label body must be matched as a pair sequence, never as [^}]*.
PAIR_RE = r'[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"'
SAMPLE_RE = re.compile(
    r"^(?P<name>%s)(?:\{(?P<labels>(?:%s(?:,%s)*)?,?)\})?"
    r"\s+(?P<value>\S+)(?:\s+(?P<ts>-?\d+))?$"
    % (NAME_RE, PAIR_RE, PAIR_RE)
)
LABELS_RE = re.compile(r'^(?:[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"(?:,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*")*)?$')
LABEL_PAIR_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')
VALID_TYPES = ("counter", "gauge", "histogram", "summary", "untyped")
HISTOGRAM_SUFFIXES = ("_bucket", "_sum", "_count")


def _number(text):
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    if text == "NaN":
        return math.nan
    return float(text)


def _family_of(name, types):
    """Map a sample name to its declared family (histogram suffixes fold)."""
    if name in types:
        return name
    for suffix in HISTOGRAM_SUFFIXES:
        if name.endswith(suffix):
            base = name[: -len(suffix)]
            if types.get(base) in ("histogram", "summary"):
                return base
    return name


def parse(text):
    """(types, samples, problems): declared TYPEs, [(name, labels, value)],
    and grammar-level problems."""
    types = {}
    helps = set()
    samples = []
    problems = []
    for lineno, raw in enumerate(text.splitlines(), 1):
        line = raw.rstrip("\n")
        if not line.strip():
            continue
        if line.startswith("#"):
            help_m = HELP_RE.match(line)
            if help_m:
                name = help_m.group(1)
                if name in helps:
                    problems.append("line %d: duplicate HELP for %s" % (lineno, name))
                helps.add(name)
                continue
            type_m = TYPE_RE.match(line)
            if type_m:
                name, kind = type_m.groups()
                if kind not in VALID_TYPES:
                    problems.append("line %d: invalid TYPE %r for %s" % (lineno, kind, name))
                if name in types:
                    problems.append("line %d: duplicate TYPE for %s" % (lineno, name))
                elif any(s[0] == name or _family_of(s[0], {name: kind}) == name for s in samples):
                    problems.append("line %d: TYPE for %s appears after its samples" % (lineno, name))
                types[name] = kind
                continue
            if line.startswith("# HELP") or line.startswith("# TYPE"):
                problems.append("line %d: malformed directive: %r" % (lineno, line))
            continue  # other comments are legal and ignored
        sample_m = SAMPLE_RE.match(line)
        if sample_m is None:
            problems.append("line %d: unparseable sample: %r" % (lineno, line))
            continue
        labels_text = sample_m.group("labels")
        labels = {}
        if labels_text is not None:
            if not LABELS_RE.match(labels_text):
                problems.append("line %d: malformed label set: %r" % (lineno, labels_text))
                continue
            for name, value in LABEL_PAIR_RE.findall(labels_text):
                if name in labels:
                    problems.append("line %d: repeated label %r" % (lineno, name))
                labels[name] = value
        try:
            value = _number(sample_m.group("value"))
        except ValueError:
            problems.append(
                "line %d: bad sample value %r" % (lineno, sample_m.group("value"))
            )
            continue
        samples.append((sample_m.group("name"), labels, value, lineno))
    return types, samples, problems


def validate_text(text):
    """Return a list of structural problems (empty = valid)."""
    types, samples, problems = parse(text)

    seen = set()
    histograms = {}  # (family, frozen labels sans le) -> {"buckets": [(le, v)], "sum": v, "count": v}
    for name, labels, value, lineno in samples:
        key = (name, tuple(sorted(labels.items())))
        if key in seen:
            problems.append("line %d: duplicate series %s%r" % (lineno, name, dict(labels)))
        seen.add(key)

        family = _family_of(name, types)
        kind = types.get(family)
        if kind is None:
            problems.append("line %d: sample %s has no TYPE declaration" % (lineno, name))
            continue
        if kind in ("counter", "histogram"):
            if not math.isfinite(value) or value < 0:
                problems.append(
                    "line %d: %s sample %s must be finite and non-negative, got %r"
                    % (lineno, kind, name, value)
                )
        elif kind == "gauge" and value != value:
            problems.append("line %d: gauge sample %s is NaN" % (lineno, name))

        if kind == "histogram":
            series_labels = {k: v for k, v in labels.items() if k != "le"}
            entry = histograms.setdefault(
                (family, tuple(sorted(series_labels.items()))),
                {"buckets": [], "sum": None, "count": None},
            )
            if name == family + "_bucket":
                if "le" not in labels:
                    problems.append("line %d: histogram bucket without le label" % (lineno,))
                    continue
                try:
                    entry["buckets"].append((_number(labels["le"]), value, lineno))
                except ValueError:
                    problems.append("line %d: bad le value %r" % (lineno, labels["le"]))
            elif name == family + "_sum":
                entry["sum"] = value
            elif name == family + "_count":
                entry["count"] = value

    for (family, labels), entry in sorted(histograms.items()):
        where = "%s%s" % (family, dict(labels) if labels else "")
        buckets = entry["buckets"]
        if not buckets:
            problems.append("histogram %s has no buckets" % (where,))
            continue
        bounds = [b[0] for b in buckets]
        if bounds != sorted(bounds) or len(set(bounds)) != len(bounds):
            problems.append("histogram %s: le bounds not strictly increasing" % (where,))
        counts = [b[1] for b in buckets]
        if any(b > a for a, b in zip(counts[1:], counts)):
            problems.append("histogram %s: cumulative counts decrease" % (where,))
        if bounds[-1] != math.inf:
            problems.append("histogram %s: missing +Inf bucket" % (where,))
        elif entry["count"] is None:
            problems.append("histogram %s: missing _count" % (where,))
        elif entry["count"] != counts[-1]:
            problems.append(
                "histogram %s: _count %r != +Inf bucket %r"
                % (where, entry["count"], counts[-1])
            )
        if entry["sum"] is None:
            problems.append("histogram %s: missing _sum" % (where,))

    return problems


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("path", help="metrics text file, or - for stdin")
    args = parser.parse_args(argv)
    if args.path == "-":
        text = sys.stdin.read()
    else:
        with open(args.path, "r") as handle:
            text = handle.read()
    problems = validate_text(text)
    if problems:
        for problem in problems:
            print("validate_promtext: %s" % (problem,), file=sys.stderr)
        print(
            "validate_promtext: FAIL (%d problem%s)"
            % (len(problems), "" if len(problems) == 1 else "s"),
            file=sys.stderr,
        )
        return 1
    types, samples, _ = parse(text)
    print(
        "validate_promtext: OK (%d families, %d samples)" % (len(types), len(samples))
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
