#!/usr/bin/env python3
"""Generate EXPERIMENTS.md from benchmarks/results.json.

Run the benchmark suite first::

    pytest benchmarks/ --benchmark-only -s
    python tools/generate_experiments.py
"""

import json
import pathlib

ROOT = pathlib.Path(__file__).resolve().parent.parent
RESULTS = ROOT / "benchmarks" / "results.json"
OUTPUT = ROOT / "EXPERIMENTS.md"

GROUP1 = ["LL1", "LL2", "LL3", "LL5", "LL7", "LL12"]
GROUP2 = ["Laplace", "MPD", "Matrix", "Sieve", "Water"]


def table(headers, rows):
    out = ["| " + " | ".join(headers) + " |",
           "|" + "|".join("---" for _ in headers) + "|"]
    for row in rows:
        out.append("| " + " | ".join(str(c) for c in row) + " |")
    return "\n".join(out)


def fmt(value):
    if isinstance(value, float):
        return f"{value:,.0f}"
    return f"{value:,}"


def pct(value):
    return f"{value:+.1%}"


def fetch_policy_section(results, key, names, figure, group):
    data = results[key]
    rows = []
    for name in names:
        base = data["BaseCase"][name]
        rows.append([name] + [fmt(data[k][name])
                              for k in ("TrueRR", "MaskedRR", "CSwitch",
                                        "BaseCase")]
                    + [pct(base / data["TrueRR"][name] - 1)])
    return "\n".join([
        f"### Figure {figure} — fetch policies, {group}",
        "",
        "**Paper:** True RR and Masked RR are \"about equivalent\"; "
        "Conditional Switch \"has similar performance\"; True RR is the "
        "easiest to implement. Multithreading (4 threads) beats the "
        "single-threaded base case for most benchmarks.",
        "",
        "**Measured (cycles):**",
        "",
        table(["benchmark", "TrueRR", "MaskedRR", "CSwitch", "BaseCase",
               "TrueRR speedup"], rows),
        "",
    ])


def thread_sweep_section(results, key, names, figure, group):
    data = results[key]
    threads = sorted(data, key=int)
    rows = []
    for name in names:
        single = data["1"][name]
        best_n = min(threads[1:], key=lambda n: data[n][name])
        peak = single / data[best_n][name] - 1
        rows.append([name] + [fmt(data[n][name]) for n in threads]
                    + [f"{pct(peak)} @ {best_n}T"])
    return "\n".join([
        f"### Figure {figure} — cycles vs number of threads, {group}",
        "",
        "**Paper:** peak improvements between -8.5% and 77%; best results "
        "at small thread counts (3 threads best on average for the "
        "Livermore loops), deterioration by 6 threads; the benchmark with "
        "a cross-iteration dependence (our LL5) is consistently *slower* "
        "than single-threaded because of synchronization cost.",
        "",
        "**Measured (cycles):**",
        "",
        table(["benchmark"] + [f"{n}T" for n in threads] + ["peak"], rows),
        "",
    ])


def cache_section(results):
    fig7 = results["fig7"]
    fig8 = results["fig8"]
    rows = []
    for n in sorted(fig7["direct"], key=int):
        rows.append([f"{n} threads",
                     fmt(fig7["direct"][n]), fmt(fig7["assoc"][n]),
                     fmt(fig8["direct"][n]), fmt(fig8["assoc"][n])])
    t2 = results["table2"]
    rate_rows = []
    for n in sorted(t2["group1"]["direct"], key=int):
        rate_rows.append([n,
                          f"{t2['group1']['direct'][n]:.1%}",
                          f"{t2['group1']['assoc'][n]:.1%}",
                          f"{t2['group2']['direct'][n]:.1%}",
                          f"{t2['group2']['assoc'][n]:.1%}"])
    return "\n".join([
        "### Figures 7-8 and Table 2 — direct-mapped vs associative cache",
        "",
        "**Paper:** performance is better with the associative cache, and "
        "the difference \"keeps increasing steadily as the number of "
        "threads is increased\" (contention); hit rate improves then falls "
        "as threads are added, the fall more pronounced for the "
        "small-working-set Livermore loops; cache hit rate correlates "
        "directly with overall cycles.",
        "",
        "**Measured — average cycles:**",
        "",
        table(["config", "GrpI direct", "GrpI assoc", "GrpII direct",
               "GrpII assoc"], rows),
        "",
        "**Measured — average hit rates (Table 2):**",
        "",
        table(["threads", "GrpI direct", "GrpI assoc", "GrpII direct",
               "GrpII assoc"], rate_rows),
        "",
    ])


def su_depth_section(results, key, names, figure, group):
    data = results[key]
    depths = (32, 64, 128, 256)
    rows = []
    for name in names:
        row = [name]
        for n in (1, 4):
            for depth in depths:
                row.append(fmt(data[f"{n}T_su{depth}"][name]))
        rows.append(row)
    headers = (["benchmark"] + [f"1T su{d}" for d in depths]
               + [f"4T su{d}" for d in depths])
    return "\n".join([
        f"### Figure {figure} — scheduling-unit depth, {group}",
        "",
        "**Paper:** significant gain from the smallest SU to the next "
        "size, much less after that, negligible for the last doubling; "
        "the difference between multithreaded and single-threaded "
        "performance *shrinks* with deeper SUs (a deep window finds ILP "
        "by itself, making multithreading less useful).",
        "",
        "**Measured (cycles):**",
        "",
        table(headers, rows),
        "",
    ])


def fu_section(results, key, names, figure, group):
    data = results[key]
    rows = []
    for name in names:
        d1, d4 = data["1T_default"][name], data["4T_default"][name]
        e1, e4 = data["1T_enhanced"][name], data["4T_enhanced"][name]
        rows.append([name, fmt(d1), fmt(d4), fmt(e1), fmt(e4),
                     pct(d1 / d4 - 1), pct(e1 / e4 - 1)])
    return "\n".join([
        f"### Figure {figure} — default vs enhanced functional units, "
        f"{group}",
        "",
        "**Paper:** with default units, 4-thread execution is faster "
        "than 1-thread; with the enhanced configuration the *relative* "
        "multithreaded speedup is greater than with the default "
        "configuration for both groups (extra units need multithreading "
        "to keep them fed).",
        "",
        "**Measured (cycles; ++ = enhanced):**",
        "",
        table(["benchmark", "1T", "4T", "1T++", "4T++", "MT gain",
               "MT gain ++"], rows),
        "",
    ])


def table3_section(results):
    data = results["table3"]
    rows = []
    for cls in sorted(set(data["group1"]) | set(data["group2"])):
        for group_key, label in (("group1", "Group I"),
                                 ("group2", "Group II")):
            for index, fraction in enumerate(data[group_key].get(cls, [])):
                rows.append([label, f"{cls} #{index + 2}",
                             f"{fraction:.1%}"])
    return "\n".join([
        "### Table 3 — usage of the extra functional units",
        "",
        "**Paper:** the numbers \"argue strongly in favor of a second "
        "load unit, and a floating point multiplier\", the latter most "
        "useful to the compute-intensive Group I; extra dividers are "
        "barely used.",
        "",
        "**Measured (fraction of cycles each extra unit is busy, "
        "4 threads, enhanced configuration):**",
        "",
        table(["group", "extra unit", "usage"], rows),
        "",
    ])


def commit_section(results, key, names, figure, group):
    data = results[key]
    rows = [[name, fmt(data["Multiple"][name]), fmt(data["Lowest"][name]),
             pct(data["Lowest"][name] / data["Multiple"][name] - 1)]
            for name in names]
    return "\n".join([
        f"### Figure {figure} — Flexible Result Commit, {group}",
        "",
        "**Paper:** committing from multiple (four) bottom blocks beats "
        "lowest-only commit (Group I ~+x%, Group II ~+x%; the OCR lost "
        "the exact averages) because scheduling-unit stalls occur less "
        "often.",
        "",
        "**Measured (cycles; gain = Lowest/Multiple - 1):**",
        "",
        table(["benchmark", "Multiple", "Lowest", "flexible gain"], rows),
        "",
    ])


def speedup_section(results):
    data = results["speedup_summary"]
    rows = [[name, pct(entry["peak"]), entry["best_threads"]]
            for name, entry in data.items()]
    avg1 = sum(data[n]["peak"] for n in GROUP1) / len(GROUP1)
    avg2 = sum(data[n]["peak"] for n in GROUP2) / len(GROUP2)
    return "\n".join([
        "### Section 5.2 — peak improvement summary",
        "",
        "**Paper:** peak improvements from -8.5% to 77%; the headline "
        "conclusion is \"a speedup of 20 to 55% for most benchmarks\".",
        "",
        "**Measured:**",
        "",
        table(["benchmark", "peak improvement", "best thread count"], rows),
        "",
        f"Group I average peak: **{pct(avg1)}** · "
        f"Group II average peak: **{pct(avg2)}**",
        "",
    ])


def ablation_section(results):
    parts = ["### Beyond-paper ablations and extensions", ""]
    if "ablation_commit_depth" in results:
        data = results["ablation_commit_depth"]
        rows = [[f"window {k}", fmt(v)] for k, v in sorted(
            data.items(), key=lambda kv: int(kv[0]))]
        parts += ["**Commit-window depth** (the paper fixes 4):", "",
                  table(["config", "total cycles"], rows), ""]
    if "ablation_predictor" in results:
        data = results["ablation_predictor"]
        parts += ["**Shared vs per-thread predictor/BTB** (the paper "
                  "shares one table):", "",
                  table(["config", "total cycles"],
                        [["shared", fmt(data["shared"])],
                         ["per-thread", fmt(data["private"])]]), ""]
    if "ablation_store_buffer" in results:
        data = results["ablation_store_buffer"]
        rows = [[f"{k} entries", fmt(v)] for k, v in sorted(
            data.items(), key=lambda kv: int(kv[0]))]
        parts += ["**Store-buffer depth:**", "",
                  table(["config", "total cycles"], rows), ""]
    if "ablation_cache_ports" in results:
        data = results["ablation_cache_ports"]
        rows = [[f"{k} port(s)", fmt(v)] for k, v in sorted(
            data.items(), key=lambda kv: int(kv[0]))]
        parts += ["**Cache ports** (paper improvement #1):", "",
                  table(["config", "total cycles"], rows), ""]
    if "ablation_masked_criterion" in results:
        data = results["ablation_masked_criterion"]
        rows = [[k, fmt(v)] for k, v in sorted(data.items())]
        parts += ["**Masked-RR masking criterion** (commit-stall is the "
                  "paper's; long-latency is the variant it hints at):", "",
                  table(["criterion", "total cycles"], rows), ""]
    if "ablation_icache" in results:
        data = results["ablation_icache"]
        rows = [[k, fmt(v)] for k, v in data.items()]
        parts += ["**Instruction cache** (the paper assumes perfect; the "
                  "modest penalty of a real one justifies that):", "",
                  table(["config", "total cycles"], rows), ""]
    if "ext_icount" in results:
        data = results["ext_icount"]
        total_rr = sum(data["true_rr"].values())
        total_ic = sum(data["icount"].values())
        parts += ["**ICOUNT fetch policy** (the paper's \"judicious "
                  "fetch policy\" suggestion, per Tullsen et al. 1996): "
                  f"total cycles {fmt(total_ic)} vs True RR "
                  f"{fmt(total_rr)} ({pct(total_rr / total_ic - 1)} "
                  "overall).", ""]
    if "ext_alignment" in results:
        data = results["ext_alignment"]
        total_p = sum(data["plain"].values())
        total_a = sum(data["aligned"].values())
        parts += ["**Branch-target alignment** (paper improvement #2): "
                  f"total cycles {fmt(total_a)} vs plain {fmt(total_p)} "
                  f"({pct(total_p / total_a - 1)} overall — small either "
                  "way; code motion also perturbs predictor indexing).",
                  ""]
    return "\n".join(parts)


def build(results):
    """Assemble the markdown from a results dict (missing experiments
    are skipped with a note so partial runs still document themselves)."""
    sections = [
        "# EXPERIMENTS — paper vs measured",
        "",
        "Every table and figure of the paper's evaluation, regenerated by "
        "`pytest benchmarks/ --benchmark-only`. The paper's own absolute "
        "numbers are mostly lost to OCR, and our substrate is a scaled "
        "simulator, so the comparison is of *shapes*: orderings, rough "
        "factors, crossovers. Every run's computation is verified against "
        "an independent Python mirror before its cycle count is used.",
        "",
    ]
    builders = [
        lambda: fetch_policy_section(results, "fig3", GROUP1, 3, "Group I"),
        lambda: fetch_policy_section(results, "fig4", GROUP2, 4, "Group II"),
        lambda: thread_sweep_section(results, "fig5", GROUP1, 5, "Group I"),
        lambda: thread_sweep_section(results, "fig6", GROUP2, 6, "Group II"),
        lambda: cache_section(results),
        lambda: su_depth_section(results, "fig9", GROUP1, 9, "Group I"),
        lambda: su_depth_section(results, "fig10", GROUP2, 10, "Group II"),
        lambda: fu_section(results, "fig11", GROUP1, 11, "Group I"),
        lambda: fu_section(results, "fig12", GROUP2, 12, "Group II"),
        lambda: table3_section(results),
        lambda: commit_section(results, "fig13", GROUP1, 13, "Group I"),
        lambda: commit_section(results, "fig14", GROUP2, 14, "Group II"),
        lambda: speedup_section(results),
        lambda: ablation_section(results),
    ]
    for builder in builders:
        try:
            sections.append(builder())
        except KeyError as missing:
            sections.append(f"*(experiment {missing} not in results.json — "
                            f"run the benchmark suite)*\n")
    return "\n".join(sections)


def main():
    results = json.loads(RESULTS.read_text())
    OUTPUT.write_text(build(results))
    print(f"wrote {OUTPUT}")


if __name__ == "__main__":
    main()
