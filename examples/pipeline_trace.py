#!/usr/bin/env python3
"""Watch instructions flow through the multithreaded pipeline.

Runs a two-thread program and renders the tracer's pipeline diagram,
showing how instructions from different threads interleave in the
shared scheduling unit, and how a branch mispredict squashes only the
offending thread's instructions.

The tracer is one consumer of the simulator's event bus
(``docs/OBSERVABILITY.md``); the same run also feeds a raw-event
counter subscribed with ``sim.add_sink`` to show the underlying feed.

Run with: ``python examples/pipeline_trace.py``
"""

from collections import Counter

from repro.asm import assemble
from repro.core import MachineConfig, PipelineSim
from repro.core.trace import Tracer

SOURCE = """
        .data
v:      .word 5, 7
        .text
        mftid r10
        bnez  r10, second
        # Thread 0: loads, multiply, divide (long latency)
        la   r4, v
        lw   r5, 0(r4)
        lw   r6, 1(r4)
        mul  r7, r5, r6
        div  r8, r7, r5
        halt
second: # Thread 1: a small loop (trains the branch predictor)
        li   r4, 0
        li   r5, 4
loop:   addi r4, r4, 1
        blt  r4, r5, loop
        halt
"""


def main():
    program = assemble(SOURCE)
    sim = PipelineSim(program, MachineConfig(nthreads=2))
    tracer = Tracer.attach(sim, limit=60)
    kinds = Counter()
    sim.add_sink(lambda event: kinds.update([event.kind]))
    stats = sim.run()
    print(tracer.render(width=64))
    print()
    print(f"{stats.cycles} cycles, IPC {stats.ipc:.2f}, "
          f"{stats.mispredicts} mispredicts "
          f"({stats.squashed} instructions squashed)")
    print("Squashed (K) lines are wrong-path instructions; note that a "
          "thread-1 mispredict never kills thread-0 work.")
    print()
    feed = ", ".join(f"{kind} x{count}" for kind, count in
                     sorted(kinds.items()))
    print(f"event-bus feed: {feed}")


if __name__ == "__main__":
    main()
