#!/usr/bin/env python3
"""Print the reproduced hardware configuration (paper Tables 1 and 2).

Run with: ``python examples/configs.py``
"""

from repro.core import MachineConfig
from repro.core.config import FU_DEFAULT, FU_ENHANCED, FU_LATENCY
from repro.harness import format_table


def main():
    rows = [[cls.value, FU_DEFAULT[cls], FU_ENHANCED[cls], FU_LATENCY[cls]]
            for cls in FU_DEFAULT]
    print(format_table("Table 1: functional-unit configuration",
                       ["unit", "default", "enhanced", "latency"], rows))

    print()
    config = MachineConfig()
    print("Table 2: default hardware configuration")
    print("-" * 40)
    print(config.describe())
    print(f"predictor: {config.predictor_bits}-bit, "
          f"{config.predictor_entries} entries, "
          f"{'shared' if config.shared_predictor else 'per-thread'}, "
          f"BTB {config.btb_entries} entries")
    print(f"bypassing: {config.bypassing}, full renaming: {config.renaming}")
    print("instruction cache: perfect (100% hits)")


if __name__ == "__main__":
    main()
