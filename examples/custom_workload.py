#!/usr/bin/env python3
"""Write a parallel program in MiniC and study its SMT scaling.

The program is a dot-product kernel in the paper's homogeneous-
multitasking style: every thread runs the same ``main()`` on a cyclic
slice of the data, with per-thread partial sums combined after a
barrier. The example compiles it for each register partition
(``128 / nthreads`` registers per thread, as the paper's modified
compiler does) and reports cycles and speedup.

Run with: ``python examples/custom_workload.py``
"""

from repro.core import MachineConfig, PipelineSim
from repro.lang import compile_source

SOURCE = """
int n = 256;
float a[256];
float b[256];
float partial[8];
float result;

void main() {
    int t; int nt; int i;
    float s;
    t = tid(); nt = nthreads();
    for (i = t; i < n; i = i + nt) {
        a[i] = 0.5 + 0.001 * i;
        b[i] = 2.0 - 0.001 * i;
    }
    barrier();
    s = 0.0;
    for (i = t; i < n; i = i + nt) {
        s = s + a[i] * b[i];
    }
    partial[t] = s;
    barrier();
    if (t == 0) {
        s = 0.0;
        for (i = 0; i < nt; i = i + 1) { s = s + partial[i]; }
        result = s;
    }
    barrier();
}
"""


def main():
    print("dot-product kernel, SMT scaling study")
    print(f"{'threads':>8} {'regs/thread':>12} {'cycles':>8} {'IPC':>6} "
          f"{'speedup':>8}")
    baseline = None
    for nthreads in (1, 2, 3, 4, 5, 6):
        program = compile_source(SOURCE, nthreads=nthreads)
        sim = PipelineSim(program, MachineConfig(nthreads=nthreads))
        stats = sim.run()
        result = sim.mem(program.symbol("g_result"))
        if baseline is None:
            baseline = stats.cycles
        speedup = baseline / stats.cycles - 1
        print(f"{nthreads:>8} {128 // nthreads:>12} {stats.cycles:>8} "
              f"{stats.ipc:>6.2f} {speedup:>+8.1%}")
    print(f"\ndot product = {result:.4f}")
    expected = sum((0.5 + 0.001 * i) * (2.0 - 0.001 * i) for i in range(256))
    assert abs(result - expected) < 1e-6


if __name__ == "__main__":
    main()
