#!/usr/bin/env python3
"""Tour of the MiniC toolchain: source -> assembly -> machine code.

Shows each stage the paper's benchmarks pass through: the MiniC
compiler targeting a per-thread register partition, the two-pass
assembler, the 32-bit encoding, and the disassembler.

Run with: ``python examples/compiler_tour.py``
"""

from repro.asm import assemble, disassemble
from repro.isa import decode
from repro.lang import compile_source, compile_to_asm

SOURCE = """
int n = 8;
int squares[8];

int square(int x) { return x * x; }

void main() {
    int i;
    for (i = tid(); i < n; i = i + nthreads()) {
        squares[i] = square(i);
    }
    barrier();
}
"""


def main():
    print("=== MiniC source ===")
    print(SOURCE)

    for nthreads in (1, 6):
        k = 128 // nthreads
        print(f"=== Assembly for a {nthreads}-thread partition "
              f"({k} registers/thread) ===")
        asm = compile_to_asm(SOURCE, nthreads=nthreads)
        lines = asm.splitlines()
        print("\n".join(lines[:24]))
        print(f"... ({len(lines)} lines total)\n")

    program = compile_source(SOURCE, nthreads=4)
    print("=== Encoded text segment (first 8 words) ===")
    for addr, word in enumerate(program.words[:8]):
        print(f"  {addr:4d}: {word:#010x}  {decode(word).text()}")

    print(f"\ntext: {len(program)} instructions, "
          f"data: {len(program.data)} words, "
          f"entry: pc={program.entry} ({'__start'!r})")

    print("\n=== Symbols ===")
    for name, addr in sorted(program.symbols.items(), key=lambda kv: kv[1]):
        if not name.startswith("."):
            print(f"  {name:16s} -> {addr}")


if __name__ == "__main__":
    main()
