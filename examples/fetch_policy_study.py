#!/usr/bin/env python3
"""Reproduce a slice of the paper's fetch-policy experiment (Figs. 3-4).

Runs three of the paper's benchmarks under True Round Robin, Masked
Round Robin, and Conditional Switch with four threads, next to the
single-threaded base case, and prints the cycle counts the way the
figures report them.

Run with: ``python examples/fetch_policy_study.py``
(the three cycle-accurate runs per benchmark take ~tens of seconds).
"""

from repro.harness import Runner, fetch_policy_study, series_table
from repro.workloads import BY_NAME


def main():
    workloads = [BY_NAME["LL1"], BY_NAME["LL5"], BY_NAME["Water"]]
    runner = Runner(quiet=False)
    print("running fetch-policy study (4 threads + base case)...")
    series = fetch_policy_study(runner, workloads, nthreads=4)
    print()
    print(series_table("Cycles by fetch policy (cf. paper Figs. 3-4)",
                       series, benchmarks=[w.name for w in workloads]))
    print()
    for name in (w.name for w in workloads):
        true_rr = series["TrueRR"][name]
        base = series["BaseCase"][name]
        print(f"{name:8s} TrueRR speedup over base: {base / true_rr - 1:+.1%}")
    print("\nAs in the paper: the three policies perform comparably, and "
          "True Round Robin is the simplest to implement.")


if __name__ == "__main__":
    main()
