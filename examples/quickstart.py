#!/usr/bin/env python3
"""Quickstart: assemble a program and run it on both simulators.

Demonstrates the three core layers of the library:

1. the assembler (``repro.asm``),
2. the architectural reference simulator (``repro.funcsim``),
3. the cycle-accurate multithreaded pipeline (``repro.core``).

Run with: ``python examples/quickstart.py``
"""

from repro.asm import assemble, disassemble
from repro.core import MachineConfig, PipelineSim
from repro.funcsim import FunctionalSim

SOURCE = """
        .data
vec:    .space 256
out:    .space 8                # one result slot per thread
        .text
        # Homogeneous multitasking: every thread runs this code on a
        # cyclic slice (elements t, t+N, t+2N, ...) of the vector.
main:   mftid r10               # t
        mfnth r11               # N
        la   r4, vec
        li   r5, 256            # vector length

        mov  r7, r10            # fill phase: vec[i] = (i * 7) % 64
        li   r12, 7
init:   mul  r9, r7, r12
        andi r9, r9, 63
        add  r8, r4, r7
        sw   r9, 0(r8)
        add  r7, r7, r11
        blt  r7, r5, init

        li   r6, 0              # sum phase: FP accumulation -- the
        cvtif r6, r6            # fadd dependence chain is the latency
        mov  r7, r10            # multithreading will hide
loop:   add  r8, r4, r7
        lw   r9, 0(r8)
        cvtif r9, r9
        fmul r9, r9, r9         # square each element
        fadd r6, r6, r9
        add  r7, r7, r11        # i += N
        blt  r7, r5, loop
        cvtfi r6, r6

        la   r9, out
        add  r9, r9, r10
        sw   r6, 0(r9)          # out[t] = partial sum
        halt
"""


def main():
    program = assemble(SOURCE)

    print("=== Disassembly (first 8 instructions) ===")
    print("\n".join(disassemble(program).splitlines()[:8]))

    nthreads = 4
    print(f"\n=== Functional simulation, {nthreads} threads ===")
    ref = FunctionalSim(program, nthreads=nthreads)
    ref.run()
    partials = ref.mem(program.symbol("out"), nthreads)
    print(f"per-thread partial sums: {partials} (total {sum(partials)})")

    print(f"\n=== Cycle-accurate simulation, {nthreads} threads ===")
    sim = PipelineSim(program, MachineConfig(nthreads=nthreads))
    stats = sim.run()
    assert sim.mem(program.symbol("out"), nthreads) == partials
    print(stats.summary())

    print("\n=== Single-thread baseline ===")
    base = PipelineSim(program, MachineConfig(nthreads=1))
    base_stats = base.run()
    print(f"1 thread:  {base_stats.cycles} cycles")
    print(f"{nthreads} threads: {stats.cycles} cycles")
    speedup = base_stats.cycles / stats.cycles - 1
    print(f"multithreading speedup: {speedup:+.1%}")


if __name__ == "__main__":
    main()
