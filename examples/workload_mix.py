#!/usr/bin/env python3
"""Characterize the paper's eleven benchmarks: instruction mix.

Runs every workload on the functional simulator (single-threaded) and
prints the per-category instruction mix — the kind of workload
characterization table architecture papers include. The mix explains
several of the paper's results: FP-heavy loops benefit most from the
enhanced FP units, store-heavy Sieve stresses the store buffer, and
LL5's sync fraction is why it loses from multithreading.

Run with: ``python examples/workload_mix.py``
"""

from repro.funcsim import FunctionalSim
from repro.harness import format_table
from repro.workloads import ALL_WORKLOADS

CATEGORIES = ("alu", "load", "store", "branch", "jump", "fp", "mul_div",
              "sync")


def main():
    rows = []
    for workload in ALL_WORKLOADS:
        sim = FunctionalSim(workload.program(1), nthreads=1)
        sim.run(max_steps=20_000_000)
        mix = sim.instruction_mix()
        rows.append([workload.name, f"{sim.steps:,}"]
                    + [f"{mix[c]:.1%}" for c in CATEGORIES])
    print(format_table("Instruction mix (1 thread, dynamic counts)",
                       ["benchmark", "instructions"] + list(CATEGORIES),
                       rows))


if __name__ == "__main__":
    main()
