"""Config-specialized code generation for the pipeline engine.

The interpreter's fused cycle loop (:meth:`PipelineSim.run`) pays for
generality on every cycle: it branches on the fetch policy, thread
count, bypassing order, fast-forward mode, and masking — all of which
are compile-time constants for any one :class:`MachineConfig`. This
module generates *specialized Python source* for that loop — constants
folded, dead branches eliminated — and ``compile()``/``exec()``'s it
into a ``SpecEngine`` subclass of :class:`PipelineSim` exposing the
exact same surface. It is the standard simulator trick (gem5 builds a
configured CPU model per run) applied at the Python level.

What gets folded and pruned
---------------------------
* The thread count, commit width, SU block capacity, and store-buffer
  depth become literals; the commit stage is inlined into the loop.
* Single-thread configurations drop the commit thread-select scan
  entirely (every block shares one thread id, so only block 0 can ever
  be chosen).
* The fetch-policy dispatch in :meth:`FetchUnit.select_thread` is
  resolved at generation time: a specialized ``_fetch`` inlines the one
  active policy's selection loop (conditional-switch keeps the direct
  call — its state machine is cheap and rarely hot).
* Configurations with no unpipelined divider in service (no IDIV/FPDIV
  units, or unit latency 1) get an ``_issue_horizon`` with the
  divider release-time scan removed.
* The bypassing order, fast-forward mode, instruction-cache presence,
  and watchdog presence are resolved to straight-line code.
* Observability hooks keep exactly the PR-2 contract: one ``is None``
  predicate each — attaching attribution/metrics/sinks works on a
  ``SpecEngine`` unchanged.

The generated loop is **bit-identical** to the interpreter by
construction and by test (``tests/test_spec.py``: the golden matrix in
both fast-forward modes plus a randomized config differential).

Caching
-------
Generation + ``compile()`` costs ~1 ms; a process-level class cache
makes it once per config shape per process, and an on-disk source
cache (:class:`repro.harness.codecache.CodegenCache`) shares it across
sweep workers and ``repro serve`` fleets. The key hashes
``(ENGINE_VERSION, CODEGEN_VERSION, folded facts)`` — bumping either
version, or changing any folded fact, regenerates; nothing stale is
ever reused (see the codecache module for the crash-safety idioms).

Bump :data:`CODEGEN_VERSION` whenever the *shape* of the generated
source changes, even if cycle counts do not.
"""

import hashlib
import json

from repro.core.config import FetchPolicy, MachineConfig
from repro.core.execute import UNPIPELINED
from repro.core.pipeline import ENGINE_VERSION, PipelineSim

#: Generated-source layout version. Bump on any change to
#: :func:`specialize_source` output; cached source keyed on an older
#: version is regenerated, never reused.
CODEGEN_VERSION = 1

#: Process-level cache: codegen key -> compiled SpecEngine class.
_CLASS_CACHE = {}

#: Per-directory default on-disk caches (lazy; see _resolve_cache).
_DEFAULT_CACHES = {}


def codegen_facts(config):
    """The folded facts a specialized engine is generated from.

    Everything :func:`specialize_source` bakes into the emitted code —
    and *only* that — so two configurations that differ in ways the
    generated source does not observe (latencies, cache geometry,
    watchdog threshold) share one cached class.
    """
    no_unpipelined = all(
        config.fu_counts.get(cls, 0) == 0 or config.fu_latency[cls] == 1
        for cls in UNPIPELINED)
    return dict(
        nthreads=config.nthreads,
        fetch_policy=config.fetch_policy.value,
        commit_blocks=config.commit_blocks,
        su_blocks=config.su_blocks,
        store_buffer_depth=config.store_buffer_depth,
        bypassing=config.bypassing,
        fast_forward=config.fast_forward,
        masked=config.fetch_policy is FetchPolicy.MASKED_RR,
        icache=config.icache is not None,
        watchdog=bool(config.hang_cycles),
        no_unpipelined=no_unpipelined,
    )


def codegen_key(config):
    """Stable hex digest identifying the generated source for ``config``.

    Keyed on ``(ENGINE_VERSION, CODEGEN_VERSION, folded facts)`` — the
    same invalidation discipline as the result cache: an engine bump or
    a codegen layout change retires every cached entry.
    """
    facts = codegen_facts(config)
    text = json.dumps([ENGINE_VERSION, CODEGEN_VERSION, facts],
                      sort_keys=True, default=str)
    return hashlib.sha256(text.encode()).hexdigest()


# --------------------------------------------------------------- source


def _commit_lines(facts):
    """The inlined commit stage (from ``PipelineSim._commit``)."""
    cb = facts["commit_blocks"]
    sub = facts["su_blocks"]
    sbd = facts["store_buffer_depth"]
    if facts["nthreads"] == 1:
        lines = [
            "                # Commit stage, inlined from",
            "                # PipelineSim._commit and reduced for one",
            "                # thread: every block shares tid 0, so the",
            f"                # bottom-{cb} thread-select scan can only",
            "                # ever pick block 0.",
            "                blocks = su.blocks",
            "                committed = 0",
            "                if blocks:",
            "                    block = blocks[0]",
            "                    if (not block.not_done",
            "                            and block.store_count",
            f"                            <= {sbd} - len(store_buffer.entries)):",
            "                        commit_block(0)",
            "                        committed = 1",
            f"                    elif len(blocks) >= {sub}:",
            "                        stats.su_stall_cycles += 1",
            "                        committed = 2",
        ]
    else:
        lines = [
            "                # Commit stage, inlined from",
            "                # PipelineSim._commit (keep in sync) with",
            f"                # commit_blocks={cb}, store-buffer",
            f"                # depth={sbd}, and SU capacity={sub} blocks",
            "                # folded.",
            "                blocks = su.blocks",
            "                limit = len(blocks)",
            f"                if {cb} < limit:",
            f"                    limit = {cb}",
            "                index = None",
            "                blocked = 0",
            "                for i in range(limit):",
            "                    block = blocks[i]",
            "                    bit = 1 << block.tid",
            "                    if not block.not_done and not blocked & bit:",
            "                        if (block.store_count",
            f"                                <= {sbd} - len(store_buffer.entries)):",
            "                            index = i",
            "                        break",
            "                    blocked |= bit",
            "                if index is None:",
            f"                    if len(blocks) >= {sub}:",
            "                        stats.su_stall_cycles += 1",
            "                        committed = 2",
            "                    else:",
            "                        committed = 0",
            "                else:",
            "                    commit_block(index)",
            "                    committed = 1",
        ]
    if facts["masked"]:
        lines.append("                update_masks(now)")
    return lines


def _run_lines(facts):
    """The specialized ``run`` method."""
    n = facts["nthreads"]
    lines = [
        "    def run(self):",
        '        """Run to completion (specialized fused loop)."""',
        '        if ("step" in self.__dict__',
        "                or type(self).step is not PipelineSim.step):",
        "            # A replaced step() models a wedge (tests do this);",
        "            # only the generic loop honours it.",
        "            return PipelineSim.run(self)",
        "        max_cycles = self.config.max_cycles",
    ]
    if facts["watchdog"]:
        lines += [
            "        hang_limit = self.config.hang_cycles",
            "        last_committed = -1",
            "        progress_cycle = 0",
        ]
    if facts["fast_forward"]:
        lines.append("        skip = self._skip_inert_cycles")
    lines += [
        "        stats = self.stats",
        "        su = self.su",
        "        store_buffer = self.store_buffer",
        "        cache = self.cache",
        "        memory = self.memory",
        "        attr = self._attr",
        "        metrics = self._metrics",
        "        wb_cycles = self._wb_cycles",
        "        issue = self._issue",
        "        writeback = self._writeback",
        "        decode = self._decode",
        "        fetch = self._fetch",
        "        commit_block = self._commit_block",
    ]
    if facts["masked"]:
        lines.append("        update_masks = self._update_masks")
    lines += [
        "        gc_was_enabled = gc.isenabled()",
        "        if gc_was_enabled:",
        "            gc.disable()",
        "        try:",
        f"            while self._halted < {n}:",
        "                if self.cycle >= max_cycles:",
        "                    raise DeadlockError(",
        '                        f"no completion after {max_cycles} cycles; "',
        '                        f"threads: {self.threads}")',
    ]
    if facts["fast_forward"]:
        lines += [
            "                # _skip_inert_cycles early-outs when the",
            "                # earliest pending result is due; doing that",
            "                # check inline skips the call entirely on",
            "                # throughput-bound cycles.",
            "                if not (wb_cycles and wb_cycles[0] <= self.cycle):",
            "                    skip()",
        ]
    lines.append("                now = self.cycle")
    lines += _commit_lines(facts)
    if facts["bypassing"]:
        lines += [
            "                if wb_cycles and wb_cycles[0] <= now:",
            "                    writeback(now)",
            "                if su.issuable:",
            "                    issue(now)",
        ]
    else:
        lines += [
            "                # Bypassing disabled: issue before writeback,",
            "                # so dependents see results one cycle later.",
            "                if su.issuable:",
            "                    issue(now)",
            "                if wb_cycles and wb_cycles[0] <= now:",
            "                    writeback(now)",
        ]
    lines += [
        "                if self.fetch_buffer is not None:",
        "                    decode(now)",
        "                if self.fetch_buffer is None:",
        "                    fetch(now)",
        "                if store_buffer.entries:",
        "                    store_buffer.drain_one(cache, memory, now)",
        "                stats.su_occupancy_sum += su._entry_count",
        "                if attr is not None:",
        "                    attr.close_cycle(self, now, committed)",
        "                if metrics is not None:",
        "                    metrics.on_cycle(self, now)",
        "                self.cycle = now + 1",
    ]
    if facts["watchdog"]:
        lines += [
            "                committed_total = stats.committed",
            "                if committed_total != last_committed:",
            "                    last_committed = committed_total",
            "                    progress_cycle = self.cycle",
            "                elif self.cycle - progress_cycle >= hang_limit:",
            "                    raise self._hang_error(hang_limit)",
        ]
    lines += [
        "        finally:",
        "            if gc_was_enabled:",
        "                gc.enable()",
        "        now = self.cycle",
        "        while store_buffer.entries:",
        "            store_buffer.drain_one(cache, memory, now)",
        "            now += 1",
        "        self._finalize_stats()",
        "        return self.stats",
    ]
    return lines


def _fetch_lines(facts):
    """The specialized ``_fetch`` (policy dispatch resolved)."""
    n = facts["nthreads"]
    policy = facts["fetch_policy"]
    lines = [
        "    def _fetch(self, now):",
        "        if self.fetch_buffer is not None:",
        "            return",
        "        fetch_unit = self.fetch_unit",
    ]
    if policy == FetchPolicy.TRUE_RR.value:
        lines += [
            "        # Thread select, inlined from select_thread for",
            "        # true round-robin (keep in sync): the modulo",
            "        # counter advances once per fetch opportunity.",
        ]
        if n == 1:
            lines += [
                "        thread = fetch_unit.threads[0]",
                "        fetch_unit._rr_counter += 1",
            ]
        else:
            lines += [
                f"        thread = fetch_unit.threads[fetch_unit._rr_counter % {n}]",
                "        fetch_unit._rr_counter += 1",
            ]
        lines += [
            "        if (thread.done or thread.fetch_halted",
            "                or thread.jalr_wait is not None",
            "                or now < thread.stall_until):",
            "            self.stats.fetch_idle_cycles += 1",
            "            return",
        ]
    elif policy == FetchPolicy.MASKED_RR.value:
        lines += [
            "        # Thread select, inlined from select_thread for",
            "        # masked round-robin (keep in sync).",
            "        threads = fetch_unit.threads",
            "        masked = fetch_unit.masked",
            "        pointer = fetch_unit._rr_pointer",
            "        thread = None",
            f"        for offset in range({n}):",
            f"            candidate = threads[(pointer + offset) % {n}]",
            "            if not (candidate.done or candidate.fetch_halted",
            "                    or candidate.jalr_wait is not None",
            "                    or now < candidate.stall_until",
            "                    or masked[candidate.tid]):",
            f"                fetch_unit._rr_pointer = (candidate.tid + 1) % {n}",
            "                thread = candidate",
            "                break",
            "        if thread is None:",
            "            self.stats.fetch_idle_cycles += 1",
            "            return",
        ]
    elif policy == FetchPolicy.ICOUNT.value:
        lines += [
            "        # Thread select, inlined from select_thread for",
            "        # ICOUNT (keep in sync): fewest in-flight",
            "        # instructions wins, rotating from the pointer.",
            "        threads = fetch_unit.threads",
            "        counts = fetch_unit.tid_counts",
            "        occupancy_of = fetch_unit.occupancy_of",
            "        pointer = fetch_unit._rr_pointer",
            "        best = None",
            "        best_key = None",
            "        for thread in threads[pointer:] + threads[:pointer]:",
            "            if (thread.done or thread.fetch_halted",
            "                    or thread.jalr_wait is not None",
            "                    or now < thread.stall_until):",
            "                continue",
            "            if counts is not None:",
            "                key = counts[thread.tid]",
            "            elif occupancy_of is not None:",
            "                key = occupancy_of(thread.tid)",
            "            else:",
            "                key = 0",
            "            if best is None or key < best_key:",
            "                best, best_key = thread, key",
            "        if best is None:",
            "            self.stats.fetch_idle_cycles += 1",
            "            return",
            f"        fetch_unit._rr_pointer = (best.tid + 1) % {n}",
            "        thread = best",
        ]
    else:  # conditional switch: stateful; keep the direct call
        lines += [
            "        thread = fetch_unit.select_thread(now)",
            "        if thread is None:",
            "            self.stats.fetch_idle_cycles += 1",
            "            return",
        ]
    if facts["icache"]:
        lines += [
            "        ready = self.icache.access(thread.pc, now)",
            "        if ready > now:",
            "            # Instruction-cache miss: the slot is wasted",
            "            # until the line refills.",
            "            thread.stall_until = ready",
            "            self.stats.fetch_idle_cycles += 1",
            "            return",
        ]
    lines += [
        "        items = fetch_unit.fetch_block(thread)",
        "        if not items:",
        "            self.stats.fetch_idle_cycles += 1",
        "            return",
        "        self.fetch_buffer = (thread, items)",
        "        stats = self.stats",
        "        stats.fetched_blocks += 1",
        "        stats.fetched_instructions += len(items)",
        "        bus = self._bus",
        "        if bus is not None:",
        "            bus.emit(FetchEvent(now, thread.tid, items[0].pc,",
        "                                len(items)))",
    ]
    return lines


def _issue_horizon_lines():
    """Divider-free ``_issue_horizon``: the release-time scan is dead."""
    return [
        "    def _issue_horizon(self, now):",
        "        # Specialized for a configuration with no unpipelined",
        "        # divider in service: every populated unit class has",
        "        # occupancy 1, so an FU-blocked candidate frees at the",
        "        # next fresh cycle and FuPool.next_free's per-instance",
        "        # release scan is dead code. Mirrors the base method",
        "        # otherwise (keep in sync).",
        "        pool = self.fu_pool",
        "        used_cycle = pool._used_cycle",
        "        used = pool._used",
        "        counts = pool._counts",
        "        su = self.su",
        "        fu_free_at = None",
        "        flags = 0",
        "        remaining = su.issuable",
        "        for entry in su.ready_entries():",
        "            info = entry.info",
        "            fu_index = info.fu_index",
        "            if (used_cycle[fu_index] == now",
        "                    and used[fu_index] >= counts[fu_index]):",
        "                flags |= 4  # _F_FU",
        "                fu_free_at = now + 1",
        "            elif not info.is_load:",
        "                return None",
        "            else:",
        "                why = self._load_blocked(entry, now)",
        "                if not why:",
        "                    return None",
        "                flags |= why",
        "            remaining -= 1",
        "            if remaining == 0:",
        "                break",
        "        return fu_free_at, flags",
    ]


def specialize_source(config):
    """Generate the specialized engine module source for ``config``."""
    facts = codegen_facts(config)
    key = codegen_key(config)
    facts_json = json.dumps(facts, sort_keys=True)
    lines = [
        '"""Config-specialized pipeline engine (auto-generated; do not',
        "edit). Regenerate with repro.core.codegen.",
        "",
        f"engine version: {ENGINE_VERSION}",
        f"codegen version: {CODEGEN_VERSION}",
        f"key: {key}",
        f"facts: {facts_json}",
        '"""',
        "",
        "import gc",
        "",
        "from repro.core.pipeline import DeadlockError, PipelineSim",
        "from repro.obs.events import FetchEvent",
        "",
        "",
        "class SpecEngine(PipelineSim):",
        '    """PipelineSim with the cycle loop specialized for one',
        "    configuration shape. Same surface, bit-identical",
        '    statistics (tests/test_spec.py)."""',
        "",
        f"    SPEC_KEY = {key!r}",
        f"    SPEC_FACTS = {facts!r}",
        "",
    ]
    lines += _run_lines(facts)
    lines.append("")
    lines += _fetch_lines(facts)
    if facts["no_unpipelined"]:
        lines.append("")
        lines += _issue_horizon_lines()
    return "\n".join(lines) + "\n"


# -------------------------------------------------------------- factory


def _resolve_cache(cache):
    """Map the ``cache`` argument to a CodegenCache or ``None``.

    ``"default"`` resolves the shared on-disk cache (honouring the
    ``REPRO_CODEGEN_CACHE`` override, where ``0``/``off`` disables
    disk caching); ``None``/``False`` means in-process only; anything
    else is used as a cache object directly.
    """
    if cache is None or cache is False:
        return None
    if cache == "default":
        from repro.harness.codecache import CodegenCache, default_dir
        root = default_dir()
        if root is None:
            return None
        return _DEFAULT_CACHES.setdefault(str(root), CodegenCache(root))
    return cache


def spec_engine_class(config, cache="default"):
    """The compiled ``SpecEngine`` class for ``config``'s shape.

    Resolution order: process class cache, then the on-disk source
    cache, then fresh generation (populating both). The returned class
    subclasses :class:`PipelineSim` and is constructed the same way:
    ``spec_engine_class(config)(program, config)``.
    """
    key = codegen_key(config)
    cls = _CLASS_CACHE.get(key)
    if cls is not None:
        return cls
    disk = _resolve_cache(cache)
    source = disk.get(key) if disk is not None else None
    if source is None:
        source = specialize_source(config)
        if disk is not None:
            disk.put(key, source)
    code = compile(source, f"<spec:{key[:12]}>", "exec")
    namespace = {}
    exec(code, namespace)
    cls = namespace["SpecEngine"]
    _CLASS_CACHE[key] = cls
    return cls


def make_spec(program, config, cache="default"):
    """Construct a specialized simulator: drop-in for ``PipelineSim``."""
    return spec_engine_class(config, cache=cache)(program, config)


def have_engine(config, cache="default"):
    """True when ``config``'s specialized class is available for free.

    Checks the process class cache, then the on-disk source cache,
    without generating anything — ``repro stats --backend auto`` uses
    this to resolve to ``spec`` only when a prior run already paid for
    codegen.
    """
    key = codegen_key(config)
    if key in _CLASS_CACHE:
        return True
    disk = _resolve_cache(cache)
    return disk is not None and disk.get(key) is not None


# ------------------------------------------------------------ source dump


def _main(argv=None):
    """Dump generated source for one config (CI artifact / inspection)."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.core.codegen",
        description="Generate and print the specialized engine source "
                    "for a machine configuration.")
    parser.add_argument("--threads", type=int, default=4)
    parser.add_argument("--fetch-policy", default="true_rr",
                        choices=[p.value for p in FetchPolicy])
    parser.add_argument("--su-entries", type=int, default=64)
    parser.add_argument("--no-bypassing", action="store_true")
    parser.add_argument("--no-fast-forward", action="store_true")
    parser.add_argument("--out", default=None,
                        help="write to this path instead of stdout")
    args = parser.parse_args(argv)
    config = MachineConfig(
        nthreads=args.threads, fetch_policy=args.fetch_policy,
        su_entries=args.su_entries, bypassing=not args.no_bypassing,
        fast_forward=not args.no_fast_forward)
    source = specialize_source(config)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(source)
        print(f"wrote {len(source)} bytes ({codegen_key(config)[:16]}) "
              f"to {args.out}")
    else:
        print(source, end="")
    return 0


if __name__ == "__main__":
    raise SystemExit(_main())
