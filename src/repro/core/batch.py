"""Batch simulation engine: N independent sims of one program, one loop.

Every figure in the evaluation is a sweep — many configurations of the
*same* workload. The scalar path simulates them one
:meth:`PipelineSim.run` at a time, paying per-run interpreter setup and
letting each run's idle spans serialize behind the previous run's hot
spans. :class:`BatchEngine` instead owns N fully independent
:class:`PipelineSim` instances built from one shared, already-decoded
:class:`~repro.asm.program.Program` (instruction objects and their
execution closures are read-only and shared across all members) and
advances them inside a single fused driver loop.

Scheduling is event-driven across members: a min-heap orders the
members by their next due cycle, and each heap pop advances one member
by up to :data:`CHUNK` cycles through the same inlined cycle body as
:meth:`PipelineSim.run` — including the next-event fast-forward, whose
jumps push a stalled member's re-queue point past its whole inert span,
so the scheduler naturally spends its iterations on whichever member
has real work due (the PR-5 horizon protocol, applied across sims
instead of within one).

Correctness contract (the same one the fast-forward engine carries):
members share no mutable state — each sim owns its memory image,
register file, caches, predictor, and scheduling unit — so interleaving
their cycles in *any* order produces bit-identical statistics, stall
attribution, and checksums versus running each alone. Enforced by
``tests/test_batch.py`` over the full regression matrix in both
fast-forward modes.

Fault isolation: one member raising (deadlock, watchdog hang,
verification assertion, injected fault) is captured in its
:class:`SimOutcome` slot; the remaining members keep running to
completion. The harness maps failed slots back onto its per-job
retry/failure bookkeeping (see :mod:`repro.harness.parallel`).
"""

import gc
import heapq

from repro.core.pipeline import DeadlockError, PipelineSim

#: Cycle budget one member receives per scheduler slot before returning
#: to the heap. Large enough to amortize the per-slot local re-binding,
#: small enough that members interleave through the sweep instead of
#: running to completion serially (which would forfeit the scheduler's
#: cache-warm sharing of the program's instruction objects).
CHUNK = 256


class SimOutcome:
    """Terminal state of one batch member; aligned with the input configs.

    ``ok`` members carry their finished ``sim`` (for checksum reads) and
    ``stats``; failed members carry the exception in ``error`` (``sim``
    is present when construction succeeded, ``None`` when the
    configuration itself was rejected).
    """

    __slots__ = ("index", "sim", "stats", "error")

    def __init__(self, index):
        self.index = index
        self.sim = None
        self.stats = None
        self.error = None

    @property
    def ok(self):
        return self.error is None and self.stats is not None

    def __repr__(self):
        state = (f"cycles={self.stats.cycles}" if self.ok
                 else f"error={type(self.error).__name__}: {self.error}")
        return f"SimOutcome(index={self.index}, {state})"


class _Slot:
    """Scheduler-side bookkeeping for one live batch member."""

    __slots__ = ("index", "sim", "attr", "last_committed", "progress_cycle")

    def __init__(self, index, sim, attr):
        self.index = index
        self.sim = sim
        self.attr = attr
        # No-progress watchdog state, one per member (PipelineSim.run
        # keeps these in locals; the batch driver must persist them
        # across heap slots).
        self.last_committed = -1
        self.progress_cycle = 0


class BatchEngine:
    """Drive N independent simulations of ``program`` to completion.

    Parameters
    ----------
    program:
        One assembled :class:`~repro.asm.program.Program`, shared
        read-only by every member (all configs must therefore agree on
        ``nthreads`` — the program is compiled per register partition).
    configs:
        Iterable of :class:`~repro.core.config.MachineConfig`, one per
        member. Members are mutually independent; fast-forward may be
        on for some and off for others.
    instrument:
        Attach stall attribution and interval metrics to every member
        (mirrors ``Runner(instrument=True)``); attribution is verified
        against the final stats on completion, and a reconciliation
        failure is captured as that member's error.
    chunk:
        Override the per-slot cycle budget (tests use tiny values to
        force deep interleavings).
    """

    def __init__(self, program, configs, instrument=False, chunk=CHUNK):
        self.program = program
        self.instrument = instrument
        self.chunk = chunk
        configs = list(configs)
        self.outcomes = [SimOutcome(i) for i in range(len(configs))]
        self._slots = []
        for index, config in enumerate(configs):
            outcome = self.outcomes[index]
            try:
                sim = PipelineSim(program, config)
                attr = None
                if instrument:
                    attr = sim.attach_attribution()
                    sim.attach_metrics()
            except Exception as exc:
                outcome.error = exc
                continue
            outcome.sim = sim
            self._slots.append(_Slot(index, sim, attr))

    def run(self):
        """Run every member to completion; returns the outcome list.

        Members that raise are recorded and skipped; everyone else
        finishes. Scheduling order is deterministic: the heap breaks
        due-cycle ties by submission order.
        """
        heap = [(0, slot.index, slot) for slot in self._slots]
        heapq.heapify(heap)
        chunk = self.chunk
        # Same rationale as PipelineSim.run: the cycle body allocates at
        # a high, steady rate with almost no garbage surviving a cycle,
        # and what little survives is acyclic and refcount-freed — so
        # the collector stays off for the whole batch. (Measured: a
        # full gc.collect() after each member completion mostly scans
        # the *live* outcome graphs — every finished sim is kept for
        # checksum reads — and costs ~0.5s per 8-member sweep while
        # reclaiming nothing; without it the batch matches the scalar
        # engine cycle-for-cycle.)
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            while heap:
                due, index, slot = heapq.heappop(heap)
                outcome = self.outcomes[index]
                try:
                    halted = self._advance(slot, due + chunk)
                except Exception as exc:
                    outcome.error = exc
                    continue
                if not halted:
                    heapq.heappush(heap, (slot.sim.cycle, index, slot))
                    continue
                try:
                    self._finish(slot, outcome)
                except Exception as exc:
                    outcome.error = exc
        finally:
            if gc_was_enabled:
                gc.enable()
        return self.outcomes

    def _finish(self, slot, outcome):
        """Post-run epilogue of one halted member (mirrors ``run()``)."""
        sim = slot.sim
        # Drain remaining (all committed) stores so memory is final.
        now = sim.cycle
        store_buffer = sim.store_buffer
        while store_buffer.entries:
            store_buffer.drain_one(sim.cache, sim.memory, now)
            now += 1
        sim._finalize_stats()
        if slot.attr is not None:
            slot.attr.verify(sim.stats)  # attribution must reconcile
        outcome.stats = sim.stats

    def _advance(self, slot, until):
        """Advance one member to ``until`` (or its halt / its error).

        Returns True when every thread of the member has halted. The
        loop body is the fused cycle of :meth:`PipelineSim.run` — keep
        in sync with it (and with :meth:`PipelineSim.step`) — with the
        same ``step()`` fallback when a test has replaced the method.
        """
        sim = slot.sim
        config = sim.config
        max_cycles = config.max_cycles
        nthreads = config.nthreads
        hang_limit = config.hang_cycles
        fast_forward = sim._fast_forward
        step = sim.step
        skip = sim._skip_inert_cycles
        stats = sim.stats
        fused = ("step" not in sim.__dict__
                 and type(sim).step is PipelineSim.step)
        su = sim.su
        store_buffer = sim.store_buffer
        cache = sim.cache
        memory = sim.memory
        attr = sim._attr
        metrics = sim._metrics
        wb_cycles = sim._wb_cycles
        bypassing = sim._bypassing
        commit = sim._commit
        issue = sim._issue
        writeback = sim._writeback
        decode = sim._decode
        fetch = sim._fetch
        last_committed = slot.last_committed
        progress_cycle = slot.progress_cycle
        # One boundary comparison per cycle, exactly like the scalar
        # loop's max_cycles check: the chunk budget and the deadlock
        # guard share it, and which one tripped is decided on exit.
        limit = until if until < max_cycles else max_cycles
        try:
            while sim._halted < nthreads:
                if sim.cycle >= limit:
                    if sim.cycle < max_cycles:
                        return False
                    raise DeadlockError(
                        f"no completion after {max_cycles} cycles; "
                        f"threads: {sim.threads}")
                if fast_forward:
                    skip()
                if fused:
                    # Inlined ``step`` — keep in sync with it.
                    now = sim.cycle
                    committed = commit(now)
                    if bypassing:
                        if wb_cycles and wb_cycles[0] <= now:
                            writeback(now)
                        if su.issuable:
                            issue(now)
                    else:
                        if su.issuable:
                            issue(now)
                        if wb_cycles and wb_cycles[0] <= now:
                            writeback(now)
                    if sim.fetch_buffer is not None:
                        decode(now)
                    if sim.fetch_buffer is None:
                        fetch(now)
                    if store_buffer.entries:
                        store_buffer.drain_one(cache, memory, now)
                    stats.su_occupancy_sum += su._entry_count
                    if attr is not None:
                        attr.close_cycle(sim, now, committed)
                    if metrics is not None:
                        metrics.on_cycle(sim, now)
                    sim.cycle = now + 1
                else:
                    step()
                if hang_limit:
                    committed = stats.committed
                    if committed != last_committed:
                        last_committed = committed
                        progress_cycle = sim.cycle
                    elif sim.cycle - progress_cycle >= hang_limit:
                        raise sim._hang_error(hang_limit)
        finally:
            slot.last_committed = last_committed
            slot.progress_cycle = progress_cycle
        return True


def run_batch(program, configs, instrument=False, chunk=CHUNK):
    """Convenience wrapper: build a :class:`BatchEngine` and run it."""
    return BatchEngine(program, configs, instrument=instrument,
                       chunk=chunk).run()
