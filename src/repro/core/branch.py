"""Hardware branch prediction.

A table of saturating n-bit counters (2-bit by default, as in the paper)
indexed by the branch's PC, plus a BTB used only for ``jalr`` (register-
indirect jumps); direction branches and direct jumps get their targets
from pre-decode, which is equivalent to a BTB that never aliases.

The paper keeps a *single* predictor shared by all threads ("branch
instructions of all threads update the same history"), which is the
default here; a per-thread variant is provided for the ablation bench.

Prediction state is read at fetch but only *updated at result commit*
(when the instruction is shifted out of the scheduling unit) — the paper
calls out this delayed update as a source of extra mispredictions with
deep scheduling units, so the timing is preserved.
"""


class BranchPredictor:
    """Shared (or per-thread) saturating-counter predictor with a BTB.

    ``kind`` selects the index function: ``"bimodal"`` (the paper's
    PC-indexed table) or ``"gshare"`` (PC XOR global history — a
    beyond-paper ablation; the history register is updated at commit,
    like the counters).
    """

    def __init__(self, bits=2, entries=512, btb_entries=256, nthreads=1,
                 shared=True, kind="bimodal"):
        if bits < 1:
            raise ValueError("predictor needs at least 1 bit")
        if kind not in ("bimodal", "gshare"):
            raise ValueError(f"unknown predictor kind {kind!r}")
        self.bits = bits
        self.entries = entries
        self.btb_entries = btb_entries
        self.shared = shared
        self.kind = kind
        self.max_count = (1 << bits) - 1
        self.taken_threshold = 1 << (bits - 1)
        tables = 1 if shared else nthreads
        init = self.taken_threshold  # weakly taken
        self._counters = [[init] * entries for _ in range(tables)]
        self._btb = [{} for _ in range(tables)]
        self._history = [0] * tables
        self._history_mask = entries - 1
        self.lookups = 0
        self.correct = 0

    def _table(self, tid):
        return 0 if self.shared else tid

    def _index(self, pc, table):
        if self.kind == "gshare":
            return (pc ^ self._history[table]) % self.entries
        return pc % self.entries

    def predict(self, pc, tid=0):
        """Predicted direction for the branch at ``pc``."""
        table = self._table(tid)
        counter = self._counters[table][self._index(pc, table)]
        return counter >= self.taken_threshold

    def update(self, pc, taken, tid=0):
        """Commit-time update of the direction counters (and history)."""
        table_id = self._table(tid)
        table = self._counters[table_id]
        index = self._index(pc, table_id)
        if taken:
            if table[index] < self.max_count:
                table[index] += 1
        elif table[index] > 0:
            table[index] -= 1
        if self.kind == "gshare":
            self._history[table_id] = (
                (self._history[table_id] << 1) | int(taken)
            ) & self._history_mask

    def record_outcome(self, predicted, taken):
        """Bookkeeping for the accuracy statistic."""
        self.lookups += 1
        if predicted == taken:
            self.correct += 1

    @property
    def accuracy(self):
        """Fraction of conditional branches predicted correctly."""
        if self.lookups == 0:
            return 1.0
        return self.correct / self.lookups

    # -------------------------------------------------------------- BTB

    def btb_lookup(self, pc, tid=0):
        """Predicted target for an indirect jump, or ``None``."""
        return self._btb[self._table(tid)].get(pc % self.btb_entries)

    def btb_update(self, pc, target, tid=0):
        """Commit-time BTB update."""
        self._btb[self._table(tid)][pc % self.btb_entries] = target
