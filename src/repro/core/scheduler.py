"""The scheduling unit: combined reorder buffer + instruction window.

Entries are grouped in blocks of up to four instructions, each block the
product of one fetch/decode cycle and therefore single-threaded. The SU
is FIFO-ordered: block 0 is the oldest ("bottom"); newly decoded blocks
append at the top. Dynamic scheduling is oldest-first, and one block per
cycle may commit — under Flexible Result Commit the committed block is
the lowest ready block among the bottom ``commit_blocks`` whose thread
differs from every lower (uncommitted) block's thread, which preserves
per-thread in-order commit.

Incremental indexes
-------------------
The hardware answers ordering questions (youngest older writer, older
unresolved store, oldest unfinished entry) with CAM searches over the
whole unit. Scanning every block per query is the simulator's hot path,
so the SU maintains the answers incrementally instead — updated on
``add``, ``note_issued``/``note_done`` (state transitions), ``squash_younger``
and ``pop_block``:

* ``_writers`` — per-thread, per-register stacks of in-flight writers
  (rename), indexed ``_writers[tid][reg]``.
* ``_tid_stores`` — per-thread, program-ordered in-flight stores
  (restricted load/store check, store-to-load forwarding).
* ``_tid_mem_waiting`` — per-thread, program-ordered memory ops still
  WAITING (per-thread in-order memory issue).
* ``issuable`` — count of WAITING entries with no pending operands, so
  the issue stage (and the idle-cycle fast-forward) can skip scanning
  entirely when nothing can possibly issue.
* ``_tid_count`` — per-thread entry counts (ICOUNT fetch heuristic).
* Per-block ``ready``/``not_done``/``store_count`` counters for O(1)
  issue-scan pruning, readiness, and store-buffer-space checks.

Rarely-evaluated predicates (``all_older_done``, used only by ``tas``;
``threads_with_inflight``, used only by the masked-RR long-latency
ablation) deliberately stay as scans: maintaining an index on every
add/complete/squash costs more than the occasional walk.

Every index mirrors exactly the predicate the old full scans evaluated;
``tests/test_golden_cycles.py`` pins the resulting cycle counts.
"""

from repro.isa.opcodes import FU_CLASSES, Format, Op
from repro.isa.registers import regs_per_thread

# Entry states.
WAITING = 0
ISSUED = 1
DONE = 2

_UNARY_R = {Op.CVTIF, Op.CVTFI, Op.FNEG}


class SUEntry:
    """One instruction resident in the scheduling unit."""

    __slots__ = ("tag", "tid", "pc", "instr", "info", "dest", "state",
                 "vals", "waiters", "pending", "result", "addr", "order",
                 "block", "predicted_taken", "predicted_target",
                 "actual_taken", "actual_target", "squashed")

    def __init__(self, tag, tid, pc, instr):
        self.tag = tag
        self.tid = tid
        self.pc = pc
        self.instr = instr
        self.info = instr.info
        self.dest = instr.dest()
        self.state = WAITING
        self.vals = None  # filled by rename
        self.waiters = None  # [(consumer entry, operand index)] or None
        self.pending = 0
        self.result = None
        self.addr = None
        self.order = -1  # dense program-order key: (block.seq << 3) | slot
        self.block = None
        self.predicted_taken = False
        self.predicted_target = None
        self.actual_taken = None
        self.actual_target = None
        self.squashed = False

    def operand_values(self):
        """(a, b) operand pair for :func:`repro.isa.semantics.compute`."""
        fmt = self.info.fmt
        if fmt is Format.R:
            if self.instr.op in _UNARY_R:
                return self.vals[0], 0
            return self.vals[0], self.vals[1]
        if fmt is Format.I:
            return self.vals[0], self.instr.imm
        return 0, 0

    def is_older_than(self, other):
        """Program order comparison (valid within one thread)."""
        return self.order < other.order

    def __repr__(self):
        state = {WAITING: "WAIT", ISSUED: "ISSUED", DONE: "DONE"}[self.state]
        return (f"SUEntry(tag={self.tag}, tid={self.tid}, pc={self.pc}, "
                f"{self.instr.text()!r}, {state})")


class SUBlock:
    """A block of up to four same-thread entries.

    ``ready`` counts WAITING entries whose operands are all available,
    so the issue scan can skip blocks with no candidate; ``not_done``
    counts entries that have not written back, making :meth:`commit_ready`
    O(1); ``store_count`` counts pure stores so the commit stage's
    store-buffer-space check needs no scan.
    """

    __slots__ = ("seq", "tid", "entries", "ready", "ready_loads",
                 "ready_stores", "ready_fu_mask", "not_done", "store_count")

    def __init__(self, seq, tid):
        self.seq = seq
        self.tid = tid
        self.entries = []
        self.ready = 0
        self.ready_loads = 0  # the subset of ``ready`` that are loads
        self.ready_stores = 0  # the subset that are pure stores
        #: Bitmask (over ``fu_index``) of classes that have had a ready
        #: entry. Bits are set when an entry becomes ready and never
        #: cleared, so the mask is a conservative superset of the
        #: classes currently represented — good enough for the issue
        #: stage's whole-block skip, which only needs "every candidate's
        #: class is exhausted" to be implied by mask coverage.
        self.ready_fu_mask = 0
        self.not_done = 0
        self.store_count = 0

    def commit_ready(self):
        """True when every surviving entry has finished executing."""
        return not self.not_done

    def __repr__(self):
        return f"SUBlock(seq={self.seq}, tid={self.tid}, {len(self.entries)} entries)"


class SchedulingUnit:
    """FIFO of :class:`SUBlock` with capacity ``su_entries / 4`` blocks."""

    def __init__(self, config):
        self.config = config
        self.capacity_blocks = config.su_blocks
        self.blocks = []
        self._next_seq = 0
        self.by_tag = {}
        self._entry_count = 0
        # _writers[tid][reg] -> in-flight writer entries, oldest first.
        nthreads = config.nthreads
        k = regs_per_thread(nthreads)
        self._writers = [[[] for _ in range(k)] for _ in range(nthreads)]
        self._tid_count = [0] * nthreads
        self._tid_stores = [[] for _ in range(nthreads)]
        self._tid_mem_waiting = [[] for _ in range(nthreads)]
        #: WAITING entries whose operands are all available. The issue
        #: stage does nothing while this is zero.
        self.issuable = 0

    @property
    def full(self):
        return len(self.blocks) >= self.capacity_blocks

    def occupancy(self):
        """Number of live entries."""
        return self._entry_count

    def tid_occupancy(self, tid):
        """Number of live entries belonging to thread ``tid``."""
        return self._tid_count[tid]

    def stores_of(self, tid):
        """Thread ``tid``'s in-flight stores, oldest first (live view)."""
        return self._tid_stores[tid]

    def new_block(self, tid):
        """Append an empty block at the top; caller fills it via :meth:`add`."""
        if self.full:
            raise RuntimeError("SU overflow; caller must check .full")
        block = SUBlock(self._next_seq, tid)
        self._next_seq += 1
        self.blocks.append(block)
        return block

    def add(self, block, entry):
        """Place a decoded entry into ``block``.

        ``entry.pending`` must already be final (rename runs first) so
        the issuable counter stays exact.
        """
        entry.order = (block.seq << 3) | len(block.entries)
        entry.block = block
        block.entries.append(entry)
        tid = entry.tid
        self.by_tag[entry.tag] = entry
        self._entry_count += 1
        self._tid_count[tid] += 1
        info = entry.info
        if info.is_store:
            self._tid_stores[tid].append(entry)
            if not info.is_load:
                block.store_count += 1
        # The pipeline always adds freshly-decoded WAITING entries; unit
        # tests may pre-set a later state, so index by the actual state.
        state = entry.state
        if state == WAITING:
            if info.is_mem:
                self._tid_mem_waiting[tid].append(entry)
            if not entry.pending:
                self.issuable += 1
                block.ready += 1
                block.ready_fu_mask |= 1 << info.fu_index
                if info.is_load:
                    block.ready_loads += 1
                elif info.is_store:
                    block.ready_stores += 1
        if state != DONE:
            block.not_done += 1
        dest = entry.dest
        if dest is not None:
            self._writers[tid][dest].append(entry)

    def note_issued(self, entry):
        """Bookkeeping for a WAITING -> ISSUED transition."""
        self.issuable -= 1
        entry.block.ready -= 1
        info = entry.info
        if info.is_mem:
            self._tid_mem_waiting[entry.tid].remove(entry)
            if info.is_load:
                entry.block.ready_loads -= 1
            else:
                entry.block.ready_stores -= 1

    def note_done(self, entry):
        """Bookkeeping for an ISSUED -> DONE transition (writeback)."""
        entry.block.not_done -= 1

    def _drop_writer(self, entry):
        if entry.dest is None:
            return
        stack = self._writers[entry.tid][entry.dest]
        if stack:
            try:
                stack.remove(entry)
            except ValueError:
                pass

    def lookup_operand(self, tid, reg):
        """Most recent in-flight producer of ``(tid, reg)``.

        Returns the matching :class:`SUEntry` (newest first) or ``None``
        if the value must come from the register file. This is the
        decoder's TID-qualified associative lookup (indexed here by a
        per-register writer stack for speed; the hardware does a CAM
        search over the scheduling unit).
        """
        stack = self._writers[tid][reg]
        if stack:
            return stack[-1]
        return None

    def older_store_conflict(self, load_entry):
        """Restricted load/store policy check.

        Returns True if an older same-thread store in the SU either has
        an unresolved address or matches the load's address while its
        data is not yet available in the store buffer — in either case
        the load may not issue this cycle.
        """
        addr = load_entry.addr
        order = load_entry.order
        for entry in self._tid_stores[load_entry.tid]:
            if entry.order >= order:
                break  # program-ordered: the rest are younger
            if entry.state != DONE and (entry.addr is None
                                        or entry.addr == addr):
                return True
        return False

    def older_mem_unissued(self, ref):
        """True while an older same-thread memory op has not yet issued.

        Loads sample memory at issue time, so issuing a thread's memory
        operations in program order preserves per-thread load ordering
        (TSO-like: stores still become visible at drain). Without this,
        a load can be hoisted above an in-flight ``tas`` and read data
        that the lock does not yet protect.
        """
        waiting = self._tid_mem_waiting[ref.tid]
        if not waiting:
            return False
        head = waiting[0]
        return head is not ref and head.order < ref.order

    def all_older_done(self, ref):
        """True when every older same-thread entry has executed.

        Used to make ``tas`` non-speculative: by the time all older
        same-thread entries (including branches) are DONE, any
        misprediction would already have squashed ``ref``. Only ``tas``
        evaluates this, and only once its operands are ready, so a scan
        is cheaper than keeping a per-thread not-done index current.
        """
        tid = ref.tid
        order = ref.order
        for block in self.blocks:
            if block.tid != tid or not block.not_done:
                continue
            for entry in block.entries:
                if entry.order >= order:
                    # FIFO blocks: every remaining entry is younger.
                    return True
                if entry.state != DONE:
                    return False
        return True

    def ready_entries(self):
        """Yield the issue candidates in scan order (fast-forward protocol).

        Exactly the entries the pipeline's issue stage would visit:
        WAITING, operands complete, inside blocks with a non-zero ready
        count. The skip engine's horizon scan replays issue's per-entry
        checks over this sequence without issuing anything; ``issuable``
        bounds its length, so a caller can stop early once every
        candidate has been seen.
        """
        for block in self.blocks:
            if not block.ready:
                continue
            for entry in block.entries:
                if entry.state == WAITING and not entry.pending:
                    yield entry

    def fu_class_pressure(self):
        """WAITING-entry count per functional-unit class.

        Indexed by ``fu_index`` (position in
        :data:`~repro.isa.opcodes.FU_CLASSES`) — the "issue queue depth"
        seen by each unit class. Used by the interval-metrics sampler
        (once every N cycles), so a scan is fine.
        """
        counts = [0] * len(FU_CLASSES)
        for block in self.blocks:
            for entry in block.entries:
                if entry.state == WAITING:
                    counts[entry.info.fu_index] += 1
        return counts

    def threads_with_inflight(self, fu_classes):
        """Thread ids with an unfinished op on one of ``fu_classes``.

        Used only by the masked-RR ``long_latency`` criterion, once per
        cycle per simulator under that policy — a scan, not an index.
        """
        tids = set()
        for block in self.blocks:
            if block.tid in tids or not block.not_done:
                continue
            for entry in block.entries:
                if entry.state != DONE and entry.info.fu in fu_classes:
                    tids.add(block.tid)
                    break
        return sorted(tids)

    def squash_younger(self, origin):
        """Discard all same-thread entries younger than ``origin``.

        Returns the squashed entries (the pipeline removes their store-
        buffer allocations and counts them). Fully-emptied younger blocks
        are reclaimed immediately.
        """
        squashed = []
        tid = origin.tid
        origin_order = origin.order
        origin_seq = origin.block.seq
        for block in self.blocks:
            if block.seq < origin_seq or block.tid != tid:
                continue
            survivors = []
            for entry in block.entries:
                if entry.order <= origin_order:
                    survivors.append(entry)
                    continue
                entry.squashed = True
                state = entry.state
                if state == WAITING and not entry.pending:
                    self.issuable -= 1
                    block.ready -= 1
                    if entry.info.is_load:
                        block.ready_loads -= 1
                    elif entry.info.is_store:
                        block.ready_stores -= 1
                if state != DONE:
                    block.not_done -= 1
                info = entry.info
                if info.is_store and not info.is_load:
                    block.store_count -= 1
                self.by_tag.pop(entry.tag, None)
                self._drop_writer(entry)
                squashed.append(entry)
            block.entries = survivors
        if squashed:
            self._entry_count -= len(squashed)
            self._tid_count[tid] -= len(squashed)
            self._tid_stores[tid] = [
                e for e in self._tid_stores[tid] if not e.squashed]
            self._tid_mem_waiting[tid] = [
                e for e in self._tid_mem_waiting[tid] if not e.squashed]
            self.blocks = [b for b in self.blocks
                           if b.entries or b.seq <= origin_seq]
        return squashed

    def choose_commit_block(self, commit_blocks):
        """Index of the block to commit this cycle, or ``None``.

        Implements Flexible Result Commit: examine the bottom
        ``commit_blocks`` blocks in order; the first ready block whose
        thread is not represented among the lower, uncommitted blocks
        may commit. ``commit_blocks=1`` degenerates to the classic
        lowest-only reorder-buffer policy.
        """
        blocks = self.blocks
        limit = len(blocks)
        if commit_blocks < limit:
            limit = commit_blocks
        blocked = 0  # bitmask of thread ids seen in lower blocks
        for index in range(limit):
            block = blocks[index]
            bit = 1 << block.tid
            if not block.not_done and not blocked & bit:
                return index
            blocked |= bit
        return None

    def pop_block(self, index):
        """Remove and return a committed block (all entries DONE)."""
        block = self.blocks.pop(index)
        tid = block.tid
        by_tag = self.by_tag
        stores = self._tid_stores[tid]
        writers = self._writers[tid]
        for entry in block.entries:
            by_tag.pop(entry.tag, None)
            dest = entry.dest
            if dest is not None:
                stack = writers[dest]
                if stack:
                    # Per-thread in-order commit: the committed entry is
                    # the oldest surviving writer, i.e. the stack head.
                    if stack[0] is entry:
                        del stack[0]
                    else:
                        try:
                            stack.remove(entry)
                        except ValueError:
                            pass
            if entry.info.is_store:
                stores.remove(entry)
            entry.block = None  # break the entry<->block reference cycle
        count = len(block.entries)
        self._entry_count -= count
        self._tid_count[tid] -= count
        return block
