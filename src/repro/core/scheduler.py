"""The scheduling unit: combined reorder buffer + instruction window.

Entries are grouped in blocks of up to four instructions, each block the
product of one fetch/decode cycle and therefore single-threaded. The SU
is FIFO-ordered: block 0 is the oldest ("bottom"); newly decoded blocks
append at the top. Dynamic scheduling is oldest-first, and one block per
cycle may commit — under Flexible Result Commit the committed block is
the lowest ready block among the bottom ``commit_blocks`` whose thread
differs from every lower (uncommitted) block's thread, which preserves
per-thread in-order commit.
"""

from repro.isa.opcodes import Format, Op

# Entry states.
WAITING = 0
ISSUED = 1
DONE = 2

_UNARY_R = {Op.CVTIF, Op.CVTFI, Op.FNEG}


class SUEntry:
    """One instruction resident in the scheduling unit."""

    __slots__ = ("tag", "tid", "pc", "instr", "info", "dest", "state",
                 "vals", "tags", "pending", "result", "addr", "block_seq",
                 "slot", "predicted_taken", "predicted_target",
                 "actual_taken", "actual_target", "squashed", "issue_cycle")

    def __init__(self, tag, tid, pc, instr):
        self.tag = tag
        self.tid = tid
        self.pc = pc
        self.instr = instr
        self.info = instr.info
        self.dest = instr.dest()
        self.state = WAITING
        self.vals = []
        self.tags = []
        self.pending = 0
        self.result = None
        self.addr = None
        self.block_seq = -1
        self.slot = -1
        self.predicted_taken = False
        self.predicted_target = None
        self.actual_taken = None
        self.actual_target = None
        self.squashed = False
        self.issue_cycle = -1

    def operand_values(self):
        """(a, b) operand pair for :func:`repro.isa.semantics.compute`."""
        fmt = self.info.fmt
        if fmt is Format.R:
            if self.instr.op in _UNARY_R:
                return self.vals[0], 0
            return self.vals[0], self.vals[1]
        if fmt is Format.I:
            return self.vals[0], self.instr.imm
        return 0, 0

    def is_older_than(self, other):
        """Program order comparison (valid within one thread)."""
        if self.block_seq != other.block_seq:
            return self.block_seq < other.block_seq
        return self.slot < other.slot

    def __repr__(self):
        state = {WAITING: "WAIT", ISSUED: "ISSUED", DONE: "DONE"}[self.state]
        return (f"SUEntry(tag={self.tag}, tid={self.tid}, pc={self.pc}, "
                f"{self.instr.text()!r}, {state})")


class SUBlock:
    """A block of up to four same-thread entries.

    ``waiting`` counts entries still in the WAITING state so the issue
    stage can skip fully-issued blocks.
    """

    __slots__ = ("seq", "tid", "entries", "waiting")

    def __init__(self, seq, tid):
        self.seq = seq
        self.tid = tid
        self.entries = []
        self.waiting = 0

    def ready(self):
        """True when every surviving entry has finished executing."""
        return all(entry.state == DONE for entry in self.entries)

    def __repr__(self):
        return f"SUBlock(seq={self.seq}, tid={self.tid}, {len(self.entries)} entries)"


class SchedulingUnit:
    """FIFO of :class:`SUBlock` with capacity ``su_entries / 4`` blocks."""

    def __init__(self, config):
        self.config = config
        self.capacity_blocks = config.su_blocks
        self.blocks = []
        self._next_seq = 0
        self.by_tag = {}
        self._entry_count = 0
        # (tid, dest reg) -> in-flight writer entries, oldest first.
        self._writers = {}

    @property
    def full(self):
        return len(self.blocks) >= self.capacity_blocks

    def occupancy(self):
        """Number of live entries."""
        return self._entry_count

    def new_block(self, tid):
        """Append an empty block at the top; caller fills it via :meth:`add`."""
        if self.full:
            raise RuntimeError("SU overflow; caller must check .full")
        block = SUBlock(self._next_seq, tid)
        self._next_seq += 1
        self.blocks.append(block)
        return block

    def add(self, block, entry):
        """Place a decoded entry into ``block``."""
        entry.block_seq = block.seq
        entry.slot = len(block.entries)
        block.entries.append(entry)
        block.waiting += 1
        self.by_tag[entry.tag] = entry
        self._entry_count += 1
        if entry.dest is not None:
            self._writers.setdefault((entry.tid, entry.dest),
                                     []).append(entry)

    def _drop_writer(self, entry):
        if entry.dest is None:
            return
        stack = self._writers.get((entry.tid, entry.dest))
        if stack:
            try:
                stack.remove(entry)
            except ValueError:
                pass

    def lookup_operand(self, tid, reg):
        """Most recent in-flight producer of ``(tid, reg)``.

        Returns the matching :class:`SUEntry` (newest first) or ``None``
        if the value must come from the register file. This is the
        decoder's TID-qualified associative lookup (indexed here by a
        per-register writer stack for speed; the hardware does a CAM
        search over the scheduling unit).
        """
        stack = self._writers.get((tid, reg))
        if stack:
            return stack[-1]
        return None

    def older_store_conflict(self, load_entry):
        """Restricted load/store policy check.

        Returns True if an older same-thread store in the SU either has
        an unresolved address or matches the load's address while its
        data is not yet available in the store buffer — in either case
        the load may not issue this cycle.
        """
        addr = load_entry.addr
        tid = load_entry.tid
        for block in self.blocks:
            if block.seq > load_entry.block_seq:
                break
            if block.tid != tid:
                continue
            for entry in block.entries:
                if entry is load_entry or not entry.is_older_than(load_entry):
                    continue
                if not entry.info.is_store:
                    continue
                if entry.state != DONE:
                    if entry.addr is None or entry.addr == addr:
                        return True
        return False

    def older_mem_unissued(self, ref):
        """True while an older same-thread memory op has not yet issued.

        Loads sample memory at issue time, so issuing a thread's memory
        operations in program order preserves per-thread load ordering
        (TSO-like: stores still become visible at drain). Without this,
        a load can be hoisted above an in-flight ``tas`` and read data
        that the lock does not yet protect.
        """
        tid = ref.tid
        for block in self.blocks:
            if block.seq > ref.block_seq:
                break
            if block.tid != tid:
                continue
            for entry in block.entries:
                if entry is ref:
                    continue
                if (entry.info.is_mem and entry.state == WAITING
                        and entry.is_older_than(ref)):
                    return True
        return False

    def all_older_done(self, ref):
        """True when every older same-thread entry has executed.

        Used to make ``tas`` non-speculative: by the time all older
        same-thread entries (including branches) are DONE, any
        misprediction would already have squashed ``ref``.
        """
        tid = ref.tid
        for block in self.blocks:
            if block.seq > ref.block_seq:
                break
            if block.tid != tid:
                continue
            for entry in block.entries:
                if entry is ref:
                    continue
                if entry.is_older_than(ref) and entry.state != DONE:
                    return False
        return True

    def squash_younger(self, origin):
        """Discard all same-thread entries younger than ``origin``.

        Returns the squashed entries (the pipeline removes their store-
        buffer allocations and counts them). Fully-emptied younger blocks
        are reclaimed immediately.
        """
        squashed = []
        for block in self.blocks:
            if block.seq < origin.block_seq or block.tid != origin.tid:
                continue
            survivors = []
            for entry in block.entries:
                if entry.is_older_than(origin) or entry is origin:
                    survivors.append(entry)
                else:
                    entry.squashed = True
                    if entry.state == WAITING:
                        block.waiting -= 1
                    self.by_tag.pop(entry.tag, None)
                    self._drop_writer(entry)
                    squashed.append(entry)
            block.entries = survivors
        self._entry_count -= len(squashed)
        self.blocks = [b for b in self.blocks
                       if b.entries or b.seq <= origin.block_seq]
        return squashed

    def choose_commit_block(self, commit_blocks):
        """Index of the block to commit this cycle, or ``None``.

        Implements Flexible Result Commit: examine the bottom
        ``commit_blocks`` blocks in order; the first ready block whose
        thread is not represented among the lower, uncommitted blocks
        may commit. ``commit_blocks=1`` degenerates to the classic
        lowest-only reorder-buffer policy.
        """
        blocked_tids = set()
        limit = min(commit_blocks, len(self.blocks))
        for index in range(limit):
            block = self.blocks[index]
            if block.ready() and block.tid not in blocked_tids:
                return index
            blocked_tids.add(block.tid)
        return None

    def pop_block(self, index):
        """Remove and return a committed block."""
        block = self.blocks.pop(index)
        for entry in block.entries:
            self.by_tag.pop(entry.tag, None)
            self._drop_writer(entry)
        self._entry_count -= len(block.entries)
        return block
