"""Functional-unit pool.

Each unit class has a configurable number of instances (Table 1). Most
multi-cycle units are internally pipelined, accepting a new operation
every cycle while results return after the class latency — standard for
the era's adders/multipliers and for the cache port. Dividers (integer
and FP) are not pipelined: they occupy their unit for the full latency,
which is why the paper treats divide as a context-switch trigger.
Utilization is tracked per *instance*, with instances filled
lowest-index-first, so the usage of the "extra" units of the enhanced
configuration (paper Table 3) falls out directly.
"""

from repro.isa.opcodes import FU_CLASSES, FuClass

#: Unit classes that occupy their unit for the full latency.
UNPIPELINED = frozenset({FuClass.IDIV, FuClass.FPDIV})


class FuPool:
    """Tracks per-instance busy times for every functional-unit class.

    Internally indexed by ``OpInfo.fu_index`` (integer position in
    :data:`~repro.isa.opcodes.FU_CLASSES`) to keep the per-issue cost
    low; :meth:`flush_stats` copies busy counters into the run's
    :class:`~repro.core.stats.SimStats` at the end.
    """

    def __init__(self, config, stats):
        self.stats = stats
        self._latency = [config.fu_latency[cls] for cls in FU_CLASSES]
        self._occupancy = [config.fu_latency[cls] if cls in UNPIPELINED
                           else 1 for cls in FU_CLASSES]
        self._counts = [config.fu_counts.get(cls, 0) for cls in FU_CLASSES]
        self._free_at = [[0] * count for count in self._counts]
        self._busy = [[0] * count for count in self._counts]
        # Pipelined classes (occupancy 1) are fully described by how
        # many acquires happened in the current cycle — a counter reset
        # on cycle change replaces the per-instance free-time scan.
        # Instances still fill lowest-index-first, so per-instance busy
        # statistics are unchanged.
        n = len(FU_CLASSES)
        self._used_cycle = [-1] * n
        self._used = [0] * n

    def latency_of(self, fu_index):
        """Result latency of the unit class."""
        return self._latency[fu_index]

    def acquire(self, fu_index, now, occupancy=None):
        """Reserve a unit starting at cycle ``now``.

        Returns the instance index, or ``None`` if all are busy.
        """
        if occupancy is None:
            occupancy = self._occupancy[fu_index]
        if occupancy == 1:
            if self._used_cycle[fu_index] != now:
                self._used_cycle[fu_index] = now
                self._used[fu_index] = 0
            index = self._used[fu_index]
            if index >= self._counts[fu_index]:
                return None
            self._used[fu_index] = index + 1
            self._busy[fu_index][index] += 1
            return index
        units = self._free_at[fu_index]
        for index, free_at in enumerate(units):
            if free_at <= now:
                units[index] = now + occupancy
                self._busy[fu_index][index] += occupancy
                return index
        return None

    def available(self, fu_index, now):
        """True if some unit of the class is free this cycle."""
        if self._occupancy[fu_index] == 1:
            return (self._used_cycle[fu_index] != now
                    or self._used[fu_index] < self._counts[fu_index])
        for free_at in self._free_at[fu_index]:
            if free_at <= now:
                return True
        return False

    def next_free(self, fu_index, now):
        """Next-event horizon: earliest cycle a unit of the class frees.

        Part of the fast-forward protocol (``docs/PERFORMANCE.md``):
        only unpipelined classes (the dividers) can stay busy across
        cycles, so this is the minimum of their per-instance release
        times. Pipelined classes are per-cycle resources — they are
        always free at the next fresh cycle — and only appear here
        defensively.
        """
        if self._occupancy[fu_index] == 1:
            return now + 1
        return min(self._free_at[fu_index])

    def flush_stats(self):
        """Copy per-instance busy counters into the stats object."""
        for cls, busy in zip(FU_CLASSES, self._busy):
            if cls in self.stats.fu_busy:
                self.stats.fu_busy[cls] = list(busy)
