"""The cycle-accurate multithreaded superscalar pipeline simulator.

Stage order within one simulated cycle::

    commit -> writeback -> issue -> decode -> fetch -> store-buffer drain

With result bypassing disabled, issue runs *before* writeback, so a
dependent instruction sees a result one cycle later — the paper's
"Bypassing of results: Have / No" configuration knob.

Memory-ordering model
---------------------
A store executes in the store unit (address and value computed, entry
DONE) but its value stays in the scheduling unit until the block
commits; at commit it moves to the store buffer, and drains to the data
cache one entry per cycle. A block whose stores do not fit in the store
buffer cannot commit that cycle. Because every buffered store is already
committed, the machine cannot deadlock on store-buffer space, while the
performance-visible behaviour of the paper's restricted load/store
policy is preserved: loads stall behind older same-thread stores with
unresolved or matching addresses, and the 8-entry buffer throttles
store-heavy code. Loads forward from older same-thread stores still in
the SU and from committed store-buffer entries; ``tas`` additionally
waits until it is non-speculative and the buffer holds no write to its
address, then performs an atomic read-modify-write on memory.

Fast-path engine
----------------
The simulator is performance-critical (every figure of the evaluation
re-simulates a workload grid), so the hot path avoids work that cannot
change the outcome:

* Stage calls are guarded: writeback only runs when the earliest
  pending result is due, issue only when the SU has an issuable entry,
  decode and fetch only when the fetch buffer is in the right state.
* Completion is a calendar queue — per-ready-cycle buckets plus a heap
  of distinct cycles — instead of a heap of individual results, and
  ALU/FP results come from per-instruction execution closures
  (:func:`repro.isa.semantics.build_exec`).
* Ordering and occupancy questions are answered by the scheduling
  unit's incremental indexes instead of per-query scans (see
  :mod:`repro.core.scheduler`).
* ``run()`` fast-forwards across provably inert cycles — every stall
  class, not just full idle. When nothing can write back, commit,
  decode, fetch, or drain this cycle, and a side-effect-free mirror of
  the issue scan proves no ready entry can issue either, the machine
  state is frozen and the clock jumps straight to the earliest
  next-event horizon: the writeback calendar's next completion (which
  subsumes dcache-miss service), the store buffer's drain slot, the
  earliest divider release, or a thread's instruction-cache refill.
  Each component exposes its own horizon (``FuPool.next_free``,
  ``StoreBuffer.next_drain_cycle``, ``FetchUnit.fetch_horizon``,
  ``DataCache.refill_horizon``); the skipped cycles are charged to the
  same stall counters — and, via the attribution layer, the same stall
  *class* — the per-cycle loop would have used.
  ``MachineConfig(fast_forward=False)`` disables the jump; both modes
  produce bit-identical statistics (enforced by
  ``tests/test_golden_cycles.py`` and the differential suite).

Bump :data:`ENGINE_VERSION` whenever a change alters any simulated
cycle count — or deliberately, to invalidate persisted results after a
major engine rework; the persistent result cache
(``repro.harness.diskcache``) keys on it.
"""

import gc
import heapq

from repro.asm.program import Program
from repro.core.branch import BranchPredictor
from repro.core.config import CommitPolicy, FetchPolicy, MachineConfig
from repro.core.execute import FuPool
from repro.core.fetch import FetchUnit, ThreadContext
from repro.core.scheduler import (DONE, ISSUED, SchedulingUnit, SUBlock,
                                  SUEntry, WAITING)
from repro.core.stats import SimStats
from repro.isa.opcodes import FU_CLASSES, FuClass, Op
from repro.isa.registers import REG_ZERO, RegisterFile
from repro.isa.semantics import branch_taken, build_exec
from repro.mem.cache import DataCache
from repro.mem.memory import MainMemory
from repro.mem.storebuffer import StoreBuffer
# Plain-data event types (no further imports; see repro.obs.__init__ for
# the layering rules). Event objects are only ever constructed when a
# sink is attached (self._bus is not None).
from repro.obs.events import (CommitEvent, DecodeEvent, FetchEvent,
                              IssueEvent, SquashEvent, StallEvent,
                              WritebackEvent)

#: Simulator timing-model version. Bump on ANY change that can alter a
#: simulated cycle count; persisted results keyed on an older version
#: are then ignored rather than silently reused. Version 3 is the
#: next-event fast-forward engine — cycle counts are unchanged, but the
#: bump retires every cache entry produced before its safety nets were
#: in place.
ENGINE_VERSION = 3

_NO_FORWARD = object()

_DIV_CLASSES = (FuClass.IDIV, FuClass.FPDIV)

_LOAD_FU_BIT = 1 << FU_CLASSES.index(FuClass.LOAD)

# Issue-condition flags observed by the skip engine's horizon scan.
# Mirror repro.obs.attribution's _F_SYNC/_F_DCACHE/_F_FU (the pipeline
# only imports plain-data event types from repro.obs; keep in sync).
_F_SYNC = 1
_F_DCACHE = 2
_F_FU = 4


class DeadlockError(RuntimeError):
    """The simulation exceeded its cycle budget without finishing."""


class SimulationHang(DeadlockError):
    """The pipeline made no commit progress for ``hang_cycles`` cycles.

    Raised by the no-progress watchdog in :meth:`PipelineSim.run` —
    long before the blunt ``max_cycles`` guard would fire — with a
    machine-state dump attached as :attr:`report` (scheduling unit,
    per-thread fetch state, store buffer, pending writebacks, and the
    stall-attribution breakdown when one is attached). Subclasses
    :class:`DeadlockError` so existing guards keep catching it.
    """

    def __init__(self, message, report=None):
        super().__init__(message)
        #: Plain-data machine-state snapshot (see ``_hang_report``).
        self.report = report or {}


class PipelineSim:
    """Simulate ``program`` on the configured multithreaded SDSP.

    Usage::

        sim = PipelineSim(program, MachineConfig(nthreads=4))
        stats = sim.run()
        print(stats.summary())
    """

    def __init__(self, program, config=None):
        if not isinstance(program, Program):
            raise TypeError(f"expected Program, got {type(program).__name__}")
        self.config = config or MachineConfig()
        # Diagnose nonsensical configurations (zero units of a class the
        # program needs, impossible widths) in microseconds here instead
        # of as a deadlocked simulation later.
        self.config.validate(program)
        self.program = program
        cfg = self.config
        self.regs = RegisterFile(cfg.nthreads)
        self.memory = MainMemory(cfg.mem_words)
        self.memory.load_image(program.data)
        self.cache = DataCache(cfg.cache)
        self.icache = DataCache(cfg.icache) if cfg.icache else None
        self.store_buffer = StoreBuffer(cfg.store_buffer_depth)
        self.predictor = BranchPredictor(
            bits=cfg.predictor_bits, entries=cfg.predictor_entries,
            btb_entries=cfg.btb_entries, nthreads=cfg.nthreads,
            shared=cfg.shared_predictor, kind=cfg.predictor_kind)
        self.stats = SimStats(cfg)
        self.threads = [ThreadContext(tid, program.entry)
                        for tid in range(cfg.nthreads)]
        self.su = SchedulingUnit(cfg)
        self.fetch_unit = FetchUnit(cfg, program, self.predictor, self.threads)
        self.fetch_unit.occupancy_of = self._thread_occupancy
        # ICOUNT fast path: select_thread only runs while the fetch
        # buffer is empty, when SU occupancy is the full occupancy.
        self.fetch_unit.tid_counts = self.su._tid_count
        self.fu_pool = FuPool(cfg, self.stats)
        self.fetch_buffer = None  # (ThreadContext, [FetchedInstr])
        self.cycle = 0
        self._next_tag = 0
        # Completion calendar: ready cycle -> entries in schedule order,
        # plus a min-heap of the distinct ready cycles.
        self._wb_buckets = {}
        self._wb_cycles = []
        self._halted = 0  # threads whose HALT has committed
        # Hot-loop copies of configuration fields (attribute chains cost).
        self._issue_width = cfg.issue_width
        self._writeback_width = cfg.writeback_width
        self._bypassing = cfg.bypassing
        self._commit_blocks = cfg.commit_blocks
        self._renaming = cfg.renaming
        self._masked = cfg.fetch_policy is FetchPolicy.MASKED_RR
        self._fast_forward = cfg.fast_forward
        self._nthreads = cfg.nthreads
        self._latency = self.fu_pool._latency  # fu_index -> result latency
        # Observability (repro.obs). All three stay None unless
        # explicitly attached; every hook in the hot loop is guarded by
        # a single ``is None`` check, so a plain run pays nothing else.
        self._bus = None       # EventBus while >=1 sink is subscribed
        self._attr = None      # StallAttribution (attach_attribution)
        self._metrics = None   # IntervalMetrics (attach_metrics)

    # ----------------------------------------------------- observability

    def add_sink(self, sink):
        """Subscribe ``sink`` (any callable taking one event); returns it.

        The first sink creates the event bus, flipping every hook point
        from a bare predicate check to actual event emission.
        """
        if self._bus is None:
            from repro.obs.events import EventBus
            self._bus = EventBus()
            self.fetch_unit.bus = self._bus
        return self._bus.subscribe(sink)

    def remove_sink(self, sink):
        """Unsubscribe ``sink``; dropping the last sink drops the bus."""
        bus = self._bus
        if bus is None:
            return
        bus.unsubscribe(sink)
        if not bus.sinks:
            self._bus = None
            self.fetch_unit.bus = None

    def attach_attribution(self, attr=None):
        """Attach per-cycle stall attribution (before :meth:`run`).

        Returns the :class:`~repro.obs.attribution.StallAttribution`;
        its breakdown also lands on ``stats.stall_breakdown``.
        """
        if attr is None:
            from repro.obs.attribution import StallAttribution
            attr = StallAttribution()
        self._attr = attr
        return attr

    def attach_metrics(self, metrics=None, interval=64):
        """Attach interval-metric sampling (before :meth:`run`).

        Returns the :class:`~repro.obs.metrics.IntervalMetrics`; its
        histograms also land on ``stats.interval_metrics``.
        """
        if metrics is None:
            from repro.obs.metrics import IntervalMetrics
            metrics = IntervalMetrics(interval=interval)
        metrics.bind(self.config)
        self._metrics = metrics
        return metrics

    # ------------------------------------------------------------ driver

    @property
    def done(self):
        return all(thread.done for thread in self.threads)

    def run(self):
        """Run to completion and return the populated :class:`SimStats`."""
        max_cycles = self.config.max_cycles
        nthreads = self.config.nthreads
        fast_forward = self._fast_forward
        step = self.step
        skip = self._skip_inert_cycles
        # No-progress watchdog: a machine where no block commits for
        # hang_cycles is wedged (the longest legitimate commit gap —
        # cache-miss pileups, divide chains, SU drain — is orders of
        # magnitude shorter), so raise a diagnosable SimulationHang
        # instead of silently spinning to max_cycles.
        hang_limit = self.config.hang_cycles
        stats = self.stats
        last_committed = -1
        progress_cycle = 0
        # The run loop allocates at a high, steady rate with almost no
        # garbage surviving a cycle; collector passes only add overhead.
        # The fused loop below pre-binds every per-cycle attribute and
        # inlines the body of ``step``; it is cycle-for-cycle identical
        # to calling ``step`` in a loop and is used only when ``step``
        # is the stock method (tests replace it to model wedges).
        fused = ("step" not in self.__dict__
                 and type(self).step is PipelineSim.step)
        su = self.su
        store_buffer = self.store_buffer
        cache = self.cache
        memory = self.memory
        attr = self._attr
        metrics = self._metrics
        wb_cycles = self._wb_cycles
        bypassing = self._bypassing
        commit = self._commit
        issue = self._issue
        writeback = self._writeback
        decode = self._decode
        fetch = self._fetch
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            while self._halted < nthreads:
                if self.cycle >= max_cycles:
                    raise DeadlockError(
                        f"no completion after {max_cycles} cycles; "
                        f"threads: {self.threads}")
                if fast_forward:
                    skip()
                if fused:
                    # Inlined ``step`` — keep in sync with it.
                    now = self.cycle
                    committed = commit(now)
                    if bypassing:
                        if wb_cycles and wb_cycles[0] <= now:
                            writeback(now)
                        if su.issuable:
                            issue(now)
                    else:
                        if su.issuable:
                            issue(now)
                        if wb_cycles and wb_cycles[0] <= now:
                            writeback(now)
                    if self.fetch_buffer is not None:
                        decode(now)
                    if self.fetch_buffer is None:
                        fetch(now)
                    if store_buffer.entries:
                        store_buffer.drain_one(cache, memory, now)
                    stats.su_occupancy_sum += su._entry_count
                    if attr is not None:
                        attr.close_cycle(self, now, committed)
                    if metrics is not None:
                        metrics.on_cycle(self, now)
                    self.cycle = now + 1
                else:
                    step()
                if hang_limit:
                    committed = stats.committed
                    if committed != last_committed:
                        last_committed = committed
                        progress_cycle = self.cycle
                    elif self.cycle - progress_cycle >= hang_limit:
                        raise self._hang_error(hang_limit)
        finally:
            if gc_was_enabled:
                gc.enable()
        # Drain remaining (all committed) stores so memory is final.
        now = self.cycle
        while self.store_buffer.entries:
            self.store_buffer.drain_one(self.cache, self.memory, now)
            now += 1
        self._finalize_stats()
        return self.stats

    def step(self):
        """Advance the machine by one cycle."""
        now = self.cycle
        su = self.su
        committed = self._commit(now)
        cycles = self._wb_cycles
        if self._bypassing:
            if cycles and cycles[0] <= now:
                self._writeback(now)
            if su.issuable:
                self._issue(now)
        else:
            if su.issuable:
                self._issue(now)
            if cycles and cycles[0] <= now:
                self._writeback(now)
        if self.fetch_buffer is not None:
            self._decode(now)
        if self.fetch_buffer is None:
            self._fetch(now)
        store_buffer = self.store_buffer
        if store_buffer.entries:
            store_buffer.drain_one(self.cache, self.memory, now)
        stats = self.stats
        stats.su_occupancy_sum += su._entry_count
        attr = self._attr
        if attr is not None:
            attr.close_cycle(self, now, committed)
        metrics = self._metrics
        if metrics is not None:
            metrics.on_cycle(self, now)
        self.cycle = now + 1

    def _skip_inert_cycles(self):
        """Jump the clock over cycles in which nothing can happen.

        A cycle is provably inert when the earliest pending result is
        not due, the front end is stalled (fetch buffer blocked on a
        full SU / scoreboard hazard, or no thread fetchable — masked
        threads count as unfetchable), the store buffer cannot drain,
        no block can commit, and :meth:`_issue_horizon` proves no ready
        entry can issue. Machine state is then frozen: the only
        time-dependent predicates are the ones the next-event horizon
        covers — the earliest pending result (which subsumes dcache
        refill completions), the store buffer's drain slot, the
        earliest unpipelined-divider release, and a thread's
        instruction-cache refill. The clock jumps to the minimum of
        those, for *every* stall class (fu-latency, dcache-miss,
        commit-wait, sync), and the skipped cycles are charged to
        exactly the stall counters — and attribution class — the
        per-cycle loop would have used, so statistics are bit-identical
        either way (``MachineConfig(fast_forward=False)`` runs the slow
        path).
        """
        now = self.cycle
        pending = self._wb_cycles
        if pending and pending[0] <= now:
            return
        fetch_idle = self.fetch_buffer is None
        if fetch_idle:
            fetch_horizon = self.fetch_unit.fetch_horizon(now)
            if fetch_horizon is not None and fetch_horizon <= now:
                return  # a thread could be selected this cycle
        else:
            fetch_horizon = None
            if not self._decode_blocked():
                return
        store_buffer = self.store_buffer
        drain_at = None
        if store_buffer.entries:
            drain_at = store_buffer.next_drain_cycle(now)
            if drain_at <= now:
                return
        su = self.su
        index = su.choose_commit_block(self._commit_blocks)
        if index is not None:
            block = su.blocks[index]
            free = store_buffer.depth - len(store_buffer.entries)
            if block.store_count <= free:
                return  # a block will commit this cycle
        flags = 0
        fu_free_at = None
        if su.issuable:
            blocked = self._issue_horizon(now)
            if blocked is None:
                return  # some ready entry can issue this cycle
            fu_free_at, flags = blocked
        # Nothing can happen before the next event.
        target = pending[0] if pending else None
        if drain_at is not None and (target is None or drain_at < target):
            target = drain_at
        if fu_free_at is not None and (target is None or fu_free_at < target):
            target = fu_free_at
        if fetch_horizon is not None and (target is None
                                          or fetch_horizon < target):
            target = fetch_horizon
        if target is None or target <= now:
            return
        skipped = target - now
        stats = self.stats
        if fetch_idle:
            stats.fetch_idle_cycles += skipped
            self.fetch_unit.note_idle_cycles(skipped)
        else:
            stats.decode_stall_cycles += skipped
        su_full = su.full
        if su_full:
            stats.su_stall_cycles += skipped
        stats.su_occupancy_sum += su._entry_count * skipped
        attr = self._attr
        if attr is not None:
            attr.note_skip(self, now, skipped, su_full, fetch_idle, flags)
        metrics = self._metrics
        if metrics is not None:
            metrics.note_skip(self, skipped)
        bus = self._bus
        if bus is not None:
            bus.emit(StallEvent(
                now, self._span_reason(now, su_full, fetch_idle, flags),
                skipped))
        self.cycle = target

    def _issue_horizon(self, now):
        """Prove no ready entry can issue at ``now``, without issuing.

        A side-effect-free mirror of one :meth:`_issue` scan: it visits
        exactly the candidates issue would visit and applies the same
        per-entry checks against pristine cycle-start state (the first
        issuing candidate exists for :meth:`_issue` iff it exists
        here). Returns ``None`` as soon as any candidate could issue;
        otherwise ``(fu_free_at, flags)``, where ``fu_free_at`` is the
        earliest release among blocking unpipelined units (``None`` if
        no candidate is FU-blocked) and ``flags`` carries the stall
        classes observed. Pipelined classes are always free at a fresh
        cycle, as is cache port arbitration, so the only cross-cycle FU
        state is the dividers' — which is exactly what
        :meth:`FuPool.next_free` reports.
        """
        pool = self.fu_pool
        fu_free_at = None
        flags = 0
        remaining = self.su.issuable
        for entry in self.su.ready_entries():
            info = entry.info
            fu_index = info.fu_index
            if not pool.available(fu_index, now):
                flags |= _F_FU
                free_at = pool.next_free(fu_index, now)
                if fu_free_at is None or free_at < fu_free_at:
                    fu_free_at = free_at
            elif not info.is_load:
                return None
            else:
                why = self._load_blocked(entry, now)
                if not why:
                    return None
                flags |= why
            remaining -= 1
            if remaining == 0:
                break
        return fu_free_at, flags

    def _load_blocked(self, entry, now):
        """Why a ready load cannot issue at ``now`` — 0 when it can.

        Mirrors the decision chain of :meth:`_issue_load` (including
        the address computation, which issue would redo identically)
        without performing the access. The cache-port checks can never
        fail at a fresh cycle — ports are per-cycle state — and are
        kept only to stay textually parallel with the issue path.
        """
        entry.addr = addr = int(entry.vals[0]) + entry.instr.imm
        su = self.su
        if su.older_mem_unissued(entry):
            return _F_SYNC
        if entry.instr.op is Op.TAS:
            if not su.all_older_done(entry):
                return _F_SYNC
            if self.store_buffer.has_match(addr):
                return _F_SYNC
            if not self.cache.can_access(now):
                return _F_DCACHE
            return 0
        if su.older_store_conflict(entry):
            return _F_SYNC
        if self._forward_value(entry) is not _NO_FORWARD:
            return 0
        if not 0 <= addr < self.memory.size:
            return 0
        if not self.cache.can_access(now):
            return _F_DCACHE
        return 0

    def _span_reason(self, now, su_full, fetch_idle, flags):
        """Stall-class label for a skipped span's :class:`StallEvent`.

        Same priority order as the attribution layer's
        ``close_cycle``/``note_skip``, computed from engine state alone
        so event sinks see per-class reasons even without attribution
        attached.
        """
        if su_full:
            return "su-full"
        if flags & _F_SYNC:
            return "sync"
        if flags & _F_DCACHE or self.cache.refill_horizon(now) is not None:
            return "dcache-miss"
        if flags & _F_FU:
            return "fu-contention"
        if self._wb_cycles and not self.su.issuable:
            return "fu-contention"
        if fetch_idle:
            return "fetch-idle"
        return "decode-stall"

    def _decode_blocked(self):
        """Would :meth:`_decode` stall this cycle (no state change)?"""
        su = self.su
        if len(su.blocks) >= su.capacity_blocks:
            return True
        if self._renaming:
            return False
        thread, items = self.fetch_buffer
        return self._scoreboard_hazard(thread.tid, items)

    def _finalize_stats(self):
        stats = self.stats
        stats.cycles = self.cycle
        stats.cache_accesses = self.cache.stats.accesses
        stats.cache_hits = self.cache.stats.hits
        stats.cache_misses = self.cache.stats.misses
        if self.icache is not None:
            icstats = self.icache.stats
            stats.icache_accesses = icstats.accesses
            # None (rendered "n/a"), not 1.0, when nothing was fetched.
            stats.icache_hit_rate = (icstats.hit_rate if icstats.accesses
                                     else None)
        stats.predictor_accuracy = self.predictor.accuracy
        self.fu_pool.flush_stats()
        if self._attr is not None:
            stats.stall_breakdown = self._attr.to_dict()
        if self._metrics is not None:
            stats.interval_metrics = self._metrics.to_dict()

    # ------------------------------------------------------------ commit

    def _commit(self, now):
        """Commit stage. Returns 1 if a block retired, 2 if the commit
        slot was lost to a full scheduling unit, 0 otherwise (the stall
        attribution's ``commit_status``)."""
        su = self.su
        blocks = su.blocks
        # Flexible Result Commit, inlined from su.choose_commit_block
        # (keep in sync): the first ready bottom block whose thread is
        # not represented among the lower, uncommitted blocks.
        limit = len(blocks)
        commit_blocks = self._commit_blocks
        if commit_blocks < limit:
            limit = commit_blocks
        index = None
        blocked = 0  # bitmask of thread ids seen in lower blocks
        for i in range(limit):
            block = blocks[i]
            bit = 1 << block.tid
            if not block.not_done and not blocked & bit:
                # A block additionally needs store-buffer room for its
                # stores.
                store_buffer = self.store_buffer
                if block.store_count <= (store_buffer.depth
                                         - len(store_buffer.entries)):
                    index = i
                break
            blocked |= bit
        if index is None:
            if len(blocks) >= su.capacity_blocks:
                self.stats.su_stall_cycles += 1
                status = 2
            else:
                status = 0
        else:
            self._commit_block(index)
            status = 1
        if self._masked:
            self._update_masks(now)
        return status

    def _commit_block(self, index):
        """Retire the block at ``index``: one walk does both the
        scheduling-unit removal (inlined from ``SchedulingUnit.pop_block``
        — keep in sync) and the architectural commit actions."""
        su = self.su
        block = su.blocks.pop(index)
        tid = block.tid
        entries = block.entries
        now = self.cycle
        bus = self._bus
        if bus is not None:
            bus.emit(CommitEvent(now, tid, [entry.tag for entry in entries]))
        stats = self.stats
        regs = self.regs
        # Register-write fast path: commit-time destinations come from
        # validated programs, so the bounds checks of ``regs.write``
        # reduce to the r0 discard and the 32-bit integer wrap. Keep in
        # sync with RegisterFile.write.
        regs_arr = regs._regs
        reg_base = tid * regs.k
        predictor = self.predictor
        by_tag = su.by_tag
        stores = su._tid_stores[tid]
        writers = su._writers[tid]
        for entry in entries:
            by_tag.pop(entry.tag, None)
            dest = entry.dest
            if dest is not None:
                stack = writers[dest]
                if stack:
                    # Per-thread in-order commit: the committed entry is
                    # the oldest surviving writer, i.e. the stack head.
                    if stack[0] is entry:
                        del stack[0]
                    else:
                        try:
                            stack.remove(entry)
                        except ValueError:
                            pass
                result = entry.result
                if result is not None and dest != REG_ZERO:
                    if isinstance(result, int):
                        result &= 0xFFFFFFFF
                        if result >= 0x80000000:
                            result -= 0x100000000
                    regs_arr[reg_base + dest] = result
            info = entry.info
            if info.is_store:
                stores.remove(entry)
                if not info.is_load:
                    sbe = self.store_buffer.allocate(entry.tag, tid,
                                                     entry.addr,
                                                     entry.vals[1])
                    sbe.committed = True
            elif info.is_control:
                if info.is_branch:
                    predictor.update(entry.pc, entry.actual_taken, tid)
                else:
                    op = entry.instr.op
                    if op is Op.JALR:
                        predictor.btb_update(entry.pc, entry.actual_target,
                                             tid)
                    elif op is Op.HALT:
                        thread = self.threads[tid]
                        if not thread.done:
                            thread.done = True
                            self._halted += 1
                        stats.finish_cycle[tid] = now
            entry.block = None  # break the entry<->block reference cycle
        count = len(entries)
        su._entry_count -= count
        su._tid_count[tid] -= count
        stats.committed_per_thread[tid] += count
        stats.committed += count
        stats.commit_blocks += 1

    def _update_masks(self, now):
        """Masked-RR masking.

        ``commit_stall`` (the paper's criterion): suspend fetching for a
        thread while it fails to commit from the lower-most block.
        ``long_latency`` (ablation): suspend threads with an unfinished
        divide in flight — the paper notes masking is most beneficial
        when the failing operation has a long latency.
        """
        fetch_unit = self.fetch_unit
        nthreads = self.config.nthreads
        desired = [False] * nthreads
        blocks = self.su.blocks
        if self.config.masked_criterion == "commit_stall":
            if blocks and blocks[0].not_done:
                desired[blocks[0].tid] = True
        else:
            for tid in self.su.threads_with_inflight(_DIV_CLASSES):
                desired[tid] = True
        for tid in range(nthreads):
            fetch_unit.set_mask(tid, desired[tid], now)

    # --------------------------------------------------------- writeback

    def _writeback(self, now):
        budget = self._writeback_width
        buckets = self._wb_buckets
        cycles = self._wb_cycles
        heappop = heapq.heappop
        bus = self._bus
        su = self.su
        while cycles and cycles[0] <= now:
            cyc = cycles[0]
            bucket = buckets[cyc]
            i = 0
            n = len(bucket)
            while i < n:
                entry = bucket[i]
                i += 1
                if entry.squashed:
                    continue  # squashed results vanish; no budget spent
                budget -= 1
                # Completion, inlined from the former _complete helper
                # (this loop is its only caller).
                entry.state = DONE
                entry.block.not_done -= 1
                if bus is not None:
                    bus.emit(WritebackEvent(now, entry.tag, entry.tid))
                waiters = entry.waiters
                if waiters:
                    entry.waiters = None
                    result = entry.result
                    for waiter, index in waiters:
                        if waiter.squashed:
                            continue
                        waiter.vals[index] = result
                        pending = waiter.pending - 1
                        waiter.pending = pending
                        if not pending:
                            # The waiter is necessarily still WAITING:
                            # it could not have issued with an operand
                            # outstanding.
                            su.issuable += 1
                            winfo = waiter.info
                            wblock = waiter.block
                            wblock.ready += 1
                            wblock.ready_fu_mask |= 1 << winfo.fu_index
                            if winfo.is_load:
                                wblock.ready_loads += 1
                            elif winfo.is_store:
                                wblock.ready_stores += 1
                if entry.info.is_control:
                    self._resolve_control(entry, now)
                if budget == 0:
                    break
            if i >= n:
                del buckets[cyc]
                heappop(cycles)
            else:
                # Budget exhausted mid-bucket: the rest writes back on a
                # later cycle, in the same order.
                buckets[cyc] = bucket[i:]
            if budget == 0:
                return

    def _resolve_control(self, entry, now):
        op = entry.instr.op
        thread = self.threads[entry.tid]
        redirect = None
        if entry.info.is_branch:
            self.stats.branches += 1
            self.predictor.record_outcome(entry.predicted_taken,
                                          entry.actual_taken)
            if entry.actual_taken != entry.predicted_taken:
                redirect = entry.actual_target
        elif op is Op.JALR:
            if thread.jalr_wait == entry.tag:
                thread.redirect(entry.actual_target)
                return
            if entry.predicted_target != entry.actual_target:
                redirect = entry.actual_target
        if redirect is None:
            return
        self.stats.mispredicts += 1
        squashed = self.su.squash_younger(entry)
        self.stats.squashed += len(squashed)
        bus = self._bus
        if squashed and bus is not None:
            bus.emit(SquashEvent(now, entry.tid,
                                 [victim.tag for victim in squashed]))
        if self.fetch_buffer is not None and self.fetch_buffer[0] is thread:
            self.fetch_buffer = None
        thread.redirect(redirect)

    # -------------------------------------------------------------- issue

    def _issue(self, now):
        budget = self._issue_width
        # Local count of candidates lets the scan stop as soon as every
        # issuable entry has been visited instead of walking the whole SU.
        remaining = self.su.issuable
        su = self.su
        pool = self.fu_pool
        latency = self._latency
        nthreads = self._nthreads
        attr = self._attr
        stats = self.stats
        bus = self._bus
        wb_buckets = self._wb_buckets
        wb_cycles = self._wb_cycles
        heappush = heapq.heappush
        # FuPool internals, inlined for the pipelined-class fast path.
        # Pipelined classes (occupancy 1) are fully described by the
        # per-cycle acquire counter; only the dividers take the generic
        # ``acquire`` path. Keep in sync with FuPool.acquire/available.
        occupancy = pool._occupancy
        used_cycle = pool._used_cycle
        used = pool._used
        fu_counts = pool._counts
        fu_busy = pool._busy
        # Per-cycle short-circuit masks. A functional-unit class with no
        # free unit stays exhausted for the rest of the cycle, and once a
        # thread's oldest waiting memory op fails to issue, every younger
        # load of that thread is doomed by the in-order memory rule —
        # skipping both reproduces exactly what the failed attempts
        # would have concluded, without paying for them.
        fu_blocked = 0  # bitmask over fu_index
        mem_blocked = 0  # bitmask over tid
        for block in su.blocks:
            ready = block.ready
            if not ready:
                continue
            # When every candidate in the block is a load and loads of
            # this thread are already doomed (no load unit free, or an
            # older memory op failed), the whole block can be skipped.
            ready_loads = block.ready_loads
            block_tbit = 1 << block.tid
            if ready_loads == ready and (
                    fu_blocked & _LOAD_FU_BIT
                    or mem_blocked & block_tbit):
                remaining -= ready
                if remaining == 0:
                    return
                continue
            if not block.ready_fu_mask & ~fu_blocked:
                # Every candidate's unit class is already exhausted this
                # cycle (the mask is a conservative superset), so the
                # per-entry visits could only re-conclude "blocked"
                # without setting new flags. Mirror their one side
                # effect: a doomed ready memory op blocks the thread's
                # younger loads for the rest of the scan.
                if ready_loads or block.ready_stores:
                    mem_blocked |= block_tbit
                remaining -= ready
                if remaining == 0:
                    return
                continue
            for entry in block.entries:
                if entry.state != WAITING or entry.pending:
                    continue
                remaining -= 1
                ready -= 1
                issued = False
                info = entry.info
                fu_index = info.fu_index
                bit = 1 << fu_index
                if info.is_load:
                    # The load/store class is always pipelined, so its
                    # availability is just the per-cycle counter.
                    tbit = 1 << entry.tid
                    if mem_blocked & tbit:
                        pass
                    elif fu_blocked & bit or (
                            used_cycle[fu_index] == now
                            and used[fu_index] >= fu_counts[fu_index]):
                        if not fu_blocked & bit and attr is not None:
                            attr.flag_fu()
                        fu_blocked |= bit
                        mem_blocked |= tbit
                    elif self._issue_load(entry, now, latency[fu_index]):
                        issued = True
                    else:
                        mem_blocked |= tbit
                elif fu_blocked & bit:
                    if info.is_store:
                        # An unissued store blocks the thread's younger
                        # loads (in-order memory issue), not its stores.
                        mem_blocked |= 1 << entry.tid
                else:
                    if occupancy[fu_index] == 1:
                        if used_cycle[fu_index] != now:
                            used_cycle[fu_index] = now
                            used[fu_index] = 0
                        unit = used[fu_index]
                        if unit < fu_counts[fu_index]:
                            used[fu_index] = unit + 1
                            fu_busy[fu_index][unit] += 1
                        else:
                            unit = None
                    else:
                        unit = pool.acquire(fu_index, now)
                    if unit is None:
                        fu_blocked |= bit
                        if info.is_store:
                            mem_blocked |= 1 << entry.tid
                        if attr is not None:
                            attr.flag_fu()
                    else:
                        if info.is_store:
                            entry.addr = int(entry.vals[0]) + entry.instr.imm
                            entry.result = None
                        elif info.is_control:
                            self._prepare_control(entry)
                        else:
                            instr = entry.instr
                            fn = instr._exec
                            if fn is None:
                                fn = build_exec(instr)
                            entry.result = fn(entry.vals, entry.tid, nthreads)
                        # Inlined from _schedule (keep in sync). Loads
                        # never reach this arm, so the only memory ops
                        # here are stores.
                        ready_cycle = now + latency[fu_index]
                        entry.state = ISSUED
                        su.issuable -= 1
                        block.ready -= 1
                        if info.is_mem:
                            su._tid_mem_waiting[entry.tid].remove(entry)
                            block.ready_stores -= 1
                        wb_bucket = wb_buckets.get(ready_cycle)
                        if wb_bucket is None:
                            wb_buckets[ready_cycle] = [entry]
                            heappush(wb_cycles, ready_cycle)
                        else:
                            wb_bucket.append(entry)
                        stats.issued += 1
                        if bus is not None:
                            instr = entry.instr
                            text = instr._text
                            if text is None:
                                text = instr.text()
                            bus.emit(IssueEvent(now, entry.tag, entry.tid,
                                                entry.pc, fu_index, unit,
                                                ready_cycle, text))
                        issued = True
                if issued:
                    budget -= 1
                    if budget == 0:
                        return
                if remaining == 0:
                    return
                if ready == 0:
                    break  # no more candidates in this block

    def _issue_load(self, entry, now, latency):
        entry.addr = addr = int(entry.vals[0]) + entry.instr.imm
        su = self.su
        attr = self._attr
        # In-order memory issue, inlined from su.older_mem_unissued:
        # the thread's oldest waiting memory op must be this entry.
        head = su._tid_mem_waiting[entry.tid][0]
        if head is not entry and head.order < entry.order:
            if attr is not None:
                attr.flag_sync()
            return False
        if entry.instr.op is Op.TAS:
            if not su.all_older_done(entry):
                if attr is not None:
                    attr.flag_sync()
                return False
            if self.store_buffer.has_match(addr):
                if attr is not None:
                    attr.flag_sync()
                return False
            if not self.cache.can_access(now):
                if attr is not None:
                    attr.flag_dcache()
                return False
            unit = self.fu_pool.acquire(entry.info.fu_index, now)
            ready = self.cache.access(addr, now) + latency
            if attr is not None and ready > now + latency:
                attr.note_miss(ready)
            entry.result = self.memory.read(addr)
            self.memory.write(addr, 1)
            self._schedule(entry, ready, unit)
            return True
        # One walk over the thread's older in-flight stores covers both
        # the restricted load/store conflict check and the SU leg of
        # store-to-load forwarding (inlined from older_store_conflict
        # and _forward_value; keep in sync). A store that matches the
        # address and has not executed — or whose address is still
        # unresolved — blocks the load; otherwise the youngest match
        # forwards its value and is guaranteed DONE.
        order = entry.order
        best = None
        for store in su._tid_stores[entry.tid]:
            if store.order >= order:
                break  # program-ordered: the rest are younger
            st_addr = store.addr
            if store.state != DONE and (st_addr is None or st_addr == addr):
                if attr is not None:
                    attr.flag_sync()
                return False
            if st_addr == addr:
                best = store
        pool = self.fu_pool
        fu_index = entry.info.fu_index
        if best is not None:
            entry.result = best.vals[1]
            self._schedule(entry, now + latency, pool.acquire(fu_index, now))
            return True
        for sbe in reversed(self.store_buffer.entries):
            if sbe.addr == addr:
                entry.result = sbe.value
                self._schedule(entry, now + latency,
                               pool.acquire(fu_index, now))
                return True
        memory = self.memory
        if not 0 <= addr < memory.size:
            # A wrong-path load may compute a garbage address; hardware
            # does not fault speculatively, so return a dummy value. A
            # wild load on the *correct* path is a program bug that the
            # functional simulator reports as a MemoryFault.
            entry.result = 0
            self._schedule(entry, now + latency, pool.acquire(fu_index, now))
            return True
        cache = self.cache
        if not cache.can_access(now):
            if attr is not None:
                attr.flag_dcache()
            return False
        unit = pool.acquire(fu_index, now)
        ready = cache.access(addr, now) + latency
        if attr is not None and ready > now + latency:
            attr.note_miss(ready)
        entry.result = memory.read(addr)
        self._schedule(entry, ready, unit)
        return True

    def _forward_value(self, entry):
        """Store-to-load forwarding.

        Priority: the youngest *older same-thread* store still in the
        scheduling unit (value known once it has executed), then the
        youngest committed store-buffer entry for the address, then
        memory (signalled by ``_NO_FORWARD``).
        """
        addr = entry.addr
        order = entry.order
        best = None
        for candidate in self.su.stores_of(entry.tid):
            if candidate.order >= order:
                break  # program-ordered: the rest are younger
            if candidate.addr == addr:
                best = candidate
        if best is not None:
            # older_store_conflict guarantees the store has executed.
            return best.vals[1]
        for sbe in reversed(self.store_buffer.entries):
            if sbe.addr == addr:
                return sbe.value
        return _NO_FORWARD

    def _prepare_control(self, entry):
        op = entry.instr.op
        pc = entry.pc
        if entry.info.is_branch:
            taken = branch_taken(op, entry.vals[0], entry.vals[1])
            entry.actual_taken = taken
            entry.actual_target = pc + 1 + entry.instr.imm if taken else pc + 1
        elif op is Op.J:
            entry.actual_target = entry.instr.imm
        elif op is Op.JAL:
            entry.actual_target = entry.instr.imm
            entry.result = pc + 1
        elif op is Op.JALR:
            entry.actual_target = int(entry.vals[0])
            entry.result = pc + 1

    def _schedule(self, entry, ready_cycle, unit=None):
        entry.state = ISSUED
        su = self.su
        su.issuable -= 1
        block = entry.block
        block.ready -= 1
        info = entry.info
        if info.is_mem:
            su._tid_mem_waiting[entry.tid].remove(entry)
            if info.is_load:
                block.ready_loads -= 1
            else:
                block.ready_stores -= 1
        bucket = self._wb_buckets.get(ready_cycle)
        if bucket is None:
            self._wb_buckets[ready_cycle] = [entry]
            heapq.heappush(self._wb_cycles, ready_cycle)
        else:
            bucket.append(entry)
        self.stats.issued += 1
        bus = self._bus
        if bus is not None:
            instr = entry.instr
            text = instr._text
            if text is None:
                text = instr.text()
            bus.emit(IssueEvent(self.cycle, entry.tag, entry.tid, entry.pc,
                                info.fu_index, unit, ready_cycle, text))

    # ------------------------------------------------------------- decode

    def _decode(self, now):
        if self.fetch_buffer is None:
            return
        su = self.su
        if len(su.blocks) >= su.capacity_blocks:
            self.stats.decode_stall_cycles += 1
            return
        thread, items = self.fetch_buffer
        tid = thread.tid
        if not self._renaming and self._scoreboard_hazard(tid, items):
            self.stats.decode_stall_cycles += 1
            return
        # Inlined from su.new_block / SUBlock.__init__ (keep in sync);
        # the capacity check above already guarantees room.
        block = SUBlock.__new__(SUBlock)
        block.seq = seq = su._next_seq
        su._next_seq = seq + 1
        block.tid = tid
        block.entries = []
        block.ready = 0
        block.ready_loads = 0
        block.ready_stores = 0
        block.ready_fu_mask = 0
        block.not_done = 0
        block.store_count = 0
        su.blocks.append(block)
        next_tag = self._next_tag
        # ``su.add``, ``SUEntry.__init__`` and ``_rename_operands`` are
        # inlined here (the per-instruction method calls are
        # measurable); keep them in sync with their scheduler
        # counterparts and with the standalone rename method.
        new_entry = SUEntry.__new__
        entries = block.entries
        by_tag = su.by_tag
        tid_stores = su._tid_stores[tid]
        mem_waiting = su._tid_mem_waiting[tid]
        writers = su._writers[tid]
        regs = self.regs
        regs_arr = regs._regs
        reg_base = tid * regs.k
        seq8 = block.seq << 3
        issuable_add = 0
        for item in items:
            instr = item.instr
            entry = new_entry(SUEntry)
            entry.tag = next_tag
            entry.tid = tid
            entry.pc = item.pc
            entry.instr = instr
            entry.info = info = instr.info
            dest = instr._dest
            if dest is False:
                dest = instr.dest()
            entry.dest = dest
            entry.state = WAITING
            entry.waiters = None
            entry.result = None
            entry.addr = None
            entry.actual_taken = None
            entry.actual_target = None
            entry.squashed = False
            entry.predicted_taken = item.predicted_taken
            entry.predicted_target = item.predicted_target
            next_tag += 1
            # Operand rename, inlined from _rename_operands: pick up
            # each source from the youngest in-flight writer (value if
            # DONE, a wakeup subscription otherwise) or the register
            # file (r0 reads as zero).
            sources = instr._sources
            if sources is None:
                sources = instr.sources()
            entry.vals = vals = [None] * len(sources)
            pending = 0
            for index, reg in enumerate(sources):
                if reg == 0:
                    vals[index] = 0
                    continue
                stack = writers[reg]
                if not stack:
                    vals[index] = regs_arr[reg_base + reg]
                    continue
                producer = stack[-1]
                if producer.state == DONE:
                    vals[index] = producer.result
                else:
                    pending += 1
                    waiters = producer.waiters
                    if waiters is None:
                        producer.waiters = [(entry, index)]
                    else:
                        waiters.append((entry, index))
            entry.pending = pending
            entry.order = seq8 | len(entries)
            entry.block = block
            entries.append(entry)
            by_tag[entry.tag] = entry
            if info.is_store:
                tid_stores.append(entry)
                if not info.is_load:
                    block.store_count += 1
            if info.is_mem:
                mem_waiting.append(entry)
            if not entry.pending:
                issuable_add += 1
                block.ready_fu_mask |= 1 << info.fu_index
                if info.is_load:
                    block.ready_loads += 1
                elif info.is_store:
                    block.ready_stores += 1
            if dest is not None:
                writers[dest].append(entry)
            if info.switch_trigger:
                self.fetch_unit.note_switch_trigger()
            elif info.ctl_kind == 3 and thread.jalr_wait == -1:  # jalr
                thread.jalr_wait = entry.tag
        count = len(entries)
        block.not_done = count
        block.ready = issuable_add
        su.issuable += issuable_add
        su._entry_count += count
        su._tid_count[tid] += count
        self._next_tag = next_tag
        self.fetch_buffer = None
        bus = self._bus
        if bus is not None:
            bus.emit(DecodeEvent(now, tid, block.seq,
                                 [e.tag for e in entries],
                                 [e.pc for e in entries],
                                 [i._text if i._text is not None
                                  else i.text()
                                  for i in (e.instr for e in entries)]))

    def _scoreboard_hazard(self, tid, items):
        """Without full renaming, stall on in-flight destination writers."""
        for item in items:
            dest = item.instr.dest()
            if dest and self.su.lookup_operand(tid, dest) is not None:
                return True
        return False

    def _rename_operands(self, entry):
        """Reference copy of the rename logic inlined in :meth:`_decode`.

        Kept for clarity and for unit-level use; the decode loop carries
        an inlined duplicate (see the comment there) — keep both in
        sync.
        """
        sources = entry.instr.sources()
        nsources = len(sources)
        entry.vals = vals = [None] * nsources
        pending = 0
        tid = entry.tid
        writers = self.su._writers[tid]
        regs = self.regs
        for index in range(nsources):
            reg = sources[index]
            if reg == 0:
                vals[index] = 0
                continue
            stack = writers[reg]
            if not stack:
                vals[index] = regs.read(tid, reg)
                continue
            producer = stack[-1]
            if producer.state == DONE:
                vals[index] = producer.result
            else:
                pending += 1
                waiters = producer.waiters
                if waiters is None:
                    producer.waiters = [(entry, index)]
                else:
                    waiters.append((entry, index))
        entry.pending = pending

    # -------------------------------------------------------------- fetch

    def _fetch(self, now):
        if self.fetch_buffer is not None:
            return
        thread = self.fetch_unit.select_thread(now)
        if thread is None:
            self.stats.fetch_idle_cycles += 1
            return
        if self.icache is not None:
            ready = self.icache.access(thread.pc, now)
            if ready > now:
                # Instruction-cache miss: the thread cannot fetch until
                # the line refills; the slot is wasted.
                thread.stall_until = ready
                self.stats.fetch_idle_cycles += 1
                return
        items = self.fetch_unit.fetch_block(thread)
        if not items:
            self.stats.fetch_idle_cycles += 1
            return
        self.fetch_buffer = (thread, items)
        self.stats.fetched_blocks += 1
        self.stats.fetched_instructions += len(items)
        bus = self._bus
        if bus is not None:
            bus.emit(FetchEvent(now, thread.tid, items[0].pc, len(items)))

    # ---------------------------------------------------------- watchdog

    def _hang_error(self, hang_limit):
        """Build the :class:`SimulationHang` for a no-progress wedge."""
        report = self._hang_report()
        lines = [
            f"no block committed for {hang_limit} cycles "
            f"(cycle {self.cycle}, {self.stats.committed} committed, "
            f"{self._halted}/{self._nthreads} threads halted)",
            "threads:",
        ]
        for state in report["threads"]:
            lines.append(
                "  t{tid}: pc={pc} done={done} fetch_halted={fetch_halted} "
                "jalr_wait={jalr_wait} stall_until={stall_until} "
                "masked={masked} in_flight={in_flight}".format(**state))
        su = report["su"]
        lines.append(
            f"scheduling unit: {su['entries']}/{su['capacity']} entries, "
            f"issuable={su['issuable']}, blocks={len(su['blocks'])}")
        for block in su["blocks"][:8]:
            lines.append(f"  block seq={block['seq']} tid={block['tid']} "
                         f"not_done={block['not_done']}: "
                         + "; ".join(block["entries"]))
        lines.append(
            f"store buffer: {report['store_buffer']} entries; pending "
            f"writeback cycles: {report['pending_writeback_cycles']}; "
            f"fetch buffer: {report['fetch_buffer']}")
        if report.get("stall_breakdown"):
            lines.append(f"stall attribution so far: "
                         f"{report['stall_breakdown']}")
        bus = self._bus
        if bus is not None:
            bus.emit(StallEvent(self.cycle, "hang", 0))
        return SimulationHang("\n".join(lines), report)

    def _hang_report(self):
        """Plain-data machine-state snapshot for hang diagnosis.

        Rides the observability layer where attached: the attribution
        breakdown (who was charged for the dead cycles) is included
        whenever ``attach_attribution`` was called before ``run``.
        """
        su = self.su
        fetch_buffer = self.fetch_buffer
        threads = [{
            "tid": thread.tid,
            "pc": thread.pc,
            "done": thread.done,
            "fetch_halted": thread.fetch_halted,
            "jalr_wait": thread.jalr_wait,
            "stall_until": thread.stall_until,
            "masked": self.fetch_unit.masked[thread.tid],
            "in_flight": self._thread_occupancy(thread.tid),
        } for thread in self.threads]
        blocks = [{
            "seq": block.seq,
            "tid": block.tid,
            "not_done": block.not_done,
            "ready": block.ready,
            "entries": [repr(entry) for entry in block.entries],
        } for block in su.blocks]
        report = {
            "cycle": self.cycle,
            "committed": self.stats.committed,
            "halted": self._halted,
            "threads": threads,
            "su": {
                "entries": su._entry_count,
                "capacity": self.config.su_entries,
                "issuable": su.issuable,
                "full": su.full,
                "blocks": blocks,
            },
            "store_buffer": len(self.store_buffer.entries),
            "pending_writeback_cycles": sorted(self._wb_cycles)[:8],
            "fetch_buffer": (None if fetch_buffer is None else
                             {"tid": fetch_buffer[0].tid,
                              "count": len(fetch_buffer[1])}),
        }
        if self._attr is not None:
            report["stall_breakdown"] = self._attr.to_dict()
        return report

    # ------------------------------------------------------------ helpers

    def _thread_occupancy(self, tid):
        """In-flight instructions of ``tid`` (SU + fetch buffer)."""
        count = self.su.tid_occupancy(tid)
        if self.fetch_buffer is not None and self.fetch_buffer[0].tid == tid:
            count += len(self.fetch_buffer[1])
        return count

    def reg(self, tid, reg):
        """Architectural register value (for inspection in tests)."""
        return self.regs.read(tid, reg)

    def mem(self, addr, count=1):
        """Memory contents (one value, or a list when ``count`` > 1)."""
        if count == 1:
            return self.memory.read(addr)
        return self.memory.read_block(addr, count)
