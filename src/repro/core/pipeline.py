"""The cycle-accurate multithreaded superscalar pipeline simulator.

Stage order within one simulated cycle::

    commit -> writeback -> issue -> decode -> fetch -> store-buffer drain

With result bypassing disabled, issue runs *before* writeback, so a
dependent instruction sees a result one cycle later — the paper's
"Bypassing of results: Have / No" configuration knob.

Memory-ordering model
---------------------
A store executes in the store unit (address and value computed, entry
DONE) but its value stays in the scheduling unit until the block
commits; at commit it moves to the store buffer, and drains to the data
cache one entry per cycle. A block whose stores do not fit in the store
buffer cannot commit that cycle. Because every buffered store is already
committed, the machine cannot deadlock on store-buffer space, while the
performance-visible behaviour of the paper's restricted load/store
policy is preserved: loads stall behind older same-thread stores with
unresolved or matching addresses, and the 8-entry buffer throttles
store-heavy code. Loads forward from older same-thread stores still in
the SU and from committed store-buffer entries; ``tas`` additionally
waits until it is non-speculative and the buffer holds no write to its
address, then performs an atomic read-modify-write on memory.
"""

import heapq

from repro.asm.program import Program
from repro.core.branch import BranchPredictor
from repro.core.config import CommitPolicy, FetchPolicy, MachineConfig
from repro.core.execute import FuPool
from repro.core.fetch import FetchUnit, ThreadContext
from repro.core.scheduler import DONE, ISSUED, SchedulingUnit, SUEntry, WAITING
from repro.core.stats import SimStats
from repro.isa.opcodes import FuClass, Op
from repro.isa.registers import RegisterFile
from repro.isa.semantics import branch_taken, compute
from repro.mem.cache import DataCache
from repro.mem.memory import MainMemory
from repro.mem.storebuffer import StoreBuffer

_NO_FORWARD = object()


class DeadlockError(RuntimeError):
    """The simulation exceeded its cycle budget without finishing."""


class PipelineSim:
    """Simulate ``program`` on the configured multithreaded SDSP.

    Usage::

        sim = PipelineSim(program, MachineConfig(nthreads=4))
        stats = sim.run()
        print(stats.summary())
    """

    def __init__(self, program, config=None):
        if not isinstance(program, Program):
            raise TypeError(f"expected Program, got {type(program).__name__}")
        self.config = config or MachineConfig()
        self.program = program
        cfg = self.config
        self.regs = RegisterFile(cfg.nthreads)
        self.memory = MainMemory(cfg.mem_words)
        self.memory.load_image(program.data)
        self.cache = DataCache(cfg.cache)
        self.icache = DataCache(cfg.icache) if cfg.icache else None
        self.store_buffer = StoreBuffer(cfg.store_buffer_depth)
        self.predictor = BranchPredictor(
            bits=cfg.predictor_bits, entries=cfg.predictor_entries,
            btb_entries=cfg.btb_entries, nthreads=cfg.nthreads,
            shared=cfg.shared_predictor, kind=cfg.predictor_kind)
        self.stats = SimStats(cfg)
        self.threads = [ThreadContext(tid, program.entry)
                        for tid in range(cfg.nthreads)]
        self.su = SchedulingUnit(cfg)
        self.fetch_unit = FetchUnit(cfg, program, self.predictor, self.threads)
        self.fetch_unit.occupancy_of = self._thread_occupancy
        self.fu_pool = FuPool(cfg, self.stats)
        self.fetch_buffer = None  # (ThreadContext, [FetchedInstr])
        self.cycle = 0
        self._next_tag = 0
        self._pending = []  # heap of (ready_cycle, seq, entry)
        self._heap_seq = 0
        self._waiters = {}  # producer tag -> [(waiting entry, operand index)]

    # ------------------------------------------------------------ driver

    @property
    def done(self):
        return all(thread.done for thread in self.threads)

    def run(self):
        """Run to completion and return the populated :class:`SimStats`."""
        max_cycles = self.config.max_cycles
        while not self.done:
            if self.cycle >= max_cycles:
                raise DeadlockError(
                    f"no completion after {max_cycles} cycles; "
                    f"threads: {self.threads}")
            self.step()
        # Drain remaining (all committed) stores so memory is final.
        now = self.cycle
        while self.store_buffer.entries:
            self.store_buffer.drain_one(self.cache, self.memory, now)
            now += 1
        self._finalize_stats()
        return self.stats

    def step(self):
        """Advance the machine by one cycle."""
        now = self.cycle
        self._commit(now)
        if self.config.bypassing:
            self._writeback(now)
            self._issue(now)
        else:
            self._issue(now)
            self._writeback(now)
        self._decode(now)
        self._fetch(now)
        self.store_buffer.drain_one(self.cache, self.memory, now)
        self.stats.su_occupancy_sum += self.su.occupancy()
        self.cycle += 1

    def _finalize_stats(self):
        stats = self.stats
        stats.cycles = self.cycle
        stats.cache_accesses = self.cache.stats.accesses
        stats.cache_hits = self.cache.stats.hits
        stats.cache_misses = self.cache.stats.misses
        if self.icache is not None:
            stats.icache_accesses = self.icache.stats.accesses
            stats.icache_hit_rate = self.icache.stats.hit_rate
        stats.predictor_accuracy = self.predictor.accuracy
        self.fu_pool.flush_stats()

    # ------------------------------------------------------------ commit

    def _block_stores(self, block):
        return [e for e in block.entries
                if e.info.is_store and not e.info.is_load]

    def _commit(self, now):
        su = self.su
        cfg = self.config
        index = su.choose_commit_block(cfg.commit_blocks)
        if index is not None:
            block = su.blocks[index]
            # A block additionally needs store-buffer room for its stores.
            stores = self._block_stores(block)
            free_slots = self.store_buffer.depth - len(self.store_buffer.entries)
            if len(stores) > free_slots:
                index = None
        if index is None:
            if su.full:
                self.stats.su_stall_cycles += 1
        else:
            self._commit_block(su.pop_block(index))
        if cfg.fetch_policy is FetchPolicy.MASKED_RR:
            self._update_masks()

    def _commit_block(self, block):
        now = self.cycle
        stats = self.stats
        for entry in block.entries:
            if entry.dest is not None and entry.result is not None:
                self.regs.write(entry.tid, entry.dest, entry.result)
            op = entry.instr.op
            info = entry.info
            if info.is_store and not info.is_load:
                sbe = self.store_buffer.allocate(entry.tag, entry.tid,
                                                 entry.addr, entry.vals[1])
                sbe.committed = True
            if info.is_branch:
                self.predictor.update(entry.pc, entry.actual_taken, entry.tid)
            elif op is Op.JALR:
                self.predictor.btb_update(entry.pc, entry.actual_target,
                                          entry.tid)
            elif op is Op.HALT:
                self.threads[entry.tid].done = True
                stats.finish_cycle[entry.tid] = now
            stats.committed += 1
            stats.committed_per_thread[entry.tid] += 1
        stats.commit_blocks += 1

    def _update_masks(self):
        """Masked-RR masking.

        ``commit_stall`` (the paper's criterion): suspend fetching for a
        thread while it fails to commit from the lower-most block.
        ``long_latency`` (ablation): suspend threads with an unfinished
        divide in flight — the paper notes masking is most beneficial
        when the failing operation has a long latency.
        """
        fetch_unit = self.fetch_unit
        for tid in range(self.config.nthreads):
            fetch_unit.set_mask(tid, False)
        blocks = self.su.blocks
        if self.config.masked_criterion == "commit_stall":
            if blocks and not blocks[0].ready():
                fetch_unit.set_mask(blocks[0].tid, True)
            return
        for block in blocks:
            for entry in block.entries:
                if (entry.state != DONE
                        and entry.info.fu in (FuClass.IDIV, FuClass.FPDIV)):
                    fetch_unit.set_mask(entry.tid, True)

    # --------------------------------------------------------- writeback

    def _writeback(self, now):
        budget = self.config.writeback_width
        heap = self._pending
        while heap and heap[0][0] <= now and budget > 0:
            __, __, entry = heapq.heappop(heap)
            if entry.squashed:
                continue
            budget -= 1
            self._complete(entry, now)

    def _complete(self, entry, now):
        entry.state = DONE
        for waiter, index in self._waiters.pop(entry.tag, ()):
            if waiter.squashed:
                continue
            waiter.vals[index] = entry.result
            waiter.tags[index] = None
            waiter.pending -= 1
        if entry.info.is_control:
            self._resolve_control(entry, now)

    def _resolve_control(self, entry, now):
        op = entry.instr.op
        thread = self.threads[entry.tid]
        redirect = None
        if entry.info.is_branch:
            self.stats.branches += 1
            self.predictor.record_outcome(entry.predicted_taken,
                                          entry.actual_taken)
            if entry.actual_taken != entry.predicted_taken:
                redirect = entry.actual_target
        elif op is Op.JALR:
            if thread.jalr_wait == entry.tag:
                thread.redirect(entry.actual_target)
                return
            if entry.predicted_target != entry.actual_target:
                redirect = entry.actual_target
        if redirect is None:
            return
        self.stats.mispredicts += 1
        squashed = self.su.squash_younger(entry)
        self.stats.squashed += len(squashed)
        if self.fetch_buffer is not None and self.fetch_buffer[0] is thread:
            self.fetch_buffer = None
        thread.redirect(redirect)

    # -------------------------------------------------------------- issue

    def _issue(self, now):
        budget = self.config.issue_width
        for block in self.su.blocks:
            if not block.waiting:
                continue
            for entry in block.entries:
                if budget == 0:
                    return
                if entry.state != WAITING or entry.pending:
                    continue
                if self._try_issue(entry, now):
                    block.waiting -= 1
                    budget -= 1

    def _try_issue(self, entry, now):
        info = entry.info
        fu_index = info.fu_index
        pool = self.fu_pool
        latency = pool.latency_of(fu_index)
        if info.is_load:
            if not pool.available(fu_index, now):
                return False
            return self._issue_load(entry, now, latency)
        if pool.acquire(fu_index, now) is None:
            return False
        if info.is_store:
            entry.addr = int(entry.vals[0]) + entry.instr.imm
            entry.result = None
            self._schedule(entry, now + latency)
            return True
        if info.is_control:
            self._prepare_control(entry)
            self._schedule(entry, now + latency)
            return True
        a, b = entry.operand_values()
        entry.result = compute(entry.instr.op, a, b, tid=entry.tid,
                               nthreads=self.config.nthreads,
                               imm=entry.instr.imm)
        self._schedule(entry, now + latency)
        return True

    def _issue_load(self, entry, now, latency):
        entry.addr = int(entry.vals[0]) + entry.instr.imm
        if self.su.older_mem_unissued(entry):
            return False
        if entry.instr.op is Op.TAS:
            if not self.su.all_older_done(entry):
                return False
            if self.store_buffer.has_match(entry.addr):
                return False
            if not self.cache.can_access(now):
                return False
            self.fu_pool.acquire(entry.info.fu_index, now)
            ready = self.cache.access(entry.addr, now) + latency
            entry.result = self.memory.read(entry.addr)
            self.memory.write(entry.addr, 1)
            self._schedule(entry, ready)
            return True
        if self.su.older_store_conflict(entry):
            return False
        forwarded = self._forward_value(entry)
        if forwarded is not _NO_FORWARD:
            self.fu_pool.acquire(entry.info.fu_index, now)
            entry.result = forwarded
            self._schedule(entry, now + latency)
            return True
        if not 0 <= entry.addr < self.memory.size:
            # A wrong-path load may compute a garbage address; hardware
            # does not fault speculatively, so return a dummy value. A
            # wild load on the *correct* path is a program bug that the
            # functional simulator reports as a MemoryFault.
            self.fu_pool.acquire(entry.info.fu_index, now)
            entry.result = 0
            self._schedule(entry, now + latency)
            return True
        if not self.cache.can_access(now):
            return False
        self.fu_pool.acquire(entry.info.fu_index, now)
        ready = self.cache.access(entry.addr, now) + latency
        entry.result = self.memory.read(entry.addr)
        self._schedule(entry, ready)
        return True

    def _forward_value(self, entry):
        """Store-to-load forwarding.

        Priority: the youngest *older same-thread* store still in the
        scheduling unit (value known once it has executed), then the
        youngest committed store-buffer entry for the address, then
        memory (signalled by ``_NO_FORWARD``).
        """
        addr = entry.addr
        tid = entry.tid
        best = None
        for block in self.su.blocks:
            if block.seq > entry.block_seq:
                break
            if block.tid != tid:
                continue
            for candidate in block.entries:
                if candidate is entry or not candidate.is_older_than(entry):
                    continue
                if candidate.info.is_store and candidate.addr == addr:
                    best = candidate
        if best is not None:
            # older_store_conflict guarantees the store has executed.
            return best.vals[1]
        for sbe in reversed(self.store_buffer.entries):
            if sbe.addr == addr:
                return sbe.value
        return _NO_FORWARD

    def _prepare_control(self, entry):
        op = entry.instr.op
        pc = entry.pc
        if entry.info.is_branch:
            taken = branch_taken(op, entry.vals[0], entry.vals[1])
            entry.actual_taken = taken
            entry.actual_target = pc + 1 + entry.instr.imm if taken else pc + 1
        elif op is Op.J:
            entry.actual_target = entry.instr.imm
        elif op is Op.JAL:
            entry.actual_target = entry.instr.imm
            entry.result = pc + 1
        elif op is Op.JALR:
            entry.actual_target = int(entry.vals[0])
            entry.result = pc + 1

    def _schedule(self, entry, ready_cycle):
        entry.state = ISSUED
        entry.issue_cycle = self.cycle
        self._heap_seq += 1
        heapq.heappush(self._pending, (ready_cycle, self._heap_seq, entry))
        self.stats.issued += 1

    # ------------------------------------------------------------- decode

    def _decode(self, now):
        if self.fetch_buffer is None:
            return
        su = self.su
        if su.full:
            self.stats.decode_stall_cycles += 1
            return
        thread, items = self.fetch_buffer
        tid = thread.tid
        if not self.config.renaming and self._scoreboard_hazard(tid, items):
            self.stats.decode_stall_cycles += 1
            return
        block = su.new_block(tid)
        for item in items:
            entry = SUEntry(self._next_tag, tid, item.pc, item.instr)
            self._next_tag += 1
            entry.predicted_taken = item.predicted_taken
            entry.predicted_target = item.predicted_target
            self._rename_operands(entry)
            su.add(block, entry)
            if item.instr.op is Op.JALR and thread.jalr_wait == -1:
                thread.jalr_wait = entry.tag
            if entry.info.switch_trigger:
                self.fetch_unit.note_switch_trigger()
        self.fetch_buffer = None

    def _scoreboard_hazard(self, tid, items):
        """Without full renaming, stall on in-flight destination writers."""
        for item in items:
            dest = item.instr.dest()
            if dest and self.su.lookup_operand(tid, dest) is not None:
                return True
        return False

    def _rename_operands(self, entry):
        sources = entry.instr.sources()
        entry.vals = [None] * len(sources)
        entry.tags = [None] * len(sources)
        pending = 0
        su = self.su
        for index, reg in enumerate(sources):
            if reg == 0:
                entry.vals[index] = 0
                continue
            producer = su.lookup_operand(entry.tid, reg)
            if producer is None:
                entry.vals[index] = self.regs.read(entry.tid, reg)
            elif producer.state == DONE:
                entry.vals[index] = producer.result
            else:
                entry.tags[index] = producer.tag
                pending += 1
                self._waiters.setdefault(producer.tag, []).append(
                    (entry, index))
        entry.pending = pending

    # -------------------------------------------------------------- fetch

    def _fetch(self, now):
        if self.fetch_buffer is not None:
            return
        thread = self.fetch_unit.select_thread(now)
        if thread is None:
            self.stats.fetch_idle_cycles += 1
            return
        if self.icache is not None:
            ready = self.icache.access(thread.pc, now)
            if ready > now:
                # Instruction-cache miss: the thread cannot fetch until
                # the line refills; the slot is wasted.
                thread.stall_until = ready
                self.stats.fetch_idle_cycles += 1
                return
        items = self.fetch_unit.fetch_block(thread)
        if not items:
            self.stats.fetch_idle_cycles += 1
            return
        self.fetch_buffer = (thread, items)
        self.stats.fetched_blocks += 1
        self.stats.fetched_instructions += len(items)

    # ------------------------------------------------------------ helpers

    def _thread_occupancy(self, tid):
        """In-flight instructions of ``tid`` (SU + fetch buffer)."""
        count = 0
        for block in self.su.blocks:
            if block.tid == tid:
                count += len(block.entries)
        if self.fetch_buffer is not None and self.fetch_buffer[0].tid == tid:
            count += len(self.fetch_buffer[1])
        return count

    def reg(self, tid, reg):
        """Architectural register value (for inspection in tests)."""
        return self.regs.read(tid, reg)

    def mem(self, addr, count=1):
        """Memory contents (one value, or a list when ``count`` > 1)."""
        if count == 1:
            return self.memory.read(addr)
        return self.memory.read_block(addr, count)
