"""The multithreaded superscalar pipeline simulator — the paper's contribution.

:class:`~repro.core.pipeline.PipelineSim` models the SDSP pipeline
extended for simultaneous multithreading: N program counters with a
configurable fetch policy, a shared scheduling unit (combined reorder
buffer + instruction window) with thread-ID fields, TID-qualified
register renaming, selective misprediction squash, Flexible Result
Commit, a shared data cache and store buffer, and a configurable
functional-unit pool.
"""

from repro.core.config import (
    CommitPolicy,
    FetchPolicy,
    FU_DEFAULT,
    FU_ENHANCED,
    FU_LATENCY,
    MachineConfig,
)
from repro.core.batch import BatchEngine, run_batch
from repro.core.branch import BranchPredictor
from repro.core.pipeline import PipelineSim
from repro.core.stats import SimStats

__all__ = [
    "BatchEngine",
    "BranchPredictor",
    "CommitPolicy",
    "FetchPolicy",
    "FU_DEFAULT",
    "FU_ENHANCED",
    "FU_LATENCY",
    "MachineConfig",
    "PipelineSim",
    "SimStats",
    "run_batch",
]
