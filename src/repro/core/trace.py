"""Pipeline tracing: per-instruction lifecycle records.

Attach a :class:`Tracer` to a :class:`~repro.core.pipeline.PipelineSim`
to record when each instruction was fetched, decoded, issued, written
back, and committed (or squashed), then render a textual pipeline
diagram — handy for debugging schedules and for teaching what the
machine does cycle by cycle.

Usage::

    sim = PipelineSim(program, config)
    tracer = Tracer.attach(sim, limit=200)
    sim.run()
    print(tracer.render())
"""


class TraceRecord:
    """Lifecycle of one instruction through the pipeline."""

    __slots__ = ("tag", "tid", "pc", "text", "decoded", "issued",
                 "completed", "committed", "squashed")

    def __init__(self, tag, tid, pc, text, decoded):
        self.tag = tag
        self.tid = tid
        self.pc = pc
        self.text = text
        self.decoded = decoded
        self.issued = None
        self.completed = None
        self.committed = None
        self.squashed = None

    def stages(self):
        """(label, cycle) pairs for the stages this instruction reached."""
        out = [("D", self.decoded)]
        if self.issued is not None:
            out.append(("X", self.issued))
        if self.completed is not None:
            out.append(("W", self.completed))
        if self.committed is not None:
            out.append(("C", self.committed))
        if self.squashed is not None:
            out.append(("K", self.squashed))
        return out


class Tracer:
    """Records instruction lifecycles from a running pipeline."""

    def __init__(self, limit=1000):
        self.limit = limit
        self.records = {}
        self.order = []

    # ------------------------------------------------------------- hooks

    @classmethod
    def attach(cls, sim, limit=1000):
        """Wrap ``sim``'s stage methods to feed a new tracer."""
        tracer = cls(limit=limit)

        original_rename = sim._rename_operands
        original_schedule = sim._schedule
        original_complete = sim._complete
        original_commit_block = sim._commit_block
        original_squash = sim.su.squash_younger

        def rename(entry):
            tracer.on_decode(entry, sim.cycle)
            return original_rename(entry)

        def schedule(entry, ready):
            tracer.on_issue(entry, sim.cycle)
            return original_schedule(entry, ready)

        def complete(entry, now):
            tracer.on_complete(entry, now)
            return original_complete(entry, now)

        def commit_block(block):
            for entry in block.entries:
                tracer.on_commit(entry, sim.cycle)
            return original_commit_block(block)

        def squash_younger(origin):
            squashed = original_squash(origin)
            for entry in squashed:
                tracer.on_squash(entry, sim.cycle)
            return squashed

        sim._rename_operands = rename
        sim._schedule = schedule
        sim._complete = complete
        sim._commit_block = commit_block
        sim.su.squash_younger = squash_younger
        return tracer

    def _record(self, entry):
        return self.records.get(entry.tag)

    def on_decode(self, entry, cycle):
        if len(self.order) >= self.limit:
            return
        record = TraceRecord(entry.tag, entry.tid, entry.pc,
                             entry.instr.text(), cycle)
        self.records[entry.tag] = record
        self.order.append(record)

    def on_issue(self, entry, cycle):
        record = self._record(entry)
        if record:
            record.issued = cycle

    def on_complete(self, entry, cycle):
        record = self._record(entry)
        if record:
            record.completed = cycle

    def on_commit(self, entry, cycle):
        record = self._record(entry)
        if record:
            record.committed = cycle

    def on_squash(self, entry, cycle):
        record = self._record(entry)
        if record:
            record.squashed = cycle

    # ---------------------------------------------------------- rendering

    def render(self, width=60):
        """Text pipeline diagram: one line per traced instruction.

        Stage letters: D decode, X issue, W writeback, C commit,
        K squashed (killed).
        """
        if not self.order:
            return "(no instructions traced)"
        start = min(record.decoded for record in self.order)
        lines = []
        for record in self.order:
            lane = [" "] * width
            for label, cycle in record.stages():
                offset = cycle - start
                if 0 <= offset < width:
                    lane[offset] = label
            marker = "x" if record.squashed is not None else " "
            lines.append(f"t{record.tid} {record.pc:5d} "
                         f"{record.text:28.28s}{marker}|{''.join(lane)}|")
        header = (f"cycles {start}..{start + width - 1} "
                  f"(D=decode X=issue W=writeback C=commit K=squash)")
        return header + "\n" + "\n".join(lines)
