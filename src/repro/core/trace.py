"""Pipeline tracing: per-instruction lifecycle records.

Attach a :class:`Tracer` to a :class:`~repro.core.pipeline.PipelineSim`
to record when each instruction was fetched, decoded, issued, written
back, and committed (or squashed), then render a textual pipeline
diagram — handy for debugging schedules and for teaching what the
machine does cycle by cycle.

The tracer is an event-bus sink (see :mod:`repro.obs.events`), not a
method wrapper: it subscribes via ``sim.add_sink`` and receives the
same explicit hook-point events every other sink does. In particular it
sees the fast-forward engine's stall events, so tracing a run with
``fast_forward=True`` neither changes any cycle count nor mislabels
skipped spans (both were failure modes of the old wrapping approach).

Usage::

    sim = PipelineSim(program, config)
    tracer = Tracer.attach(sim, limit=200)
    sim.run()
    print(tracer.render())
"""


class TraceRecord:
    """Lifecycle of one instruction through the pipeline."""

    __slots__ = ("tag", "tid", "pc", "text", "decoded", "issued",
                 "completed", "committed", "squashed")

    def __init__(self, tag, tid, pc, text, decoded):
        self.tag = tag
        self.tid = tid
        self.pc = pc
        self.text = text
        self.decoded = decoded
        self.issued = None
        self.completed = None
        self.committed = None
        self.squashed = None

    def stages(self):
        """(label, cycle) pairs for the stages this instruction reached."""
        out = [("D", self.decoded)]
        if self.issued is not None:
            out.append(("X", self.issued))
        if self.completed is not None:
            out.append(("W", self.completed))
        if self.committed is not None:
            out.append(("C", self.committed))
        if self.squashed is not None:
            out.append(("K", self.squashed))
        return out


class Tracer:
    """Records instruction lifecycles from the pipeline's event bus."""

    def __init__(self, limit=1000):
        self.limit = limit
        self.records = {}
        self.order = []
        #: (first skipped cycle, span) per fast-forward jump.
        self.idle_spans = []
        #: Skipped cycles per stall-class reason ("sync", "dcache-miss",
        #: "fu-contention", "su-full", "fetch-idle", "decode-stall") —
        #: the skip engine labels every jumped span with the class the
        #: attribution layer would have charged those cycles to.
        self.skip_reasons = {}

    @classmethod
    def attach(cls, sim, limit=1000):
        """Subscribe a new tracer to ``sim``'s event bus."""
        tracer = cls(limit=limit)
        sim.add_sink(tracer)
        return tracer

    # --------------------------------------------------------- event sink

    def __call__(self, event):
        kind = event.kind
        if kind == "decode":
            if len(self.order) >= self.limit:
                return
            cycle = event.cycle
            tid = event.tid
            for tag, pc, text in zip(event.tags, event.pcs, event.texts):
                if len(self.order) >= self.limit:
                    break
                record = TraceRecord(tag, tid, pc, text, cycle)
                self.records[tag] = record
                self.order.append(record)
        elif kind == "issue":
            record = self.records.get(event.tag)
            if record is not None:
                record.issued = event.cycle
        elif kind == "writeback":
            record = self.records.get(event.tag)
            if record is not None:
                record.completed = event.cycle
        elif kind == "commit":
            records = self.records
            cycle = event.cycle
            for tag in event.tags:
                record = records.get(tag)
                if record is not None:
                    record.committed = cycle
        elif kind == "squash":
            records = self.records
            cycle = event.cycle
            for tag in event.tags:
                record = records.get(tag)
                if record is not None:
                    record.squashed = cycle
        elif kind == "stall":
            self.idle_spans.append((event.cycle, event.span))
            reasons = self.skip_reasons
            reason = event.reason
            reasons[reason] = reasons.get(reason, 0) + event.span

    # ---------------------------------------------------------- rendering

    def span(self):
        """(first, last) cycle touched by any traced stage, or ``None``."""
        cycles = [cycle for record in self.order
                  for _, cycle in record.stages()]
        if not cycles:
            return None
        return min(cycles), max(cycles)

    def render(self, width=60, start=None):
        """Text pipeline diagram: one line per traced instruction.

        Stage letters: D decode, X issue, W writeback, C commit,
        K squashed (killed). ``start`` selects the window's first cycle;
        it is clamped into the traced cycle range, so a window that
        would fall entirely outside it still renders the nearest
        in-range cycles instead of an empty (or crashing) diagram.
        """
        traced = self.span()
        if traced is None:
            return "(no instructions traced)"
        first, last = traced
        if start is None:
            start = first
        else:
            # Clamp to the traced range: at most starting on the last
            # traced cycle, at least on the first.
            start = max(first, min(start, last))
        lines = []
        for record in self.order:
            lane = [" "] * width
            for label, cycle in record.stages():
                offset = cycle - start
                if 0 <= offset < width:
                    lane[offset] = label
            marker = "x" if record.squashed is not None else " "
            lines.append(f"t{record.tid} {record.pc:5d} "
                         f"{record.text:28.28s}{marker}|{''.join(lane)}|")
        header = (f"cycles {start}..{start + width - 1} "
                  f"(D=decode X=issue W=writeback C=commit K=squash)")
        return header + "\n" + "\n".join(lines)
