"""Instruction unit: per-thread PCs, block fetch, and fetch policies.

One aligned block of up to four contiguous instructions is fetched per
cycle, all from the same thread; which thread is chosen by the active
:class:`~repro.core.config.FetchPolicy`:

* **True Round Robin** — a modulo-N counter advanced every clock tick,
  irrespective of thread state; a non-fetchable thread's slot is wasted.
* **Masked Round Robin** — round robin over threads that are not
  *masked*; a thread is masked while it is failing to commit from the
  lower-most reorder-buffer block.
* **Conditional Switch** — keep fetching the same thread until the
  decoder sees a switch-trigger instruction (integer divide, FP
  multiply/divide, or a synchronization primitive), then rotate.

The instruction cache is perfect (100% hits), as in the paper.
"""

from repro.core.config import BLOCK, FetchPolicy
from repro.obs.events import MaskEvent


class ThreadContext:
    """Fetch-side state of one thread."""

    __slots__ = ("tid", "pc", "fetch_halted", "jalr_wait", "done",
                 "stall_until")

    def __init__(self, tid, entry_pc):
        self.tid = tid
        self.pc = entry_pc
        self.fetch_halted = False
        self.jalr_wait = None  # tag of the unresolved jalr, if stalled
        self.done = False
        self.stall_until = 0  # instruction-cache miss stall

    def fetchable(self, now=None):
        if self.done or self.fetch_halted or self.jalr_wait is not None:
            return False
        if now is not None and now < self.stall_until:
            return False
        return True

    def redirect(self, pc):
        """Point fetch at a new PC (mispredict recovery / jalr resolve)."""
        self.pc = pc
        self.fetch_halted = False
        self.jalr_wait = None


class FetchedInstr:
    """One pre-decoded instruction leaving the instruction unit."""

    __slots__ = ("pc", "instr", "predicted_taken", "predicted_target")

    def __init__(self, pc, instr, predicted_taken=False, predicted_target=None):
        self.pc = pc
        self.instr = instr
        self.predicted_taken = predicted_taken
        self.predicted_target = predicted_target


class FetchUnit:
    """Selects a thread each cycle and fetches one block for it."""

    def __init__(self, config, program, predictor, threads):
        self.config = config
        self.program = program
        self.predictor = predictor
        self.threads = threads
        self.policy = config.fetch_policy
        self._rr_counter = 0
        self._rr_pointer = 0
        self._current = 0  # conditional-switch active thread
        self._switch_pending = False
        self.masked = [False] * config.nthreads
        #: Callable tid -> in-flight instruction count, set by the
        #: pipeline; used by the ICOUNT policy.
        self.occupancy_of = None
        #: Per-tid in-flight counts (the scheduling unit's ``_tid_count``
        #: list), set by the pipeline. When present, the ICOUNT policy
        #: reads it directly instead of calling ``occupancy_of`` — valid
        #: because ``select_thread`` only runs while the fetch buffer is
        #: empty, when SU occupancy *is* the thread's full occupancy.
        self.tid_counts = None
        #: Event bus (shared with the pipeline); None unless a sink is
        #: attached, in which case mask transitions are emitted.
        self.bus = None
        # Reusable FetchedInstr objects: the fetch buffer lives exactly
        # one cycle (filled by fetch, drained by decode or discarded on
        # a squash before the next fetch), so the items can be pooled
        # instead of allocated per instruction.
        self._item_pool = [FetchedInstr(0, None) for _ in range(BLOCK)]
        # Static decoded-block cache: starting PC -> (items, next_pc,
        # halts) for blocks whose walk is input-independent (no
        # conditional branch, no jalr), or None for blocks that must be
        # re-walked each fetch because they consult predictor state.
        # ``False`` marks a PC not yet classified.
        self._static_blocks = {}

    # ------------------------------------------------------ thread choice

    def select_thread(self, cycle):
        """Thread to fetch for this cycle, or ``None`` (slot wasted).

        True RR advances its modulo-N counter once per fetch
        *opportunity*: a thread that is waiting on an event loses its
        slot (as the paper specifies), but cycles where the front end is
        structurally blocked do not advance the counter — otherwise a
        periodic commit pattern can phase-lock against the counter and
        starve half the threads indefinitely.
        """
        # ``thread.fetchable(cycle)`` is inlined below (attribute tests
        # on the hot path); keep the conditions in sync.
        n = self.config.nthreads
        if self.policy is FetchPolicy.TRUE_RR:
            thread = self.threads[self._rr_counter % n]
            self._rr_counter += 1
            if (thread.done or thread.fetch_halted
                    or thread.jalr_wait is not None
                    or cycle < thread.stall_until):
                return None
            return thread
        if self.policy is FetchPolicy.MASKED_RR:
            masked = self.masked
            for offset in range(n):
                thread = self.threads[(self._rr_pointer + offset) % n]
                if not (thread.done or thread.fetch_halted
                        or thread.jalr_wait is not None
                        or cycle < thread.stall_until
                        or masked[thread.tid]):
                    self._rr_pointer = (thread.tid + 1) % n
                    return thread
            return None
        if self.policy is FetchPolicy.ICOUNT:
            best = None
            best_key = None
            counts = self.tid_counts
            occupancy_of = self.occupancy_of
            pointer = self._rr_pointer
            # Rotation without a per-candidate modulo: walk the thread
            # list from the pointer, then wrap once.
            threads = self.threads
            for thread in threads[pointer:] + threads[:pointer]:
                if (thread.done or thread.fetch_halted
                        or thread.jalr_wait is not None
                        or cycle < thread.stall_until):
                    continue
                if counts is not None:
                    key = counts[thread.tid]
                elif occupancy_of is not None:
                    key = occupancy_of(thread.tid)
                else:
                    key = 0
                if best is None or key < best_key:
                    best, best_key = thread, key
            if best is not None:
                self._rr_pointer = (best.tid + 1) % n
            return best
        # Conditional switch.
        if self._switch_pending:
            self._switch_pending = False
            self._advance_current()
        if not self.threads[self._current].fetchable(cycle):
            self._advance_current(cycle)
        thread = self.threads[self._current]
        return thread if thread.fetchable(cycle) else None

    def _advance_current(self, cycle=None):
        n = self.config.nthreads
        for offset in range(1, n + 1):
            candidate = (self._current + offset) % n
            if self.threads[candidate].fetchable(cycle):
                self._current = candidate
                return

    def fetch_horizon(self, now):
        """Next-event horizon of the front end (fast-forward protocol).

        Returns ``now`` when some thread could be selected this cycle
        (the front end is not provably stalled), the earliest
        ``stall_until`` among otherwise-fetchable threads when every
        candidate is waiting out an instruction-cache refill, or
        ``None`` when no *timer* can unblock fetch — the remaining
        blockers (mask updates, jalr resolution, redirects) all ride
        writeback or commit events, which the pipeline's horizon covers
        separately.

        Under masked round-robin a fetchable-but-masked thread is
        treated as unfetchable: masks only change at commit time, so a
        span in which every candidate is masked is inert until the next
        commit-enabling event, and ``select_thread`` provably mutates
        nothing meanwhile (the rotation pointer moves only on an actual
        selection).
        """
        masked = self.masked if self.policy is FetchPolicy.MASKED_RR else None
        horizon = None
        for thread in self.threads:
            if (thread.done or thread.fetch_halted
                    or thread.jalr_wait is not None):
                continue
            if masked is not None and masked[thread.tid]:
                continue
            stall = thread.stall_until
            if stall <= now:
                return now
            if horizon is None or stall < horizon:
                horizon = stall
        return horizon

    def note_idle_cycles(self, cycles):
        """Replay ``cycles`` consecutive idle :meth:`select_thread` calls.

        The idle-cycle fast-forward skips cycles where no thread is
        fetchable, but some policies mutate state even on a wasted slot:
        True RR advances its modulo counter once per call, and
        Conditional Switch consumes a pending switch (rotating with the
        ``fetchable(None)`` relaxation) the first time. Masked RR and
        ICOUNT only move their pointers when a thread is actually
        selected, so an idle run leaves them untouched.
        """
        if self.policy is FetchPolicy.TRUE_RR:
            self._rr_counter += cycles
        elif self.policy is FetchPolicy.COND_SWITCH and self._switch_pending:
            self._switch_pending = False
            self._advance_current()

    def note_switch_trigger(self):
        """Decoder saw a switch-trigger instruction (Conditional Switch)."""
        if self.policy is FetchPolicy.COND_SWITCH:
            self._switch_pending = True

    def set_mask(self, tid, masked, now=0):
        """Masked-RR: suspend/resume fetching for ``tid``.

        Only actual transitions are recorded (the pipeline re-asserts
        the desired mask state every cycle), so an attached sink sees
        one :class:`~repro.obs.events.MaskEvent` per suspend/resume.
        """
        if self.masked[tid] == masked:
            return
        self.masked[tid] = masked
        bus = self.bus
        if bus is not None:
            bus.emit(MaskEvent(now, tid, masked))

    # ------------------------------------------------------- block fetch

    def fetch_block(self, thread):
        """Fetch one aligned block for ``thread``, updating its PC.

        Fetching stops at the block boundary, after a predicted-taken
        control transfer, at a ``halt``, or at a ``jalr`` whose target
        the BTB cannot supply (the thread then stalls until the ``jalr``
        resolves).

        Blocks that contain no conditional branch and no ``jalr`` are
        *static*: the walk depends only on the starting PC (``j``/``jal``
        are always predicted taken with a fixed target), so it is done
        once per run and memoized — a fetch then costs one dict hit.
        Blocks that consult predictor state are re-walked every time.
        """
        pc = thread.pc
        cached = self._static_blocks.get(pc, False)
        if cached is False:
            cached = self._build_static_block(pc)
            self._static_blocks[pc] = cached
        if cached is not None:
            items, next_pc, halts = cached
            if halts:
                thread.fetch_halted = True
            thread.pc = next_pc
            return items
        instructions = self.program.instructions
        limit = len(instructions)
        room = BLOCK - pc % BLOCK
        pool = self._item_pool
        count = 0
        for _ in range(room):
            if not 0 <= pc < limit:
                thread.fetch_halted = True
                break
            instr = instructions[pc]
            item = pool[count]
            count += 1
            item.pc = pc
            item.instr = instr
            kind = instr.info.ctl_kind
            if kind == 0:
                item.predicted_taken = False
                item.predicted_target = None
                pc += 1
            elif kind == 1:  # conditional branch
                taken = self.predictor.predict(pc, thread.tid)
                item.predicted_taken = taken
                item.predicted_target = pc + 1 + instr.imm if taken else pc + 1
                if taken:
                    pc = item.predicted_target
                    break
                pc += 1
            elif kind == 2:  # j / jal
                item.predicted_taken = True
                item.predicted_target = instr.imm
                pc = instr.imm
                break
            elif kind == 3:  # jalr
                target = self.predictor.btb_lookup(pc, thread.tid)
                item.predicted_taken = True
                item.predicted_target = target
                if target is None:
                    thread.jalr_wait = -1  # tag filled in by decode
                else:
                    pc = target
                break
            else:  # halt
                item.predicted_taken = False
                item.predicted_target = None
                thread.fetch_halted = True
                pc += 1
                break
        if thread.jalr_wait is None:
            thread.pc = pc
        return pool[:count]

    def _build_static_block(self, pc):
        """Memoizable walk from ``pc``, or ``None`` if input-dependent.

        Mirrors the dynamic walk in :meth:`fetch_block` for the static
        opcode kinds only (plain, ``j``/``jal``, ``halt``, running off
        the program): the resulting items, next PC, and halt flag are
        identical every time this PC starts a block. The cached
        ``FetchedInstr`` objects are immutable once built — decode only
        reads them — so one list is shared across every fetch.
        """
        instructions = self.program.instructions
        limit = len(instructions)
        items = []
        halts = False
        for _ in range(BLOCK - pc % BLOCK):
            if not 0 <= pc < limit:
                halts = True
                break
            instr = instructions[pc]
            kind = instr.info.ctl_kind
            if kind == 1 or kind == 3:  # branch / jalr: predictor state
                return None
            item = FetchedInstr(pc, instr)
            items.append(item)
            if kind == 0:
                pc += 1
            elif kind == 2:  # j / jal: statically predicted taken
                item.predicted_taken = True
                item.predicted_target = instr.imm
                pc = instr.imm
                break
            else:  # halt
                halts = True
                pc += 1
                break
        return items, pc, halts
