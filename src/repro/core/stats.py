"""Statistics collected by one pipeline-simulator run."""

from repro.isa.opcodes import FuClass


class SimStats:
    """Counters and derived metrics for a simulation."""

    def __init__(self, config):
        self.config = config
        self.cycles = 0
        self.committed = 0
        self.committed_per_thread = [0] * config.nthreads
        #: Cycle at which each thread's halt committed (-1 = never).
        self.finish_cycle = [-1] * config.nthreads
        self.fetched_blocks = 0
        self.fetched_instructions = 0
        self.fetch_idle_cycles = 0
        self.decode_stall_cycles = 0
        self.su_stall_cycles = 0
        self.commit_blocks = 0
        self.squashed = 0
        self.mispredicts = 0
        self.branches = 0
        self.su_occupancy_sum = 0
        # Per functional unit instance: busy-cycle accumulators.
        self.fu_busy = {cls: [0] * count
                        for cls, count in config.fu_counts.items()}
        self.issued = 0
        # Filled in at the end of a run:
        self.cache_accesses = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.icache_accesses = 0
        #: None ("n/a") until an instruction cache is actually modeled
        #: and accessed — a default of 1.0 reads as "perfect cache" on
        #: rows where nothing was measured.
        self.icache_hit_rate = None
        self.predictor_accuracy = 1.0
        # Observability payloads (repro.obs), populated only when the
        # corresponding collector was attached to the simulator:
        #: {category: cycles} from StallAttribution, or None.
        self.stall_breakdown = None
        #: IntervalMetrics.to_dict() histograms, or None.
        self.interval_metrics = None

    @property
    def ipc(self):
        """Committed instructions per cycle."""
        if self.cycles == 0:
            return 0.0
        return self.committed / self.cycles

    @property
    def cache_hit_rate(self):
        """Data-cache hit fraction, or None when nothing was accessed."""
        if self.cache_accesses == 0:
            return None
        return self.cache_hits / self.cache_accesses

    @property
    def avg_su_occupancy(self):
        if self.cycles == 0:
            return 0.0
        return self.su_occupancy_sum / self.cycles

    def fu_utilization(self, fu_class, index):
        """Fraction of cycles functional unit ``index`` of a class was busy."""
        if self.cycles == 0:
            return 0.0
        return self.fu_busy[fu_class][index] / self.cycles

    def extra_fu_usage(self, baseline_counts):
        """Utilization of units beyond a baseline configuration.

        Reproduces the paper's Table 3 metric: for each class, the
        percentage of total cycles each *extra* unit (index >= the
        baseline count) was in use. Returns ``{FuClass: [fractions]}``.
        """
        usage = {}
        for cls, counts in self.fu_busy.items():
            base = baseline_counts.get(cls, 0)
            extra = [self.fu_utilization(cls, i)
                     for i in range(base, len(counts))]
            if extra:
                usage[cls] = extra
        return usage

    def to_dict(self):
        """Plain-data snapshot of every counter (JSON-serializable).

        ``config`` is deliberately excluded — the consumer (disk cache,
        parallel harness) already knows which configuration produced the
        run and supplies it again to :meth:`from_dict`.
        """
        return {
            "cycles": self.cycles,
            "committed": self.committed,
            "committed_per_thread": list(self.committed_per_thread),
            "finish_cycle": list(self.finish_cycle),
            "fetched_blocks": self.fetched_blocks,
            "fetched_instructions": self.fetched_instructions,
            "fetch_idle_cycles": self.fetch_idle_cycles,
            "decode_stall_cycles": self.decode_stall_cycles,
            "su_stall_cycles": self.su_stall_cycles,
            "commit_blocks": self.commit_blocks,
            "squashed": self.squashed,
            "mispredicts": self.mispredicts,
            "branches": self.branches,
            "su_occupancy_sum": self.su_occupancy_sum,
            "fu_busy": {cls.value: list(busy)
                        for cls, busy in self.fu_busy.items()},
            "issued": self.issued,
            "cache_accesses": self.cache_accesses,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "icache_accesses": self.icache_accesses,
            "icache_hit_rate": self.icache_hit_rate,
            "predictor_accuracy": self.predictor_accuracy,
            "stall_breakdown": self.stall_breakdown,
            "interval_metrics": self.interval_metrics,
        }

    @classmethod
    def from_dict(cls, config, data):
        """Rebuild a :class:`SimStats` recorded under ``config``."""
        stats = cls(config)
        for name, value in data.items():
            if name == "fu_busy":
                stats.fu_busy = {FuClass(key): list(busy)
                                 for key, busy in value.items()}
            else:
                setattr(stats, name, value)
        return stats

    def summary(self):
        """Human-readable multi-line run summary."""
        lines = [
            f"cycles:              {self.cycles}",
            f"instructions:        {self.committed} (IPC {self.ipc:.3f})",
            f"per-thread retired:  {self.committed_per_thread}",
            f"branches:            {self.branches} "
            f"(prediction accuracy {self.predictor_accuracy:.1%})",
            f"mispredict squashes: {self.mispredicts} "
            f"({self.squashed} instructions squashed)",
            f"cache:               {self.cache_accesses} accesses, "
            f"hit rate "
            + (f"{self.cache_hit_rate:.1%}" if self.cache_hit_rate is not None
               else "n/a"),
            f"SU stalls:           {self.su_stall_cycles} cycles; "
            f"avg occupancy {self.avg_su_occupancy:.1f}/{self.config.su_entries}",
            f"fetch idle:          {self.fetch_idle_cycles} cycles",
        ]
        return "\n".join(lines)
