"""Machine configuration (the paper's Table 1 and Table 2).

Where the surviving paper text lost a numeric value to OCR, the value
chosen here is documented in DESIGN.md and kept in one place so the
sensitivity benches can sweep it.
"""

import enum

from repro.isa.opcodes import FuClass
from repro.mem.cache import CacheConfig


class FetchPolicy(enum.Enum):
    """The three fetch policies of Section 5.1, plus ICOUNT.

    ICOUNT is not in the paper: it implements the paper's closing
    suggestion of "a judicious fetch policy, that slows down fetching
    for a thread in a region of low execution rate" using the
    instruction-count heuristic later formalized by Tullsen et al.
    (ISCA 1996): fetch for the fetchable thread with the fewest
    instructions in the front end and scheduling unit.
    """

    TRUE_RR = "true_rr"
    MASKED_RR = "masked_rr"
    COND_SWITCH = "cond_switch"
    ICOUNT = "icount"


class CommitPolicy(enum.Enum):
    """Result-commit policies of Section 5.6."""

    #: Commit only from the lower-most block (classic reorder buffer).
    LOWEST_ONLY = "lowest_only"
    #: Flexible Result Commit: choose among the bottom four blocks.
    FLEXIBLE = "flexible"


#: Default functional-unit configuration (Table 1, "Default no.").
FU_DEFAULT = {
    FuClass.IALU: 4,
    FuClass.IMUL: 1,
    FuClass.IDIV: 1,
    FuClass.LOAD: 1,
    FuClass.STORE: 1,
    FuClass.CT: 1,
    FuClass.FPADD: 1,
    FuClass.FPMUL: 1,
    FuClass.FPDIV: 1,
}

#: Enhanced configuration (Table 1, "Other no."): +2 integer ALUs and one
#: extra unit of every other type (Table 3 reports usage of exactly this
#: set of extra units).
FU_ENHANCED = {
    FuClass.IALU: 6,
    FuClass.IMUL: 2,
    FuClass.IDIV: 2,
    FuClass.LOAD: 2,
    FuClass.STORE: 2,
    FuClass.CT: 1,
    FuClass.FPADD: 2,
    FuClass.FPMUL: 2,
    FuClass.FPDIV: 2,
}

#: Execution latencies in cycles (Table 1, "Latency").
FU_LATENCY = {
    FuClass.IALU: 1,
    FuClass.IMUL: 4,
    FuClass.IDIV: 12,
    FuClass.LOAD: 2,
    FuClass.STORE: 1,
    FuClass.CT: 1,
    FuClass.FPADD: 4,
    FuClass.FPMUL: 6,
    FuClass.FPDIV: 12,
}

#: Block size: instructions fetched, decoded, and committed per block.
BLOCK = 4


def _cache_spec(cache):
    """Plain-data form of a :class:`CacheConfig` (or ``None``)."""
    if cache is None:
        return None
    return dict(size_bytes=cache.size_bytes, line_words=cache.line_words,
                assoc=cache.assoc, miss_penalty=cache.miss_penalty,
                ports=cache.ports)


class MachineConfig:
    """Full hardware configuration (the paper's Table 2).

    Parameters mirror the paper's feature list; every keyword has the
    paper's default value.
    """

    def __init__(self, *,
                 nthreads=4,
                 fetch_policy=FetchPolicy.TRUE_RR,
                 masked_criterion="commit_stall",
                 commit_policy=CommitPolicy.FLEXIBLE,
                 commit_blocks=4,
                 su_entries=64,
                 issue_width=8,
                 writeback_width=8,
                 store_buffer_depth=8,
                 fu_counts=None,
                 fu_latency=None,
                 cache=None,
                 icache=None,
                 bypassing=True,
                 renaming=True,
                 predictor_bits=2,
                 predictor_entries=512,
                 btb_entries=256,
                 shared_predictor=True,
                 predictor_kind="bimodal",
                 mem_words=1 << 20,
                 max_cycles=50_000_000,
                 fast_forward=True):
        self.nthreads = nthreads
        self.fetch_policy = (FetchPolicy(fetch_policy)
                             if not isinstance(fetch_policy, FetchPolicy)
                             else fetch_policy)
        if masked_criterion not in ("commit_stall", "long_latency"):
            raise ValueError(f"unknown masked_criterion {masked_criterion!r}")
        self.masked_criterion = masked_criterion
        self.commit_policy = (CommitPolicy(commit_policy)
                              if not isinstance(commit_policy, CommitPolicy)
                              else commit_policy)
        self.commit_blocks = (commit_blocks
                              if self.commit_policy is CommitPolicy.FLEXIBLE
                              else 1)
        if su_entries % BLOCK:
            raise ValueError(f"su_entries must be a multiple of {BLOCK}")
        self.su_entries = su_entries
        self.su_blocks = su_entries // BLOCK
        self.issue_width = issue_width
        self.writeback_width = writeback_width
        if store_buffer_depth < BLOCK:
            raise ValueError(
                f"store_buffer_depth must be >= {BLOCK} (a block may "
                f"contain up to {BLOCK} stores, which must fit in the "
                f"buffer for the block to commit)")
        self.store_buffer_depth = store_buffer_depth
        self.fu_counts = dict(fu_counts or FU_DEFAULT)
        self.fu_latency = dict(fu_latency or FU_LATENCY)
        self.cache = cache or CacheConfig()
        #: None = perfect instruction cache (100% hits), as in the paper.
        self.icache = icache
        self.bypassing = bypassing
        self.renaming = renaming
        self.predictor_bits = predictor_bits
        self.predictor_entries = predictor_entries
        self.btb_entries = btb_entries
        self.shared_predictor = shared_predictor
        self.predictor_kind = predictor_kind
        self.mem_words = mem_words
        self.max_cycles = max_cycles
        #: Skip provably-idle cycles in one jump. Never changes any
        #: simulated statistic (see docs/PERFORMANCE.md); exposed as a
        #: knob so differential tests can pin the slow path.
        self.fast_forward = fast_forward

    def replace(self, **overrides):
        """A copy of this configuration with some fields overridden."""
        fields = dict(
            nthreads=self.nthreads,
            fetch_policy=self.fetch_policy,
            masked_criterion=self.masked_criterion,
            commit_policy=self.commit_policy,
            commit_blocks=self.commit_blocks,
            su_entries=self.su_entries,
            issue_width=self.issue_width,
            writeback_width=self.writeback_width,
            store_buffer_depth=self.store_buffer_depth,
            fu_counts=self.fu_counts,
            fu_latency=self.fu_latency,
            cache=self.cache,
            icache=self.icache,
            bypassing=self.bypassing,
            renaming=self.renaming,
            predictor_bits=self.predictor_bits,
            predictor_entries=self.predictor_entries,
            btb_entries=self.btb_entries,
            shared_predictor=self.shared_predictor,
            predictor_kind=self.predictor_kind,
            mem_words=self.mem_words,
            max_cycles=self.max_cycles,
            fast_forward=self.fast_forward,
        )
        fields.update(overrides)
        return MachineConfig(**fields)

    def to_spec(self):
        """Plain-data dict that :meth:`from_spec` reconstructs exactly.

        Used to ship configurations across process boundaries (the
        parallel harness pickles only plain data) and to feed the disk
        cache's key hash.
        """
        return dict(
            nthreads=self.nthreads,
            fetch_policy=self.fetch_policy.value,
            masked_criterion=self.masked_criterion,
            commit_policy=self.commit_policy.value,
            commit_blocks=self.commit_blocks,
            su_entries=self.su_entries,
            issue_width=self.issue_width,
            writeback_width=self.writeback_width,
            store_buffer_depth=self.store_buffer_depth,
            fu_counts={cls.value: n for cls, n in self.fu_counts.items()},
            fu_latency={cls.value: n for cls, n in self.fu_latency.items()},
            cache=_cache_spec(self.cache),
            icache=_cache_spec(self.icache),
            bypassing=self.bypassing,
            renaming=self.renaming,
            predictor_bits=self.predictor_bits,
            predictor_entries=self.predictor_entries,
            btb_entries=self.btb_entries,
            shared_predictor=self.shared_predictor,
            predictor_kind=self.predictor_kind,
            mem_words=self.mem_words,
            max_cycles=self.max_cycles,
            fast_forward=self.fast_forward,
        )

    @classmethod
    def from_spec(cls, spec):
        """Inverse of :meth:`to_spec`."""
        fields = dict(spec)
        fields["fetch_policy"] = FetchPolicy(fields["fetch_policy"])
        fields["commit_policy"] = CommitPolicy(fields["commit_policy"])
        fields["fu_counts"] = {FuClass(name): n
                               for name, n in fields["fu_counts"].items()}
        fields["fu_latency"] = {FuClass(name): n
                                for name, n in fields["fu_latency"].items()}
        if fields["cache"] is not None:
            fields["cache"] = CacheConfig(**fields["cache"])
        if fields["icache"] is not None:
            fields["icache"] = CacheConfig(**fields["icache"])
        return cls(**fields)

    def describe(self):
        """Multi-line summary of the configuration."""
        fus = ", ".join(f"{cls.value}={n}" for cls, n in self.fu_counts.items())
        return "\n".join([
            f"threads={self.nthreads} fetch={self.fetch_policy.value} "
            f"commit={self.commit_policy.value}({self.commit_blocks})",
            f"SU={self.su_entries} entries, issue={self.issue_width}/cycle, "
            f"writeback={self.writeback_width}/cycle, "
            f"store buffer={self.store_buffer_depth}",
            f"cache: {self.cache.describe()}",
            f"FUs: {fus}",
        ])
