"""Machine configuration (the paper's Table 1 and Table 2).

Where the surviving paper text lost a numeric value to OCR, the value
chosen here is documented in DESIGN.md and kept in one place so the
sensitivity benches can sweep it.
"""

import enum

from repro.isa.opcodes import FU_CLASSES, FuClass
from repro.mem.cache import CacheConfig


class FetchPolicy(enum.Enum):
    """The three fetch policies of Section 5.1, plus ICOUNT.

    ICOUNT is not in the paper: it implements the paper's closing
    suggestion of "a judicious fetch policy, that slows down fetching
    for a thread in a region of low execution rate" using the
    instruction-count heuristic later formalized by Tullsen et al.
    (ISCA 1996): fetch for the fetchable thread with the fewest
    instructions in the front end and scheduling unit.
    """

    TRUE_RR = "true_rr"
    MASKED_RR = "masked_rr"
    COND_SWITCH = "cond_switch"
    ICOUNT = "icount"


class CommitPolicy(enum.Enum):
    """Result-commit policies of Section 5.6."""

    #: Commit only from the lower-most block (classic reorder buffer).
    LOWEST_ONLY = "lowest_only"
    #: Flexible Result Commit: choose among the bottom four blocks.
    FLEXIBLE = "flexible"


#: Default functional-unit configuration (Table 1, "Default no.").
FU_DEFAULT = {
    FuClass.IALU: 4,
    FuClass.IMUL: 1,
    FuClass.IDIV: 1,
    FuClass.LOAD: 1,
    FuClass.STORE: 1,
    FuClass.CT: 1,
    FuClass.FPADD: 1,
    FuClass.FPMUL: 1,
    FuClass.FPDIV: 1,
}

#: Enhanced configuration (Table 1, "Other no."): +2 integer ALUs and one
#: extra unit of every other type (Table 3 reports usage of exactly this
#: set of extra units).
FU_ENHANCED = {
    FuClass.IALU: 6,
    FuClass.IMUL: 2,
    FuClass.IDIV: 2,
    FuClass.LOAD: 2,
    FuClass.STORE: 2,
    FuClass.CT: 1,
    FuClass.FPADD: 2,
    FuClass.FPMUL: 2,
    FuClass.FPDIV: 2,
}

#: Execution latencies in cycles (Table 1, "Latency").
FU_LATENCY = {
    FuClass.IALU: 1,
    FuClass.IMUL: 4,
    FuClass.IDIV: 12,
    FuClass.LOAD: 2,
    FuClass.STORE: 1,
    FuClass.CT: 1,
    FuClass.FPADD: 4,
    FuClass.FPMUL: 6,
    FuClass.FPDIV: 12,
}

#: Block size: instructions fetched, decoded, and committed per block.
BLOCK = 4


def _cache_spec(cache):
    """Plain-data form of a :class:`CacheConfig` (or ``None``)."""
    if cache is None:
        return None
    return dict(size_bytes=cache.size_bytes, line_words=cache.line_words,
                assoc=cache.assoc, miss_penalty=cache.miss_penalty,
                ports=cache.ports)


class MachineConfig:
    """Full hardware configuration (the paper's Table 2).

    Parameters mirror the paper's feature list; every keyword has the
    paper's default value.
    """

    def __init__(self, *,
                 nthreads=4,
                 fetch_policy=FetchPolicy.TRUE_RR,
                 masked_criterion="commit_stall",
                 commit_policy=CommitPolicy.FLEXIBLE,
                 commit_blocks=4,
                 su_entries=64,
                 issue_width=8,
                 writeback_width=8,
                 store_buffer_depth=8,
                 fu_counts=None,
                 fu_latency=None,
                 cache=None,
                 icache=None,
                 bypassing=True,
                 renaming=True,
                 predictor_bits=2,
                 predictor_entries=512,
                 btb_entries=256,
                 shared_predictor=True,
                 predictor_kind="bimodal",
                 mem_words=1 << 20,
                 max_cycles=50_000_000,
                 hang_cycles=200_000,
                 fast_forward=True):
        self.nthreads = nthreads
        self.fetch_policy = (FetchPolicy(fetch_policy)
                             if not isinstance(fetch_policy, FetchPolicy)
                             else fetch_policy)
        if masked_criterion not in ("commit_stall", "long_latency"):
            raise ValueError(f"unknown masked_criterion {masked_criterion!r}")
        self.masked_criterion = masked_criterion
        self.commit_policy = (CommitPolicy(commit_policy)
                              if not isinstance(commit_policy, CommitPolicy)
                              else commit_policy)
        self.commit_blocks = (commit_blocks
                              if self.commit_policy is CommitPolicy.FLEXIBLE
                              else 1)
        if su_entries % BLOCK:
            raise ValueError(f"su_entries must be a multiple of {BLOCK}")
        self.su_entries = su_entries
        self.su_blocks = su_entries // BLOCK
        self.issue_width = issue_width
        self.writeback_width = writeback_width
        if store_buffer_depth < BLOCK:
            raise ValueError(
                f"store_buffer_depth must be >= {BLOCK} (a block may "
                f"contain up to {BLOCK} stores, which must fit in the "
                f"buffer for the block to commit)")
        self.store_buffer_depth = store_buffer_depth
        self.fu_counts = dict(fu_counts or FU_DEFAULT)
        self.fu_latency = dict(fu_latency or FU_LATENCY)
        self.cache = cache or CacheConfig()
        #: None = perfect instruction cache (100% hits), as in the paper.
        self.icache = icache
        self.bypassing = bypassing
        self.renaming = renaming
        self.predictor_bits = predictor_bits
        self.predictor_entries = predictor_entries
        self.btb_entries = btb_entries
        self.shared_predictor = shared_predictor
        self.predictor_kind = predictor_kind
        self.mem_words = mem_words
        self.max_cycles = max_cycles
        #: No-progress watchdog: raise
        #: :class:`~repro.core.pipeline.SimulationHang` (with a machine
        #: state dump) when this many consecutive cycles pass without a
        #: single block committing. ``None`` disables the watchdog and
        #: falls back to the blunt ``max_cycles`` guard. Like
        #: ``max_cycles``, it cannot change a completed run's statistics
        #: and is excluded from the result-cache key.
        self.hang_cycles = hang_cycles
        #: Skip provably-idle cycles in one jump. Never changes any
        #: simulated statistic (see docs/PERFORMANCE.md); exposed as a
        #: knob so differential tests can pin the slow path.
        self.fast_forward = fast_forward

    def replace(self, **overrides):
        """A copy of this configuration with some fields overridden."""
        fields = dict(
            nthreads=self.nthreads,
            fetch_policy=self.fetch_policy,
            masked_criterion=self.masked_criterion,
            commit_policy=self.commit_policy,
            commit_blocks=self.commit_blocks,
            su_entries=self.su_entries,
            issue_width=self.issue_width,
            writeback_width=self.writeback_width,
            store_buffer_depth=self.store_buffer_depth,
            fu_counts=self.fu_counts,
            fu_latency=self.fu_latency,
            cache=self.cache,
            icache=self.icache,
            bypassing=self.bypassing,
            renaming=self.renaming,
            predictor_bits=self.predictor_bits,
            predictor_entries=self.predictor_entries,
            btb_entries=self.btb_entries,
            shared_predictor=self.shared_predictor,
            predictor_kind=self.predictor_kind,
            mem_words=self.mem_words,
            max_cycles=self.max_cycles,
            hang_cycles=self.hang_cycles,
            fast_forward=self.fast_forward,
        )
        fields.update(overrides)
        return MachineConfig(**fields)

    def to_spec(self):
        """Plain-data dict that :meth:`from_spec` reconstructs exactly.

        Used to ship configurations across process boundaries (the
        parallel harness pickles only plain data) and to feed the disk
        cache's key hash.
        """
        return dict(
            nthreads=self.nthreads,
            fetch_policy=self.fetch_policy.value,
            masked_criterion=self.masked_criterion,
            commit_policy=self.commit_policy.value,
            commit_blocks=self.commit_blocks,
            su_entries=self.su_entries,
            issue_width=self.issue_width,
            writeback_width=self.writeback_width,
            store_buffer_depth=self.store_buffer_depth,
            fu_counts={cls.value: n for cls, n in self.fu_counts.items()},
            fu_latency={cls.value: n for cls, n in self.fu_latency.items()},
            cache=_cache_spec(self.cache),
            icache=_cache_spec(self.icache),
            bypassing=self.bypassing,
            renaming=self.renaming,
            predictor_bits=self.predictor_bits,
            predictor_entries=self.predictor_entries,
            btb_entries=self.btb_entries,
            shared_predictor=self.shared_predictor,
            predictor_kind=self.predictor_kind,
            mem_words=self.mem_words,
            max_cycles=self.max_cycles,
            hang_cycles=self.hang_cycles,
            fast_forward=self.fast_forward,
        )

    @classmethod
    def from_spec(cls, spec):
        """Inverse of :meth:`to_spec`."""
        fields = dict(spec)
        fields["fetch_policy"] = FetchPolicy(fields["fetch_policy"])
        fields["commit_policy"] = CommitPolicy(fields["commit_policy"])
        fields["fu_counts"] = {FuClass(name): n
                               for name, n in fields["fu_counts"].items()}
        fields["fu_latency"] = {FuClass(name): n
                                for name, n in fields["fu_latency"].items()}
        if fields["cache"] is not None:
            fields["cache"] = CacheConfig(**fields["cache"])
        if fields["icache"] is not None:
            fields["icache"] = CacheConfig(**fields["icache"])
        return cls(**fields)

    def validate(self, program=None):
        """Reject nonsensical configurations with actionable errors.

        ``__init__`` already rejects malformed individual fields (bad
        enum values, SU size not a multiple of the block size, a store
        buffer smaller than a block); :meth:`validate` adds the
        cross-field and semantic checks that would otherwise surface as
        a deadlocked or garbage simulation. With a ``program`` it also
        proves every functional-unit class the program actually uses
        has at least one unit — a zero-unit needed class is a
        guaranteed hang, diagnosed here in microseconds instead of
        after ``max_cycles`` of simulation.

        Raises :class:`ValueError` listing every problem found; returns
        ``self`` so construction can chain (``MachineConfig(...)
        .validate()``).
        """
        problems = []
        if self.nthreads < 1:
            problems.append(f"nthreads={self.nthreads}: need at least one "
                            f"resident thread")
        if self.issue_width < 1:
            problems.append(f"issue_width={self.issue_width}: the machine "
                            f"could never issue an instruction")
        if self.writeback_width < 1:
            problems.append(f"writeback_width={self.writeback_width}: "
                            f"results could never complete")
        if self.commit_blocks < 1:
            problems.append(f"commit_blocks={self.commit_blocks}: no block "
                            f"could ever retire")
        if self.su_entries < BLOCK:
            problems.append(f"su_entries={self.su_entries}: the scheduling "
                            f"unit cannot hold even one {BLOCK}-instruction "
                            f"block")
        if self.max_cycles < 1:
            problems.append(f"max_cycles={self.max_cycles}: must be >= 1")
        if self.hang_cycles is not None and self.hang_cycles < 1:
            problems.append(f"hang_cycles={self.hang_cycles}: must be >= 1 "
                            f"(or None to disable the watchdog)")
        if self.mem_words < 1:
            problems.append(f"mem_words={self.mem_words}: must be >= 1")
        if self.predictor_entries < 1 or self.predictor_bits < 1:
            problems.append(
                f"predictor_entries={self.predictor_entries}, "
                f"predictor_bits={self.predictor_bits}: the predictor "
                f"needs at least one entry of at least one bit")
        for cls in FU_CLASSES:
            count = self.fu_counts.get(cls, 0)
            if count < 0:
                problems.append(f"fu_counts[{cls.value}]={count}: negative "
                                f"unit count")
            latency = self.fu_latency.get(cls)
            if latency is None or latency < 1:
                problems.append(f"fu_latency[{cls.value}]={latency!r}: every "
                                f"class needs a latency >= 1")
        if self.fu_counts.get(FuClass.CT, 0) < 1:
            problems.append(
                f"fu_counts[{FuClass.CT.value}]=0: every program ends in a "
                f"halt, which needs the control-transfer unit")
        if program is not None:
            used = {FU_CLASSES[instr.info.fu_index]
                    for instr in program.instructions}
            for cls in sorted(used, key=lambda c: c.value):
                if self.fu_counts.get(cls, 0) < 1:
                    problems.append(
                        f"fu_counts[{cls.value}]=0 but the program uses "
                        f"that class: it could never issue (guaranteed "
                        f"hang)")
            if len(program.data) > self.mem_words:
                problems.append(
                    f"mem_words={self.mem_words} is smaller than the "
                    f"program's {len(program.data)}-word data image")
        if problems:
            raise ValueError("invalid MachineConfig: " + "; ".join(problems))
        return self

    def describe(self):
        """Multi-line summary of the configuration."""
        fus = ", ".join(f"{cls.value}={n}" for cls, n in self.fu_counts.items())
        return "\n".join([
            f"threads={self.nthreads} fetch={self.fetch_policy.value} "
            f"commit={self.commit_policy.value}({self.commit_blocks})",
            f"SU={self.su_entries} entries, issue={self.issue_width}/cycle, "
            f"writeback={self.writeback_width}/cycle, "
            f"store buffer={self.store_buffer_depth}",
            f"cache: {self.cache.describe()}",
            f"FUs: {fus}",
        ])
