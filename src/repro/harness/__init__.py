"""Experiment harness: drivers that regenerate every table and figure.

Each function in :mod:`repro.harness.experiments` corresponds to one
section of the paper's evaluation and returns plain data structures;
:mod:`repro.harness.tables` renders them as the tables/series the paper
reports. Runs are memoized per (workload, configuration) so experiments
that share a configuration (e.g. the single-threaded base case) reuse
results.
"""

from repro.harness.runner import Runner, RunResult
from repro.harness.diskcache import CacheCorruptionWarning, DiskResultCache
from repro.harness.parallel import (GridError, GridInterrupted, JobFailure,
                                    cross, default_workers, run_grid)
from repro.harness.experiments import (
    cache_study,
    commit_study,
    fetch_policy_study,
    fu_study,
    fu_usage_study,
    speedup_summary,
    su_depth_study,
    thread_sweep,
)
from repro.harness.tables import format_table, series_table

__all__ = [
    "CacheCorruptionWarning",
    "DiskResultCache",
    "GridError",
    "GridInterrupted",
    "JobFailure",
    "RunResult",
    "Runner",
    "cache_study",
    "commit_study",
    "cross",
    "default_workers",
    "fetch_policy_study",
    "format_table",
    "fu_study",
    "fu_usage_study",
    "run_grid",
    "series_table",
    "speedup_summary",
    "su_depth_study",
    "thread_sweep",
]
