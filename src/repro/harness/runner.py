"""Memoizing simulation runner used by every experiment."""

from repro.core import MachineConfig, PipelineSim


class RunResult:
    """Outcome of one simulation run."""

    __slots__ = ("workload", "nthreads", "stats", "checksum", "verified")

    def __init__(self, workload, nthreads, stats, checksum, verified):
        self.workload = workload
        self.nthreads = nthreads
        self.stats = stats
        self.checksum = checksum
        self.verified = verified

    @property
    def cycles(self):
        return self.stats.cycles

    def __repr__(self):
        return (f"RunResult({self.workload.name}, nthreads={self.nthreads}, "
                f"cycles={self.cycles}, verified={self.verified})")


def _config_key(config):
    cache = config.cache
    icache = config.icache
    ickey = (None if icache is None
             else (icache.size_bytes, icache.line_words, icache.assoc,
                   icache.miss_penalty, icache.ports))
    fus = tuple(sorted((cls.value, n) for cls, n in config.fu_counts.items()))
    lats = tuple(sorted((cls.value, n) for cls, n in config.fu_latency.items()))
    return (config.nthreads, config.fetch_policy.value,
            config.masked_criterion,
            config.commit_policy.value, config.commit_blocks,
            config.su_entries, config.issue_width, config.writeback_width,
            config.store_buffer_depth, fus, lats,
            cache.size_bytes, cache.line_words, cache.assoc, cache.ports,
            cache.miss_penalty, ickey, config.bypassing, config.renaming,
            config.predictor_bits, config.predictor_entries,
            config.shared_predictor, config.predictor_kind)


class Runner:
    """Runs workloads on configurations, caching results.

    Parameters
    ----------
    verify:
        When True (default), every run's checksum is compared against
        the workload's Python mirror; a mismatch raises immediately —
        a performance number from a wrong computation is worthless.
    quiet:
        Suppress the per-run progress line.
    """

    def __init__(self, verify=True, quiet=True):
        self.verify = verify
        self.quiet = quiet
        self._cache = {}

    def run(self, workload, config=None, aligned=False, **overrides):
        """Simulate ``workload`` under ``config`` (plus overrides).

        ``aligned`` compiles the workload with branch-target alignment.
        """
        config = (config or MachineConfig()).replace(**overrides) \
            if overrides else (config or MachineConfig())
        if config.max_cycles > 2_000_000:
            # Benchmarks finish in tens of thousands of cycles; cap the
            # guard so a pathological configuration fails fast instead
            # of burning an hour of single-core simulation.
            config = config.replace(max_cycles=2_000_000)
        key = (workload.name, aligned, _config_key(config))
        if key in self._cache:
            return self._cache[key]
        nthreads = config.nthreads
        program = workload.program(nthreads, aligned=aligned)
        sim = PipelineSim(program, config)
        stats = sim.run()
        checksum = sim.mem(workload.checksum_address(nthreads))
        verified = workload.verify(checksum, nthreads)
        if self.verify and not verified:
            raise AssertionError(
                f"{workload.name} with {nthreads} threads computed "
                f"{checksum!r}, expected {workload.expected(nthreads)!r}")
        result = RunResult(workload, nthreads, stats, checksum, verified)
        self._cache[key] = result
        if not self.quiet:
            print(f"  {workload.name:8s} threads={nthreads} "
                  f"cycles={stats.cycles:8d} ipc={stats.ipc:.2f}")
        return result
