"""Memoizing simulation runner used by every experiment.

The runner caches at two levels:

* an in-memory dict, so experiments sharing a configuration within one
  process (e.g. the single-threaded base case) simulate it once; and
* optionally a :class:`~repro.harness.diskcache.DiskResultCache`, so
  repeated *processes* (a second ``pytest benchmarks/`` session, figure
  regeneration, parallel workers) replay finished runs from JSON
  instead of re-simulating.
"""

import hashlib
import time

from repro.core import MachineConfig, PipelineSim
from repro.core.pipeline import ENGINE_VERSION
from repro.core.stats import SimStats
from repro.harness.diskcache import DiskResultCache


class RunResult:
    """Outcome of one simulation run.

    ``wall_seconds`` is the host time the simulation took when it was
    actually executed (``None`` only for legacy cached payloads); a
    cache replay keeps the original measurement, so ledger records of
    cached results still report the throughput of the real run. For a
    result produced by a batch group (``backend="batch"``) it is the
    amortized per-member share of the batch wall clock — the members
    ran interleaved, so no exclusive per-member time exists.
    """

    __slots__ = ("workload", "nthreads", "stats", "checksum", "verified",
                 "wall_seconds", "backend")

    #: Discriminator mirrored by ``JobFailure.ok = False``: grid callers
    #: can filter mixed result lists with ``r.ok`` instead of isinstance.
    ok = True

    def __init__(self, workload, nthreads, stats, checksum, verified,
                 wall_seconds=None, backend="scalar"):
        self.workload = workload
        self.nthreads = nthreads
        self.stats = stats
        self.checksum = checksum
        self.verified = verified
        self.wall_seconds = wall_seconds
        self.backend = backend

    @property
    def cycles(self):
        return self.stats.cycles

    def __repr__(self):
        return (f"RunResult({self.workload.name}, nthreads={self.nthreads}, "
                f"cycles={self.cycles}, verified={self.verified})")


def _config_key(config):
    cache = config.cache
    icache = config.icache
    ickey = (None if icache is None
             else (icache.size_bytes, icache.line_words, icache.assoc,
                   icache.miss_penalty, icache.ports))
    fus = tuple(sorted((cls.value, n) for cls, n in config.fu_counts.items()))
    lats = tuple(sorted((cls.value, n) for cls, n in config.fu_latency.items()))
    return (config.nthreads, config.fetch_policy.value,
            config.masked_criterion,
            config.commit_policy.value, config.commit_blocks,
            config.su_entries, config.issue_width, config.writeback_width,
            config.store_buffer_depth, fus, lats,
            cache.size_bytes, cache.line_words, cache.assoc, cache.ports,
            cache.miss_penalty, ickey, config.bypassing, config.renaming,
            config.predictor_bits, config.predictor_entries,
            config.shared_predictor, config.predictor_kind,
            config.mem_words)


def program_hash(program):
    """Content digest of an assembled program.

    Hashes the disassembled text, the initial data image, and the entry
    point — everything that determines the simulation outcome. Editing a
    workload kernel therefore invalidates exactly its disk-cache
    entries.
    """
    digest = hashlib.sha256()
    for instr in program.instructions:
        digest.update(instr.text().encode())
        digest.update(b"\n")
    digest.update(repr(program.data).encode())
    digest.update(str(program.entry).encode())
    return digest.hexdigest()


#: Process-level decoded-program cache:
#: ``(workload, nthreads, aligned) -> (Program, program_hash)``.
#: Keyed by workload object identity — the registry
#: (:func:`repro.workloads.by_name`) hands out module singletons, so
#: every grid job and batch group resolving the same name in one
#: process shares one entry (and ad-hoc test workloads can never
#: collide by name alone).
_DECODE_CACHE = {}


def decoded_program(workload, nthreads, aligned=False):
    """Assembled program plus its content hash, decoded once per process.

    Workload objects already memoize *compilation* per ``(nthreads,
    aligned)``; this cache additionally pins the program's content hash
    (otherwise recomputed for every disk-cache key and ledger record of
    a sweep) and pre-builds every ALU/FP execution closure and
    disassembly line, so all later consumers — each scalar job of a
    sweep, each member of a :class:`~repro.core.batch.BatchEngine`
    group — share the same warm, read-only instruction objects.
    """
    key = (workload, nthreads, bool(aligned))
    hit = _DECODE_CACHE.get(key)
    if hit is not None:
        return hit
    from repro.isa.semantics import build_exec
    program = workload.program(nthreads, aligned=aligned)
    for instr in program.instructions:
        try:
            build_exec(instr)
        except ValueError:
            pass  # not an ALU/FP op: executes in a pipeline stage instead
    hit = (program, program_hash(program))
    _DECODE_CACHE[key] = hit
    return hit


class Runner:
    """Runs workloads on configurations, caching results.

    Parameters
    ----------
    verify:
        When True (default), every run's checksum is compared against
        the workload's Python mirror; a mismatch raises immediately —
        a performance number from a wrong computation is worthless.
    quiet:
        Suppress the per-run progress line.
    disk_cache:
        ``None`` (default) for in-memory memoization only; a
        :class:`~repro.harness.diskcache.DiskResultCache` instance; or a
        path-like, which constructs one. Entries are keyed on the
        engine version, the program content, and the full configuration
        (see :mod:`repro.harness.diskcache`).
    instrument:
        Attach stall attribution and interval metrics to every run, so
        results carry ``stats.stall_breakdown`` and
        ``stats.interval_metrics``. Instrumented runs use a distinct
        cache key (same cycle counts, richer payload), so they never
        collide with — or invalidate — plain entries.
    backend:
        ``"scalar"`` (default) runs the interpreter; ``"spec"`` runs a
        config-specialized generated engine (:mod:`repro.core.codegen`)
        — bit-identical statistics, so both backends share the same
        result-cache keys (a cache replay keeps the backend that
        originally executed, mirroring the batch path).
    """

    #: Fields every cached result payload must carry; passed to
    #: :class:`DiskResultCache` as its validation schema so a corrupted
    #: or hand-edited entry is dropped (a miss) instead of crashing
    #: :meth:`_from_payload`.
    RESULT_SCHEMA = ("nthreads", "stats", "checksum", "verified")

    def __init__(self, verify=True, quiet=True, disk_cache=None,
                 instrument=False, backend="scalar"):
        self.verify = verify
        self.quiet = quiet
        if disk_cache is not None and not isinstance(disk_cache,
                                                     DiskResultCache):
            disk_cache = DiskResultCache(disk_cache,
                                         schema=Runner.RESULT_SCHEMA)
        self.disk_cache = disk_cache
        self.instrument = instrument
        if backend not in ("scalar", "spec"):
            raise ValueError(f"unknown Runner backend {backend!r} "
                             f"(expected 'scalar' or 'spec')")
        self.backend = backend
        self._cache = {}

    def run(self, workload, config=None, aligned=False, **overrides):
        """Simulate ``workload`` under ``config`` (plus overrides).

        ``aligned`` compiles the workload with branch-target alignment.
        """
        config = (config or MachineConfig()).replace(**overrides) \
            if overrides else (config or MachineConfig())
        if config.max_cycles > 2_000_000:
            # Benchmarks finish in tens of thousands of cycles; cap the
            # guard so a pathological configuration fails fast instead
            # of burning an hour of single-core simulation.
            config = config.replace(max_cycles=2_000_000)
        key = self._mem_key(workload, aligned, config, self.instrument)
        if key in self._cache:
            return self._cache[key]
        nthreads = config.nthreads
        program, phash = decoded_program(workload, nthreads, aligned=aligned)
        disk = self.disk_cache
        disk_key = None
        if disk is not None:
            disk_key = self._disk_key(key, program, phash)
            payload = disk.get(disk_key)
            if payload is not None:
                result = self._from_payload(workload, config, payload)
                self._cache[key] = result
                return result
        if self.backend == "spec":
            from repro.core.codegen import spec_engine_class
            sim = spec_engine_class(config)(program, config)
        else:
            sim = PipelineSim(program, config)
        if self.instrument:
            attr = sim.attach_attribution()
            sim.attach_metrics()
        start = time.perf_counter()
        stats = sim.run()
        wall_seconds = time.perf_counter() - start
        if self.instrument:
            attr.verify(stats)  # attribution must reconcile exactly
        checksum = sim.mem(workload.checksum_address(nthreads))
        verified = workload.verify(checksum, nthreads)
        if self.verify and not verified:
            raise AssertionError(
                f"{workload.name} with {nthreads} threads computed "
                f"{checksum!r}, expected {workload.expected(nthreads)!r}")
        result = RunResult(workload, nthreads, stats, checksum, verified,
                           wall_seconds, backend=self.backend)
        self._cache[key] = result
        if disk is not None:
            disk.put(disk_key, self._to_payload(result))
        if not self.quiet:
            print(f"  {workload.name:8s} threads={nthreads} "
                  f"cycles={stats.cycles:8d} ipc={stats.ipc:.2f}")
        return result

    @staticmethod
    def _mem_key(workload, aligned, config, instrument=False):
        # Plain runs keep the historical key shape, so existing disk
        # caches stay valid; instrumented runs get a marker element.
        if instrument:
            return (workload.name, aligned, "instrumented",
                    _config_key(config))
        return (workload.name, aligned, _config_key(config))

    @staticmethod
    def _disk_key(key, program, phash=None):
        from repro.harness.diskcache import hash_key
        return hash_key(ENGINE_VERSION, key,
                        phash if phash is not None else program_hash(program))

    @staticmethod
    def _to_payload(result):
        return {
            "nthreads": result.nthreads,
            "stats": result.stats.to_dict(),
            "checksum": result.checksum,
            "verified": result.verified,
            "wall_seconds": result.wall_seconds,
            "backend": result.backend,
        }

    def _from_payload(self, workload, config, payload):
        stats = SimStats.from_dict(config, payload["stats"])
        verified = payload["verified"]
        if self.verify and not verified:
            raise AssertionError(
                f"{workload.name}: cached run recorded a checksum "
                f"mismatch ({payload['checksum']!r})")
        # Legacy payloads (and the seed's) predate the backend field;
        # everything they recorded came from the scalar engine.
        return RunResult(workload, payload["nthreads"], stats,
                         payload["checksum"], verified,
                         payload.get("wall_seconds"),
                         backend=payload.get("backend", "scalar"))
