"""Persistent on-disk cache of generated engine source.

:mod:`repro.core.codegen` turns a configuration shape into specialized
Python source. Generation is cheap but not free, and a sweep fleet
(parallel workers, the ``repro serve`` worker pool) re-derives the same
handful of shapes in every process — so the source is cached on disk,
one ``.py`` file per codegen key, and validated before use.

This is *source text*, not data, so the robustness bar is higher than
the result cache's: a corrupt or tampered entry must never reach
``exec``. The same crash-safety idioms as
:class:`~repro.harness.diskcache.DiskResultCache` apply, plus a
content check:

* **Self-describing entries.** Every file starts with a metadata
  comment recording the file format, ``ENGINE_VERSION``,
  ``CODEGEN_VERSION``, the full codegen key, and a SHA-256 of the
  body. A version or key mismatch is a *transparent miss* (stale,
  regenerated, never reused); a body whose digest does not match its
  header — a flipped byte, a truncated write — is **quarantined** to
  ``<name>.corrupt-<n>`` with a :class:`CacheCorruptionWarning` and
  regenerated. Nothing is silently deleted.
* **Compile-validated, never executed.** ``get`` runs ``compile()``
  (a syntax check only — no code runs) before returning source; files
  that fail to compile are quarantined.
* **Atomic, locked writes.** ``put`` writes a temp file and
  ``os.replace``s it into place under an advisory ``flock``, so
  concurrent workers racing to populate one entry cannot interleave
  partial writes; the first complete write wins and the rest no-op.

Default location: ``~/.cache/repro-sdsp/codegen/``. Override with the
``REPRO_CODEGEN_CACHE`` environment variable (a directory path; the
values ``0``, ``off``, or an empty string disable disk caching).
"""

import hashlib
import itertools
import json
import os
import pathlib
import tempfile
import warnings

from repro.harness.diskcache import CacheCorruptionWarning, _FileLock

#: Environment variable overriding the cache directory (or disabling).
ENV_PATH = "REPRO_CODEGEN_CACHE"

_DEFAULT_DIR = "~/.cache/repro-sdsp/codegen"

#: On-disk entry layout version.
CODECACHE_FORMAT = 1

_META_PREFIX = "# repro-codegen "


def default_dir():
    """Cache directory honouring ``REPRO_CODEGEN_CACHE``; None = disabled."""
    value = os.environ.get(ENV_PATH)
    if value is None:
        return pathlib.Path(_DEFAULT_DIR).expanduser()
    if value.strip().lower() in ("", "0", "off", "none"):
        return None
    return pathlib.Path(value).expanduser()


def _body_digest(body):
    return hashlib.sha256(body.encode()).hexdigest()


class CodegenCache:
    """Directory of generated-source files keyed by codegen key."""

    def __init__(self, root):
        self.root = pathlib.Path(root)
        self.hits = 0
        self.misses = 0
        #: Version/key mismatches answered as transparent misses.
        self.stale = 0
        #: Corrupt files moved aside to ``<name>.corrupt-<n>``.
        self.quarantined = 0

    def _path(self, key):
        return self.root / f"spec-{key[:24]}.py"

    def _versions(self):
        # Imported lazily so light-weight tools do not pay for the
        # simulator import at module load (same idiom as diskcache).
        from repro.core.codegen import CODEGEN_VERSION
        from repro.core.pipeline import ENGINE_VERSION
        return ENGINE_VERSION, CODEGEN_VERSION

    # ------------------------------------------------------------- read

    def get(self, key):
        """Validated source for ``key``, or ``None`` (a miss).

        Never executes cached content: validation is a metadata check,
        a body digest comparison, and a ``compile()`` syntax check.
        """
        path = self._path(key)
        try:
            text = path.read_text()
        except OSError:
            self.misses += 1
            return None
        except UnicodeDecodeError:
            self._quarantine(path, "not valid UTF-8")
            self.misses += 1
            return None
        header, sep, body = text.partition("\n")
        if not sep or not header.startswith(_META_PREFIX):
            self._quarantine(path, "missing metadata header")
            self.misses += 1
            return None
        try:
            meta = json.loads(header[len(_META_PREFIX):])
            if not isinstance(meta, dict):
                raise ValueError("metadata is not an object")
        except ValueError:
            self._quarantine(path, "unparseable metadata header")
            self.misses += 1
            return None
        engine, codegen = self._versions()
        if (meta.get("format") != CODECACHE_FORMAT
                or meta.get("engine") != engine
                or meta.get("codegen") != codegen
                or meta.get("key") != key):
            # Stale (old engine/codegen, or a key-prefix collision):
            # transparently regenerated, never reused.
            self.stale += 1
            self.misses += 1
            return None
        if meta.get("sha") != _body_digest(body):
            self._quarantine(path, "body digest mismatch")
            self.misses += 1
            return None
        try:
            compile(body, str(path), "exec")
        except (SyntaxError, ValueError):
            self._quarantine(path, "source does not compile")
            self.misses += 1
            return None
        self.hits += 1
        return body

    # ------------------------------------------------------------ write

    def put(self, key, source):
        """Persist ``source`` under ``key`` (atomic, locked, idempotent)."""
        path = self._path(key)
        self.root.mkdir(parents=True, exist_ok=True)
        engine, codegen = self._versions()
        meta = {"format": CODECACHE_FORMAT, "engine": engine,
                "codegen": codegen, "key": key,
                "sha": _body_digest(source)}
        text = _META_PREFIX + json.dumps(meta, sort_keys=True) + "\n" + source
        with _FileLock(path):
            try:
                existing = path.read_text()
            except OSError:
                existing = None
            if existing == text:
                return  # a concurrent worker won the race; identical
            fd, tmp = tempfile.mkstemp(dir=str(self.root),
                                       prefix=path.name, suffix=".tmp")
            try:
                with os.fdopen(fd, "w") as handle:
                    handle.write(text)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise

    # ------------------------------------------------------ diagnostics

    def _quarantine(self, path, reason):
        """Move a corrupt entry aside to ``<name>.corrupt-<n>``."""
        for n in itertools.count(1):
            target = path.with_name(f"{path.name}.corrupt-{n}")
            if not target.exists():
                break
        try:
            os.replace(path, target)
        except OSError:
            return  # concurrently removed/quarantined; nothing to keep
        self.quarantined += 1
        warnings.warn(
            f"cached generated source {path} is corrupt ({reason}); "
            f"quarantined to {target} and regenerating",
            CacheCorruptionWarning, stacklevel=4)

    def counters(self):
        """Session counters as a plain dict (tests, telemetry)."""
        return {"hits": self.hits, "misses": self.misses,
                "stale": self.stale, "quarantined": self.quarantined}
