"""One driver per paper experiment (see DESIGN.md's per-experiment index).

All drivers take a :class:`~repro.harness.runner.Runner` plus a workload
list and return plain dictionaries, keyed the way the paper's figures
are organized, so the table formatters and the benchmark suite can
render them directly.
"""

from repro.core import CommitPolicy, FetchPolicy, MachineConfig
from repro.core.config import FU_DEFAULT, FU_ENHANCED
from repro.mem.cache import CacheConfig

DEFAULT_THREADS = 4
THREAD_RANGE = (1, 2, 3, 4, 5, 6)
SU_DEPTHS = (32, 64, 128, 256)

#: Thread counts swept by ``repro report --experiment threads`` — one
#: wider than the paper's Figures 5-6 range, to show the post-peak
#: deterioration continuing at 7-8 resident threads.
REPORT_THREADS = (1, 2, 3, 4, 5, 6, 7, 8)

#: ``repro report`` experiment name -> the EXPERIMENTS.md section the
#: regenerated table corresponds to (kept in sync with that file's
#: headings; see docs/OBSERVABILITY.md).
FIGURE_INDEX = {
    "threads": "Figures 5-6, cycles/IPC vs number of threads",
    "fetch": "Figures 3-4, fetch policies",
    "su": "Figures 9-10, scheduling-unit depth",
    "cache": "Figures 7-8 and Table 2, cache study",
}


def base_case(runner, workload):
    """The paper's base case: single-threaded run, default hardware."""
    return runner.run(workload, MachineConfig(nthreads=1))


# ------------------------------------------------- Figures 3 & 4 (E1/E2)

def fetch_policy_study(runner, workloads, nthreads=DEFAULT_THREADS):
    """Cycles under TrueRR / MaskedRR / CSwitch, plus the base case.

    Returns ``{policy_label: {workload_name: cycles}}`` with an extra
    ``"BaseCase"`` series.
    """
    series = {}
    paper_policies = ((FetchPolicy.TRUE_RR, "TrueRR"),
                      (FetchPolicy.MASKED_RR, "MaskedRR"),
                      (FetchPolicy.COND_SWITCH, "CSwitch"))
    for policy, label in paper_policies:
        config = MachineConfig(nthreads=nthreads, fetch_policy=policy)
        series[label] = {w.name: runner.run(w, config).cycles
                         for w in workloads}
    series["BaseCase"] = {w.name: base_case(runner, w).cycles
                          for w in workloads}
    return series


# ------------------------------------------------- Figures 5 & 6 (E3/E4)

def thread_sweep(runner, workloads, threads=THREAD_RANGE):
    """Cycles for 1..6 threads (True RR, default hardware).

    Returns ``{nthreads: {workload_name: cycles}}``.
    """
    return {n: {w.name: runner.run(w, MachineConfig(nthreads=n)).cycles
                for w in workloads}
            for n in threads}


# --------------------------------------- Figures 7 & 8, Table 2 (E5-E7)

def cache_study(runner, workloads, threads=THREAD_RANGE):
    """Direct-mapped vs set-associative cache across thread counts.

    Returns ``{assoc_label: {nthreads: {"cycles": {name: cycles},
    "hit_rates": {name: rate}}}}`` where ``assoc_label`` is ``"direct"``
    or ``"assoc"``.
    """
    out = {}
    for label, assoc in (("direct", 1), ("assoc", 4)):
        cache = CacheConfig(assoc=assoc)
        per_thread = {}
        for n in threads:
            config = MachineConfig(nthreads=n, cache=cache)
            cycles = {}
            hit_rates = {}
            for w in workloads:
                result = runner.run(w, config)
                cycles[w.name] = result.cycles
                hit_rates[w.name] = result.stats.cache_hit_rate
            per_thread[n] = {"cycles": cycles, "hit_rates": hit_rates}
        out[label] = per_thread
    return out


# ------------------------------------------------ Figures 9 & 10 (E8/E9)

def su_depth_study(runner, workloads, depths=SU_DEPTHS, threads=(1, DEFAULT_THREADS)):
    """Cycles for scheduling units of 32/64/128/256 entries.

    Returns ``{(nthreads, depth): {workload_name: cycles}}``.
    """
    out = {}
    for n in threads:
        for depth in depths:
            config = MachineConfig(nthreads=n, su_entries=depth)
            out[(n, depth)] = {w.name: runner.run(w, config).cycles
                               for w in workloads}
    return out


# --------------------------------------- Figures 11 & 12 (E10/E11)

def fu_study(runner, workloads, threads=(1, DEFAULT_THREADS)):
    """Default vs enhanced functional-unit configurations.

    Returns ``{(nthreads, fu_label): {workload_name: cycles}}`` with
    ``fu_label`` in ``("default", "enhanced")``.
    """
    out = {}
    for n in threads:
        for label, counts in (("default", FU_DEFAULT), ("enhanced", FU_ENHANCED)):
            config = MachineConfig(nthreads=n, fu_counts=counts)
            out[(n, label)] = {w.name: runner.run(w, config).cycles
                               for w in workloads}
    return out


# ----------------------------------------------------- Table 3 (E12)

def fu_usage_study(runner, workloads, nthreads=DEFAULT_THREADS):
    """Average utilization of the enhanced configuration's extra units.

    Returns ``{FuClass: [avg fraction per extra unit]}`` averaged over
    ``workloads`` (the paper averages over each benchmark group).
    """
    config = MachineConfig(nthreads=nthreads, fu_counts=FU_ENHANCED)
    sums = {}
    for w in workloads:
        stats = runner.run(w, config).stats
        for cls, fractions in stats.extra_fu_usage(FU_DEFAULT).items():
            bucket = sums.setdefault(cls, [0.0] * len(fractions))
            for index, fraction in enumerate(fractions):
                bucket[index] += fraction
    count = len(workloads)
    return {cls: [total / count for total in totals]
            for cls, totals in sums.items()}


# -------------------------------------------- Figures 13 & 14 (E13/E14)

def commit_study(runner, workloads, nthreads=DEFAULT_THREADS):
    """Flexible Result Commit vs lowest-block-only commit.

    Returns ``{commit_label: {workload_name: cycles}}``.
    """
    out = {}
    for label, policy in (("Multiple", CommitPolicy.FLEXIBLE),
                          ("Lowest", CommitPolicy.LOWEST_ONLY)):
        config = MachineConfig(nthreads=nthreads, commit_policy=policy)
        out[label] = {w.name: runner.run(w, config).cycles
                      for w in workloads}
    return out


# -------------------------------------------- Section 5.2 summary (E16)

def speedup(multi_cycles, single_cycles):
    """The paper's speedup formula: (Mt - St)/St on performances.

    Performance is 1/cycles, so this equals ``single/multi - 1``.
    """
    return single_cycles / multi_cycles - 1.0


def speedup_summary(runner, workloads, threads=THREAD_RANGE):
    """Peak improvement per benchmark and group averages.

    Returns ``{workload_name: {"peak": fraction, "best_threads": n,
    "per_thread": {n: fraction}}}``.
    """
    sweep = thread_sweep(runner, workloads, threads=threads)
    single = sweep[1] if 1 in sweep else {
        w.name: base_case(runner, w).cycles for w in workloads}
    out = {}
    for w in workloads:
        per_thread = {}
        for n in threads:
            if n == 1:
                continue
            per_thread[n] = speedup(sweep[n][w.name], single[w.name])
        best_n = max(per_thread, key=per_thread.get)
        out[w.name] = {"peak": per_thread[best_n],
                       "best_threads": best_n,
                       "per_thread": per_thread}
    return out
