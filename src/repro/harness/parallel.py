"""Fault-tolerant parallel experiment fan-out over a (workload,
configuration) grid.

Every figure in the evaluation is an embarrassingly parallel grid of
independent simulations, but the simulator itself is single-threaded
Python. :func:`run_grid` fans a job list out over a
``ProcessPoolExecutor`` and merges the results back in input order.

Workload objects carry unpicklable mirror closures, and configurations
carry enum members, so jobs cross the process boundary as plain data:
the workload travels by *name* (resolved in the worker via
:func:`repro.workloads.by_name`) and the configuration as its
:meth:`~repro.core.config.MachineConfig.to_spec` dict.

Fault tolerance
---------------
The original harness used ``pool.map``: one crashed or hung worker lost
the whole sweep, and nothing was persisted until the very end. The
rewrite drives an explicit submit/collect event loop instead:

* **Per-job wall-clock timeouts** (``timeout=``). A job past its
  deadline is presumed hung; the pool is torn down (hung workers cannot
  be reclaimed individually), innocent in-flight jobs are requeued
  uncharged, and the overdue job is charged one attempt.
* **Bounded retries with exponential backoff** (``retries=``,
  ``backoff=``). Crashes, timeouts, and transient exceptions retry;
  deterministic simulation errors (verification mismatches,
  :class:`~repro.core.pipeline.DeadlockError`, config errors) fail
  immediately.
* **``BrokenProcessPool`` recovery.** When a worker dies the pool is
  respawned and only unfinished jobs are requeued. If several jobs were
  in flight the culprit is unknown, so the victims enter *suspect
  isolation*: they re-run one at a time until each either completes or
  crashes alone (and is then charged) — an innocent neighbour is never
  charged for a crasher's death.
* **Incremental persistence.** With a disk cache attached, every
  result is written as it arrives, so a later crash — of a worker *or*
  of the whole process — never loses completed work.
* **Structured failure records.** An unrecoverable job yields a
  :class:`JobFailure` at its slot in the returned list (``strict=True``
  raises :class:`GridError` instead), and every other job still returns
  its correct :class:`~repro.harness.runner.RunResult`.
* **Graceful interruption.** While a grid runs in the main thread,
  SIGINT/SIGTERM trigger an orderly shutdown instead of a half-dead
  pool: pending futures are cancelled, every unfinished job is recorded
  as ``JobFailure(kind="interrupted")``, completed-but-uncollected
  results are harvested, the ledger is flushed and a terminal
  ``sweep-end`` telemetry event is emitted — so ``repro sweep``
  accounting still reconciles after a Ctrl-C — and
  :class:`GridInterrupted` (carrying the full results list) is raised.
  A second signal during the shutdown forces an immediate
  ``KeyboardInterrupt``.

Faults themselves are injectable: pass a
:class:`repro.faults.FaultPlan` as ``fault_plan=`` and the workers
fire deterministic crashes/hangs/exceptions, which is how
``tests/test_faults.py`` proves each recovery path. See
``docs/ROBUSTNESS.md``.

Sweep telemetry
---------------
Pass ``telemetry=`` (a :class:`repro.obs.telemetry.SweepTelemetry`) or
``progress=`` and the event loop narrates itself: one typed event per
job-lifecycle transition (``queued``, ``cache-hit``, ``batched``,
``started``, ``retry``, ``timeout``, ``worker-crash``,
``degraded-to-scalar``, ``done``, ``failed``) plus throttled worker
heartbeats and a final metrics snapshot. Every hook below is a bare
``is None`` predicate — with no hub attached nothing is imported and
nothing is called (the PR-2 zero-overhead contract, enforced by
``tests/test_obs_overhead.py``). See ``docs/OBSERVABILITY.md``.
"""

import os
import signal
import threading
import time
import warnings
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool

from repro.core.config import MachineConfig
from repro.core.pipeline import DeadlockError
from repro.harness.runner import Runner, program_hash

#: Environment variable pinning the worker-pool size (clamped to >= 1).
ENV_WORKERS = "REPRO_WORKERS"

#: Exception types that retrying cannot fix: wrong checksums, cycle
#: budget exhaustion, and malformed jobs reproduce deterministically.
_DETERMINISTIC_ERRORS = (AssertionError, DeadlockError, ValueError,
                         TypeError, KeyError)


class JobFailure:
    """Structured record of one unrecoverable grid job.

    Takes the failed job's slot in :func:`run_grid`'s result list, so
    results and failures stay aligned with the input grid. ``kind`` is
    ``"exception"`` (the job raised), ``"timeout"`` (exceeded the
    per-job wall clock), ``"crash"`` (the worker process died), or
    ``"interrupted"`` (SIGINT/SIGTERM shut the sweep down before the
    job finished).
    """

    __slots__ = ("index", "workload", "spec", "kind", "message", "attempts")

    ok = False  # mirrors RunResult.ok = True; filter mixed lists on r.ok

    def __init__(self, index, workload, spec, kind, message, attempts):
        self.index = index
        self.workload = workload
        self.spec = spec
        self.kind = kind
        self.message = message
        self.attempts = attempts

    def to_dict(self):
        return {"index": self.index, "workload": self.workload,
                "kind": self.kind, "message": self.message,
                "attempts": self.attempts}

    def __repr__(self):
        return (f"JobFailure(index={self.index}, workload={self.workload!r}, "
                f"kind={self.kind!r}, attempts={self.attempts}, "
                f"message={self.message!r})")


class GridError(RuntimeError):
    """``strict=True``: at least one job failed unrecoverably.

    Carries the full ``failures`` list and the partial ``results`` list
    (completed slots hold their :class:`RunResult`; failed slots hold
    the :class:`JobFailure`), so a strict caller still sees — and a
    disk cache has already persisted — every finished job.
    """

    def __init__(self, failures, results):
        self.failures = failures
        self.results = results
        lines = "; ".join(f"job {f.index} ({f.workload}): {f.kind} after "
                          f"{f.attempts} attempt(s)" for f in failures)
        super().__init__(f"{len(failures)} grid job(s) failed: {lines}")


def _signame(signum):
    try:
        return signal.Signals(signum).name
    except (ValueError, TypeError):
        return "signal" if signum is None else f"signal {signum}"


class GridInterrupted(GridError):
    """SIGINT/SIGTERM arrived mid-sweep and the grid shut down cleanly.

    Raised *after* the orderly teardown: every unfinished job sits in
    ``failures`` as a ``kind="interrupted"`` :class:`JobFailure`, every
    finished job's :class:`RunResult` is in ``results`` (and has been
    persisted to the disk cache and appended to the ledger), and the
    telemetry stream — when one was attached — carries one terminal
    event per job plus the final ``sweep-end``.
    """

    def __init__(self, failures, results, signum=None):
        super().__init__(failures, results)
        self.signum = signum
        interrupted = sum(1 for f in failures if f.kind == "interrupted")
        completed = sum(1 for r in results if r is not None and r.ok)
        RuntimeError.__init__(
            self, f"sweep interrupted by {_signame(signum)}: {completed} "
                  f"job(s) completed, {interrupted} recorded as interrupted")


class _InterruptGuard:
    """SIGINT/SIGTERM handler installed for the duration of a grid.

    The first signal raises :class:`KeyboardInterrupt` *in the event
    loop*, which converts it into the graceful-interruption path; any
    further signal raises again from inside that teardown and escapes
    it — the force-quit escape hatch when the teardown itself wedges.
    Only installable from the main thread (the only place Python
    delivers signals); elsewhere :meth:`install` returns ``None`` and
    the grid runs unguarded, exactly as before.
    """

    def __init__(self):
        self.fired = None
        self._previous = {}

    def _handle(self, signum, frame):
        self.fired = signum
        raise KeyboardInterrupt

    @classmethod
    def install(cls):
        if threading.current_thread() is not threading.main_thread():
            return None
        guard = cls()
        for signum in (signal.SIGINT, getattr(signal, "SIGTERM", None)):
            if signum is None:
                continue
            try:
                guard._previous[signum] = signal.signal(signum,
                                                        guard._handle)
            except (ValueError, OSError):
                continue  # exotic host: leave that signal alone
        return guard if guard._previous else None

    def restore(self):
        for signum, previous in self._previous.items():
            try:
                signal.signal(signum, previous)
            except (ValueError, OSError):
                pass
        self._previous = {}


def _job_key(workload, config, aligned, program, instrument=False):
    return Runner._disk_key(
        Runner._mem_key(workload, aligned, config, instrument), program)


def _run_job(job):
    """Worker entry point: simulate one (workload, config) pair."""
    from repro.workloads import by_name

    (wname, spec, aligned, verify, instrument,
     plan, index, attempt, inline, backend) = job
    if plan is not None:
        plan.apply(index, attempt, inline=inline)
    workload = by_name(wname)
    config = MachineConfig.from_spec(spec)
    runner = Runner(verify=verify, instrument=instrument, backend=backend)
    result = runner.run(workload, config, aligned=aligned)
    return Runner._to_payload(result)


def _member_failure(kind, exc_or_message):
    """Per-member failure envelope of a batch group.

    ``retryable`` is decided here, in the worker, from the live
    exception type — the parent only sees the envelope (a pickled
    exception would not survive every transport).
    """
    retryable = (isinstance(exc_or_message, BaseException)
                 and _retryable(exc_or_message))
    return {"ok": False, "kind": kind, "message": str(exc_or_message),
            "retryable": retryable}


def _run_batch_job(job):
    """Worker entry point: simulate one same-program batch group.

    ``job`` carries parallel lists (``specs``, ``indices``,
    ``attempts``) describing the members. Returns a list aligned with
    them: ``{"ok": True, "payload": ...}`` per completed member (the
    payload is :meth:`Runner._to_payload` with ``backend="batch"`` and
    an amortized ``wall_seconds``) or a :func:`_member_failure`
    envelope. One member raising — at fault injection, configuration
    parse, simulation, or verification — never poisons its batch-mates:
    every other member still returns its own outcome.
    """
    from repro.core.batch import BatchEngine
    from repro.harness.runner import RunResult, decoded_program
    from repro.workloads import by_name

    (wname, specs, aligned, verify, instrument,
     plan, indices, attempts, inline) = job
    workload = by_name(wname)
    outs = [None] * len(specs)
    live = []       # positions whose config parsed (and faults passed)
    configs = []
    nthreads = None
    for pos, spec in enumerate(specs):
        try:
            if plan is not None:
                plan.apply(indices[pos], attempts[pos], inline=inline)
            config = MachineConfig.from_spec(spec)
            if nthreads is None:
                nthreads = config.nthreads
            elif config.nthreads != nthreads:
                # Grouping keys on the program hash, and programs are
                # compiled per register partition — a mixed group would
                # silently simulate the wrong binary. Refuse the member.
                raise ValueError(
                    f"batch member nthreads={config.nthreads} does not "
                    f"match the group's program (nthreads={nthreads})")
        except Exception as exc:
            outs[pos] = _member_failure("exception", exc)
            continue
        live.append(pos)
        configs.append(config)
    if not live:
        return outs
    program, _ = decoded_program(workload, nthreads, aligned=aligned)
    engine = BatchEngine(program, configs, instrument=instrument)
    start = time.perf_counter()
    outcomes = engine.run()
    wall = time.perf_counter() - start
    total_cycles = sum(o.stats.cycles for o in outcomes if o.ok)
    checksum_addr = workload.checksum_address(nthreads)
    for pos, outcome in zip(live, outcomes):
        if not outcome.ok:
            outs[pos] = _member_failure("exception", outcome.error)
            continue
        stats = outcome.stats
        # Amortized per-member share of the batch wall clock: the
        # members ran interleaved, so exclusive per-member time does
        # not exist; weight by simulated cycles (the work actually
        # done), falling back to an even split for zero-cycle batches.
        share = (wall * stats.cycles / total_cycles if total_cycles
                 else wall / len(live))
        checksum = outcome.sim.mem(checksum_addr)
        verified = workload.verify(checksum, nthreads)
        if verify and not verified:
            outs[pos] = _member_failure("exception", AssertionError(
                f"{workload.name} with {nthreads} threads computed "
                f"{checksum!r}, expected {workload.expected(nthreads)!r}"))
            continue
        result = RunResult(workload, nthreads, stats, checksum, verified,
                           share, backend="batch")
        outs[pos] = {"ok": True, "payload": Runner._to_payload(result)}
    return outs


def default_workers():
    """Worker count: all cores minus one, at least one.

    The ``REPRO_WORKERS`` environment variable overrides the heuristic
    (clamped to >= 1) so CI and profilers can pin the pool size; a
    non-integer value is ignored with a warning.
    """
    override = os.environ.get(ENV_WORKERS)
    if override:
        try:
            return max(1, int(override))
        except ValueError:
            warnings.warn(f"ignoring non-integer {ENV_WORKERS}="
                          f"{override!r}", RuntimeWarning, stacklevel=2)
    return max(1, (os.cpu_count() or 2) - 1)


class _Job:
    """Parent-side bookkeeping for one in-flight or queued grid job."""

    __slots__ = ("index", "key", "wname", "spec", "attempts", "eligible_at",
                 "deadline", "backend")

    def __init__(self, index, key, wname, spec):
        self.index = index
        self.key = key          # disk-cache key, or None
        self.wname = wname
        self.spec = spec
        self.attempts = 0       # attempts charged (begun and accounted)
        self.eligible_at = 0.0  # monotonic time before which not to submit
        self.deadline = None    # monotonic deadline of the running attempt
        self.backend = "scalar"  # per-job engine: "scalar" or "spec"


class _BatchJob:
    """A group of same-program `_Job`\\ s dispatched as one batch task.

    Quacks enough like a :class:`_Job` for the executor's scheduling
    predicates (``index``/``eligible_at``/``deadline``); attempt
    accounting stays on the member jobs. A batch gets exactly one shot
    as a batch — any member that fails out of it (or the whole group,
    on a crash or timeout) re-enters the queue as scalar singles, which
    keeps every retry/timeout/suspect-isolation path the battle-tested
    scalar one.
    """

    __slots__ = ("members", "wname", "eligible_at", "deadline")

    def __init__(self, members):
        self.members = members
        self.wname = members[0].wname
        self.eligible_at = 0.0
        self.deadline = None

    @property
    def index(self):
        return self.members[0].index


def _group_batches(pending, resolved, aligned, instrument, min_group):
    """Partition pending jobs into batch groups and scalar leftovers.

    Groups key on ``(workload, nthreads, program hash, instrument)`` —
    members of a group share one decoded program, which is what the
    batch engine amortizes. Groups smaller than ``min_group`` stay
    scalar (the amortization would not cover the batch envelope).
    Returns the work-unit list in first-member order, so result slots
    and ledger output stay deterministic.
    """
    from repro.harness.runner import decoded_program

    groups = {}
    for job in pending:
        workload, config = resolved[job.index]
        _, phash = decoded_program(workload, config.nthreads,
                                   aligned=aligned)
        key = (workload.name, config.nthreads, phash, instrument)
        groups.setdefault(key, []).append(job)
    units = []
    for members in groups.values():
        if len(members) >= min_group:
            units.append(_BatchJob(members))
        else:
            units.extend(members)
    units.sort(key=lambda unit: unit.index)
    return units


def _retryable(exc):
    """Can a retry plausibly change the outcome of this exception?"""
    return not isinstance(exc, _DETERMINISTIC_ERRORS)


def _worker_init():
    """Detach pool workers from the parent's signal plumbing.

    Fork-started workers inherit the parent's signal wakeup fd —
    asyncio's self-pipe when the grid runs inside ``repro serve``.
    Without this reset, a SIGTERM delivered to a *worker* (e.g.
    :func:`_kill_pool` recovering from a crash) makes the worker's
    C-level handler write into the PARENT's event-loop pipe, and the
    server mistakes it for its own shutdown signal — a phantom drain.
    """
    try:
        signal.set_wakeup_fd(-1)
    except (ValueError, OSError):
        pass
    for signum in (signal.SIGINT, getattr(signal, "SIGTERM", None)):
        if signum is None:
            continue
        try:
            signal.signal(signum, signal.SIG_DFL)
        except (ValueError, OSError):
            pass


def _kill_pool(pool):
    """Forcibly tear down a pool that may contain hung workers."""
    processes = getattr(pool, "_processes", None)
    processes = list(processes.values()) if processes else []
    for proc in processes:
        try:
            proc.terminate()
        except Exception:
            pass
    try:
        pool.shutdown(wait=False, cancel_futures=True)
    except Exception:
        pass
    for proc in processes:
        try:
            proc.join(timeout=1.0)
        except Exception:
            pass


class _GridExecutor:
    """The submit/collect event loop behind :func:`run_grid`."""

    def __init__(self, *, width, timeout, retries, backoff, verify,
                 aligned, instrument, fault_plan, disk_cache, rebuilder,
                 resolved, results, telemetry=None, interrupt=None):
        self.width = width
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.verify = verify
        self.aligned = aligned
        self.instrument = instrument
        self.fault_plan = fault_plan
        self.disk_cache = disk_cache
        self.rebuilder = rebuilder
        self.resolved = resolved
        self.results = results
        self.telemetry = telemetry  # None => every hook is one predicate
        self.interrupt = interrupt  # _InterruptGuard, for signal naming
        self.interrupted = False
        self.failures = []
        self.queue = deque()
        self.inflight = {}       # future -> _Job
        self.suspects = set()    # job indices under crash suspicion
        self.pool = None

    # -------------------------------------------------------- inline path

    def run_inline(self, units):
        """Execute every work unit in-process (``workers=1``): no pool,
        no per-job timeout enforcement, but identical retry/backoff and
        failure-record semantics. A batch group runs through the batch
        engine exactly once; members that fail out of it re-enter the
        queue as scalar singles."""
        queue = deque(units)
        try:
            while queue:
                unit = queue.popleft()
                if isinstance(unit, _BatchJob):
                    try:
                        queue.extend(self._batch_inline(unit))
                    except KeyboardInterrupt:
                        self._interrupt_unit(unit)
                        raise
                    continue
                job = unit
                while True:
                    job.attempts += 1
                    if self.telemetry is not None:
                        self.telemetry.job_started(job.index, job.wname,
                                                   job.attempts)
                    try:
                        payload = _run_job(self._args(job, inline=True))
                        self._record(job, payload)
                        break
                    except KeyboardInterrupt:
                        self._interrupt_unit(job)
                        raise
                    except Exception as exc:
                        if not self._maybe_retry(job, "exception", exc,
                                                 sleep=True):
                            break
        except KeyboardInterrupt:
            # Inline graceful interruption: the in-flight unit has been
            # recorded by the raiser above; everything still queued is
            # recorded here. A second signal raises out of this drain.
            self.interrupted = True
            while queue:
                self._interrupt_unit(queue.popleft())
        return self.failures

    def _batch_inline(self, batch):
        """One inline batch attempt; returns the members to retry."""
        for member in batch.members:
            member.attempts += 1
            if self.telemetry is not None:
                self.telemetry.job_started(member.index, member.wname,
                                           member.attempts, batched=True)
        try:
            outs = _run_batch_job(self._batch_args(batch, inline=True))
        except Exception as exc:
            # The group raised outside per-member isolation (worker
            # setup, a malformed group): every member shares the outcome.
            outs = [_member_failure("exception", exc)] * len(batch.members)
        return [member for member, out in zip(batch.members, outs)
                if self._absorb_member(member, out, sleep=True)]

    # ---------------------------------------------------------- pool path

    def run_pool(self, jobs):
        self.queue.extend(jobs)
        self.pool = ProcessPoolExecutor(max_workers=self.width,
                                             initializer=_worker_init)
        try:
            while self.queue or self.inflight:
                try:
                    self._submit_eligible()
                    if self.telemetry is not None:
                        self.telemetry.maybe_heartbeat(
                            running=len(self.inflight),
                            queued=len(self.queue))
                    if not self.inflight:
                        self._sleep_until_eligible()
                        continue
                    done = self._wait_for_events()
                    broken = self._collect(done)
                    if broken:
                        self._recover_broken()
                        continue
                    self._reap_overdue()
                except KeyboardInterrupt:
                    self.interrupted = True
                    self._abort_interrupted()
                    break
        finally:
            _kill_pool(self.pool)
        return self.failures

    def _args(self, job, inline):
        return (job.wname, job.spec, self.aligned, self.verify,
                self.instrument, self.fault_plan, job.index,
                job.attempts - 1, inline, job.backend)

    def _batch_args(self, batch, inline):
        members = batch.members
        return (batch.wname, [m.spec for m in members], self.aligned,
                self.verify, self.instrument, self.fault_plan,
                [m.index for m in members],
                [m.attempts - 1 for m in members], inline)

    def _submit_eligible(self):
        """Fill free pool slots with eligible queued work units.

        During suspect isolation only one unit runs at a time, and
        suspects go first, so the culprit of an unattributed crash is
        identified (or exonerated) as quickly as possible.
        """
        cap = 1 if self.suspects else self.width
        now = time.monotonic()
        if self.suspects:
            ordered = sorted(self.queue,
                             key=lambda j: (j.index not in self.suspects,))
        else:
            ordered = list(self.queue)
        for job in ordered:
            if len(self.inflight) >= cap:
                break
            if job.eligible_at > now:
                continue
            self.queue.remove(job)
            batch = isinstance(job, _BatchJob)
            if batch:
                for member in job.members:
                    member.attempts += 1
                task, args = _run_batch_job, self._batch_args(job,
                                                              inline=False)
            else:
                job.attempts += 1
                task, args = _run_job, self._args(job, inline=False)
            try:
                future = self.pool.submit(task, args)
            except (BrokenProcessPool, RuntimeError):
                # Pool died between collections; undo and recover.
                if batch:
                    for member in job.members:
                        member.attempts -= 1
                else:
                    job.attempts -= 1
                self.queue.appendleft(job)
                self._recover_broken()
                return
            if self.timeout is None:
                job.deadline = None
            else:
                # A batch is N simulations in one task; its wall-clock
                # allowance scales with the member count.
                scale = len(job.members) if batch else 1
                job.deadline = now + self.timeout * scale
            self.inflight[future] = job
            if self.telemetry is not None:
                if batch:
                    for member in job.members:
                        self.telemetry.job_started(
                            member.index, member.wname, member.attempts,
                            batched=True)
                else:
                    self.telemetry.job_started(job.index, job.wname,
                                               job.attempts)

    def _sleep_until_eligible(self):
        now = time.monotonic()
        wake = min(job.eligible_at for job in self.queue)
        time.sleep(min(max(wake - now, 0.0) + 0.001, 1.0))

    def _wait_for_events(self):
        """Block until a future settles, a deadline passes, or a queued
        job's backoff expires."""
        now = time.monotonic()
        horizon = None
        for job in self.inflight.values():
            if job.deadline is not None:
                horizon = (job.deadline if horizon is None
                           else min(horizon, job.deadline))
        for job in self.queue:
            if job.eligible_at > now:
                horizon = (job.eligible_at if horizon is None
                           else min(horizon, job.eligible_at))
        timeout = None if horizon is None else max(horizon - now, 0.0) + 0.001
        done, _ = wait(list(self.inflight), timeout=timeout,
                       return_when=FIRST_COMPLETED)
        return done

    def _collect(self, done):
        """Absorb settled futures; returns True when the pool broke."""
        for future in done:
            job = self.inflight.get(future)
            if job is None:
                continue
            exc = future.exception()
            if isinstance(exc, BrokenProcessPool):
                return True
            del self.inflight[future]
            if isinstance(job, _BatchJob):
                if exc is None:
                    for member, out in zip(job.members, future.result()):
                        self._absorb_member(member, out, sleep=False)
                else:
                    # The whole group raised outside per-member
                    # isolation: each member is charged its attempt and
                    # retried (as a scalar single) on its own budget.
                    for member in job.members:
                        self._maybe_retry(member, "exception", exc)
            elif exc is None:
                try:
                    self._record(job, future.result())
                except Exception as rebuild_exc:
                    self._fail(job, "exception", str(rebuild_exc))
                self.suspects.discard(job.index)
            else:
                self._maybe_retry(job, "exception", exc)
        return False

    def _recover_broken(self):
        """A worker died. Keep finished results, respawn the pool, and
        requeue unfinished jobs — charging the crash only when it can be
        attributed to exactly one job."""
        victims = []
        for future, job in list(self.inflight.items()):
            if future.done() and future.exception() is None:
                if isinstance(job, _BatchJob):
                    for member, out in zip(job.members, future.result()):
                        self._absorb_member(member, out, sleep=False)
                else:
                    try:
                        self._record(job, future.result())
                    except Exception as rebuild_exc:
                        self._fail(job, "exception", str(rebuild_exc))
                    self.suspects.discard(job.index)
            else:
                victims.append(job)
        self.inflight.clear()
        _kill_pool(self.pool)
        self.pool = ProcessPoolExecutor(max_workers=self.width,
                                             initializer=_worker_init)
        if self.telemetry is not None and victims:
            indices = []
            for job in victims:
                if isinstance(job, _BatchJob):
                    indices.extend(m.index for m in job.members)
                else:
                    indices.append(job.index)
            self.telemetry.worker_crash(indices)
        if len(victims) == 1 and not isinstance(victims[0], _BatchJob):
            job = victims[0]
            self.suspects.discard(job.index)
            self._maybe_retry(job, "crash",
                              "worker process died (BrokenProcessPool)")
        else:
            # Culprit unknown — several victims, or a batch whose dying
            # member cannot be identified: requeue uncharged, isolate
            # until resolved.
            for job in victims:
                if isinstance(job, _BatchJob):
                    self._disband(job)
                    continue
                job.attempts -= 1
                job.deadline = None
                self.suspects.add(job.index)
                self.queue.append(job)

    def _reap_overdue(self):
        """Presume jobs past their deadline hung; kill and recover."""
        if self.timeout is None or not self.inflight:
            return
        now = time.monotonic()
        overdue = [(future, job) for future, job in self.inflight.items()
                   if job.deadline is not None and now >= job.deadline
                   and not future.done()]
        if not overdue:
            return
        innocents = []
        for future, job in list(self.inflight.items()):
            if future.done():
                del self.inflight[future]
                exc = future.exception()
                if isinstance(job, _BatchJob):
                    if exc is None:
                        for member, out in zip(job.members, future.result()):
                            self._absorb_member(member, out, sleep=False)
                    elif isinstance(exc, BrokenProcessPool):
                        self._disband(job)  # member of record unknown
                    else:
                        for member in job.members:
                            self._maybe_retry(member, "exception", exc)
                elif exc is None:
                    try:
                        self._record(job, future.result())
                    except Exception as rebuild_exc:
                        self._fail(job, "exception", str(rebuild_exc))
                    self.suspects.discard(job.index)
                elif not isinstance(exc, BrokenProcessPool):
                    self._maybe_retry(job, "exception", exc)
                else:
                    self._maybe_retry(
                        job, "crash",
                        "worker process died (BrokenProcessPool)")
            elif (future, job) not in overdue:
                innocents.append(job)
        _kill_pool(self.pool)
        self.pool = ProcessPoolExecutor(max_workers=self.width,
                                             initializer=_worker_init)
        self.inflight.clear()
        for job in innocents:
            # Uncharged: their workers were collateral of the teardown.
            if isinstance(job, _BatchJob):
                for member in job.members:
                    member.attempts -= 1
                job.deadline = None
                self.queue.append(job)  # still a batch; nothing failed
            else:
                job.attempts -= 1
                job.deadline = None
                self.queue.append(job)
        for _, job in overdue:
            if isinstance(job, _BatchJob):
                # Some member hung, but which one is unknowable from
                # outside the process — the timeout cannot be charged
                # to anyone. Disband; the hanger will time out alone.
                self._disband(job, reason="batch exceeded wall clock")
                continue
            self.suspects.discard(job.index)
            if self.telemetry is not None:
                self.telemetry.job_timeout(job.index, job.wname,
                                           job.attempts)
            self._maybe_retry(
                job, "timeout",
                f"exceeded per-job timeout of {self.timeout:g}s")

    # -------------------------------------------------------- accounting

    def _absorb_member(self, member, out, sleep):
        """Absorb one member outcome of a finished batch group.

        Mirrors :meth:`_maybe_retry`'s retry condition and backoff
        schedule exactly, against the worker-computed ``retryable``
        flag. Returns True when the member retries as a scalar single
        (``sleep=True``, the inline path, blocks for the backoff and
        lets the caller requeue; otherwise the member is requeued here
        with its backoff as eligibility time).
        """
        if out["ok"]:
            try:
                self._record(member, out["payload"])
            except Exception as rebuild_exc:
                self._fail(member, "exception", str(rebuild_exc))
            return False
        if not out.get("retryable") or member.attempts > self.retries:
            self._fail(member, out.get("kind", "exception"), out["message"])
            return False
        delay = (self.backoff * (2.0 ** (member.attempts - 1))
                 if self.backoff else 0.0)
        if self.telemetry is not None:
            self.telemetry.degraded_to_scalar(
                member.index, member.wname,
                reason=f"batch member {out.get('kind', 'exception')}; "
                       f"retrying scalar")
            self.telemetry.job_retry(member.index, member.wname,
                                     out.get("kind", "exception"),
                                     member.attempts, delay)
        if sleep:
            if delay:
                time.sleep(delay)
        else:
            member.eligible_at = time.monotonic() + delay
            member.deadline = None
            self.queue.append(member)
        return True

    def _disband(self, batch, reason="batch died as a unit"):
        """Requeue a batch's members uncharged as scalar suspects.

        Used when the batch died as a unit (worker crash, wall-clock
        timeout) and the culprit member is unknown — exactly the
        multi-victim ``BrokenProcessPool`` shape: innocents must not be
        charged, and suspect isolation re-runs everyone one at a time
        until the culprit fails alone (and only then is charged).
        The attempt being uncharged, members emit ``degraded-to-scalar``
        but no ``retry`` event.
        """
        for member in batch.members:
            member.attempts -= 1
            member.deadline = None
            self.suspects.add(member.index)
            self.queue.append(member)
            if self.telemetry is not None:
                self.telemetry.degraded_to_scalar(
                    member.index, member.wname,
                    reason=f"{reason}; suspect isolation")

    def _record(self, job, payload):
        workload, config = self.resolved[job.index]
        result = self.rebuilder._from_payload(workload, config, payload)
        self.results[job.index] = result
        if self.disk_cache is not None and job.key is not None:
            # Persist immediately: a later crash loses nothing finished.
            self.disk_cache.put(job.key, payload)
        if self.telemetry is not None:
            self.telemetry.job_done(
                job.index, job.wname, cycles=result.stats.cycles,
                wall_seconds=result.wall_seconds,
                backend=getattr(result, "backend", "scalar"),
                attempts=job.attempts)

    def _maybe_retry(self, job, kind, exc_or_message, sleep=False):
        """Requeue ``job`` with backoff, or convert it to a failure.

        Returns True when the job was requeued. ``sleep=True`` (inline
        mode) blocks for the backoff instead of scheduling it.
        """
        message = str(exc_or_message)
        retryable = kind in ("timeout", "crash") or (
            isinstance(exc_or_message, BaseException)
            and _retryable(exc_or_message))
        if not retryable or job.attempts > self.retries:
            self._fail(job, kind, message)
            return False
        delay = (self.backoff * (2.0 ** (job.attempts - 1))
                 if self.backoff else 0.0)
        if getattr(job, "backend", "scalar") == "spec":
            # Defense in depth, mirroring the batch disband philosophy:
            # whatever went wrong, the retry runs on the reference
            # interpreter so a codegen-side fault can never strand a job.
            job.backend = "scalar"
            if self.telemetry is not None:
                self.telemetry.degraded_to_scalar(
                    job.index, job.wname,
                    reason=f"spec job {kind}; retrying scalar")
        if self.telemetry is not None:
            self.telemetry.job_retry(job.index, job.wname, kind,
                                     job.attempts, delay)
        if sleep:
            if delay:
                time.sleep(delay)
        else:
            job.eligible_at = time.monotonic() + delay
            job.deadline = None
            self.queue.append(job)
        return True

    def _fail(self, job, kind, message):
        self.suspects.discard(job.index)
        failure = JobFailure(job.index, job.wname, job.spec, kind, message,
                             job.attempts)
        self.failures.append(failure)
        self.results[job.index] = failure
        if self.telemetry is not None:
            self.telemetry.job_failed(job.index, job.wname, kind,
                                      job.attempts, message)

    # ------------------------------------------------------- interruption

    def _interrupt_message(self):
        fired = self.interrupt.fired if self.interrupt is not None else None
        return (f"sweep interrupted by {_signame(fired)} before the job "
                f"finished")

    def _interrupt_unit(self, unit):
        """Record every unfinished member of ``unit`` as interrupted."""
        members = unit.members if isinstance(unit, _BatchJob) else (unit,)
        message = self._interrupt_message()
        for job in members:
            if self.results[job.index] is None:
                self._fail(job, "interrupted", message)

    def _abort_interrupted(self):
        """Graceful pool-path shutdown after a SIGINT/SIGTERM.

        Finished-but-uncollected futures are harvested first — that
        work is done and must not be thrown away — then every job still
        queued or in flight is recorded as ``kind="interrupted"``, so
        each reaches exactly one terminal state and the telemetry
        accounting invariant survives the interruption.
        """
        for future, job in list(self.inflight.items()):
            if not future.done() or future.cancelled() \
                    or future.exception() is not None:
                continue
            del self.inflight[future]
            try:
                if isinstance(job, _BatchJob):
                    for member, out in zip(job.members, future.result()):
                        self._absorb_member(member, out, sleep=False)
                else:
                    self._record(job, future.result())
            except Exception as rebuild_exc:
                self._fail(job, "exception", str(rebuild_exc))
        for future in self.inflight:
            future.cancel()
        for job in self.inflight.values():
            self._interrupt_unit(job)
        self.inflight.clear()
        while self.queue:
            self._interrupt_unit(self.queue.popleft())


def _ledger_append(ledger, resolved, results, cached_indices, timestamp,
                   aligned, sweep_id=None, request_ids=None):
    """Append one ledger record per successful grid result.

    Records are sorted by ``(workload, config_fingerprint)`` — not by
    completion order, which varies run to run with pool scheduling — so
    two invocations of the same grid append identical ledgers and the
    files diff cleanly.
    """
    from repro.obs import ledger as ledger_mod

    if not isinstance(ledger, ledger_mod.RunLedger):
        ledger = ledger_mod.RunLedger(ledger)
    if timestamp is None:
        timestamp = ledger_mod.utc_now_iso()
    keyed = []
    for index, result in enumerate(results):
        if result is None or not result.ok:
            continue
        workload, config = resolved[index]
        fingerprint = ledger_mod.config_fingerprint(config)
        program = workload.program(config.nthreads, aligned=aligned)
        record = ledger_mod.make_record(
            source="run_grid", workload=workload.name, config=config,
            stats=result.stats, timestamp=timestamp,
            program_hash=program_hash(program), checksum=result.checksum,
            verified=result.verified, wall_seconds=result.wall_seconds,
            cached=index in cached_indices,
            backend=getattr(result, "backend", "scalar"),
            sweep_id=sweep_id,
            request_id=(request_ids.get(index)
                        if request_ids is not None else None))
        keyed.append(((workload.name, fingerprint), record))
    keyed.sort(key=lambda pair: pair[0])
    ledger.append_all([record for _, record in keyed])


#: ``backend="auto"``: smallest same-program group routed to the batch
#: engine. Below this the amortization does not cover the batch
#: envelope (group assembly, per-member payload mapping).
AUTO_BATCH_MIN = 4

#: ``backend="auto"``: smallest number of pending scalar jobs sharing a
#: codegen shape (:func:`repro.core.codegen.codegen_key`) for the group
#: to run on the specialized engine. One-off shapes stay on the
#: interpreter — generation would not amortize within the sweep (though
#: the on-disk source cache still amortizes it across sweeps).
AUTO_SPEC_MIN = 2


def _route_spec(singles):
    """``backend="auto"``: move same-shape scalar singles to ``spec``.

    Counts codegen keys across the un-batched jobs; every job whose
    shape repeats at least :data:`AUTO_SPEC_MIN` times runs on the
    specialized engine (the generated class is shared via the process
    and disk codegen caches). Composes with batching: batch groups have
    already been carved out, so spec picks up the same-config remainder.
    """
    from repro.core.codegen import codegen_key

    keys = {}
    for job in singles:
        keys[job.index] = codegen_key(MachineConfig.from_spec(job.spec))
    counts = {}
    for key in keys.values():
        counts[key] = counts.get(key, 0) + 1
    for job in singles:
        if counts[keys[job.index]] >= AUTO_SPEC_MIN:
            job.backend = "spec"


def run_grid(jobs, workers=None, verify=True, disk_cache=None,
             aligned=False, instrument=False, *, backend="scalar",
             timeout=None, retries=2, backoff=0.25, strict=False,
             fault_plan=None, ledger=None, ledger_timestamp=None,
             telemetry=None, progress=None, sweep_id=None,
             request_ids=None):
    """Simulate every ``(workload, config)`` job, in parallel, surviving
    worker crashes, hangs, and transient failures.

    Parameters
    ----------
    jobs:
        Iterable of ``(workload, config)`` pairs; the workload may be a
        workload object or its name.
    workers:
        Process count (default :func:`default_workers`, which honours
        ``REPRO_WORKERS``). ``1`` runs inline without spawning a pool —
        useful under profilers and in tests; inline runs keep the
        retry/failure semantics but cannot enforce ``timeout``.
    verify:
        Check every run's checksum against the workload mirror.
    disk_cache:
        Optional :class:`~repro.harness.diskcache.DiskResultCache` (or
        path-like). Cached jobs are answered without simulation; every
        fresh result is persisted *as it arrives*, so completed work
        survives any later failure.
    instrument:
        Attach stall attribution and interval metrics in every worker;
        the serialized stats then carry ``stall_breakdown`` and
        ``interval_metrics`` (and use a distinct disk-cache key).
    backend:
        ``"scalar"`` (default) simulates one job per work unit, exactly
        as before. ``"batch"`` groups uncached jobs that share a
        decoded program — key ``(workload, nthreads, program hash,
        instrument)`` — and advances each group inside one
        :class:`~repro.core.batch.BatchEngine`. ``"spec"`` runs every
        job on the config-specialized generated engine
        (:mod:`repro.core.codegen`). ``"auto"`` composes them: batch
        for same-program groups of :data:`AUTO_BATCH_MIN` or more,
        spec for remaining jobs whose codegen shape repeats at least
        :data:`AUTO_SPEC_MIN` times, scalar for the rest. Results are
        bit-identical across backends (enforced by ``tests/test_batch
        .py`` and ``tests/test_spec.py``); per-job failure, retry, and
        timeout semantics are preserved per member — one member failing
        never poisons its batch-mates, whose results are kept and whose
        retry budgets are not charged for the culprit's faults, and a
        spec job's retry degrades to the reference interpreter.
    timeout:
        Per-job wall-clock seconds. A job past its deadline is presumed
        hung: its worker pool is torn down, innocents are requeued
        uncharged, and the job is charged one attempt. ``None`` (the
        default) disables the watchdog.
    retries:
        Bounded re-attempts per job after its first try. Crashes,
        timeouts, and transient exceptions retry with exponential
        backoff; deterministic simulation errors never retry.
    backoff:
        Base backoff in seconds; attempt *n* waits ``backoff * 2**(n-1)``.
    strict:
        Raise :class:`GridError` when any job fails unrecoverably
        instead of returning :class:`JobFailure` records in the result
        list.
    fault_plan:
        Optional :class:`repro.faults.FaultPlan`; workers fire its
        deterministic fault rules (testing hook).
    ledger:
        Optional :class:`repro.obs.ledger.RunLedger` (or path-like).
        Every successful result — cache hits included, marked
        ``cached`` — is appended as one durable JSONL record, sorted by
        ``(workload, config_fingerprint)`` so repeat runs of the same
        grid produce byte-identical ledger suffixes. Appended even when
        ``strict`` raises, mirroring the disk cache's
        partial-persistence guarantee.
    ledger_timestamp:
        Timestamp stored on every record this call appends (defaults to
        UTC now); pass a fixed value for reproducible ledgers.
    telemetry:
        Optional :class:`repro.obs.telemetry.SweepTelemetry` hub. The
        event loop emits one typed :class:`SweepEvent` per job-lifecycle
        transition through it, plus throttled heartbeats and a final
        metrics/cache snapshot (``sweep-end``). ``None`` (the default)
        emits nothing and imports nothing — every hook is a bare
        ``is None`` predicate.
    progress:
        Live terminal progress: ``True`` attaches a
        :class:`~repro.obs.telemetry.LiveProgress` on stderr, a stream
        attaches one there, and any callable is subscribed as a raw
        event sink. Builds a fresh hub when ``telemetry`` is not given.
    sweep_id:
        Identifier stamped into this sweep's ledger records (and used
        for the hub built by ``progress=``). Defaults to the attached
        hub's id when one exists, else ``None`` — ledger-only runs are
        never assigned a random id, keeping repeat appends of the same
        grid byte-identical.
    request_ids:
        Optional ``{grid index: correlation id}`` mapping stamped into
        the corresponding ledger records as ``request_id`` (the job
        service passes the ``X-Repro-Request-Id`` of each job's first
        submission). Consulted only inside the ledger append — the
        execution hot path never reads it.

    Returns
    -------
    list aligned with ``jobs``: a
    :class:`~repro.harness.runner.RunResult` per completed job and a
    :class:`JobFailure` per unrecoverable one (unless ``strict``).

    Raises
    ------
    GridInterrupted
        A SIGINT/SIGTERM arrived while the grid ran in the main thread.
        Raised only *after* the graceful teardown: finished results are
        harvested and persisted, every unfinished job is recorded as a
        ``kind="interrupted"`` :class:`JobFailure`, the ledger is
        appended and the telemetry stream (when attached) is terminated
        with a ``sweep-end`` — the exception carries the full
        ``results`` list. A second signal during teardown force-raises
        :class:`KeyboardInterrupt` instead.
    """
    from repro.harness.diskcache import DiskResultCache
    from repro.workloads import by_name

    if backend not in ("scalar", "batch", "spec", "auto"):
        raise ValueError(f"unknown backend {backend!r}; expected "
                         f"'scalar', 'batch', 'spec', or 'auto'")
    if disk_cache is not None and not isinstance(disk_cache,
                                                 DiskResultCache):
        disk_cache = DiskResultCache(disk_cache, schema=Runner.RESULT_SCHEMA)
    if progress is not None and progress is not False:
        from repro.obs.telemetry import LiveProgress, SweepTelemetry

        sink = (progress if callable(progress)
                else LiveProgress() if progress is True
                else LiveProgress(progress))
        if telemetry is None:
            telemetry = SweepTelemetry(sweep_id=sweep_id)
        telemetry.subscribe(sink)
    if telemetry is not None and sweep_id is None:
        sweep_id = telemetry.sweep_id

    resolved = []
    for workload, config in jobs:
        if isinstance(workload, str):
            workload = by_name(workload)
        config.validate()
        resolved.append((workload, config))
    if workers is None:
        workers = default_workers()
    if telemetry is not None:
        telemetry.sweep_start(total=len(resolved), workers=workers,
                              backend=backend)

    rebuilder = Runner(verify=verify)
    results = [None] * len(resolved)
    cached_indices = set()
    pending = []  # _Job records for uncached work
    for index, (workload, config) in enumerate(resolved):
        key = None
        if telemetry is not None:
            telemetry.job_queued(index, workload.name)
        if disk_cache is not None:
            program = workload.program(config.nthreads, aligned=aligned)
            key = _job_key(workload, config, aligned, program, instrument)
            payload = disk_cache.get(key)
            if payload is not None:
                results[index] = rebuilder._from_payload(
                    workload, config, payload)
                cached_indices.add(index)
                if telemetry is not None:
                    telemetry.cache_hit(index, workload.name)
                continue
        pending.append(_Job(index, key, workload.name, config.to_spec()))
    if not pending:
        if ledger is not None:
            _ledger_append(ledger, resolved, results, cached_indices,
                           ledger_timestamp, aligned, sweep_id,
                           request_ids)
        if telemetry is not None:
            telemetry.sweep_end(cache=(disk_cache.counters()
                                       if disk_cache is not None else None))
        return results

    if backend == "scalar":
        units = pending
    elif backend == "spec":
        for job in pending:
            job.backend = "spec"
        units = pending
    else:
        units = _group_batches(pending, resolved, aligned, instrument,
                               min_group=(AUTO_BATCH_MIN
                                          if backend == "auto" else 1))
        if backend == "auto":
            # Compose the backends: same-program groups went to batch
            # above; same-shape scalar leftovers run specialized.
            _route_spec([unit for unit in units
                         if not isinstance(unit, _BatchJob)])
        if telemetry is not None:
            for unit in units:
                if isinstance(unit, _BatchJob):
                    telemetry.batch_formed(
                        [m.index for m in unit.members], unit.wname)
    interrupt = _InterruptGuard.install()
    executor = _GridExecutor(
        width=min(max(1, workers), len(units)), timeout=timeout,
        retries=max(0, retries), backoff=backoff, verify=verify,
        aligned=aligned, instrument=instrument, fault_plan=fault_plan,
        disk_cache=disk_cache, rebuilder=rebuilder, resolved=resolved,
        results=results, telemetry=telemetry, interrupt=interrupt)
    try:
        if workers <= 1 or len(units) == 1:
            failures = executor.run_inline(units)
        else:
            failures = executor.run_pool(units)
    finally:
        if interrupt is not None:
            interrupt.restore()
    if ledger is not None:
        _ledger_append(ledger, resolved, results, cached_indices,
                       ledger_timestamp, aligned, sweep_id,
                       request_ids)
    if telemetry is not None:
        telemetry.sweep_end(cache=(disk_cache.counters()
                                   if disk_cache is not None else None))
    if executor.interrupted:
        raise GridInterrupted(failures, results,
                              interrupt.fired if interrupt else None)
    if strict and failures:
        raise GridError(failures, results)
    return results


def cross(workloads, configs):
    """All ``(workload, config)`` pairs, workloads major — a grid for
    :func:`run_grid`."""
    return [(w, c) for w in workloads for c in configs]
