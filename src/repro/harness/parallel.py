"""Parallel experiment fan-out over a (workload, configuration) grid.

Every figure in the evaluation is an embarrassingly parallel grid of
independent simulations, but the simulator itself is single-threaded
Python. :func:`run_grid` fans a job list out over a
``ProcessPoolExecutor`` and merges the results back in input order.

Workload objects carry unpicklable mirror closures, and configurations
carry enum members, so jobs cross the process boundary as plain data:
the workload travels by *name* (resolved in the worker via
:func:`repro.workloads.by_name`) and the configuration as its
:meth:`~repro.core.config.MachineConfig.to_spec` dict.

When a :class:`~repro.harness.diskcache.DiskResultCache` is supplied,
already-cached jobs never reach the pool, and fresh results are
persisted by the parent process only — workers never touch the cache
file, so there is no write contention.
"""

import os
from concurrent.futures import ProcessPoolExecutor

from repro.core.config import MachineConfig
from repro.harness.runner import Runner, _config_key, program_hash
from repro.workloads import by_name


def _job_key(workload, config, aligned, program, instrument=False):
    return Runner._disk_key(
        Runner._mem_key(workload, aligned, config, instrument), program)


def _run_job(job):
    """Worker entry point: simulate one (workload, config) pair."""
    wname, spec, aligned, verify, instrument = job
    workload = by_name(wname)
    config = MachineConfig.from_spec(spec)
    runner = Runner(verify=verify, instrument=instrument)
    result = runner.run(workload, config, aligned=aligned)
    return Runner._to_payload(result)


def default_workers():
    """Worker count: all cores minus one, at least one."""
    return max(1, (os.cpu_count() or 2) - 1)


def run_grid(jobs, workers=None, verify=True, disk_cache=None,
             aligned=False, instrument=False):
    """Simulate every ``(workload, config)`` job, in parallel.

    Parameters
    ----------
    jobs:
        Iterable of ``(workload, config)`` pairs; the workload may be a
        workload object or its name.
    workers:
        Process count (default :func:`default_workers`). ``1`` runs
        inline without spawning a pool — useful under profilers and in
        tests.
    verify:
        Check every run's checksum against the workload mirror.
    disk_cache:
        Optional :class:`~repro.harness.diskcache.DiskResultCache` (or
        path-like). Cached jobs are answered without simulation; new
        results are persisted.
    instrument:
        Attach stall attribution and interval metrics in every worker;
        the serialized stats then carry ``stall_breakdown`` and
        ``interval_metrics`` (and use a distinct disk-cache key).

    Returns
    -------
    list of :class:`~repro.harness.runner.RunResult`, in job order.
    """
    from repro.harness.diskcache import DiskResultCache

    if disk_cache is not None and not isinstance(disk_cache,
                                                 DiskResultCache):
        disk_cache = DiskResultCache(disk_cache)
    resolved = []
    for workload, config in jobs:
        if isinstance(workload, str):
            workload = by_name(workload)
        resolved.append((workload, config))

    rebuilder = Runner(verify=verify)
    results = [None] * len(resolved)
    pending = []  # (index, disk key or None)
    for index, (workload, config) in enumerate(resolved):
        if disk_cache is None:
            pending.append((index, None))
            continue
        program = workload.program(config.nthreads, aligned=aligned)
        key = _job_key(workload, config, aligned, program, instrument)
        payload = disk_cache.get(key)
        if payload is None:
            pending.append((index, key))
        else:
            results[index] = rebuilder._from_payload(
                workload, config, payload)
    if not pending:
        return results

    job_args = [(resolved[i][0].name, resolved[i][1].to_spec(),
                 aligned, verify, instrument) for i, _ in pending]
    if workers is None:
        workers = default_workers()
    if workers <= 1 or len(pending) == 1:
        payloads = map(_run_job, job_args)
    else:
        pool = ProcessPoolExecutor(max_workers=min(workers, len(pending)))
        with pool:
            payloads = list(pool.map(_run_job, job_args))
    for (index, key), payload in zip(pending, payloads):
        workload, config = resolved[index]
        results[index] = rebuilder._from_payload(workload, config, payload)
        if disk_cache is not None:
            disk_cache.put(key, payload)
    return results


def cross(workloads, configs):
    """All ``(workload, config)`` pairs, workloads major — a grid for
    :func:`run_grid`."""
    return [(w, c) for w in workloads for c in configs]
