"""Fault-tolerant parallel experiment fan-out over a (workload,
configuration) grid.

Every figure in the evaluation is an embarrassingly parallel grid of
independent simulations, but the simulator itself is single-threaded
Python. :func:`run_grid` fans a job list out over a
``ProcessPoolExecutor`` and merges the results back in input order.

Workload objects carry unpicklable mirror closures, and configurations
carry enum members, so jobs cross the process boundary as plain data:
the workload travels by *name* (resolved in the worker via
:func:`repro.workloads.by_name`) and the configuration as its
:meth:`~repro.core.config.MachineConfig.to_spec` dict.

Fault tolerance
---------------
The original harness used ``pool.map``: one crashed or hung worker lost
the whole sweep, and nothing was persisted until the very end. The
rewrite drives an explicit submit/collect event loop instead:

* **Per-job wall-clock timeouts** (``timeout=``). A job past its
  deadline is presumed hung; the pool is torn down (hung workers cannot
  be reclaimed individually), innocent in-flight jobs are requeued
  uncharged, and the overdue job is charged one attempt.
* **Bounded retries with exponential backoff** (``retries=``,
  ``backoff=``). Crashes, timeouts, and transient exceptions retry;
  deterministic simulation errors (verification mismatches,
  :class:`~repro.core.pipeline.DeadlockError`, config errors) fail
  immediately.
* **``BrokenProcessPool`` recovery.** When a worker dies the pool is
  respawned and only unfinished jobs are requeued. If several jobs were
  in flight the culprit is unknown, so the victims enter *suspect
  isolation*: they re-run one at a time until each either completes or
  crashes alone (and is then charged) — an innocent neighbour is never
  charged for a crasher's death.
* **Incremental persistence.** With a disk cache attached, every
  result is written as it arrives, so a later crash — of a worker *or*
  of the whole process — never loses completed work.
* **Structured failure records.** An unrecoverable job yields a
  :class:`JobFailure` at its slot in the returned list (``strict=True``
  raises :class:`GridError` instead), and every other job still returns
  its correct :class:`~repro.harness.runner.RunResult`.

Faults themselves are injectable: pass a
:class:`repro.faults.FaultPlan` as ``fault_plan=`` and the workers
fire deterministic crashes/hangs/exceptions, which is how
``tests/test_faults.py`` proves each recovery path. See
``docs/ROBUSTNESS.md``.
"""

import os
import time
import warnings
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool

from repro.core.config import MachineConfig
from repro.core.pipeline import DeadlockError
from repro.harness.runner import Runner, program_hash

#: Environment variable pinning the worker-pool size (clamped to >= 1).
ENV_WORKERS = "REPRO_WORKERS"

#: Exception types that retrying cannot fix: wrong checksums, cycle
#: budget exhaustion, and malformed jobs reproduce deterministically.
_DETERMINISTIC_ERRORS = (AssertionError, DeadlockError, ValueError,
                         TypeError, KeyError)


class JobFailure:
    """Structured record of one unrecoverable grid job.

    Takes the failed job's slot in :func:`run_grid`'s result list, so
    results and failures stay aligned with the input grid. ``kind`` is
    ``"exception"`` (the job raised), ``"timeout"`` (exceeded the
    per-job wall clock), or ``"crash"`` (the worker process died).
    """

    __slots__ = ("index", "workload", "spec", "kind", "message", "attempts")

    ok = False  # mirrors RunResult.ok = True; filter mixed lists on r.ok

    def __init__(self, index, workload, spec, kind, message, attempts):
        self.index = index
        self.workload = workload
        self.spec = spec
        self.kind = kind
        self.message = message
        self.attempts = attempts

    def to_dict(self):
        return {"index": self.index, "workload": self.workload,
                "kind": self.kind, "message": self.message,
                "attempts": self.attempts}

    def __repr__(self):
        return (f"JobFailure(index={self.index}, workload={self.workload!r}, "
                f"kind={self.kind!r}, attempts={self.attempts}, "
                f"message={self.message!r})")


class GridError(RuntimeError):
    """``strict=True``: at least one job failed unrecoverably.

    Carries the full ``failures`` list and the partial ``results`` list
    (completed slots hold their :class:`RunResult`; failed slots hold
    the :class:`JobFailure`), so a strict caller still sees — and a
    disk cache has already persisted — every finished job.
    """

    def __init__(self, failures, results):
        self.failures = failures
        self.results = results
        lines = "; ".join(f"job {f.index} ({f.workload}): {f.kind} after "
                          f"{f.attempts} attempt(s)" for f in failures)
        super().__init__(f"{len(failures)} grid job(s) failed: {lines}")


def _job_key(workload, config, aligned, program, instrument=False):
    return Runner._disk_key(
        Runner._mem_key(workload, aligned, config, instrument), program)


def _run_job(job):
    """Worker entry point: simulate one (workload, config) pair."""
    from repro.workloads import by_name

    (wname, spec, aligned, verify, instrument,
     plan, index, attempt, inline) = job
    if plan is not None:
        plan.apply(index, attempt, inline=inline)
    workload = by_name(wname)
    config = MachineConfig.from_spec(spec)
    runner = Runner(verify=verify, instrument=instrument)
    result = runner.run(workload, config, aligned=aligned)
    return Runner._to_payload(result)


def default_workers():
    """Worker count: all cores minus one, at least one.

    The ``REPRO_WORKERS`` environment variable overrides the heuristic
    (clamped to >= 1) so CI and profilers can pin the pool size; a
    non-integer value is ignored with a warning.
    """
    override = os.environ.get(ENV_WORKERS)
    if override:
        try:
            return max(1, int(override))
        except ValueError:
            warnings.warn(f"ignoring non-integer {ENV_WORKERS}="
                          f"{override!r}", RuntimeWarning, stacklevel=2)
    return max(1, (os.cpu_count() or 2) - 1)


class _Job:
    """Parent-side bookkeeping for one in-flight or queued grid job."""

    __slots__ = ("index", "key", "wname", "spec", "attempts", "eligible_at",
                 "deadline")

    def __init__(self, index, key, wname, spec):
        self.index = index
        self.key = key          # disk-cache key, or None
        self.wname = wname
        self.spec = spec
        self.attempts = 0       # attempts charged (begun and accounted)
        self.eligible_at = 0.0  # monotonic time before which not to submit
        self.deadline = None    # monotonic deadline of the running attempt


def _retryable(exc):
    """Can a retry plausibly change the outcome of this exception?"""
    return not isinstance(exc, _DETERMINISTIC_ERRORS)


def _kill_pool(pool):
    """Forcibly tear down a pool that may contain hung workers."""
    processes = getattr(pool, "_processes", None)
    processes = list(processes.values()) if processes else []
    for proc in processes:
        try:
            proc.terminate()
        except Exception:
            pass
    try:
        pool.shutdown(wait=False, cancel_futures=True)
    except Exception:
        pass
    for proc in processes:
        try:
            proc.join(timeout=1.0)
        except Exception:
            pass


class _GridExecutor:
    """The submit/collect event loop behind :func:`run_grid`."""

    def __init__(self, *, width, timeout, retries, backoff, verify,
                 aligned, instrument, fault_plan, disk_cache, rebuilder,
                 resolved, results):
        self.width = width
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.verify = verify
        self.aligned = aligned
        self.instrument = instrument
        self.fault_plan = fault_plan
        self.disk_cache = disk_cache
        self.rebuilder = rebuilder
        self.resolved = resolved
        self.results = results
        self.failures = []
        self.queue = deque()
        self.inflight = {}       # future -> _Job
        self.suspects = set()    # job indices under crash suspicion
        self.pool = None

    # -------------------------------------------------------- inline path

    def run_inline(self, jobs):
        """Execute every job in-process (``workers=1``): no pool, no
        per-job timeout enforcement, but identical retry/backoff and
        failure-record semantics."""
        for job in jobs:
            while True:
                job.attempts += 1
                try:
                    payload = _run_job(self._args(job, inline=True))
                    self._record(job, payload)
                    break
                except Exception as exc:
                    if not self._maybe_retry(job, "exception", exc,
                                             sleep=True):
                        break
        return self.failures

    # ---------------------------------------------------------- pool path

    def run_pool(self, jobs):
        self.queue.extend(jobs)
        self.pool = ProcessPoolExecutor(max_workers=self.width)
        try:
            while self.queue or self.inflight:
                self._submit_eligible()
                if not self.inflight:
                    self._sleep_until_eligible()
                    continue
                done = self._wait_for_events()
                broken = self._collect(done)
                if broken:
                    self._recover_broken()
                    continue
                self._reap_overdue()
        finally:
            _kill_pool(self.pool)
        return self.failures

    def _args(self, job, inline):
        return (job.wname, job.spec, self.aligned, self.verify,
                self.instrument, self.fault_plan, job.index,
                job.attempts - 1, inline)

    def _submit_eligible(self):
        """Fill free pool slots with eligible queued jobs.

        During suspect isolation only one job runs at a time, and
        suspects go first, so the culprit of an unattributed crash is
        identified (or exonerated) as quickly as possible.
        """
        cap = 1 if self.suspects else self.width
        now = time.monotonic()
        if self.suspects:
            ordered = sorted(self.queue,
                             key=lambda j: (j.index not in self.suspects,))
        else:
            ordered = list(self.queue)
        for job in ordered:
            if len(self.inflight) >= cap:
                break
            if job.eligible_at > now:
                continue
            self.queue.remove(job)
            job.attempts += 1
            try:
                future = self.pool.submit(_run_job,
                                          self._args(job, inline=False))
            except (BrokenProcessPool, RuntimeError):
                # Pool died between collections; undo and recover.
                job.attempts -= 1
                self.queue.appendleft(job)
                self._recover_broken()
                return
            job.deadline = (now + self.timeout
                            if self.timeout is not None else None)
            self.inflight[future] = job

    def _sleep_until_eligible(self):
        now = time.monotonic()
        wake = min(job.eligible_at for job in self.queue)
        time.sleep(min(max(wake - now, 0.0) + 0.001, 1.0))

    def _wait_for_events(self):
        """Block until a future settles, a deadline passes, or a queued
        job's backoff expires."""
        now = time.monotonic()
        horizon = None
        for job in self.inflight.values():
            if job.deadline is not None:
                horizon = (job.deadline if horizon is None
                           else min(horizon, job.deadline))
        for job in self.queue:
            if job.eligible_at > now:
                horizon = (job.eligible_at if horizon is None
                           else min(horizon, job.eligible_at))
        timeout = None if horizon is None else max(horizon - now, 0.0) + 0.001
        done, _ = wait(list(self.inflight), timeout=timeout,
                       return_when=FIRST_COMPLETED)
        return done

    def _collect(self, done):
        """Absorb settled futures; returns True when the pool broke."""
        for future in done:
            job = self.inflight.get(future)
            if job is None:
                continue
            exc = future.exception()
            if isinstance(exc, BrokenProcessPool):
                return True
            del self.inflight[future]
            if exc is None:
                try:
                    self._record(job, future.result())
                except Exception as rebuild_exc:
                    self._fail(job, "exception", str(rebuild_exc))
                self.suspects.discard(job.index)
            else:
                self._maybe_retry(job, "exception", exc)
        return False

    def _recover_broken(self):
        """A worker died. Keep finished results, respawn the pool, and
        requeue unfinished jobs — charging the crash only when it can be
        attributed to exactly one job."""
        victims = []
        for future, job in list(self.inflight.items()):
            if future.done() and future.exception() is None:
                try:
                    self._record(job, future.result())
                except Exception as rebuild_exc:
                    self._fail(job, "exception", str(rebuild_exc))
                self.suspects.discard(job.index)
            else:
                victims.append(job)
        self.inflight.clear()
        _kill_pool(self.pool)
        self.pool = ProcessPoolExecutor(max_workers=self.width)
        if len(victims) == 1:
            job = victims[0]
            self.suspects.discard(job.index)
            self._maybe_retry(job, "crash",
                              "worker process died (BrokenProcessPool)")
        else:
            # Culprit unknown: requeue uncharged, isolate until resolved.
            for job in victims:
                job.attempts -= 1
                job.deadline = None
                self.suspects.add(job.index)
                self.queue.append(job)

    def _reap_overdue(self):
        """Presume jobs past their deadline hung; kill and recover."""
        if self.timeout is None or not self.inflight:
            return
        now = time.monotonic()
        overdue = [(future, job) for future, job in self.inflight.items()
                   if job.deadline is not None and now >= job.deadline
                   and not future.done()]
        if not overdue:
            return
        innocents = []
        for future, job in list(self.inflight.items()):
            if future.done():
                del self.inflight[future]
                exc = future.exception()
                if exc is None:
                    try:
                        self._record(job, future.result())
                    except Exception as rebuild_exc:
                        self._fail(job, "exception", str(rebuild_exc))
                    self.suspects.discard(job.index)
                elif not isinstance(exc, BrokenProcessPool):
                    self._maybe_retry(job, "exception", exc)
                else:
                    self._maybe_retry(
                        job, "crash",
                        "worker process died (BrokenProcessPool)")
            elif (future, job) not in overdue:
                innocents.append(job)
        _kill_pool(self.pool)
        self.pool = ProcessPoolExecutor(max_workers=self.width)
        self.inflight.clear()
        for job in innocents:
            job.attempts -= 1  # uncharged: their workers were collateral
            job.deadline = None
            self.queue.append(job)
        for _, job in overdue:
            self.suspects.discard(job.index)
            self._maybe_retry(
                job, "timeout",
                f"exceeded per-job timeout of {self.timeout:g}s")

    # -------------------------------------------------------- accounting

    def _record(self, job, payload):
        workload, config = self.resolved[job.index]
        self.results[job.index] = self.rebuilder._from_payload(
            workload, config, payload)
        if self.disk_cache is not None and job.key is not None:
            # Persist immediately: a later crash loses nothing finished.
            self.disk_cache.put(job.key, payload)

    def _maybe_retry(self, job, kind, exc_or_message, sleep=False):
        """Requeue ``job`` with backoff, or convert it to a failure.

        Returns True when the job was requeued. ``sleep=True`` (inline
        mode) blocks for the backoff instead of scheduling it.
        """
        message = str(exc_or_message)
        retryable = kind in ("timeout", "crash") or (
            isinstance(exc_or_message, BaseException)
            and _retryable(exc_or_message))
        if not retryable or job.attempts > self.retries:
            self._fail(job, kind, message)
            return False
        delay = (self.backoff * (2.0 ** (job.attempts - 1))
                 if self.backoff else 0.0)
        if sleep:
            if delay:
                time.sleep(delay)
        else:
            job.eligible_at = time.monotonic() + delay
            job.deadline = None
            self.queue.append(job)
        return True

    def _fail(self, job, kind, message):
        self.suspects.discard(job.index)
        failure = JobFailure(job.index, job.wname, job.spec, kind, message,
                             job.attempts)
        self.failures.append(failure)
        self.results[job.index] = failure


def _ledger_append(ledger, resolved, results, cached_indices, timestamp,
                   aligned):
    """Append one ledger record per successful grid result.

    Records are sorted by ``(workload, config_fingerprint)`` — not by
    completion order, which varies run to run with pool scheduling — so
    two invocations of the same grid append identical ledgers and the
    files diff cleanly.
    """
    from repro.obs import ledger as ledger_mod

    if not isinstance(ledger, ledger_mod.RunLedger):
        ledger = ledger_mod.RunLedger(ledger)
    if timestamp is None:
        timestamp = ledger_mod.utc_now_iso()
    keyed = []
    for index, result in enumerate(results):
        if result is None or not result.ok:
            continue
        workload, config = resolved[index]
        fingerprint = ledger_mod.config_fingerprint(config)
        program = workload.program(config.nthreads, aligned=aligned)
        record = ledger_mod.make_record(
            source="run_grid", workload=workload.name, config=config,
            stats=result.stats, timestamp=timestamp,
            program_hash=program_hash(program), checksum=result.checksum,
            verified=result.verified, wall_seconds=result.wall_seconds,
            cached=index in cached_indices)
        keyed.append(((workload.name, fingerprint), record))
    keyed.sort(key=lambda pair: pair[0])
    ledger.append_all([record for _, record in keyed])


def run_grid(jobs, workers=None, verify=True, disk_cache=None,
             aligned=False, instrument=False, *, timeout=None, retries=2,
             backoff=0.25, strict=False, fault_plan=None, ledger=None,
             ledger_timestamp=None):
    """Simulate every ``(workload, config)`` job, in parallel, surviving
    worker crashes, hangs, and transient failures.

    Parameters
    ----------
    jobs:
        Iterable of ``(workload, config)`` pairs; the workload may be a
        workload object or its name.
    workers:
        Process count (default :func:`default_workers`, which honours
        ``REPRO_WORKERS``). ``1`` runs inline without spawning a pool —
        useful under profilers and in tests; inline runs keep the
        retry/failure semantics but cannot enforce ``timeout``.
    verify:
        Check every run's checksum against the workload mirror.
    disk_cache:
        Optional :class:`~repro.harness.diskcache.DiskResultCache` (or
        path-like). Cached jobs are answered without simulation; every
        fresh result is persisted *as it arrives*, so completed work
        survives any later failure.
    instrument:
        Attach stall attribution and interval metrics in every worker;
        the serialized stats then carry ``stall_breakdown`` and
        ``interval_metrics`` (and use a distinct disk-cache key).
    timeout:
        Per-job wall-clock seconds. A job past its deadline is presumed
        hung: its worker pool is torn down, innocents are requeued
        uncharged, and the job is charged one attempt. ``None`` (the
        default) disables the watchdog.
    retries:
        Bounded re-attempts per job after its first try. Crashes,
        timeouts, and transient exceptions retry with exponential
        backoff; deterministic simulation errors never retry.
    backoff:
        Base backoff in seconds; attempt *n* waits ``backoff * 2**(n-1)``.
    strict:
        Raise :class:`GridError` when any job fails unrecoverably
        instead of returning :class:`JobFailure` records in the result
        list.
    fault_plan:
        Optional :class:`repro.faults.FaultPlan`; workers fire its
        deterministic fault rules (testing hook).
    ledger:
        Optional :class:`repro.obs.ledger.RunLedger` (or path-like).
        Every successful result — cache hits included, marked
        ``cached`` — is appended as one durable JSONL record, sorted by
        ``(workload, config_fingerprint)`` so repeat runs of the same
        grid produce byte-identical ledger suffixes. Appended even when
        ``strict`` raises, mirroring the disk cache's
        partial-persistence guarantee.
    ledger_timestamp:
        Timestamp stored on every record this call appends (defaults to
        UTC now); pass a fixed value for reproducible ledgers.

    Returns
    -------
    list aligned with ``jobs``: a
    :class:`~repro.harness.runner.RunResult` per completed job and a
    :class:`JobFailure` per unrecoverable one (unless ``strict``).
    """
    from repro.harness.diskcache import DiskResultCache
    from repro.workloads import by_name

    if disk_cache is not None and not isinstance(disk_cache,
                                                 DiskResultCache):
        disk_cache = DiskResultCache(disk_cache, schema=Runner.RESULT_SCHEMA)
    resolved = []
    for workload, config in jobs:
        if isinstance(workload, str):
            workload = by_name(workload)
        config.validate()
        resolved.append((workload, config))

    rebuilder = Runner(verify=verify)
    results = [None] * len(resolved)
    cached_indices = set()
    pending = []  # _Job records for uncached work
    for index, (workload, config) in enumerate(resolved):
        key = None
        if disk_cache is not None:
            program = workload.program(config.nthreads, aligned=aligned)
            key = _job_key(workload, config, aligned, program, instrument)
            payload = disk_cache.get(key)
            if payload is not None:
                results[index] = rebuilder._from_payload(
                    workload, config, payload)
                cached_indices.add(index)
                continue
        pending.append(_Job(index, key, workload.name, config.to_spec()))
    if not pending:
        if ledger is not None:
            _ledger_append(ledger, resolved, results, cached_indices,
                           ledger_timestamp, aligned)
        return results

    if workers is None:
        workers = default_workers()
    executor = _GridExecutor(
        width=min(max(1, workers), len(pending)), timeout=timeout,
        retries=max(0, retries), backoff=backoff, verify=verify,
        aligned=aligned, instrument=instrument, fault_plan=fault_plan,
        disk_cache=disk_cache, rebuilder=rebuilder, resolved=resolved,
        results=results)
    if workers <= 1 or len(pending) == 1:
        failures = executor.run_inline(pending)
    else:
        failures = executor.run_pool(pending)
    if ledger is not None:
        _ledger_append(ledger, resolved, results, cached_indices,
                       ledger_timestamp, aligned)
    if strict and failures:
        raise GridError(failures, results)
    return results


def cross(workloads, configs):
    """All ``(workload, config)`` pairs, workloads major — a grid for
    :func:`run_grid`."""
    return [(w, c) for w in workloads for c in configs]
