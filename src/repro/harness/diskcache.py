"""Persistent on-disk result cache for simulation runs.

Re-running an experiment grid is dominated by re-simulating
configurations whose outcome cannot have changed. This cache persists
every run's statistics as JSON so a second invocation — a repeated
``pytest benchmarks/`` session, a re-generated figure, a parallel sweep
— replays from disk in milliseconds.

Keying
------
A cached entry is valid only if *nothing that can affect a simulated
cycle count* changed, so the key hashes together:

* :data:`repro.core.pipeline.ENGINE_VERSION` — bumped manually whenever
  a simulator change alters any cycle count; stale entries are then
  ignored (never silently reused) and rewritten on the next run.
* the workload's *program content* (disassembled text, initial data
  image, and entry point), so editing a kernel invalidates its entries
  without touching anything else;
* the full architectural configuration via the runner's
  ``_config_key`` (which deliberately excludes ``fast_forward`` — both
  modes are bit-identical by construction — ``max_cycles``, and
  ``hang_cycles``, none of which can change a completed run's counts).

The default location is ``~/.cache/repro-sdsp/results.json``; override
with the ``REPRO_CACHE`` environment variable or an explicit ``path``.

Robustness
----------
The cache is the crash-safety backstop of the fault-tolerant harness
(see ``docs/ROBUSTNESS.md``), so it must never lose good data to bad
data:

* **Quarantine, not reset.** A file that fails to parse is renamed to
  ``<name>.corrupt-<n>`` and a :class:`CacheCorruptionWarning` is
  emitted; the cache then starts empty. Nothing is silently deleted —
  the corpse stays on disk for diagnosis.
* **Per-entry validation.** Entries are stored in a versioned envelope
  recording the :data:`~repro.core.pipeline.ENGINE_VERSION` that wrote
  them; on load, entries from another engine version are dropped, and
  with a ``schema`` (a tuple of required payload fields) entries whose
  payload is not a dict or misses a required field are dropped too —
  each with a warning, never a crash. Extra payload fields are
  tolerated (forward compatibility). Files written by the pre-envelope
  format load transparently.
* **Advisory locking.** Writes are atomic (temp file + ``os.replace``)
  and *merge-on-save*: the file is re-read and merged immediately
  before writing. The read-merge-write sequence runs under an advisory
  ``flock`` on ``<name>.lock`` where the platform provides one, so
  concurrent writers appending different keys cannot interleave and
  clobber each other's entries (last writer wins only for identical
  keys, which hold identical data).
"""

import itertools
import hashlib
import json
import os
import pathlib
import tempfile
import warnings

try:
    import fcntl
except ImportError:  # non-POSIX: fall back to atomic-replace-only safety
    fcntl = None

#: Environment variable overriding the cache file location.
ENV_PATH = "REPRO_CACHE"

_DEFAULT_PATH = "~/.cache/repro-sdsp/results.json"

#: On-disk format version of the envelope layout written by :meth:`save`.
FILE_FORMAT = 2


class CacheCorruptionWarning(UserWarning):
    """A cache file (or entry) was corrupt and has been quarantined."""


def default_path():
    """Cache file location honouring the ``REPRO_CACHE`` override."""
    return pathlib.Path(
        os.environ.get(ENV_PATH, _DEFAULT_PATH)).expanduser()


def hash_key(*parts):
    """Stable hex digest of arbitrarily nested plain data."""
    text = json.dumps(parts, sort_keys=True, default=str)
    return hashlib.sha256(text.encode()).hexdigest()


def _engine_version():
    # Imported lazily: the cache is also used by light-weight tools that
    # should not pay for the full simulator import at module load.
    from repro.core.pipeline import ENGINE_VERSION
    return ENGINE_VERSION


class _FileLock:
    """Advisory exclusive lock on ``<path>.lock`` (no-op without fcntl)."""

    def __init__(self, path):
        self.path = pathlib.Path(str(path) + ".lock")
        self._handle = None

    def __enter__(self):
        if fcntl is not None:
            self._handle = open(self.path, "a+")
            fcntl.flock(self._handle.fileno(), fcntl.LOCK_EX)
        return self

    def __exit__(self, *exc):
        if self._handle is not None:
            fcntl.flock(self._handle.fileno(), fcntl.LOCK_UN)
            self._handle.close()
            self._handle = None
        return False


class DiskResultCache:
    """JSON-file-backed mapping from run keys to result payloads.

    Parameters
    ----------
    path:
        Cache file; created (with parents) on first save. Defaults to
        :func:`default_path`.
    autosave:
        Persist after every :meth:`put` (default). Disable for bulk
        insertion and call :meth:`save` once at the end.
    schema:
        Optional tuple of field names every payload must carry (e.g.
        ``Runner.RESULT_SCHEMA``). Entries missing a field — or whose
        payload is not a dict — are dropped on load and answered as
        misses by :meth:`get`, with a warning. ``None`` disables
        payload validation (the cache then stores arbitrary JSON).
    """

    def __init__(self, path=None, autosave=True, schema=None):
        self.path = pathlib.Path(path) if path is not None else default_path()
        self.autosave = autosave
        self.schema = tuple(schema) if schema is not None else None
        self.hits = 0
        self.misses = 0
        #: Entries dropped for schema/engine mismatch (diagnostics).
        self.dropped = 0
        #: Corrupt files moved aside to ``<name>.corrupt-<n>``.
        self.quarantined = 0
        self._entries, self._engines = self._load()
        self._dirty = False

    # ----------------------------------------------------------- loading

    def _load(self):
        """Parse the cache file into ``(entries, engines)`` dicts.

        Corrupt files are quarantined (warning, never an exception);
        invalid or stale entries are dropped individually.
        """
        try:
            text = self.path.read_text()
        except OSError:
            return {}, {}
        except UnicodeDecodeError:
            self._quarantine("not valid UTF-8")
            return {}, {}
        try:
            data = json.loads(text)
        except ValueError:
            self._quarantine("not valid JSON")
            return {}, {}
        if not isinstance(data, dict):
            self._quarantine(f"top level is {type(data).__name__}, "
                             f"expected an object")
            return {}, {}
        if data.get("format") == FILE_FORMAT:
            raw = data.get("entries")
            if not isinstance(raw, dict):
                self._quarantine("format-2 file without an entries object")
                return {}, {}
            return self._adopt_envelopes(raw)
        # Pre-envelope format: bare key -> payload mapping with the
        # engine version unrecorded (it is still baked into each key
        # hash, so replay safety is unaffected).
        entries = {}
        engines = {}
        dropped = 0
        for key, payload in data.items():
            if self.schema is not None and not self._payload_ok(payload):
                dropped += 1
                continue
            entries[key] = payload
            engines[key] = None
        self._note_dropped(dropped)
        return entries, engines

    def _adopt_envelopes(self, raw):
        current = _engine_version()
        entries = {}
        engines = {}
        dropped = 0
        for key, envelope in raw.items():
            if not isinstance(envelope, dict) or "payload" not in envelope:
                dropped += 1
                continue
            engine = envelope.get("engine")
            if isinstance(engine, int) and engine != current:
                dropped += 1  # stale engine: ignored, never reused
                continue
            payload = envelope["payload"]
            if self.schema is not None and not self._payload_ok(payload):
                dropped += 1
                continue
            entries[key] = payload
            engines[key] = engine
        self._note_dropped(dropped)
        return entries, engines

    def _payload_ok(self, payload):
        return (isinstance(payload, dict)
                and all(field in payload for field in self.schema))

    def _note_dropped(self, count):
        if count:
            self.dropped += count
            warnings.warn(
                f"dropped {count} invalid or stale cache entr"
                f"{'y' if count == 1 else 'ies'} from {self.path} "
                f"(schema/engine-version validation)",
                CacheCorruptionWarning, stacklevel=4)

    def _quarantine(self, reason):
        """Move the corrupt file aside to ``<name>.corrupt-<n>``."""
        for n in itertools.count(1):
            target = self.path.with_name(f"{self.path.name}.corrupt-{n}")
            if not target.exists():
                break
        try:
            os.replace(self.path, target)
        except OSError:
            return  # concurrently removed/quarantined; nothing to keep
        self.quarantined += 1
        warnings.warn(
            f"cache file {self.path} is corrupt ({reason}); quarantined "
            f"to {target} and starting empty",
            CacheCorruptionWarning, stacklevel=4)

    # --------------------------------------------------------- dict-like

    def __len__(self):
        return len(self._entries)

    def get(self, key):
        """Payload stored under ``key``, or ``None`` (counted as a miss).

        With a ``schema``, an entry whose payload lost a required field
        (e.g. hand-edited or merged from a corrupt writer) is dropped
        and answered as a miss rather than poisoning the caller.
        """
        entry = self._entries.get(key)
        if entry is not None and self.schema is not None \
                and not self._payload_ok(entry):
            del self._entries[key]
            self._engines.pop(key, None)
            self._note_dropped(1)
            entry = None
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        return entry

    def put(self, key, payload):
        """Store ``payload`` (plain data) under ``key``."""
        self._entries[key] = payload
        self._engines[key] = _engine_version()
        self._dirty = True
        if self.autosave:
            self.save()

    def save(self):
        """Atomically persist, merging with concurrent writers first.

        The re-read + merge + replace runs under an advisory file lock,
        so two processes saving different keys both survive. Entries
        are written sorted by key (and objects with sorted fields), so
        the file's bytes depend only on its *contents* — never on the
        completion order of a parallel sweep — and two cache files can
        be diffed line-for-line.
        """
        if not self._dirty:
            return
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with _FileLock(self.path):
            disk_entries, disk_engines = self._load()
            for key, payload in disk_entries.items():
                if key not in self._entries:
                    self._entries[key] = payload
                    self._engines[key] = disk_engines.get(key)
            envelopes = {
                key: {"engine": self._engines.get(key),
                      "payload": self._entries[key]}
                for key in sorted(self._entries)}
            document = {"format": FILE_FORMAT, "entries": envelopes}
            fd, tmp = tempfile.mkstemp(dir=str(self.path.parent),
                                       prefix=self.path.name, suffix=".tmp")
            try:
                with os.fdopen(fd, "w") as handle:
                    json.dump(document, handle, sort_keys=True)
                os.replace(tmp, self.path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        self._dirty = False

    def counters(self):
        """Session counters as a plain dict.

        The shape sweep telemetry embeds in its ``sweep-end`` event and
        ``repro sweep`` renders in its cache-accounting table; also
        handy for tests that want exact numbers without parsing
        :meth:`stats_line`.
        """
        return {"hits": self.hits, "misses": self.misses,
                "dropped": self.dropped, "quarantined": self.quarantined,
                "entries": len(self._entries)}

    def stats_line(self):
        """One-line hit/miss summary for end-of-session reporting."""
        total = self.hits + self.misses
        dropped = f", {self.dropped} dropped" if self.dropped else ""
        quarantined = (f", {self.quarantined} quarantined"
                       if self.quarantined else "")
        return (f"disk result cache: {self.hits}/{total} hits, "
                f"{self.misses} misses, {len(self._entries)} entries"
                f"{dropped}{quarantined} ({self.path})")
