"""Persistent on-disk result cache for simulation runs.

Re-running an experiment grid is dominated by re-simulating
configurations whose outcome cannot have changed. This cache persists
every run's statistics as JSON so a second invocation — a repeated
``pytest benchmarks/`` session, a re-generated figure, a parallel sweep
— replays from disk in milliseconds.

Keying
------
A cached entry is valid only if *nothing that can affect a simulated
cycle count* changed, so the key hashes together:

* :data:`repro.core.pipeline.ENGINE_VERSION` — bumped manually whenever
  a simulator change alters any cycle count; stale entries are then
  ignored (never silently reused) and rewritten on the next run.
* the workload's *program content* (disassembled text, initial data
  image, and entry point), so editing a kernel invalidates its entries
  without touching anything else;
* the full architectural configuration via the runner's
  ``_config_key`` (which deliberately excludes ``fast_forward`` — both
  modes are bit-identical by construction — and ``max_cycles``).

The default location is ``~/.cache/repro-sdsp/results.json``; override
with the ``REPRO_CACHE`` environment variable or an explicit ``path``.

Writes are atomic (temp file + ``os.replace``) and *merge-on-save*: the
file is re-read and merged immediately before writing, so concurrent
processes appending different keys do not clobber each other's entries
(last writer wins only for identical keys, which hold identical data).
"""

import hashlib
import json
import os
import pathlib
import tempfile

#: Environment variable overriding the cache file location.
ENV_PATH = "REPRO_CACHE"

_DEFAULT_PATH = "~/.cache/repro-sdsp/results.json"


def default_path():
    """Cache file location honouring the ``REPRO_CACHE`` override."""
    return pathlib.Path(
        os.environ.get(ENV_PATH, _DEFAULT_PATH)).expanduser()


def hash_key(*parts):
    """Stable hex digest of arbitrarily nested plain data."""
    text = json.dumps(parts, sort_keys=True, default=str)
    return hashlib.sha256(text.encode()).hexdigest()


class DiskResultCache:
    """JSON-file-backed mapping from run keys to result payloads.

    Parameters
    ----------
    path:
        Cache file; created (with parents) on first save. Defaults to
        :func:`default_path`.
    autosave:
        Persist after every :meth:`put` (default). Disable for bulk
        insertion and call :meth:`save` once at the end.
    """

    def __init__(self, path=None, autosave=True):
        self.path = pathlib.Path(path) if path is not None else default_path()
        self.autosave = autosave
        self.hits = 0
        self.misses = 0
        self._entries = self._load()
        self._dirty = False

    def _load(self):
        try:
            data = json.loads(self.path.read_text())
        except (OSError, ValueError):
            return {}
        return data if isinstance(data, dict) else {}

    def __len__(self):
        return len(self._entries)

    def get(self, key):
        """Payload stored under ``key``, or ``None`` (counted as a miss)."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        return entry

    def put(self, key, payload):
        """Store ``payload`` (plain data) under ``key``."""
        self._entries[key] = payload
        self._dirty = True
        if self.autosave:
            self.save()

    def save(self):
        """Atomically persist, merging with concurrent writers first."""
        if not self._dirty:
            return
        self.path.parent.mkdir(parents=True, exist_ok=True)
        merged = self._load()
        merged.update(self._entries)
        self._entries = merged
        fd, tmp = tempfile.mkstemp(dir=str(self.path.parent),
                                   prefix=self.path.name, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(merged, handle)
            os.replace(tmp, self.path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self._dirty = False

    def stats_line(self):
        """One-line hit/miss summary for end-of-session reporting."""
        total = self.hits + self.misses
        return (f"disk result cache: {self.hits}/{total} hits, "
                f"{self.misses} misses, {len(self._entries)} entries "
                f"({self.path})")
