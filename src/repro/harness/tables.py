"""ASCII rendering of experiment results in the paper's shape."""


def format_table(title, columns, rows):
    """Render a simple aligned table.

    ``columns`` is a list of header strings; ``rows`` a list of value
    lists (strings or numbers).
    """
    def fmt(value):
        if value is None:
            return "n/a"  # e.g. a hit rate with zero accesses
        if isinstance(value, float):
            return f"{value:.3f}"
        return str(value)

    grid = [[fmt(v) for v in row] for row in rows]
    widths = [max(len(col), *(len(row[i]) for row in grid)) if grid else len(col)
              for i, col in enumerate(columns)]
    lines = [title, "-" * len(title)]
    lines.append("  ".join(col.ljust(widths[i]) for i, col in enumerate(columns)))
    for row in grid:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def series_table(title, series, benchmarks=None, scale=1.0, unit=""):
    """Render ``{series_label: {benchmark: value}}`` with benchmarks as rows.

    ``scale`` divides every value (e.g. 1000 for kilo-cycles).
    """
    labels = list(series)
    if benchmarks is None:
        benchmarks = list(next(iter(series.values())))
    columns = ["benchmark"] + [f"{label}{unit}" for label in labels]
    rows = []
    for bench in benchmarks:
        row = [bench]
        for label in labels:
            value = series[label][bench]
            row.append(value / scale if scale != 1.0 else value)
        rows.append(row)
    return format_table(title, columns, rows)
