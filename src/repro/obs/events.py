"""Typed pipeline events and the event bus they travel on.

The observability layer replaces the old method-wrapping ``Tracer``
hooks with *explicit* hook points inside the simulator: each pipeline
stage constructs a small ``__slots__`` event object and hands it to the
:class:`EventBus` — but **only** when a sink is attached. With no sink,
the simulator's ``_bus`` attribute is ``None`` and every hook collapses
to a single predicate check; no event is ever constructed (enforced by
``tests/test_obs_overhead.py``).

Events are plain data: every field is JSON-serializable, and
:meth:`Event.to_dict` produces the record the JSON-lines exporter
writes. Cycle numbers are simulated cycles, tags are the scheduling
unit's per-instruction tags (monotonic per run).

Event taxonomy (see ``docs/OBSERVABILITY.md`` for the full contract):

=============  =====================================================
``fetch``      one aligned block left the instruction unit
``decode``     one block entered the scheduling unit (with renames)
``issue``      one instruction was dispatched to a functional unit
``writeback``  one instruction's result completed
``commit``     one block retired
``squash``     wrong-path instructions were discarded
``stall``      the fast-forward engine skipped an idle span
``mask``       masked-RR suspended or resumed a thread's fetching
=============  =====================================================
"""


class Event:
    """Base class: plain-data record of one pipeline occurrence."""

    __slots__ = ()
    kind = "event"

    def to_dict(self):
        """JSON-serializable dict: ``{"event": kind, **fields}``."""
        record = {"event": self.kind}
        for name in self.__slots__:
            record[name] = getattr(self, name)
        return record

    def __repr__(self):
        fields = ", ".join(f"{n}={getattr(self, n)!r}" for n in self.__slots__)
        return f"{type(self).__name__}({fields})"


class FetchEvent(Event):
    """One block of up to four instructions fetched for a thread."""

    __slots__ = ("cycle", "tid", "pc", "count")
    kind = "fetch"

    def __init__(self, cycle, tid, pc, count):
        self.cycle = cycle
        self.tid = tid
        self.pc = pc
        self.count = count


class DecodeEvent(Event):
    """One block decoded/renamed into the scheduling unit."""

    __slots__ = ("cycle", "tid", "seq", "tags", "pcs", "texts")
    kind = "decode"

    def __init__(self, cycle, tid, seq, tags, pcs, texts):
        self.cycle = cycle
        self.tid = tid
        self.seq = seq
        self.tags = tags
        self.pcs = pcs
        self.texts = texts


class IssueEvent(Event):
    """One instruction dispatched to a functional-unit instance.

    ``fu_index`` indexes :data:`repro.isa.opcodes.FU_CLASSES`; ``unit``
    is the instance within the class (lowest-free-first); ``ready`` is
    the cycle the result will write back (already including any cache
    miss delay for loads).
    """

    __slots__ = ("cycle", "tag", "tid", "pc", "fu_index", "unit", "ready",
                 "text")
    kind = "issue"

    def __init__(self, cycle, tag, tid, pc, fu_index, unit, ready, text):
        self.cycle = cycle
        self.tag = tag
        self.tid = tid
        self.pc = pc
        self.fu_index = fu_index
        self.unit = unit
        self.ready = ready
        self.text = text


class WritebackEvent(Event):
    """One instruction's result completed (left the calendar queue)."""

    __slots__ = ("cycle", "tag", "tid")
    kind = "writeback"

    def __init__(self, cycle, tag, tid):
        self.cycle = cycle
        self.tag = tag
        self.tid = tid


class CommitEvent(Event):
    """One block retired (in per-thread program order)."""

    __slots__ = ("cycle", "tid", "tags")
    kind = "commit"

    def __init__(self, cycle, tid, tags):
        self.cycle = cycle
        self.tid = tid
        self.tags = tags


class SquashEvent(Event):
    """Wrong-path same-thread instructions discarded after a mispredict."""

    __slots__ = ("cycle", "tid", "tags")
    kind = "squash"

    def __init__(self, cycle, tid, tags):
        self.cycle = cycle
        self.tid = tid
        self.tags = tags


class StallEvent(Event):
    """A provably idle span skipped by the fast-forward engine.

    ``cycle`` is the first skipped cycle, ``span`` the number of cycles
    jumped; the machine resumes at ``cycle + span``. Emitting this
    explicitly is what lets sinks stay correct under
    ``fast_forward=True`` — the old method-wrapping tracer silently
    missed these jumps.
    """

    __slots__ = ("cycle", "reason", "span")
    kind = "stall"

    def __init__(self, cycle, reason, span):
        self.cycle = cycle
        self.reason = reason
        self.span = span


class MaskEvent(Event):
    """Masked round-robin suspended (or resumed) fetching for a thread."""

    __slots__ = ("cycle", "tid", "masked")
    kind = "mask"

    def __init__(self, cycle, tid, masked):
        self.cycle = cycle
        self.tid = tid
        self.masked = masked


#: Every concrete event class, in pipeline-stage order.
EVENT_TYPES = (FetchEvent, DecodeEvent, IssueEvent, WritebackEvent,
               CommitEvent, SquashEvent, StallEvent, MaskEvent)


class EventBus:
    """Fans events out to subscribed sinks (callables taking one event).

    The bus itself only exists while at least one sink is attached:
    :meth:`repro.core.pipeline.PipelineSim.add_sink` creates it and
    :meth:`~repro.core.pipeline.PipelineSim.remove_sink` drops it when
    the last sink unsubscribes, so the simulator's disabled path stays
    a bare ``is None`` check.
    """

    __slots__ = ("_sinks",)

    def __init__(self):
        self._sinks = []

    @property
    def sinks(self):
        return tuple(self._sinks)

    def subscribe(self, sink):
        """Attach ``sink``; returns it (handy for inline construction)."""
        if not callable(sink):
            raise TypeError(f"sink must be callable, got {type(sink).__name__}")
        if sink not in self._sinks:
            self._sinks.append(sink)
        return sink

    def unsubscribe(self, sink):
        """Detach ``sink``; unknown sinks are ignored."""
        try:
            self._sinks.remove(sink)
        except ValueError:
            pass

    def emit(self, event):
        for sink in self._sinks:
            sink(event)
