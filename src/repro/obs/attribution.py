"""Per-cycle stall attribution.

The paper's analysis (Figs. 3-14) is an exercise in explaining where
cycles go. :class:`StallAttribution` charges **every simulated cycle to
exactly one category**, so the breakdown always sums to
``stats.cycles`` — with and without the idle-cycle fast-forward
(enforced by ``tests/test_obs_attribution.py`` over the golden-cycle
matrix).

Categories (first matching rule wins, evaluated per executed cycle):

``commit``
    A block retired this cycle — or, rarely, no stall condition held
    (pipeline ramp/drain cycles are charged here too; the machine was
    making unimpeded forward progress).
``su-full``
    No block retired and the scheduling unit was full at the commit
    stage. By construction this count equals the per-cycle part of
    ``stats.su_stall_cycles`` (see :meth:`StallAttribution.verify`).
``sync``
    Memory-ordering or synchronization wait: a ready ``tas`` held back
    until non-speculative / the store buffer drains its address, or a
    load blocked by the restricted load/store policy (older unresolved
    or conflicting same-thread store, per-thread in-order memory issue).
``dcache-miss``
    A data-cache miss is outstanding, or a ready memory op lost cache
    port arbitration this cycle.
``fu-contention``
    Ready work failed to acquire a busy functional unit, or every
    in-flight instruction is waiting out functional-unit/result latency
    (including scoreboard RAW waits when renaming is off).
``fetch-idle``
    Nothing else stalled and the front end produced no block (no
    fetchable thread: all masked, done, jalr-blocked, or refilling the
    instruction cache).
``idle-ff``
    Cycles skipped in one jump by the fast-forward engine (only ever
    non-zero with ``fast_forward=True``). The sub-counters
    ``ff_su_full`` / ``ff_fetch_idle`` / ``ff_decode_stall`` record
    which legacy stall counters the skipped span was charged to, which
    is what keeps :meth:`verify` exact in both engine modes. In
    addition, :attr:`StallAttribution.ff_classes` charges every skipped
    cycle to the executed-cycle category :meth:`close_cycle` would have
    picked — the skip engine passes the condition flags its horizon
    scan observed, and the span is classified with the same priority
    order — so ``counts[cat] + ff_classes[cat]`` reproduces the slow
    engine's breakdown exactly (see ``tests/test_obs_attribution.py``).

The attribution object is attached with
``PipelineSim.attach_attribution()`` **before** ``run()``; when it is
not attached the simulator pays one ``is None`` check per cycle.
"""

#: Attribution category names, display order.
CATEGORIES = ("commit", "su-full", "sync", "dcache-miss",
              "fu-contention", "fetch-idle", "idle-ff")

_F_SYNC = 1
_F_DCACHE = 2
_F_FU = 4


class StallAttribution:
    """Charges every simulated cycle to exactly one stall category."""

    __slots__ = ("counts", "flags", "miss_until",
                 "ff_su_full", "ff_fetch_idle", "ff_decode_stall",
                 "ff_classes",
                 "_last_fetch_idle", "_last_decode_stall")

    def __init__(self):
        self.counts = dict.fromkeys(CATEGORIES, 0)
        #: Per-cycle condition flags, set by the issue stage and cleared
        #: when the cycle is closed.
        self.flags = 0
        #: Latest data-ready cycle of any outstanding cache miss.
        self.miss_until = 0
        self.ff_su_full = 0
        self.ff_fetch_idle = 0
        self.ff_decode_stall = 0
        #: Executed-cycle category each fast-forwarded span would have
        #: been charged to; sums to ``counts["idle-ff"]``.
        self.ff_classes = dict.fromkeys(CATEGORIES[1:-1], 0)
        self._last_fetch_idle = 0
        self._last_decode_stall = 0

    # ------------------------------------------------- issue-stage flags

    def flag_sync(self):
        """A memory op was held by ordering/synchronization this cycle."""
        self.flags |= _F_SYNC

    def flag_dcache(self):
        """A ready memory op lost cache port arbitration this cycle."""
        self.flags |= _F_DCACHE

    def flag_fu(self):
        """A ready instruction found its functional-unit class busy."""
        self.flags |= _F_FU

    def note_miss(self, ready_cycle):
        """A load's cache access missed; data arrives at ``ready_cycle``."""
        if ready_cycle > self.miss_until:
            self.miss_until = ready_cycle

    # ------------------------------------------------------ cycle close

    def close_cycle(self, sim, now, commit_status):
        """Charge the cycle that just executed to one category.

        ``commit_status`` comes from the commit stage: 1 = a block
        retired, 2 = the scheduling unit was full, 0 = neither.
        """
        flags = self.flags
        if flags:
            self.flags = 0
        stats = sim.stats
        if commit_status == 1:
            key = "commit"
        elif commit_status == 2:
            key = "su-full"
        elif flags & _F_SYNC:
            key = "sync"
        elif flags & _F_DCACHE or now < self.miss_until:
            key = "dcache-miss"
        elif flags & _F_FU:
            key = "fu-contention"
        elif sim._wb_cycles and not sim.su.issuable:
            # Everything in flight is waiting out result latency.
            key = "fu-contention"
        elif stats.fetch_idle_cycles > self._last_fetch_idle:
            key = "fetch-idle"
        elif stats.decode_stall_cycles > self._last_decode_stall:
            # Scoreboard RAW wait (renaming off): the producer has not
            # written back yet — a result-latency wait.
            key = "fu-contention"
        else:
            key = "commit"
        self.counts[key] += 1
        self._last_fetch_idle = stats.fetch_idle_cycles
        self._last_decode_stall = stats.decode_stall_cycles

    def note_skip(self, sim, start, skipped, su_full, fetch_idle, flags=0):
        """Charge a fast-forwarded inert span of ``skipped`` cycles.

        ``start`` is the first skipped cycle and ``flags`` the issue
        condition flags the skip engine's horizon scan observed (same
        bit meanings as :attr:`flags`). Mirrors exactly how
        ``_skip_inert_cycles`` charged the legacy stall counters, so
        :meth:`verify` stays exact under ``fast_forward=True``; the
        span additionally lands in :attr:`ff_classes` under the
        category :meth:`close_cycle` would have charged every one of
        its cycles to, using the identical priority order. (A state
        frozen for the whole span yields the same flags every cycle,
        and a span never crosses ``miss_until`` — the missed load's
        writeback bounds the jump — so one classification covers the
        span exactly.)
        """
        self.counts["idle-ff"] += skipped
        classes = self.ff_classes
        if su_full:
            self.ff_su_full += skipped
            classes["su-full"] += skipped
        elif flags & _F_SYNC:
            classes["sync"] += skipped
        elif flags & _F_DCACHE or start < self.miss_until:
            classes["dcache-miss"] += skipped
        elif flags & _F_FU:
            classes["fu-contention"] += skipped
        elif sim._wb_cycles and not sim.su.issuable:
            # Everything in flight is waiting out result latency.
            classes["fu-contention"] += skipped
        elif fetch_idle:
            classes["fetch-idle"] += skipped
        else:
            # Scoreboard RAW wait (renaming off) — a result-latency wait.
            classes["fu-contention"] += skipped
        if fetch_idle:
            self.ff_fetch_idle += skipped
            self._last_fetch_idle += skipped
        else:
            self.ff_decode_stall += skipped
            self._last_decode_stall += skipped

    # -------------------------------------------------------- reporting

    def total(self):
        """Cycles charged so far (== ``stats.cycles`` after a run)."""
        return sum(self.counts.values())

    def verify(self, stats):
        """Reconciliation check against the run's legacy counters.

        Raises :class:`AssertionError` unless (a) the categories sum
        exactly to ``stats.cycles`` and (b) the ``su-full`` accounting
        matches ``stats.su_stall_cycles`` once fast-forwarded spans are
        folded back in.
        """
        total = self.total()
        if total != stats.cycles:
            raise AssertionError(
                f"attributed {total} cycles, simulated {stats.cycles}: "
                f"{self.counts}")
        su_full = self.counts["su-full"] + self.ff_su_full
        if su_full != stats.su_stall_cycles:
            raise AssertionError(
                f"su-full attribution {su_full} != su_stall_cycles "
                f"{stats.su_stall_cycles}")
        fetch_idle = self.counts["fetch-idle"] + self.ff_fetch_idle
        if fetch_idle > stats.fetch_idle_cycles:
            raise AssertionError(
                f"fetch-idle attribution {fetch_idle} exceeds "
                f"fetch_idle_cycles {stats.fetch_idle_cycles}")
        ff_classified = sum(self.ff_classes.values())
        if ff_classified != self.counts["idle-ff"]:
            raise AssertionError(
                f"per-class skip accounting {ff_classified} != idle-ff "
                f"{self.counts['idle-ff']}: {self.ff_classes}")

    def folded(self):
        """Breakdown with skipped spans folded into their stall classes.

        ``idle-ff`` is redistributed according to :attr:`ff_classes`,
        so the result is directly comparable with (and, cycle for
        cycle, equal to) a ``fast_forward=False`` run's :meth:`to_dict`.
        """
        out = dict(self.counts)
        for key, extra in self.ff_classes.items():
            out[key] += extra
        out["idle-ff"] = 0
        return out

    def to_dict(self):
        """Plain-data snapshot (stored on ``SimStats.stall_breakdown``)."""
        return dict(self.counts)


def format_breakdown(breakdown, cycles=None):
    """Render a stall-attribution table (``repro stats --breakdown``)."""
    from repro.harness.tables import format_table

    if cycles is None:
        cycles = sum(breakdown.values())
    rows = []
    for key in CATEGORIES:
        count = breakdown.get(key, 0)
        share = count / cycles if cycles else 0.0
        rows.append([key, count, f"{share:6.1%}"])
    rows.append(["total", cycles, f"{1.0 if cycles else 0.0:6.1%}"])
    return format_table("cycle attribution", ["category", "cycles", "share"],
                        rows)
