"""Append-only JSONL run ledger: one durable record per simulation.

Every other artifact of the harness is *derived* and overwritten in
place — ``BENCH_engine.json`` keeps only the latest numbers, the disk
result cache keeps only payloads keyed by content, ``results.json`` is
regenerated per session. The ledger is the missing primary source: an
append-only file of one JSON object per line, each tying a simulation
result to everything that produced it:

* the **config fingerprint** (a stable hash of the full
  :meth:`~repro.core.config.MachineConfig.to_spec` dict) and the spec
  itself;
* the **program hash** (:func:`repro.harness.runner.program_hash`);
* the **engine version** and best-effort **git SHA** of the source
  tree, plus the Python version;
* the full **stats counters**, the **stall-attribution breakdown**,
  and compact **interval-metrics summaries** (histogram means, not the
  raw buckets — the disk cache keeps those);
* **wall-clock throughput** (simulated cycles per host second) when
  the run was actually timed, and a ``cached`` marker when it was
  replayed from the disk cache;
* a **timestamp supplied by the caller** — the ledger itself never
  reads the clock when building a record, so tests and replays are
  deterministic.

Writers: :func:`repro.harness.parallel.run_grid` (``ledger=``),
``repro run`` / ``repro bench`` / ``repro check`` (opt out with
``--no-ledger``), and ``tools/perf_profile.py``. Readers:
``repro diff`` and ``repro report`` (:mod:`repro.obs.report`).

The default location is ``~/.cache/repro-sdsp/ledger.jsonl``; override
with the ``REPRO_LEDGER`` environment variable or an explicit path.
Appends take an advisory ``flock`` on the ledger file where the
platform provides one, so concurrent writers interleave whole lines,
never bytes. Reading skips malformed or schema-violating lines with a
warning — one rotted line never poisons the rest of the history.
"""

import hashlib
import json
import os
import pathlib
import platform
import subprocess
import warnings
from datetime import datetime, timezone

try:
    import fcntl
except ImportError:  # non-POSIX: appends are still line-buffered
    fcntl = None

#: Environment variable overriding the ledger file location.
ENV_LEDGER = "REPRO_LEDGER"

#: Environment variable overriding :func:`git_sha` (CI checkouts
#: without a .git directory, tests pinning a known value).
ENV_GIT_SHA = "REPRO_GIT_SHA"

_DEFAULT_PATH = "~/.cache/repro-sdsp/ledger.jsonl"

#: Record layout version, stored in every record's ``schema`` field.
SCHEMA_VERSION = 1

#: Fields every ledger record must carry; lines missing one are
#: skipped on read (with a warning), and :meth:`RunLedger.append`
#: refuses to write one.
REQUIRED_FIELDS = ("schema", "run_id", "timestamp", "source", "workload",
                   "engine_version", "config", "config_fingerprint", "stats")


class LedgerWarning(UserWarning):
    """A ledger line was malformed and has been skipped."""


class LedgerError(Exception):
    """A ledger operation failed (bad record, unresolvable run id)."""


def default_path():
    """Ledger file location honouring the ``REPRO_LEDGER`` override."""
    return pathlib.Path(
        os.environ.get(ENV_LEDGER, _DEFAULT_PATH)).expanduser()


def fingerprint(data, length=12):
    """Stable hex digest of arbitrarily nested plain data."""
    text = json.dumps(data, sort_keys=True, default=str)
    return hashlib.sha256(text.encode()).hexdigest()[:length]


def config_fingerprint(config):
    """Fingerprint of a :class:`MachineConfig` (or its spec dict)."""
    spec = config.to_spec() if hasattr(config, "to_spec") else dict(config)
    return fingerprint(spec)


def utc_now_iso():
    """ISO-8601 UTC timestamp for callers that want wall-clock now.

    Provided as a convenience for *callers*; nothing in this module
    calls it implicitly — :func:`make_record` requires the timestamp as
    an argument so record content is fully caller-determined.
    """
    return datetime.now(timezone.utc).isoformat(timespec="seconds")


_GIT_SHA_UNSET = object()
_git_sha_cache = _GIT_SHA_UNSET


def git_sha():
    """Best-effort short git SHA of this source tree, or ``None``.

    ``REPRO_GIT_SHA`` overrides (useful in CI and tests); otherwise one
    ``git rev-parse`` runs per process, against the directory holding
    this file, and any failure (no git, not a checkout) is ``None``.
    """
    global _git_sha_cache
    override = os.environ.get(ENV_GIT_SHA)
    if override:
        return override
    if _git_sha_cache is not _GIT_SHA_UNSET:
        return _git_sha_cache
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--short=12", "HEAD"],
            cwd=pathlib.Path(__file__).resolve().parent,
            capture_output=True, text=True, timeout=10)
        sha = proc.stdout.strip() if proc.returncode == 0 else None
    except (OSError, subprocess.SubprocessError):
        sha = None
    _git_sha_cache = sha or None
    return _git_sha_cache


def summarize_metrics(interval_metrics):
    """Compact summary of an ``IntervalMetrics.to_dict()`` payload.

    Histogram means (bucket-midpoint approximation) instead of raw
    buckets: the ledger answers "what was the pressure", the disk cache
    keeps the full distributions. Returns ``None`` for ``None``.
    """
    if not interval_metrics:
        return None
    from repro.obs.metrics import Histogram

    out = {
        "interval": interval_metrics["interval"],
        "samples": interval_metrics["samples"],
    }
    for name in ("su_occupancy", "issue_width", "fetch_width"):
        out[f"{name}_mean"] = round(
            Histogram.from_dict(interval_metrics[name]).mean(), 4)
    out["fu_pressure_mean"] = {
        cls: round(Histogram.from_dict(hist).mean(), 4)
        for cls, hist in sorted(interval_metrics["fu_pressure"].items())}
    return out


def make_record(*, source, workload, config, stats, timestamp,
                program_hash=None, checksum=None, verified=None,
                wall_seconds=None, cached=False, engine_version=None,
                keep_interval_metrics=False, backend="scalar",
                sweep_id=None, request_id=None):
    """Build one ledger record (a plain JSON-serializable dict).

    ``stats`` is a :class:`~repro.core.stats.SimStats` or its
    ``to_dict()`` form; the stall breakdown is lifted into the
    top-level ``attribution`` field and the interval metrics are
    reduced to their summary (``keep_interval_metrics=True`` keeps the
    raw histograms too — used by ``repro stats --json``). ``timestamp``
    is caller-supplied (see :func:`utc_now_iso`); the record id is a
    content fingerprint over everything else.

    ``backend`` names the engine path that produced the result:
    ``"scalar"`` (one :meth:`PipelineSim.run`), ``"batch"`` (a
    :class:`~repro.core.batch.BatchEngine` group), or ``"spec"`` (a
    config-specialized generated engine, :mod:`repro.core.codegen`).
    Always the backend that *executed* — an ``auto`` grid resolves to
    the concrete route per job before anything is recorded. For batch
    members,
    ``wall_seconds`` must be the amortized per-member share of the
    batch wall clock (the members ran interleaved; see
    ``docs/PERFORMANCE.md``), which keeps the derived
    ``cycles_per_sec`` a *per-member* rate, comparable across backends.

    ``sweep_id`` ties the record to the harness sweep that produced it
    (see :mod:`repro.obs.telemetry`); ``None`` for standalone runs and
    for every record written before sweeps existed. ``request_id`` is
    the correlation id of the service request that commissioned the
    run (``X-Repro-Request-Id``) — one grep joins the HTTP access log,
    the telemetry event stream, and this record.
    """
    spec = config.to_spec() if hasattr(config, "to_spec") else dict(config)
    counters = dict(stats if isinstance(stats, dict) else stats.to_dict())
    attribution = counters.get("stall_breakdown")
    metrics = summarize_metrics(counters.get("interval_metrics"))
    if not keep_interval_metrics:
        counters["interval_metrics"] = None
    if engine_version is None:
        from repro.core.pipeline import ENGINE_VERSION
        engine_version = ENGINE_VERSION
    cycles = counters.get("cycles")
    cycles_per_sec = (round(cycles / wall_seconds)
                      if cycles and wall_seconds else None)
    record = {
        "schema": SCHEMA_VERSION,
        "timestamp": timestamp,
        "source": source,
        "workload": workload,
        "nthreads": spec.get("nthreads"),
        "engine_version": engine_version,
        "git_sha": git_sha(),
        "python": platform.python_version(),
        "config": spec,
        "config_fingerprint": fingerprint(spec),
        "program_hash": program_hash,
        "stats": counters,
        "attribution": attribution,
        "metrics": metrics,
        "wall_seconds": wall_seconds,
        "cycles_per_sec": cycles_per_sec,
        "checksum": checksum,
        "verified": verified,
        "cached": bool(cached),
        "backend": backend,
        "sweep_id": sweep_id,
        "request_id": request_id,
    }
    record["run_id"] = fingerprint(record)
    return record


class RunLedger:
    """Append-only JSONL file of simulation-run records.

    Parameters
    ----------
    path:
        Ledger file; created (with parents) on first append. Defaults
        to :func:`default_path` (``REPRO_LEDGER`` honoured).
    """

    def __init__(self, path=None):
        self.path = pathlib.Path(path) if path is not None else default_path()
        #: Malformed lines skipped by the last :meth:`records` call.
        self.skipped = 0

    # ----------------------------------------------------------- writing

    def append(self, record):
        """Validate and append one record; returns its ``run_id``."""
        self.append_all([record])
        return record["run_id"]

    def append_all(self, records):
        """Append ``records`` in the given order under one file lock.

        Raises :class:`LedgerError` (writing nothing) if any record
        misses a required field — a half-schema record would be skipped
        by every future read, so it is rejected at the door.
        """
        records = list(records)
        for record in records:
            missing = [f for f in REQUIRED_FIELDS if f not in record]
            if missing:
                raise LedgerError(
                    f"record is missing required field(s) "
                    f"{', '.join(missing)}; refusing to append")
        if not records:
            return 0
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a") as handle:
            if fcntl is not None:
                fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
            try:
                for record in records:
                    handle.write(json.dumps(record, sort_keys=True) + "\n")
                handle.flush()
            finally:
                if fcntl is not None:
                    fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
        return len(records)

    # ----------------------------------------------------------- reading

    def records(self):
        """Every valid record, oldest first; skips rotted lines."""
        try:
            text = self.path.read_text()
        except OSError:
            self.skipped = 0
            return []
        out = []
        skipped = 0
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                skipped += 1
                continue
            if not isinstance(record, dict) or any(
                    field not in record for field in REQUIRED_FIELDS):
                skipped += 1
                continue
            # Records written before the batch backend existed carry no
            # backend field; everything they measured was scalar.
            record.setdefault("backend", "scalar")
            # Pre-telemetry records belong to no sweep.
            record.setdefault("sweep_id", None)
            # Pre-service records were never commissioned over HTTP.
            record.setdefault("request_id", None)
            out.append(record)
        self.skipped = skipped
        if skipped:
            warnings.warn(
                f"skipped {skipped} malformed ledger line"
                f"{'' if skipped == 1 else 's'} in {self.path}",
                LedgerWarning, stacklevel=2)
        return out

    def __len__(self):
        return len(self.records())

    def resolve(self, token, sweep=None):
        """Find one record by ``last``/``last~N`` or a run-id prefix.

        ``sweep`` restricts the search to records stamped with that
        ``sweep_id`` (so ``last`` means "last record of that sweep").

        Raises :class:`LedgerError` when the ledger is empty, the token
        matches nothing, or a prefix is ambiguous across distinct runs.
        """
        records = self.records()
        if sweep is not None:
            records = [r for r in records if r.get("sweep_id") == sweep]
            if not records:
                raise LedgerError(
                    f"ledger {self.path} has no records for sweep "
                    f"{sweep!r}")
        if not records:
            raise LedgerError(f"ledger {self.path} has no records")
        if token == "last":
            return records[-1]
        if token.startswith("last~"):
            try:
                back = int(token[len("last~"):])
            except ValueError:
                raise LedgerError(f"bad run reference {token!r}") from None
            if back < 0 or back >= len(records):
                raise LedgerError(
                    f"{token!r} is out of range: ledger has "
                    f"{len(records)} record(s)")
            return records[-1 - back]
        matches = [r for r in records if r["run_id"].startswith(token)]
        if not matches:
            raise LedgerError(
                f"no ledger record matches run id {token!r} "
                f"({len(records)} record(s) in {self.path})")
        distinct = {r["run_id"] for r in matches}
        if len(distinct) > 1:
            sample = ", ".join(sorted(distinct)[:4])
            raise LedgerError(
                f"run id prefix {token!r} is ambiguous: {sample}")
        return matches[-1]

    def latest_by_key(self, sweep=None):
        """Newest record per ``(workload, config_fingerprint)`` pair.

        The selection ``repro report`` renders from: re-running an
        experiment appends fresh records, and the report always reflects
        the latest measurement of each grid point. ``sweep`` restricts
        the selection to records stamped with that ``sweep_id``.
        """
        latest = {}
        for record in self.records():
            if sweep is not None and record.get("sweep_id") != sweep:
                continue
            latest[(record["workload"], record["config_fingerprint"])] = record
        return latest

    def __repr__(self):
        return f"RunLedger({str(self.path)!r})"
