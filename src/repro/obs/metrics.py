"""Interval metrics: fixed-bucket histograms sampled every N cycles.

Flat end-of-run counters (``SimStats``) answer *how much*; the paper's
occupancy arguments (SU depth, Figs. 9-10; FU sizing, Figs. 11-12) need
*distributions*. :class:`IntervalMetrics` samples the machine every
``interval`` cycles and accumulates:

* **SU occupancy** — instantaneous live-entry count, 16 linear buckets
  over ``[0, su_entries]``;
* **issue width** — average instructions issued per cycle over the
  interval, one bucket per integer width;
* **fetch width** — average instructions fetched per cycle over the
  interval, one bucket per integer width;
* **per-FU-class queue depth** — instantaneous count of WAITING
  entries destined for each functional-unit class (the "issue queue
  pressure" view of Carroll & Lin's queuing model).

Sampling is observational only — attaching metrics never changes a
simulated cycle. Under ``fast_forward=True`` a skipped idle span
contributes its due number of samples with the (frozen) occupancy and
zero issue/fetch width, so distributions remain comparable across
engine modes; the boundary sample straddling a jump is attributed to
the post-jump interval (a deliberate, documented approximation).

Serialized via :meth:`IntervalMetrics.to_dict` onto
``SimStats.interval_metrics``, so the disk result cache and
``run_grid`` carry histograms exactly like any other counter.
"""

from repro.isa.opcodes import FU_CLASSES

#: Bucket count for the SU-occupancy histogram.
SU_BUCKETS = 16

#: Bucket count (and clamp ceiling) for per-FU-class queue depth.
PRESSURE_BUCKETS = 16


class Histogram:
    """Fixed-width linear-bucket histogram over ``[lo, hi)``.

    Values outside the range clamp into the first/last bucket, so the
    bucket count is fixed regardless of outliers.
    """

    __slots__ = ("lo", "hi", "counts")

    def __init__(self, nbuckets, lo, hi):
        if nbuckets < 1 or hi <= lo:
            raise ValueError(f"bad histogram shape ({nbuckets}, {lo}, {hi})")
        self.lo = lo
        self.hi = hi
        self.counts = [0] * nbuckets

    def record(self, value, weight=1):
        counts = self.counts
        n = len(counts)
        index = int((value - self.lo) * n / (self.hi - self.lo))
        if index < 0:
            index = 0
        elif index >= n:
            index = n - 1
        counts[index] += weight

    def total(self):
        return sum(self.counts)

    def mean(self):
        """Approximate mean using bucket midpoints."""
        total = self.total()
        if not total:
            return 0.0
        width = (self.hi - self.lo) / len(self.counts)
        acc = 0.0
        for index, count in enumerate(self.counts):
            acc += count * (self.lo + (index + 0.5) * width)
        return acc / total

    def to_dict(self):
        return {"lo": self.lo, "hi": self.hi, "counts": list(self.counts)}

    @classmethod
    def from_dict(cls, data):
        hist = cls(len(data["counts"]), data["lo"], data["hi"])
        hist.counts = list(data["counts"])
        return hist


class IntervalMetrics:
    """Samples SU occupancy, issue/fetch width, and FU queue pressure.

    Attach with ``PipelineSim.attach_metrics()`` (which calls
    :meth:`bind` with the machine configuration) before ``run()``.
    """

    __slots__ = ("interval", "samples", "su_occupancy", "issue_width",
                 "fetch_width", "fu_pressure", "_tick", "_last_issued",
                 "_last_fetched")

    def __init__(self, interval=64):
        if interval < 1:
            raise ValueError("interval must be >= 1")
        self.interval = interval
        self.samples = 0
        self.su_occupancy = None
        self.issue_width = None
        self.fetch_width = None
        self.fu_pressure = None
        self._tick = 0
        self._last_issued = 0
        self._last_fetched = 0

    def bind(self, config):
        """Size the histograms for ``config`` (idempotent)."""
        if self.su_occupancy is not None:
            return self
        from repro.core.config import BLOCK

        self.su_occupancy = Histogram(SU_BUCKETS, 0, config.su_entries + 1)
        self.issue_width = Histogram(config.issue_width + 1, 0,
                                     config.issue_width + 1)
        self.fetch_width = Histogram(BLOCK + 1, 0, BLOCK + 1)
        self.fu_pressure = {cls: Histogram(PRESSURE_BUCKETS, 0,
                                           PRESSURE_BUCKETS)
                            for cls in FU_CLASSES}
        return self

    # --------------------------------------------------- pipeline hooks

    def on_cycle(self, sim, now):
        """Called once per executed cycle; samples every ``interval``."""
        tick = self._tick + 1
        if tick < self.interval:
            self._tick = tick
            return
        self._tick = 0
        self._sample(sim)

    def note_skip(self, sim, skipped):
        """Account a fast-forwarded idle span of ``skipped`` cycles."""
        tick = self._tick + skipped
        due = tick // self.interval
        self._tick = tick % self.interval
        if not due:
            return
        # Machine state is frozen across the jump: record the current
        # occupancy/pressure with the span's sample weight, and zero
        # issue/fetch width (nothing moved).
        self.su_occupancy.record(sim.su._entry_count, due)
        self.issue_width.record(0, due)
        self.fetch_width.record(0, due)
        for cls, depth in zip(FU_CLASSES, sim.su.fu_class_pressure()):
            self.fu_pressure[cls].record(depth, due)
        self.samples += due
        # Nothing issued or fetched while skipping, so the delta
        # baselines are already correct.

    def _sample(self, sim):
        stats = sim.stats
        interval = self.interval
        self.su_occupancy.record(sim.su._entry_count)
        issued = stats.issued
        self.issue_width.record((issued - self._last_issued) / interval)
        self._last_issued = issued
        fetched = stats.fetched_instructions
        self.fetch_width.record((fetched - self._last_fetched) / interval)
        self._last_fetched = fetched
        for cls, depth in zip(FU_CLASSES, sim.su.fu_class_pressure()):
            self.fu_pressure[cls].record(depth)
        self.samples += 1

    # -------------------------------------------------- serialization

    def to_dict(self):
        """Plain-data snapshot (stored on ``SimStats.interval_metrics``)."""
        return {
            "interval": self.interval,
            "samples": self.samples,
            "su_occupancy": self.su_occupancy.to_dict(),
            "issue_width": self.issue_width.to_dict(),
            "fetch_width": self.fetch_width.to_dict(),
            "fu_pressure": {cls.value: hist.to_dict()
                            for cls, hist in self.fu_pressure.items()},
        }

    @classmethod
    def from_dict(cls, data):
        """Rebuild from a :meth:`to_dict` payload (histograms only)."""
        from repro.isa.opcodes import FuClass

        metrics = cls(interval=data["interval"])
        metrics.samples = data["samples"]
        metrics.su_occupancy = Histogram.from_dict(data["su_occupancy"])
        metrics.issue_width = Histogram.from_dict(data["issue_width"])
        metrics.fetch_width = Histogram.from_dict(data["fetch_width"])
        metrics.fu_pressure = {FuClass(name): Histogram.from_dict(hist)
                               for name, hist in data["fu_pressure"].items()}
        return metrics
