"""Cross-run diffing and paper-figure report generation from the ledger.

Two consumers of :mod:`repro.obs.ledger` records:

* :func:`render_diff` — ``repro diff A B``: per-counter deltas between
  two recorded runs plus an attribution *waterfall* showing which stall
  category gained or lost cycles.
* :func:`run_report` — ``repro report --experiment ...``: re-runs one
  of the paper's experiment grids through
  :func:`~repro.harness.parallel.run_grid` (populating the ledger),
  then renders the corresponding figure's table **from the ledger
  records** — proving the durable record alone carries everything the
  paper's curves need. Each report cross-references the matching
  section of ``EXPERIMENTS.md`` via
  :data:`repro.harness.experiments.FIGURE_INDEX`.
"""

from repro.core import FetchPolicy, MachineConfig
from repro.harness.experiments import (DEFAULT_THREADS, FIGURE_INDEX,
                                       REPORT_THREADS, SU_DEPTHS)
from repro.harness.tables import format_table
from repro.mem.cache import CacheConfig
from repro.obs.attribution import CATEGORIES
from repro.obs import ledger as ledger_mod

#: Scalar stats counters compared by ``repro diff``, display order.
DIFF_COUNTERS = (
    "cycles", "committed", "fetched_blocks", "fetched_instructions",
    "issued", "branches", "mispredicts", "squashed", "su_stall_cycles",
    "fetch_idle_cycles", "decode_stall_cycles", "cache_accesses",
    "cache_hits", "cache_misses",
)

#: Width of the attribution waterfall's bar column.
_BAR_WIDTH = 24


# --------------------------------------------------------------- diffing

def _identity_line(tag, record):
    git = record.get("git_sha") or "?"
    return (f"{tag}: {record['run_id']}  {record['workload']} "
            f"threads={record.get('nthreads')} "
            f"config={record['config_fingerprint']} "
            f"engine=v{record['engine_version']} git={git} "
            f"[{record['source']} @ {record['timestamp']}]")


def _delta_row(name, a_value, b_value, as_float=False):
    delta = b_value - a_value
    pct = f"{delta / a_value:+.1%}" if a_value else "n/a"
    if as_float:
        return [name, f"{a_value:.3f}", f"{b_value:.3f}",
                f"{delta:+.3f}", pct]
    return [name, a_value, b_value, f"{delta:+d}", pct]


def _bar(delta, scale):
    if not delta or not scale:
        return ""
    length = max(1, round(abs(delta) / scale * _BAR_WIDTH))
    return ("+" if delta > 0 else "-") * length


def render_diff(record_a, record_b):
    """Human-readable comparison of two ledger records.

    Sections: run identity, per-counter deltas (B relative to A), the
    attribution waterfall (cycles gained/lost per stall category), and
    throughput. Works across workloads/configs too — the header makes
    any apples-to-oranges comparison explicit.
    """
    lines = [_identity_line("run A", record_a),
             _identity_line("run B", record_b), ""]
    stats_a, stats_b = record_a["stats"], record_b["stats"]

    rows = []
    for name in DIFF_COUNTERS:
        a_value, b_value = stats_a.get(name), stats_b.get(name)
        if a_value is None or b_value is None:
            continue
        rows.append(_delta_row(name, a_value, b_value))
    cycles_a, cycles_b = stats_a.get("cycles"), stats_b.get("cycles")
    if cycles_a and cycles_b:
        ipc_a = stats_a.get("committed", 0) / cycles_a
        ipc_b = stats_b.get("committed", 0) / cycles_b
        rows.append(_delta_row("ipc", ipc_a, ipc_b, as_float=True))
    lines.append(format_table("counter deltas (B - A)",
                              ["counter", "A", "B", "delta", "pct"], rows))

    attr_a = record_a.get("attribution")
    attr_b = record_b.get("attribution")
    if attr_a or attr_b:
        attr_a, attr_b = attr_a or {}, attr_b or {}
        deltas = {key: attr_b.get(key, 0) - attr_a.get(key, 0)
                  for key in CATEGORIES}
        scale = max((abs(d) for d in deltas.values()), default=0)
        rows = [[key, attr_a.get(key, 0), attr_b.get(key, 0),
                 f"{deltas[key]:+d}", _bar(deltas[key], scale)]
                for key in CATEGORIES]
        lines.append("")
        lines.append(format_table(
            "attribution waterfall (cycles, B - A)",
            ["category", "A", "B", "delta", ""], rows))

    rate_a = record_a.get("cycles_per_sec")
    rate_b = record_b.get("cycles_per_sec")
    if rate_a and rate_b:
        lines.append("")
        lines.append(f"throughput: {rate_a:,} -> {rate_b:,} cyc/s "
                     f"({rate_b / rate_a - 1:+.1%})")
    return "\n".join(lines)


# ------------------------------------------------------------ experiments

def build_experiment(name, workloads=None, threads=None):
    """Grid for one paper experiment.

    Returns ``(title, value_kind, columns, jobs)`` where ``jobs`` is a
    list of ``(workload_name, MachineConfig, column_label)`` triples in
    deterministic order and ``value_kind`` is ``"ipc"`` or ``"cycles"``.
    """
    from repro.workloads import ALL_WORKLOADS

    if workloads is None:
        workloads = [w.name for w in ALL_WORKLOADS]
    jobs = []
    if name == "threads":
        threads = tuple(threads or REPORT_THREADS)
        columns = [f"{n}T" for n in threads]
        for wname in workloads:
            for n in threads:
                jobs.append((wname, MachineConfig(nthreads=n), f"{n}T"))
        return ("IPC vs thread count", "ipc", columns, jobs)
    if name == "fetch":
        nthreads = (threads or (DEFAULT_THREADS,))[0]
        policies = [(FetchPolicy.TRUE_RR, "TrueRR"),
                    (FetchPolicy.MASKED_RR, "MaskedRR"),
                    (FetchPolicy.COND_SWITCH, "CSwitch")]
        columns = [label for _, label in policies] + ["BaseCase"]
        for wname in workloads:
            for policy, label in policies:
                jobs.append((wname, MachineConfig(
                    nthreads=nthreads, fetch_policy=policy), label))
            jobs.append((wname, MachineConfig(nthreads=1), "BaseCase"))
        return (f"fetch-policy comparison ({nthreads} threads, cycles)",
                "cycles", columns, jobs)
    if name == "su":
        thread_points = tuple(threads or (1, DEFAULT_THREADS))
        columns = [f"{n}T/su{d}" for n in thread_points for d in SU_DEPTHS]
        for wname in workloads:
            for n in thread_points:
                for depth in SU_DEPTHS:
                    jobs.append((wname, MachineConfig(
                        nthreads=n, su_entries=depth), f"{n}T/su{depth}"))
        return ("scheduling-unit depth sweep (cycles)",
                "cycles", columns, jobs)
    if name == "cache":
        thread_points = tuple(threads or (1, 2, 4, 6))
        variants = [("direct", CacheConfig(assoc=1)),
                    ("assoc", CacheConfig(assoc=4))]
        columns = [f"{n}T/{label}" for n in thread_points
                   for label, _ in variants]
        for wname in workloads:
            for n in thread_points:
                for label, cache in variants:
                    jobs.append((wname, MachineConfig(
                        nthreads=n, cache=cache), f"{n}T/{label}"))
        return ("direct-mapped vs associative cache (cycles)",
                "cycles", columns, jobs)
    raise ValueError(f"unknown experiment {name!r}; expected one of "
                     f"{', '.join(sorted(FIGURE_INDEX))}")


def _value(record, kind):
    stats = record["stats"]
    if kind == "ipc":
        cycles = stats["cycles"]
        return round(stats["committed"] / cycles, 3) if cycles else 0.0
    return stats["cycles"]


def _run_via_service(client, jobs, *, instrument=False, sweep_id=None):
    """Drive one experiment grid through a running job service.

    Submits every grid point first (the server coalesces duplicates and
    answers cached points instantly), then waits for each to reach a
    terminal state. The server appends the ledger records exactly as a
    local ``run_grid`` would — the caller's ledger must therefore be
    the *server's* ledger file (shared filesystem), which is also what
    makes the served and local report tables byte-identical.
    """
    from repro.service.client import new_request_id

    submitted = []
    for wname, config, _label in jobs:
        payload = {"workload": wname, "config": config.to_spec()}
        if instrument:
            payload["instrument"] = True
        if sweep_id is not None:
            payload["sweep_id"] = sweep_id
        doc = client.submit(payload, request_id=new_request_id())
        submitted.append((wname, doc))
    failures = []
    for wname, doc in submitted:
        final = (doc if doc.get("state") in ("done", "failed")
                 else client.wait(doc["job_id"]))
        if final.get("state") != "done":
            failure = final.get("failure") or {}
            failures.append(f"{wname}: {failure.get('kind', 'failed')} "
                            f"({failure.get('message', 'no detail')})")
    if failures:
        raise ledger_mod.LedgerError(
            "service could not complete the report grid:\n  "
            + "\n  ".join(failures))


def run_report(name, *, ledger, workloads=None, threads=None, workers=None,
               disk_cache=None, instrument=False, timestamp=None,
               csv_path=None, backend="scalar", sweep=None, telemetry=None,
               progress=None, sweep_id=None, client=None):
    """Run one experiment grid and render its table from the ledger.

    The grid goes through :func:`run_grid` with ``ledger=`` attached,
    so every point lands in the durable record first; the table is then
    built from :meth:`RunLedger.latest_by_key` — *not* from the
    in-memory results — which is the property the regression acceptance
    test pins. Returns the rendered text; writes ``csv_path`` when
    given. ``backend`` is forwarded to :func:`run_grid` — the batch
    and spec backends change only wall-clock cost, never a single
    table cell.

    ``sweep`` renders the table from the ledger records of an already
    *finished* sweep (no simulation happens); ``telemetry``, ``progress``
    and ``sweep_id`` are forwarded to :func:`run_grid` so a fresh grid
    can be watched live and its records stamped as one sweep.

    ``client`` (a :class:`repro.service.ServiceClient`) submits the
    grid through a running ``repro serve`` instead of a local
    ``run_grid`` — ``repro report --service URL``. The table still
    renders from ``ledger``, which must be the server's ledger file;
    ``workers``/``backend``/``disk_cache`` are then the *server's*
    choices and the local values are ignored.
    """
    from repro.harness.parallel import run_grid

    if not isinstance(ledger, ledger_mod.RunLedger):
        ledger = ledger_mod.RunLedger(ledger)
    title, kind, columns, jobs = build_experiment(
        name, workloads=workloads, threads=threads)
    if sweep is None:
        if client is not None:
            _run_via_service(client, jobs, instrument=instrument,
                             sweep_id=sweep_id)
        else:
            run_grid([(wname, config) for wname, config, _ in jobs],
                     workers=workers, disk_cache=disk_cache,
                     instrument=instrument, backend=backend, ledger=ledger,
                     ledger_timestamp=timestamp, strict=True,
                     telemetry=telemetry, progress=progress,
                     sweep_id=sweep_id)

    latest = ledger.latest_by_key(sweep=sweep)
    wanted = {}
    for wname, config, label in jobs:
        key = (wname, ledger_mod.config_fingerprint(config))
        record = latest.get(key)
        if record is None:
            scope = (f" in sweep {sweep!r}" if sweep is not None else
                     " — run_grid should have appended it")
            raise ledger_mod.LedgerError(
                f"ledger {ledger.path} has no record for {wname} "
                f"config {key[1]}{scope}")
        wanted[(wname, label)] = record

    row_names = list(dict.fromkeys(wname for wname, _, _ in jobs))
    rows = [[wname] + [_value(wanted[(wname, label)], kind)
                       for label in columns]
            for wname in row_names]
    figures = FIGURE_INDEX.get(name, "")
    scope = f", sweep {sweep}" if sweep is not None else ""
    header = (f"# repro report --experiment {name} — {figures}\n"
              f"# cf. EXPERIMENTS.md; ledger: {ledger.path} "
              f"({len(wanted)} grid points{scope})")
    text = header + "\n\n" + format_table(title, ["benchmark"] + columns,
                                          rows)
    if csv_path:
        lines = ["benchmark," + ",".join(columns)]
        lines += [",".join(str(cell) for cell in row) for row in rows]
        with open(csv_path, "w") as handle:
            handle.write("\n".join(lines) + "\n")
        text += f"\n\n# wrote {csv_path}"
    return text
