"""Process-wide runtime metrics: counters, gauges, latency histograms.

This is the *service-level* metrics layer — request rates, queue depth,
worker saturation — and is deliberately distinct from the engine-level
interval metrics in ``repro.obs.metrics`` (which sample architectural
state per simulated cycle).  Nothing in the simulation engine or in
``run_grid`` imports this module; the only producers are the HTTP
service (`repro serve`) and whatever future daemons need operational
telemetry.  That separation is what keeps the PR-2 zero-overhead
contract trivially true here: a process that never constructs a
:class:`MetricsRegistry` never executes a single line of this file
(pinned by ``tests/test_obs_overhead.py``).

The exposition format is Prometheus text (version 0.0.4): ``# HELP`` /
``# TYPE`` headers followed by samples, histograms as cumulative
``_bucket{le=...}`` series plus exact ``_sum`` and ``_count``.  The
module also ships the consumer half — :func:`parse_promtext`,
:func:`histogram_quantile`, and :class:`TopView` — so `repro top` and
the tests can read a scrape without regex archaeology.

All mutation is thread-safe: one lock per registry, shared by every
family and child, because emission sites live on the asyncio event
loop, the dispatcher thread, and executor threads simultaneously.
Scrapes are rare; increments hold the lock for nanoseconds.
"""

from __future__ import annotations

import math
import re
import threading
import time

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricError",
    "MetricsRegistry",
    "TopView",
    "histogram_quantile",
    "parse_promtext",
]

# Buckets tuned for an HTTP service whose unit of work is a simulation:
# sub-millisecond health checks up through multi-second dispatches.
DEFAULT_LATENCY_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0,
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


class MetricError(ValueError):
    """Raised for malformed metric names, labels, or misuse of a family."""


def _format_value(value):
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if isinstance(value, float) and value != value:  # NaN
        return "NaN"
    if float(value) == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _format_labels(labelnames, labelvalues, extra=()):
    pairs = list(zip(labelnames, labelvalues)) + list(extra)
    if not pairs:
        return ""
    body = ",".join(
        '%s="%s"' % (name, str(value).replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n"))
        for name, value in pairs
    )
    return "{" + body + "}"


class _Child:
    """One (family, label-values) time series."""

    __slots__ = ("_lock",)

    def __init__(self, lock):
        self._lock = lock


class Counter(_Child):
    """Monotonic counter.  ``inc`` adds; ``set_to`` mirrors an upstream
    monotonic source at scrape time (ratchets, never decreases)."""

    __slots__ = ("value",)

    def __init__(self, lock):
        super().__init__(lock)
        self.value = 0.0

    def inc(self, amount=1):
        if amount < 0:
            raise MetricError("counter increments must be non-negative, got %r" % (amount,))
        with self._lock:
            self.value += amount

    def set_to(self, value):
        """Ratchet to ``value`` — the mirror hook for counters whose source
        of truth is elsewhere (admission stats, cache counters)."""
        with self._lock:
            if value > self.value:
                self.value = value

    def get(self):
        with self._lock:
            return self.value


class Gauge(_Child):
    """A value that can go up and down (queue depth, in-flight window)."""

    __slots__ = ("value",)

    def __init__(self, lock):
        super().__init__(lock)
        self.value = 0.0

    def set(self, value):
        with self._lock:
            self.value = float(value)

    def inc(self, amount=1):
        with self._lock:
            self.value += amount

    def dec(self, amount=1):
        with self._lock:
            self.value -= amount

    def get(self):
        with self._lock:
            return self.value


class Histogram(_Child):
    """Fixed-bucket histogram with exact sum and count.

    ``counts[i]`` is the number of observations <= ``buckets[i]`` minus
    those counted in earlier buckets (per-bucket, not cumulative);
    rendering produces the cumulative Prometheus form.  The final
    implicit bucket is +Inf.
    """

    __slots__ = ("buckets", "counts", "sum", "count")

    def __init__(self, lock, buckets):
        super().__init__(lock)
        self.buckets = buckets
        self.counts = [0] * (len(buckets) + 1)  # last slot = +Inf overflow
        self.sum = 0.0
        self.count = 0

    def observe(self, value):
        value = float(value)
        lo, hi = 0, len(self.buckets)
        while lo < hi:  # first bucket whose upper bound admits the value
            mid = (lo + hi) // 2
            if value <= self.buckets[mid]:
                hi = mid
            else:
                lo = mid + 1
        with self._lock:
            self.counts[lo] += 1
            self.sum += value
            self.count += 1

    def cumulative(self):
        """[(upper_bound, cumulative_count), ...] ending with (+Inf, count)."""
        with self._lock:
            counts = list(self.counts)
            total = self.count
        out, running = [], 0
        for bound, n in zip(self.buckets, counts):
            running += n
            out.append((bound, running))
        out.append((math.inf, total))
        return out


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class _Family:
    """A named metric family: HELP/TYPE metadata plus labelled children."""

    __slots__ = ("name", "help", "kind", "labelnames", "buckets", "_children", "_lock")

    def __init__(self, name, help_text, kind, labelnames, lock, buckets=None):
        if not _NAME_RE.match(name):
            raise MetricError("invalid metric name %r" % (name,))
        for label in labelnames:
            if not _LABEL_RE.match(label) or label == "le":
                raise MetricError("invalid label name %r for %s" % (label, name))
        self.name = name
        self.help = help_text
        self.kind = kind
        self.labelnames = tuple(labelnames)
        self.buckets = buckets
        self._children = {}
        self._lock = lock

    def labels(self, *values, **kv):
        if kv:
            if values:
                raise MetricError("pass label values positionally or by name, not both")
            try:
                values = tuple(kv.pop(name) for name in self.labelnames)
            except KeyError as exc:
                raise MetricError("missing label %s for %s" % (exc, self.name))
            if kv:
                raise MetricError("unknown labels %s for %s" % (sorted(kv), self.name))
        values = tuple(str(v) for v in values)
        if len(values) != len(self.labelnames):
            raise MetricError(
                "%s takes %d label values, got %d"
                % (self.name, len(self.labelnames), len(values))
            )
        with self._lock:
            child = self._children.get(values)
            if child is None:
                cls = _KINDS[self.kind]
                if self.kind == "histogram":
                    child = cls(self._lock, self.buckets)
                else:
                    child = cls(self._lock)
                self._children[values] = child
        return child

    # Convenience: an unlabelled family proxies straight to its single child.
    def inc(self, amount=1):
        self.labels().inc(amount)

    def set_to(self, value):
        self.labels().set_to(value)

    def set(self, value):
        self.labels().set(value)

    def dec(self, amount=1):
        self.labels().dec(amount)

    def observe(self, value):
        self.labels().observe(value)

    def get(self):
        return self.labels().get()

    def render(self, lines):
        lines.append("# HELP %s %s" % (self.name, self.help))
        lines.append("# TYPE %s %s" % (self.name, self.kind))
        with self._lock:
            children = sorted(self._children.items())
        for values, child in children:
            labels = _format_labels(self.labelnames, values)
            if self.kind == "histogram":
                for bound, cum in child.cumulative():
                    le = _format_labels(
                        self.labelnames, values, extra=(("le", _format_value(bound)),)
                    )
                    lines.append("%s_bucket%s %d" % (self.name, le, cum))
                lines.append("%s_sum%s %s" % (self.name, labels, _format_value(child.sum)))
                lines.append("%s_count%s %d" % (self.name, labels, child.count))
            else:
                lines.append("%s%s %s" % (self.name, labels, _format_value(child.get())))


class MetricsRegistry:
    """A process-wide collection of metric families.

    Families are created idempotently: asking twice for the same name
    returns the same family, and asking with a conflicting kind or
    label set raises.  ``render()`` produces the full Prometheus text
    exposition.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._families = {}

    def _family(self, name, help_text, kind, labelnames, buckets=None):
        labelnames = tuple(labelnames)
        with self._lock:
            existing = self._families.get(name)
            if existing is not None:
                if existing.kind != kind or existing.labelnames != labelnames:
                    raise MetricError(
                        "metric %s already registered as %s%r"
                        % (name, existing.kind, existing.labelnames)
                    )
                return existing
            family = _Family(name, help_text, kind, labelnames, self._lock, buckets=buckets)
            self._families[name] = family
            return family

    def counter(self, name, help_text, labelnames=()):
        return self._family(name, help_text, "counter", labelnames)

    def gauge(self, name, help_text, labelnames=()):
        return self._family(name, help_text, "gauge", labelnames)

    def histogram(self, name, help_text, labelnames=(), buckets=DEFAULT_LATENCY_BUCKETS):
        family = self._family(name, help_text, "histogram", labelnames, buckets=tuple(buckets))
        if family.buckets != tuple(buckets):
            raise MetricError("metric %s already registered with different buckets" % (name,))
        return family

    def render(self):
        with self._lock:
            families = sorted(self._families.values(), key=lambda f: f.name)
        lines = []
        for family in families:
            family.render(lines)
        return "\n".join(lines) + "\n" if lines else ""


# --------------------------------------------------------------------------
# Consumer half: parsing a scrape and deriving dashboard signals.

# A quoted label value may itself contain '{' / '}' (route labels like
# "/v1/jobs/{id}"), so the label body is matched as a pair sequence, not
# as a lazy "anything up to the next brace".
_PAIR = r'[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"'
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>(?:%s(?:,%s)*)?,?)\})?" % (_PAIR, _PAIR) +
    r"\s+(?P<value>\S+)"
    r"(?:\s+(?P<ts>-?\d+))?\s*$"
)
_LABEL_PAIR_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def _parse_number(text):
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    if text == "NaN":
        return math.nan
    return float(text)


def parse_promtext(text):
    """Parse Prometheus text exposition into ``{name: [(labels, value)]}``.

    Histogram series appear under their raw sample names
    (``x_bucket``/``x_sum``/``x_count``).  Malformed sample lines raise
    :class:`MetricError` — for lenient structural diagnosis use
    ``tools/validate_promtext.py`` instead.
    """
    samples = {}
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise MetricError("unparseable sample line: %r" % (raw,))
        labels = {}
        if match.group("labels"):
            for name, value in _LABEL_PAIR_RE.findall(match.group("labels")):
                labels[name] = value.replace(r"\n", "\n").replace(r"\"", '"').replace(r"\\", "\\")
        samples.setdefault(match.group("name"), []).append(
            (labels, _parse_number(match.group("value")))
        )
    return samples


def _sum_samples(samples, name, **match):
    total = 0.0
    for labels, value in samples.get(name, ()):
        if all(labels.get(k) == v for k, v in match.items()):
            total += value
    return total


def histogram_quantile(samples, name, q):
    """Quantile from the cumulative ``<name>_bucket`` series in a scrape.

    Aggregates across every label set (routes etc.), then interpolates
    linearly inside the winning bucket, Prometheus-style.  Returns
    ``None`` when the histogram is empty.
    """
    by_bound = {}
    for labels, value in samples.get(name + "_bucket", ()):
        bound = _parse_number(labels.get("le", "+Inf"))
        by_bound[bound] = by_bound.get(bound, 0.0) + value
    if not by_bound:
        return None
    bounds = sorted(by_bound)
    total = by_bound.get(math.inf, 0.0)
    if total <= 0:
        return None
    rank = q * total
    prev_bound, prev_count = 0.0, 0.0
    for bound in bounds:
        count = by_bound[bound]
        if count >= rank:
            if bound == math.inf:
                return prev_bound  # best lower estimate for the open bucket
            if count == prev_count:
                return bound
            frac = (rank - prev_count) / (count - prev_count)
            return prev_bound + (bound - prev_bound) * frac
        prev_bound, prev_count = bound, count
    return bounds[-1]


def _fmt_seconds(value):
    if value is None:
        return "-"
    if value < 1.0:
        return "%.0fms" % (value * 1000.0,)
    return "%.2fs" % (value,)


class TopView:
    """Folds successive ``/metrics`` scrapes into one dashboard line.

    QPS is the request-count delta between the last two scrapes over
    wall time; latency percentiles come from the cumulative
    ``repro_request_seconds`` histogram (lifetime, so they settle as the
    server runs).  Mirrors the `LiveProgress` single-line discipline:
    the caller owns the ``\\r`` refresh, this class owns the content.
    """

    __slots__ = ("_clock", "_last_t", "_last_requests", "qps", "_samples")

    def __init__(self, clock=time.monotonic):
        self._clock = clock
        self._last_t = None
        self._last_requests = None
        self.qps = None
        self._samples = {}

    def update(self, samples, now=None):
        """Fold one parsed scrape (the dict from :func:`parse_promtext`)."""
        now = self._clock() if now is None else now
        requests = _sum_samples(samples, "repro_requests_total")
        if self._last_t is not None and now > self._last_t:
            self.qps = max(0.0, requests - self._last_requests) / (now - self._last_t)
        self._last_t, self._last_requests = now, requests
        self._samples = samples

    def render(self):
        s = self._samples
        bits = []
        bits.append("qps %s" % ("%.1f" % self.qps if self.qps is not None else "-"))
        p50 = histogram_quantile(s, "repro_request_seconds", 0.50)
        p95 = histogram_quantile(s, "repro_request_seconds", 0.95)
        p99 = histogram_quantile(s, "repro_request_seconds", 0.99)
        bits.append(
            "lat p50 %s p95 %s p99 %s"
            % (_fmt_seconds(p50), _fmt_seconds(p95), _fmt_seconds(p99))
        )
        inflight = _sum_samples(s, "repro_inflight_window")
        depth = _sum_samples(s, "repro_inflight_window_limit")
        pending = _sum_samples(s, "repro_dispatch_pending")
        bits.append("queue %d/%d (+%d pending)" % (inflight, depth, pending))
        workers = _sum_samples(s, "repro_workers")
        busy = _sum_samples(s, "repro_workers_busy")
        if workers:
            bits.append("workers %d/%d" % (busy, workers))
        hits = _sum_samples(s, "repro_cache_hits_total")
        misses = _sum_samples(s, "repro_cache_misses_total")
        if hits + misses > 0:
            bits.append("cache %.0f%%" % (100.0 * hits / (hits + misses),))
        else:
            bits.append("cache -")
        rejected = _sum_samples(s, "repro_admission_rejections_total")
        if rejected:
            bits.append("rejected %d" % (rejected,))
        return " | ".join(bits)
