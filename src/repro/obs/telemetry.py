"""Harness-level sweep telemetry: job-lifecycle events, worker
heartbeats, and aggregate sweep metrics for :func:`run_grid`.

``repro.obs`` (PR 2) sees inside one simulation and the run ledger
(PR 4) sees finished runs after the fact; this module observes the
*harness itself* while a sweep is in flight. The fault-tolerant
submit/collect event loop of :func:`repro.harness.parallel.run_grid`
emits one typed :class:`SweepEvent` per job-lifecycle transition, plus
periodic heartbeats and a final metrics snapshot, to an attached
:class:`SweepTelemetry` hub — and, following the PR-2 zero-overhead
contract, emits **nothing at all** when no hub is attached: every hook
in the harness is a bare ``is None`` predicate (enforced by
``tests/test_obs_overhead.py``).

Event taxonomy (see ``docs/OBSERVABILITY.md`` for the full contract):

===================  ==================================================
``sweep-start``      the grid was resolved; carries totals and backend
``queued``           one job entered the sweep (every job, exactly once)
``cache-hit``        terminal: answered from the disk result cache
``batched``          a same-program batch group was formed
``started``          one job attempt was handed to a worker
``retry``            a charged attempt failed and the job was requeued
``timeout``          a running attempt exceeded the per-job wall clock
``worker-crash``     the process pool broke; carries the victim jobs
``degraded-to-scalar``  a batch member left its group to run scalar
``done``             terminal: the job completed (cycles, wall time)
``failed``           terminal: the job was unrecoverable
``heartbeat``        periodic worker/queue pulse with a metrics snapshot
``sweep-end``        final :class:`SweepMetrics` plus cache accounting
===================  ==================================================

**Accounting invariant** (pinned by ``tests/test_telemetry.py`` and
audited by ``repro sweep``): every job appears in exactly one ``queued``
event and ends in exactly one *terminal* event — ``done``, ``failed``,
or ``cache-hit`` — and the terminal counts reconcile with
:func:`run_grid`'s returned results, its :class:`JobFailure` records,
and its ledger appends, under every ``repro.faults`` scenario.

Every event carries the sweep's ``sweep_id``, which :func:`run_grid`
also stamps into the ledger records it appends — making whole sweeps
first-class across ``repro report``/``repro diff`` (``--sweep``) and
summarizable after the fact from a JSONL event log via ``repro sweep``.

The same schema also describes **server-lifetime** streams: the job
service (:mod:`repro.service`) emits one hub per server process, with
``sweep-start`` carrying ``total=0`` — the job population of a running
server is open-ended, and :func:`summarize` only cross-checks the
announced total against the log when it is non-zero. Per-job
accounting is identical, so ``repro sweep`` audits a served session
exactly like a local sweep (see ``docs/SERVICE.md``).

Sinks are callables taking one :class:`SweepEvent`;
:class:`repro.obs.export.JsonlSink` (the event log),
:class:`LiveProgress` (single-line terminal refresh), and
:class:`repro.obs.export.SweepTraceCollector` (Perfetto timeline) all
qualify.
"""

import json
import sys
import time
import uuid
import warnings

#: Event schema version, carried by ``sweep-start`` events.
SCHEMA_VERSION = 1

#: Every event kind, in rough lifecycle order.
LIFECYCLE_KINDS = (
    "sweep-start", "queued", "cache-hit", "batched", "started", "retry",
    "timeout", "worker-crash", "degraded-to-scalar", "done", "failed",
    "heartbeat", "sweep-end",
)

#: Kinds that terminate a job: each job gets exactly one of these.
TERMINAL_KINDS = ("cache-hit", "done", "failed")


class TelemetryWarning(UserWarning):
    """A sweep-event log line was malformed and has been skipped."""


def new_sweep_id():
    """Fresh 12-hex-char sweep identifier."""
    return uuid.uuid4().hex[:12]


class SweepEvent:
    """Plain-data record of one harness-level occurrence.

    ``t`` is seconds since the sweep started (host clock, not simulated
    cycles — this is the harness's timeline, not the engine's), ``job``
    the grid index the event concerns (``None`` for sweep-level events),
    and ``data`` the kind-specific payload fields.
    """

    __slots__ = ("kind", "t", "sweep_id", "job", "workload", "data")

    def __init__(self, kind, t, sweep_id, job=None, workload=None,
                 data=None):
        self.kind = kind
        self.t = t
        self.sweep_id = sweep_id
        self.job = job
        self.workload = workload
        self.data = data

    def to_dict(self):
        """JSON-serializable dict: the JSONL event-log line."""
        record = {"event": self.kind, "t": self.t,
                  "sweep_id": self.sweep_id}
        if self.job is not None:
            record["job"] = self.job
        if self.workload is not None:
            record["workload"] = self.workload
        if self.data:
            record.update(self.data)
        return record

    @classmethod
    def from_dict(cls, record):
        """Rebuild an event from its :meth:`to_dict` form (log replay)."""
        data = {key: value for key, value in record.items()
                if key not in ("event", "t", "sweep_id", "job", "workload")}
        return cls(record["event"], record.get("t", 0.0),
                   record.get("sweep_id"), record.get("job"),
                   record.get("workload"), data or None)

    def __repr__(self):
        return (f"SweepEvent({self.kind!r}, t={self.t}, job={self.job}, "
                f"data={self.data!r})")


class SweepMetrics:
    """Running aggregates over a sweep's event stream.

    One accounting path for everything: the live :class:`SweepTelemetry`
    hub, the :class:`LiveProgress` view, and the ``repro sweep``
    after-the-fact summarizer all fold events through :meth:`apply`, so
    live and replayed numbers can never disagree.
    """

    __slots__ = ("total", "workers", "queued_events", "cache_hits", "done",
                 "failed", "retries", "timeouts", "crashes", "batches",
                 "batched_jobs", "degraded", "backends", "running",
                 "wall_done", "elapsed")

    def __init__(self):
        self.total = 0          # jobs announced by sweep-start
        self.workers = None
        self.queued_events = 0  # queued events seen (reconciliation)
        self.cache_hits = 0
        self.done = 0
        self.failed = 0
        self.retries = 0
        self.timeouts = 0
        self.crashes = 0        # pool breakages (worker-crash events)
        self.batches = 0
        self.batched_jobs = 0
        self.degraded = 0       # members demoted batch -> scalar
        self.backends = {}      # backend -> completed-job count
        self.running = set()    # job indices with an open attempt
        self.wall_done = 0.0    # summed wall_seconds of done jobs
        self.elapsed = 0.0      # t of the latest event

    def apply(self, event):
        """Fold one :class:`SweepEvent` into the aggregates."""
        kind = event.kind
        data = event.data or {}
        if event.t > self.elapsed:
            self.elapsed = event.t
        if kind == "sweep-start":
            self.total = data.get("total") or 0
            self.workers = data.get("workers")
        elif kind == "queued":
            self.queued_events += 1
        elif kind == "cache-hit":
            self.cache_hits += 1
        elif kind == "batched":
            self.batches += 1
            self.batched_jobs += data.get("size") or 0
        elif kind == "started":
            self.running.add(event.job)
        elif kind == "retry":
            self.retries += 1
            self.running.discard(event.job)
        elif kind == "timeout":
            self.timeouts += 1
            self.running.discard(event.job)
        elif kind == "worker-crash":
            self.crashes += 1
            for victim in data.get("victims") or ():
                self.running.discard(victim)
        elif kind == "degraded-to-scalar":
            self.degraded += 1
            self.running.discard(event.job)
        elif kind == "done":
            self.done += 1
            self.running.discard(event.job)
            backend = data.get("backend") or "scalar"
            self.backends[backend] = self.backends.get(backend, 0) + 1
            wall = data.get("wall_seconds")
            if wall:
                self.wall_done += wall
        elif kind == "failed":
            self.failed += 1
            self.running.discard(event.job)

    # ------------------------------------------------------- derived views

    @property
    def terminal(self):
        """Jobs that reached their one terminal event."""
        return self.done + self.failed + self.cache_hits

    @property
    def remaining(self):
        return max(self.total, self.queued_events) - self.terminal

    def jobs_per_sec(self):
        """Terminal events per elapsed second, or ``None`` before any."""
        if self.elapsed <= 0.0 or not self.terminal:
            return None
        return self.terminal / self.elapsed

    def eta_seconds(self):
        """Estimated seconds to finish the remaining jobs.

        Prefers the mean wall time of *completed* jobs spread over the
        worker width (cache hits are free, so they are excluded from the
        mean); falls back to the overall terminal rate when nothing has
        simulated yet. ``None`` when there is no basis for an estimate.
        """
        remaining = self.remaining
        if remaining <= 0:
            return 0.0
        if self.done and self.wall_done:
            mean = self.wall_done / self.done
            return remaining * mean / max(self.workers or 1, 1)
        rate = self.jobs_per_sec()
        return remaining / rate if rate else None

    def cache_hit_rate(self):
        """Cache hits over terminal jobs, or ``None`` before any."""
        return self.cache_hits / self.terminal if self.terminal else None

    def to_dict(self):
        rate = self.jobs_per_sec()
        eta = self.eta_seconds()
        hit_rate = self.cache_hit_rate()
        return {
            "total": self.total,
            "workers": self.workers,
            "queued": self.queued_events,
            "done": self.done,
            "failed": self.failed,
            "cache_hits": self.cache_hits,
            "cache_hit_rate": (round(hit_rate, 4)
                               if hit_rate is not None else None),
            "retries": self.retries,
            "timeouts": self.timeouts,
            "worker_crashes": self.crashes,
            "batches": self.batches,
            "batched_jobs": self.batched_jobs,
            "degraded_to_scalar": self.degraded,
            "backends": dict(sorted(self.backends.items())),
            "running": len(self.running),
            "elapsed": round(self.elapsed, 6),
            "jobs_per_sec": round(rate, 4) if rate is not None else None,
            "eta_seconds": round(eta, 3) if eta is not None else None,
        }


class SweepTelemetry:
    """The hub :func:`run_grid` emits through when one is attached.

    Parameters
    ----------
    sweep_id:
        Identifier stamped on every event (and, by :func:`run_grid`,
        into every ledger record of the sweep). Defaults to a fresh
        :func:`new_sweep_id`.
    sinks:
        Initial sinks (callables taking one :class:`SweepEvent`).
    heartbeat:
        Minimum seconds between ``heartbeat`` events (the harness calls
        :meth:`maybe_heartbeat` every event-loop iteration; the hub
        throttles).
    clock:
        Monotonic clock, injectable for deterministic tests.
    """

    def __init__(self, sweep_id=None, sinks=(), heartbeat=2.0,
                 clock=time.monotonic):
        self.sweep_id = sweep_id or new_sweep_id()
        self.metrics = SweepMetrics()
        self.heartbeat = heartbeat
        self._clock = clock
        self._t0 = None
        self._last_beat = None
        self._sinks = []
        for sink in sinks:
            self.subscribe(sink)

    def subscribe(self, sink):
        """Attach ``sink``; returns it (handy for inline construction)."""
        if not callable(sink):
            raise TypeError(
                f"sink must be callable, got {type(sink).__name__}")
        self._sinks.append(sink)
        return sink

    def unsubscribe(self, sink):
        """Detach ``sink``; unknown sinks are ignored."""
        try:
            self._sinks.remove(sink)
        except ValueError:
            pass

    # ---------------------------------------------------------- emission

    def _now(self):
        if self._t0 is None:
            self._t0 = self._clock()
        return self._clock() - self._t0

    def _emit(self, event_kind, job=None, workload=None, **data):
        # First parameter deliberately not named ``kind``: failure and
        # retry events carry a ``kind`` *payload* field via **data.
        event = SweepEvent(event_kind, round(self._now(), 6), self.sweep_id,
                           job, workload, data or None)
        self.metrics.apply(event)
        for sink in self._sinks:
            sink(event)
        return event

    # --------------------------------------------------- lifecycle hooks

    def sweep_start(self, total, workers=None, backend="scalar"):
        return self._emit("sweep-start", total=total, workers=workers,
                          backend=backend, schema=SCHEMA_VERSION)

    def job_queued(self, index, workload, fingerprint=None):
        return self._emit("queued", job=index, workload=workload,
                          config=fingerprint)

    def cache_hit(self, index, workload):
        return self._emit("cache-hit", job=index, workload=workload)

    def batch_formed(self, indices, workload):
        return self._emit("batched", workload=workload,
                          members=list(indices), size=len(indices))

    def job_started(self, index, workload, attempt, batched=False):
        return self._emit("started", job=index, workload=workload,
                          attempt=attempt, batched=batched)

    def job_retry(self, index, workload, kind, attempt, delay):
        return self._emit("retry", job=index, workload=workload, kind=kind,
                          attempt=attempt, delay=round(delay, 6))

    def job_timeout(self, index, workload, attempt):
        return self._emit("timeout", job=index, workload=workload,
                          attempt=attempt)

    def worker_crash(self, victims):
        return self._emit("worker-crash", victims=sorted(victims))

    def degraded_to_scalar(self, index, workload, reason):
        return self._emit("degraded-to-scalar", job=index,
                          workload=workload, reason=reason)

    def job_done(self, index, workload, cycles=None, wall_seconds=None,
                 backend="scalar", attempts=1):
        return self._emit("done", job=index, workload=workload,
                          cycles=cycles, wall_seconds=wall_seconds,
                          backend=backend, attempts=attempts)

    def job_failed(self, index, workload, kind, attempts, message):
        return self._emit("failed", job=index, workload=workload, kind=kind,
                          attempts=attempts, message=message)

    def maybe_heartbeat(self, running=0, queued=0, **extra):
        """Emit a throttled ``heartbeat``; returns it, or ``None``."""
        now = self._now()
        if self._last_beat is not None \
                and now - self._last_beat < self.heartbeat:
            return None
        self._last_beat = now
        return self._emit("heartbeat", running=running, queued=queued,
                          metrics=self.metrics.to_dict(), **extra)

    def sweep_end(self, cache=None):
        """Final event: the metrics snapshot plus disk-cache counters."""
        return self._emit("sweep-end", metrics=self.metrics.to_dict(),
                          cache=cache)


class LiveProgress:
    """Single-line ``\\r``-refresh terminal view of a running sweep.

    A plain event sink: it folds every event through its own
    :class:`SweepMetrics` (so it also works replaying a recorded log)
    and redraws at most every ``min_interval`` seconds, finishing with
    a newline on ``sweep-end``.
    """

    __slots__ = ("stream", "metrics", "min_interval", "count",
                 "_clock", "_last", "_width", "_sweep")

    def __init__(self, stream=None, min_interval=0.1, clock=time.monotonic):
        self.stream = stream if stream is not None else sys.stderr
        self.metrics = SweepMetrics()
        self.min_interval = min_interval
        self.count = 0
        self._clock = clock
        self._last = None
        self._width = 0
        self._sweep = None

    def __call__(self, event):
        self.count += 1
        self.metrics.apply(event)
        self._sweep = event.sweep_id
        final = event.kind == "sweep-end"
        now = self._clock()
        if not final and self._last is not None \
                and now - self._last < self.min_interval:
            return
        self._last = now
        line = self.render(event)
        pad = max(self._width - len(line), 0)
        self._width = len(line)
        self.stream.write("\r" + line + " " * pad)
        if final:
            self.stream.write("\n")
        self.stream.flush()

    def println(self, text):
        """Write a full line *through* the live view without mangling it.

        Other writers sharing this tty (the service access log, ad-hoc
        diagnostics) must not interleave with the ``\\r``-refresh
        status line: this clears the status line, writes ``text`` plus
        a newline, and redraws the status underneath — so the log line
        lands intact on its own row and the live view survives.
        """
        clear_pad = max(self._width - len(text), 0)
        status = self.render()
        self._width = len(status)
        self.stream.write("\r" + text + " " * clear_pad + "\n" + status)
        self.stream.flush()

    def render(self, event=None):
        """The current status line (no carriage control)."""
        m = self.metrics
        sweep = event.sweep_id if event is not None else self._sweep
        bits = [f"[sweep {sweep or '?'}]",
                f"{m.terminal}/{m.total or m.queued_events} jobs"]
        if m.done:
            bits.append(f"{m.done} done")
        if m.cache_hits:
            bits.append(f"{m.cache_hits} cached")
        if m.failed:
            bits.append(f"{m.failed} FAILED")
        if m.running:
            bits.append(f"{len(m.running)} running")
        if m.retries:
            bits.append(f"{m.retries} retries")
        rate = m.jobs_per_sec()
        if rate is not None:
            bits.append(f"{rate:.1f} job/s")
        eta = m.eta_seconds()
        if eta:
            bits.append(f"ETA {eta:.0f}s")
        return " | ".join(bits)


# ------------------------------------------------------------ log replay

def load_events(path):
    """Parse a JSONL sweep-event log into event dicts, oldest first.

    Malformed lines are skipped with a :class:`TelemetryWarning` — one
    rotted line never poisons the forensics (mirrors the run ledger's
    read policy).
    """
    with open(path) as handle:
        text = handle.read()
    events = []
    skipped = 0
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except ValueError:
            skipped += 1
            continue
        if not isinstance(record, dict) or "event" not in record:
            skipped += 1
            continue
        events.append(record)
    if skipped:
        warnings.warn(
            f"skipped {skipped} malformed sweep-event line"
            f"{'' if skipped == 1 else 's'} in {path}",
            TelemetryWarning, stacklevel=2)
    return events


def summarize(events):
    """Fold an event log into accounting: metrics, per-job lifecycles,
    and invariant violations.

    Returns a dict with ``sweep_ids``, ``backend``, ``metrics`` (a
    replayed :class:`SweepMetrics`), ``jobs`` (index -> ordered event
    dicts), ``cache`` (the ``sweep-end`` disk-cache counters, if any),
    and ``violations`` — human-readable strings for every job that does
    not have exactly one ``queued`` and exactly one terminal event.
    """
    metrics = SweepMetrics()
    jobs = {}
    sweep_ids = []
    backend = None
    cache = None
    for record in events:
        event = SweepEvent.from_dict(record)
        metrics.apply(event)
        if event.sweep_id and event.sweep_id not in sweep_ids:
            sweep_ids.append(event.sweep_id)
        if event.job is not None:
            jobs.setdefault(event.job, []).append(record)
        if event.kind == "sweep-start":
            backend = (event.data or {}).get("backend")
        elif event.kind == "sweep-end":
            cache = (event.data or {}).get("cache")
    violations = []
    for index in sorted(jobs):
        kinds = [record["event"] for record in jobs[index]]
        queued = kinds.count("queued")
        terminals = [kind for kind in kinds if kind in TERMINAL_KINDS]
        if queued != 1:
            violations.append(
                f"job {index}: {queued} queued events (expected 1)")
        if len(terminals) != 1:
            shown = ", ".join(terminals) or "none"
            violations.append(
                f"job {index}: {len(terminals)} terminal events "
                f"({shown}; expected exactly 1)")
    if metrics.total and metrics.total != len(jobs):
        violations.append(
            f"sweep-start announced {metrics.total} jobs but the log "
            f"covers {len(jobs)}")
    return {"sweep_ids": sweep_ids, "backend": backend, "metrics": metrics,
            "jobs": jobs, "cache": cache, "violations": violations}


def _event_line(record):
    rest = " ".join(
        f"{key}={value}" for key, value in record.items()
        if key not in ("event", "t", "sweep_id", "job", "workload")
        and value is not None)
    who = f"job {record['job']}" if "job" in record else "sweep"
    workload = record.get("workload")
    label = f"{who} {workload}" if workload else who
    return f"  [{record.get('t', 0):10.4f}s] {record['event']:<19} " \
           f"{label} {rest}".rstrip()


#: Width of the waterfall bar column.
_WATERFALL_WIDTH = 32


def _job_waterfall_rows(summary):
    """Per-job lifecycle rows: span bars on the sweep's time axis."""
    metrics = summary["metrics"]
    duration = metrics.elapsed or 1.0
    rows = []
    for index in sorted(summary["jobs"]):
        records = summary["jobs"][index]
        queued_t = next((r.get("t", 0.0) for r in records
                         if r["event"] == "queued"), 0.0)
        starts = [r for r in records if r["event"] == "started"]
        terminal = next((r for r in records
                         if r["event"] in TERMINAL_KINDS), None)
        end_t = terminal.get("t", queued_t) if terminal else duration
        outcome = terminal["event"] if terminal else "UNFINISHED"
        first_start = starts[0].get("t", queued_t) if starts else end_t
        lo = int(first_start / duration * _WATERFALL_WIDTH)
        hi = int(end_t / duration * _WATERFALL_WIDTH)
        lo = min(lo, _WATERFALL_WIDTH - 1)
        hi = max(min(hi, _WATERFALL_WIDTH), lo + 1)
        bar = " " * lo + "#" * (hi - lo) + " " * (_WATERFALL_WIDTH - hi)
        workload = records[0].get("workload") or "?"
        rows.append([index, workload, f"{queued_t:.3f}", len(starts),
                     outcome, f"{end_t:.3f}", bar])
    return rows


def render_summary(events, waterfall=False, show_failures=True):
    """Human-readable sweep report from a recorded event log.

    Returns ``(text, ok)`` where ``ok`` is False when the accounting
    invariant is violated (``repro sweep`` exits 1 on that).
    """
    from repro.harness.tables import format_table

    summary = summarize(events)
    metrics = summary["metrics"]
    snapshot = metrics.to_dict()
    sweeps = ", ".join(summary["sweep_ids"]) or "?"
    lines = [f"# repro sweep — sweep {sweeps}"
             + (f" [{summary['backend']} backend]"
                if summary["backend"] else ""),
             f"# {len(events)} events, {len(summary['jobs'])} jobs, "
             f"{snapshot['elapsed']:.3f}s elapsed"]
    rate = snapshot["jobs_per_sec"]
    if rate is not None:
        lines[-1] += f", {rate:.2f} jobs/s"
    lines.append("")
    rows = [["done", metrics.done], ["failed", metrics.failed],
            ["cache-hit", metrics.cache_hits],
            ["retries", metrics.retries], ["timeouts", metrics.timeouts],
            ["worker-crashes", metrics.crashes],
            ["batches", metrics.batches],
            ["batched jobs", metrics.batched_jobs],
            ["degraded-to-scalar", metrics.degraded]]
    lines.append(format_table("lifecycle accounting", ["event", "count"],
                              rows))
    if metrics.backends:
        lines.append("")
        lines.append(format_table(
            "backend mix (completed jobs)", ["backend", "jobs"],
            sorted(metrics.backends.items())))
    cache = summary["cache"]
    if cache:
        lines.append("")
        lines.append(format_table(
            "disk result cache", ["counter", "value"],
            [[key, cache[key]] for key in
             ("hits", "misses", "dropped", "quarantined", "entries")
             if key in cache]))
    if waterfall:
        lines.append("")
        lines.append(format_table(
            "per-job waterfall",
            ["job", "workload", "queued", "attempts", "outcome", "end",
             "timeline"],
            _job_waterfall_rows(summary)))
    if show_failures:
        failed = [index for index in sorted(summary["jobs"])
                  if any(r["event"] == "failed"
                         for r in summary["jobs"][index])]
        if failed:
            lines.append("")
            lines.append(f"failure forensics ({len(failed)} job"
                         f"{'' if len(failed) == 1 else 's'}):")
            for index in failed:
                for record in summary["jobs"][index]:
                    lines.append(_event_line(record))
    lines.append("")
    if summary["violations"]:
        lines.append("accounting: VIOLATED")
        for violation in summary["violations"]:
            lines.append(f"  {violation}")
    else:
        lines.append(
            f"accounting: ok — {metrics.terminal} jobs, one terminal "
            f"event each ({metrics.done} done, {metrics.failed} failed, "
            f"{metrics.cache_hits} cache-hit)")
    return "\n".join(lines), not summary["violations"]
