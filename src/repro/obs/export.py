"""Event-bus sinks: JSON-lines, plain text, and Chrome/Perfetto traces.

Every sink is a callable taking one :class:`~repro.obs.events.Event`;
attach with ``PipelineSim.add_sink(sink)``.

The Perfetto exporter emits the Chrome ``trace_event`` JSON object
format (https://ui.perfetto.dev opens it directly):

* **pid 1 — threads**: one track per hardware thread. Each issued
  instruction is an ``X`` (complete) event spanning issue to writeback.
  ``X`` events may overlap freely, which in-flight instructions of one
  thread routinely do, so thread tracks never use ``B``/``E`` nesting.
* **pid 2 — functional units**: one track per FU *instance*
  (``tid = fu_index * 64 + unit``). Occupancy spans are matched
  ``B``/``E`` pairs — an instance is occupied for 1 cycle (pipelined
  classes) or the full latency (the unpipelined dividers), and
  occupancies on one instance never overlap, so the pairs always
  balance (checked by :func:`validate_trace` and the CI gate).
* **pid 3 — engine**: idle spans skipped by the fast-forward engine,
  as ``X`` events labelled with the stall reason.

Timestamps are simulated cycles, written as microseconds (1 cycle =
1 us) so Perfetto's time axis reads directly in cycles.
"""

import json

from repro.obs.events import Event

#: Synthetic process ids grouping the trace tracks.
PID_THREADS = 1
PID_FUS = 2
PID_ENGINE = 3
#: Sweep-timeline tracks (harness telemetry, not simulated cycles).
PID_SWEEP = 4

#: FU-instance track id stride: ``tid = fu_index * 64 + unit``.
FU_TRACK_STRIDE = 64

#: Sort rank per phase at equal ``ts``: close before open so B/E pairs
#: on one track never appear to overlap.
_PHASE_RANK = {"E": 0, "B": 2}


class JsonlSink:
    """Writes one JSON object per event to ``stream`` (JSON-lines)."""

    __slots__ = ("stream", "count")

    def __init__(self, stream):
        self.stream = stream
        self.count = 0

    def __call__(self, event):
        self.stream.write(json.dumps(event.to_dict()))
        self.stream.write("\n")
        self.count += 1


class TextSink:
    """Writes one human-readable line per event to ``stream``."""

    __slots__ = ("stream", "count")

    def __init__(self, stream):
        self.stream = stream
        self.count = 0

    def __call__(self, event):
        record = event.to_dict()
        kind = record.pop("event")
        cycle = record.pop("cycle")
        rest = " ".join(f"{key}={value}" for key, value in record.items())
        self.stream.write(f"[{cycle:>8}] {kind:<9} {rest}\n")
        self.count += 1


class PerfettoCollector:
    """Accumulates Chrome ``trace_event`` records from pipeline events.

    Usage::

        collector = PerfettoCollector(config)
        sim.add_sink(collector)
        stats = sim.run()
        with open("trace.json", "w") as out:
            collector.write(out)
    """

    __slots__ = ("events", "count", "_occupancy", "_fu_names", "_tids",
                 "_fu_tracks")

    def __init__(self, config):
        from repro.core.execute import UNPIPELINED
        from repro.isa.opcodes import FU_CLASSES

        self._occupancy = [config.fu_latency[cls] if cls in UNPIPELINED
                           else 1 for cls in FU_CLASSES]
        self._fu_names = [cls.value for cls in FU_CLASSES]
        self.events = []
        self.count = 0
        self._tids = set()
        self._fu_tracks = {}  # (fu_index, unit) -> (track tid, label)

    def _fu_track(self, fu_index, unit):
        key = (fu_index, unit)
        track = self._fu_tracks.get(key)
        if track is None:
            track = (fu_index * FU_TRACK_STRIDE + unit,
                     f"{self._fu_names[fu_index]}[{unit}]")
            self._fu_tracks[key] = track
        return track[0]

    def __call__(self, event):
        kind = event.kind
        out = self.events
        if kind == "issue":
            self._tids.add(event.tid)
            dur = event.ready - event.cycle
            out.append({"name": event.text, "cat": "instr", "ph": "X",
                        "ts": event.cycle, "dur": dur if dur > 0 else 1,
                        "pid": PID_THREADS, "tid": event.tid,
                        "args": {"tag": event.tag, "pc": event.pc}})
            unit = event.unit if event.unit is not None else 0
            track = self._fu_track(event.fu_index, unit)
            occupancy = self._occupancy[event.fu_index]
            out.append({"name": event.text, "cat": "fu", "ph": "B",
                        "ts": event.cycle, "pid": PID_FUS, "tid": track,
                        "args": {"tag": event.tag, "tid": event.tid}})
            out.append({"name": event.text, "cat": "fu", "ph": "E",
                        "ts": event.cycle + occupancy,
                        "pid": PID_FUS, "tid": track})
        elif kind == "commit":
            self._tids.add(event.tid)
            out.append({"name": "commit", "cat": "retire", "ph": "i",
                        "ts": event.cycle, "pid": PID_THREADS,
                        "tid": event.tid, "s": "t",
                        "args": {"tags": list(event.tags)}})
        elif kind == "squash":
            self._tids.add(event.tid)
            out.append({"name": "squash", "cat": "retire", "ph": "i",
                        "ts": event.cycle, "pid": PID_THREADS,
                        "tid": event.tid, "s": "t",
                        "args": {"tags": list(event.tags)}})
        elif kind == "stall":
            out.append({"name": f"idle ({event.reason})", "cat": "engine",
                        "ph": "X", "ts": event.cycle, "dur": event.span,
                        "pid": PID_ENGINE, "tid": 0, "args": {}})
        self.count += 1

    def _metadata(self):
        meta = [
            {"name": "process_name", "ph": "M", "ts": 0, "pid": PID_THREADS,
             "tid": 0, "args": {"name": "threads"}},
            {"name": "process_name", "ph": "M", "ts": 0, "pid": PID_FUS,
             "tid": 0, "args": {"name": "functional units"}},
            {"name": "process_name", "ph": "M", "ts": 0, "pid": PID_ENGINE,
             "tid": 0, "args": {"name": "engine"}},
            {"name": "thread_name", "ph": "M", "ts": 0, "pid": PID_ENGINE,
             "tid": 0, "args": {"name": "fast-forward"}},
        ]
        for tid in sorted(self._tids):
            meta.append({"name": "thread_name", "ph": "M", "ts": 0,
                         "pid": PID_THREADS, "tid": tid,
                         "args": {"name": f"thread {tid}"}})
        for track, label in sorted(self._fu_tracks.values()):
            meta.append({"name": "thread_name", "ph": "M", "ts": 0,
                         "pid": PID_FUS, "tid": track,
                         "args": {"name": label}})
        return meta

    def trace(self, final_cycle=None):
        """The complete trace as a plain dict (``trace_event`` object form)."""
        body = sorted(self.events,
                      key=lambda ev: (ev["ts"], _PHASE_RANK.get(ev["ph"], 1)))
        record = {"traceEvents": self._metadata() + body,
                  "displayTimeUnit": "ms",
                  "otherData": {"time_unit": "1 us = 1 simulated cycle"}}
        if final_cycle is not None:
            record["otherData"]["final_cycle"] = final_cycle
        return record

    def write(self, stream, final_cycle=None):
        """Serialize the trace to ``stream`` as JSON."""
        json.dump(self.trace(final_cycle), stream)
        stream.write("\n")


class SweepTraceCollector:
    """Perfetto timeline of a sweep from harness telemetry events.

    A :class:`~repro.obs.telemetry.SweepTelemetry` sink producing the
    same ``trace_event`` object format as :class:`PerfettoCollector`,
    on **pid 4** with one track per *worker lane*. The parent process
    cannot know which pool worker ran which job, so lanes are virtual:
    each ``started`` event claims the lowest free lane (the same
    lowest-free-instance rule the FU tracks use) and the lane is
    released when the job's attempt ends. With ``workers`` lanes the
    timeline therefore shows true sweep concurrency even though lane
    numbers are not OS pids.

    Track contents:

    * per-lane ``X`` spans, one per job *attempt* (``started`` to
      ``done``/``failed``/``retry``/``timeout`` — or to the next
      ``started`` for attempts abandoned without a charged event, e.g.
      innocents requeued after a pool crash);
    * ``i`` (instant) annotations on lane 0's control track (tid 0):
      ``queued``, ``cache-hit``, ``batched``, ``worker-crash``,
      ``degraded-to-scalar``, ``heartbeat``.

    Timestamps are seconds since sweep start, written as microseconds.
    The output passes :func:`validate_trace` (CI gates on it).
    """

    __slots__ = ("events", "count", "sweep_id", "_open", "_free",
                 "_next_lane", "_lanes_used")

    #: Control track for sweep-level instants (lanes start at 1).
    CONTROL_TID = 0

    def __init__(self):
        import heapq  # noqa: F401  (documented dependency of _claim)

        self.events = []
        self.count = 0
        self.sweep_id = None
        self._open = {}     # job index -> (lane, start ts, name, attempt)
        self._free = []     # heap of released lane numbers
        self._next_lane = 1
        self._lanes_used = set()

    def _claim(self):
        import heapq

        if self._free:
            return heapq.heappop(self._free)
        lane = self._next_lane
        self._next_lane += 1
        return lane

    def _release(self, lane):
        import heapq

        heapq.heappush(self._free, lane)

    def _close(self, job, ts, outcome):
        """Emit the X span for ``job``'s open attempt, free its lane."""
        lane, start, name, attempt = self._open.pop(job)
        self._release(lane)
        self.events.append({
            "name": name, "cat": "job", "ph": "X",
            "ts": start, "dur": max(ts - start, 1),
            "pid": PID_SWEEP, "tid": lane,
            "args": {"job": job, "attempt": attempt, "outcome": outcome}})

    def _instant(self, name, ts, args):
        self.events.append({"name": name, "cat": "sweep", "ph": "i",
                            "ts": ts, "pid": PID_SWEEP,
                            "tid": self.CONTROL_TID, "s": "t",
                            "args": args})

    def __call__(self, event):
        self.count += 1
        kind = event.kind
        ts = int(event.t * 1_000_000)
        data = event.data or {}
        if self.sweep_id is None and event.sweep_id:
            self.sweep_id = event.sweep_id
        if kind == "started":
            if event.job in self._open:
                # Abandoned attempt (e.g. innocent requeued uncharged
                # after a pool crash): close it at the restart instant.
                self._close(event.job, ts, "requeued")
            lane = self._claim()
            self._lanes_used.add(lane)
            name = event.workload or f"job {event.job}"
            if data.get("batched"):
                name = f"{name} [batch]"
            self._open[event.job] = (lane, ts, name,
                                     data.get("attempt", 1))
        elif kind in ("done", "failed", "retry", "timeout"):
            if event.job in self._open:
                self._close(event.job, ts, kind)
        elif kind == "worker-crash":
            victims = data.get("victims") or ()
            for victim in list(victims):
                if victim in self._open:
                    self._close(victim, ts, "worker-crash")
            self._instant("worker-crash", ts, {"victims": list(victims)})
        elif kind in ("queued", "cache-hit", "batched",
                      "degraded-to-scalar"):
            args = {"job": event.job} if event.job is not None else {}
            if event.workload:
                args["workload"] = event.workload
            if kind == "degraded-to-scalar" and data.get("reason"):
                args["reason"] = data["reason"]
            self._instant(kind, ts, args)
        elif kind == "heartbeat":
            self._instant("heartbeat", ts,
                          {"running": data.get("running"),
                           "queued": data.get("queued")})
        elif kind == "sweep-end":
            for job in list(self._open):
                self._close(job, ts, "unfinished")

    def _metadata(self):
        meta = [{"name": "process_name", "ph": "M", "ts": 0,
                 "pid": PID_SWEEP, "tid": 0,
                 "args": {"name": "sweep workers"}},
                {"name": "thread_name", "ph": "M", "ts": 0,
                 "pid": PID_SWEEP, "tid": self.CONTROL_TID,
                 "args": {"name": "sweep events"}}]
        for lane in sorted(self._lanes_used):
            meta.append({"name": "thread_name", "ph": "M", "ts": 0,
                         "pid": PID_SWEEP, "tid": lane,
                         "args": {"name": f"worker lane {lane}"}})
        return meta

    def trace(self):
        """The sweep timeline as a ``trace_event`` object dict."""
        body = sorted(self.events,
                      key=lambda ev: (ev["ts"], _PHASE_RANK.get(ev["ph"], 1)))
        record = {"traceEvents": self._metadata() + body,
                  "displayTimeUnit": "ms",
                  "otherData": {"time_unit": "1 us = 1e-6 s wall clock"}}
        if self.sweep_id is not None:
            record["otherData"]["sweep_id"] = self.sweep_id
        return record

    def write(self, stream):
        """Serialize the sweep trace to ``stream`` as JSON."""
        json.dump(self.trace(), stream)
        stream.write("\n")


def validate_trace(trace):
    """Check a ``trace_event`` object against the contract CI enforces.

    Returns a list of error strings (empty = valid): ``traceEvents``
    present, timestamps sorted non-decreasing (metadata aside), ``X``
    durations non-negative, and ``B``/``E`` pairs matched per
    ``(pid, tid)`` track.
    """
    errors = []
    events = trace.get("traceEvents") if isinstance(trace, dict) else None
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    last_ts = None
    stacks = {}
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            errors.append(f"event {index}: not an object")
            continue
        phase = event.get("ph")
        if not phase:
            errors.append(f"event {index}: missing ph")
            continue
        if phase == "M":
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            errors.append(f"event {index}: bad ts {ts!r}")
            continue
        if last_ts is not None and ts < last_ts:
            errors.append(f"event {index}: ts {ts} < previous {last_ts} "
                          "(unsorted)")
        last_ts = ts
        track = (event.get("pid"), event.get("tid"))
        if phase == "B":
            stacks.setdefault(track, []).append(event.get("name"))
        elif phase == "E":
            stack = stacks.get(track)
            if not stack:
                errors.append(f"event {index}: E without matching B "
                              f"on track {track}")
            else:
                stack.pop()
        elif phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                errors.append(f"event {index}: X with bad dur {dur!r}")
    for track, stack in stacks.items():
        if stack:
            errors.append(f"track {track}: {len(stack)} unclosed B event(s)")
    return errors
