"""Event-bus sinks: JSON-lines, plain text, and Chrome/Perfetto traces.

Every sink is a callable taking one :class:`~repro.obs.events.Event`;
attach with ``PipelineSim.add_sink(sink)``.

The Perfetto exporter emits the Chrome ``trace_event`` JSON object
format (https://ui.perfetto.dev opens it directly):

* **pid 1 — threads**: one track per hardware thread. Each issued
  instruction is an ``X`` (complete) event spanning issue to writeback.
  ``X`` events may overlap freely, which in-flight instructions of one
  thread routinely do, so thread tracks never use ``B``/``E`` nesting.
* **pid 2 — functional units**: one track per FU *instance*
  (``tid = fu_index * 64 + unit``). Occupancy spans are matched
  ``B``/``E`` pairs — an instance is occupied for 1 cycle (pipelined
  classes) or the full latency (the unpipelined dividers), and
  occupancies on one instance never overlap, so the pairs always
  balance (checked by :func:`validate_trace` and the CI gate).
* **pid 3 — engine**: idle spans skipped by the fast-forward engine,
  as ``X`` events labelled with the stall reason.

Timestamps are simulated cycles, written as microseconds (1 cycle =
1 us) so Perfetto's time axis reads directly in cycles.
"""

import json

from repro.obs.events import Event

#: Synthetic process ids grouping the trace tracks.
PID_THREADS = 1
PID_FUS = 2
PID_ENGINE = 3

#: FU-instance track id stride: ``tid = fu_index * 64 + unit``.
FU_TRACK_STRIDE = 64

#: Sort rank per phase at equal ``ts``: close before open so B/E pairs
#: on one track never appear to overlap.
_PHASE_RANK = {"E": 0, "B": 2}


class JsonlSink:
    """Writes one JSON object per event to ``stream`` (JSON-lines)."""

    __slots__ = ("stream", "count")

    def __init__(self, stream):
        self.stream = stream
        self.count = 0

    def __call__(self, event):
        self.stream.write(json.dumps(event.to_dict()))
        self.stream.write("\n")
        self.count += 1


class TextSink:
    """Writes one human-readable line per event to ``stream``."""

    __slots__ = ("stream", "count")

    def __init__(self, stream):
        self.stream = stream
        self.count = 0

    def __call__(self, event):
        record = event.to_dict()
        kind = record.pop("event")
        cycle = record.pop("cycle")
        rest = " ".join(f"{key}={value}" for key, value in record.items())
        self.stream.write(f"[{cycle:>8}] {kind:<9} {rest}\n")
        self.count += 1


class PerfettoCollector:
    """Accumulates Chrome ``trace_event`` records from pipeline events.

    Usage::

        collector = PerfettoCollector(config)
        sim.add_sink(collector)
        stats = sim.run()
        with open("trace.json", "w") as out:
            collector.write(out)
    """

    __slots__ = ("events", "count", "_occupancy", "_fu_names", "_tids",
                 "_fu_tracks")

    def __init__(self, config):
        from repro.core.execute import UNPIPELINED
        from repro.isa.opcodes import FU_CLASSES

        self._occupancy = [config.fu_latency[cls] if cls in UNPIPELINED
                           else 1 for cls in FU_CLASSES]
        self._fu_names = [cls.value for cls in FU_CLASSES]
        self.events = []
        self.count = 0
        self._tids = set()
        self._fu_tracks = {}  # (fu_index, unit) -> (track tid, label)

    def _fu_track(self, fu_index, unit):
        key = (fu_index, unit)
        track = self._fu_tracks.get(key)
        if track is None:
            track = (fu_index * FU_TRACK_STRIDE + unit,
                     f"{self._fu_names[fu_index]}[{unit}]")
            self._fu_tracks[key] = track
        return track[0]

    def __call__(self, event):
        kind = event.kind
        out = self.events
        if kind == "issue":
            self._tids.add(event.tid)
            dur = event.ready - event.cycle
            out.append({"name": event.text, "cat": "instr", "ph": "X",
                        "ts": event.cycle, "dur": dur if dur > 0 else 1,
                        "pid": PID_THREADS, "tid": event.tid,
                        "args": {"tag": event.tag, "pc": event.pc}})
            unit = event.unit if event.unit is not None else 0
            track = self._fu_track(event.fu_index, unit)
            occupancy = self._occupancy[event.fu_index]
            out.append({"name": event.text, "cat": "fu", "ph": "B",
                        "ts": event.cycle, "pid": PID_FUS, "tid": track,
                        "args": {"tag": event.tag, "tid": event.tid}})
            out.append({"name": event.text, "cat": "fu", "ph": "E",
                        "ts": event.cycle + occupancy,
                        "pid": PID_FUS, "tid": track})
        elif kind == "commit":
            self._tids.add(event.tid)
            out.append({"name": "commit", "cat": "retire", "ph": "i",
                        "ts": event.cycle, "pid": PID_THREADS,
                        "tid": event.tid, "s": "t",
                        "args": {"tags": list(event.tags)}})
        elif kind == "squash":
            self._tids.add(event.tid)
            out.append({"name": "squash", "cat": "retire", "ph": "i",
                        "ts": event.cycle, "pid": PID_THREADS,
                        "tid": event.tid, "s": "t",
                        "args": {"tags": list(event.tags)}})
        elif kind == "stall":
            out.append({"name": f"idle ({event.reason})", "cat": "engine",
                        "ph": "X", "ts": event.cycle, "dur": event.span,
                        "pid": PID_ENGINE, "tid": 0, "args": {}})
        self.count += 1

    def _metadata(self):
        meta = [
            {"name": "process_name", "ph": "M", "ts": 0, "pid": PID_THREADS,
             "tid": 0, "args": {"name": "threads"}},
            {"name": "process_name", "ph": "M", "ts": 0, "pid": PID_FUS,
             "tid": 0, "args": {"name": "functional units"}},
            {"name": "process_name", "ph": "M", "ts": 0, "pid": PID_ENGINE,
             "tid": 0, "args": {"name": "engine"}},
            {"name": "thread_name", "ph": "M", "ts": 0, "pid": PID_ENGINE,
             "tid": 0, "args": {"name": "fast-forward"}},
        ]
        for tid in sorted(self._tids):
            meta.append({"name": "thread_name", "ph": "M", "ts": 0,
                         "pid": PID_THREADS, "tid": tid,
                         "args": {"name": f"thread {tid}"}})
        for track, label in sorted(self._fu_tracks.values()):
            meta.append({"name": "thread_name", "ph": "M", "ts": 0,
                         "pid": PID_FUS, "tid": track,
                         "args": {"name": label}})
        return meta

    def trace(self, final_cycle=None):
        """The complete trace as a plain dict (``trace_event`` object form)."""
        body = sorted(self.events,
                      key=lambda ev: (ev["ts"], _PHASE_RANK.get(ev["ph"], 1)))
        record = {"traceEvents": self._metadata() + body,
                  "displayTimeUnit": "ms",
                  "otherData": {"time_unit": "1 us = 1 simulated cycle"}}
        if final_cycle is not None:
            record["otherData"]["final_cycle"] = final_cycle
        return record

    def write(self, stream, final_cycle=None):
        """Serialize the trace to ``stream`` as JSON."""
        json.dump(self.trace(final_cycle), stream)
        stream.write("\n")


def validate_trace(trace):
    """Check a ``trace_event`` object against the contract CI enforces.

    Returns a list of error strings (empty = valid): ``traceEvents``
    present, timestamps sorted non-decreasing (metadata aside), ``X``
    durations non-negative, and ``B``/``E`` pairs matched per
    ``(pid, tid)`` track.
    """
    errors = []
    events = trace.get("traceEvents") if isinstance(trace, dict) else None
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    last_ts = None
    stacks = {}
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            errors.append(f"event {index}: not an object")
            continue
        phase = event.get("ph")
        if not phase:
            errors.append(f"event {index}: missing ph")
            continue
        if phase == "M":
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            errors.append(f"event {index}: bad ts {ts!r}")
            continue
        if last_ts is not None and ts < last_ts:
            errors.append(f"event {index}: ts {ts} < previous {last_ts} "
                          "(unsorted)")
        last_ts = ts
        track = (event.get("pid"), event.get("tid"))
        if phase == "B":
            stacks.setdefault(track, []).append(event.get("name"))
        elif phase == "E":
            stack = stacks.get(track)
            if not stack:
                errors.append(f"event {index}: E without matching B "
                              f"on track {track}")
            else:
                stack.pop()
        elif phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                errors.append(f"event {index}: X with bad dur {dur!r}")
    for track, stack in stacks.items():
        if stack:
            errors.append(f"track {track}: {len(stack)} unclosed B event(s)")
    return errors
