"""Observability: typed pipeline events, stall attribution, metrics,
and the cross-run ledger/report layer.

Import surface is deliberately small: :mod:`repro.obs.events` and
:mod:`repro.obs.attribution` are dependency-free plain-data modules, so
the pipeline can import them without cycles; the heavier pieces live in
:mod:`repro.obs.metrics`, :mod:`repro.obs.export`,
:mod:`repro.obs.ledger` (append-only JSONL run ledger),
:mod:`repro.obs.report` (``repro diff`` / ``repro report``),
:mod:`repro.obs.sentry` (the noise-aware regression gate), and
:mod:`repro.obs.telemetry` (harness-level sweep events for
``run_grid``; stdlib-only at import, so re-exporting it here stays
cycle-free) and are imported on demand (``attach_metrics``, the CLI,
the exporters' users).

:mod:`repro.obs.runtime` — the process-wide service metrics registry
behind ``GET /metrics`` and ``repro top`` — is deliberately *not*
imported here: a process that never enables service metrics never
executes a line of it (the zero-overhead contract, pinned by
``tests/test_obs_overhead.py``). Import it explicitly.

See ``docs/OBSERVABILITY.md`` for the event taxonomy, the stall
categories, the zero-overhead contract, and the ledger schema.
"""

from repro.obs.attribution import CATEGORIES, StallAttribution, format_breakdown
from repro.obs.ledger import RunLedger, make_record
from repro.obs.telemetry import (
    LiveProgress,
    SweepEvent,
    SweepMetrics,
    SweepTelemetry,
    new_sweep_id,
)
from repro.obs.events import (
    CommitEvent,
    DecodeEvent,
    Event,
    EventBus,
    EVENT_TYPES,
    FetchEvent,
    IssueEvent,
    MaskEvent,
    SquashEvent,
    StallEvent,
    WritebackEvent,
)

__all__ = [
    "CATEGORIES",
    "CommitEvent",
    "DecodeEvent",
    "Event",
    "EventBus",
    "EVENT_TYPES",
    "FetchEvent",
    "IssueEvent",
    "LiveProgress",
    "MaskEvent",
    "RunLedger",
    "SquashEvent",
    "StallAttribution",
    "StallEvent",
    "SweepEvent",
    "SweepMetrics",
    "SweepTelemetry",
    "WritebackEvent",
    "format_breakdown",
    "make_record",
    "new_sweep_id",
]
