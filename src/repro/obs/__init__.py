"""Observability: typed pipeline events, stall attribution, metrics.

Import surface is deliberately small: :mod:`repro.obs.events` and
:mod:`repro.obs.attribution` are dependency-free plain-data modules, so
the pipeline can import them without cycles; the heavier sinks live in
:mod:`repro.obs.metrics` and :mod:`repro.obs.export` and are imported
on demand (``attach_metrics``, the CLI, the exporters' users).

See ``docs/OBSERVABILITY.md`` for the event taxonomy, the stall
categories, and the zero-overhead contract.
"""

from repro.obs.attribution import CATEGORIES, StallAttribution, format_breakdown
from repro.obs.events import (
    CommitEvent,
    DecodeEvent,
    Event,
    EventBus,
    EVENT_TYPES,
    FetchEvent,
    IssueEvent,
    MaskEvent,
    SquashEvent,
    StallEvent,
    WritebackEvent,
)

__all__ = [
    "CATEGORIES",
    "CommitEvent",
    "DecodeEvent",
    "Event",
    "EventBus",
    "EVENT_TYPES",
    "FetchEvent",
    "IssueEvent",
    "MaskEvent",
    "SquashEvent",
    "StallAttribution",
    "StallEvent",
    "WritebackEvent",
    "format_breakdown",
]
