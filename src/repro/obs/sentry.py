"""Noise-aware engine regression sentry.

One fixed measurement matrix, one measurement routine, one comparison
routine — shared by ``tools/perf_profile.py`` (report/update/smoke) and
``repro check`` (the CI regression gate), so there is exactly one
definition of "the engine got slower" and one serialization of its
evidence (via :mod:`repro.obs.ledger`).

The contract mirrors ``docs/PERFORMANCE.md``:

* **Simulated cycle counts are bit-exact.** Any drift from the
  committed baseline without an ``ENGINE_VERSION`` bump is a timing-
  model change and fails hard — no tolerance band applies.
* **Throughput is noise-aware.** Wall-clock cycles/sec is measured
  best-of-``reps`` after a warm-up run and compared against the
  baseline with a relative tolerance (default
  :data:`DEFAULT_TOLERANCE`); shared CI runners can demote throughput
  failures to advisory warnings (``repro check
  --advisory-throughput``) while keeping the cycle assertion fatal.
"""

import time

from repro.core.config import CacheConfig, FU_LATENCY, MachineConfig
from repro.core.pipeline import PipelineSim
from repro.isa.opcodes import FuClass
from repro.workloads import by_name

#: Allowed relative cycles/sec drop before a throughput check fails.
DEFAULT_TOLERANCE = 0.30

#: Historical name used by ``tools/perf_profile.py --smoke``.
SMOKE_TOLERANCE = DEFAULT_TOLERANCE

#: The fixed measurement matrix: (label, workload, config kwargs),
#: sampled from the paper's sweeps — small caches with long miss
#: penalties, the 256-entry scheduling unit, the icount fetch policy —
#: plus a default-machine point. Keep in sync with the committed
#: ``BENCH_engine.json``.
MATRIX = [
    ("LL2-1t-default", "LL2", dict(nthreads=1)),
    ("LL2-1t-mp64", "LL2",
     dict(nthreads=1,
          cache=CacheConfig(size_bytes=256, assoc=1, miss_penalty=64))),
    ("LL2-4t-mp64", "LL2",
     dict(nthreads=4,
          cache=CacheConfig(size_bytes=256, assoc=1, miss_penalty=64))),
    ("LL5-1t-mp32", "LL5",
     dict(nthreads=1,
          cache=CacheConfig(size_bytes=512, assoc=2, miss_penalty=32))),
    ("Matrix-8t-su256-mp32", "Matrix",
     dict(nthreads=8, su_entries=256,
          cache=CacheConfig(size_bytes=512, assoc=2, miss_penalty=32))),
    ("LL3-8t-icount-su256", "LL3",
     dict(nthreads=8, fetch_policy="icount", su_entries=256)),
    # Stall-heavy points for the next-event fast-forward: long divide
    # latencies exercise the fu-latency skip, a thrashing 128-byte
    # direct-mapped cache with a 96-cycle penalty the dcache-miss and
    # commit-wait skips. Same configs as the golden-cycle fixtures, so
    # the smoke gate pins their cycle counts bit-exactly too.
    ("Water-2t-divheavy", "Water",
     dict(nthreads=2, fu_latency={**FU_LATENCY,
                                  FuClass.FPDIV: 40, FuClass.IDIV: 40})),
    ("LL2-2t-missheavy", "LL2",
     dict(nthreads=2, cache=CacheConfig(size_bytes=128, line_words=4,
                                        assoc=1, miss_penalty=96))),
]


#: Label under which the batch-backend sweep is pinned in
#: ``BENCH_engine.json``'s ``cycles`` / ``cycles_per_sec`` maps.
#: Aggregate numbers: the sum of the sweep's simulated cycles, and that
#: sum over the sweep's wall clock.
BATCH_SWEEP_LABEL = "batch:LL2-2t-sweep8"

#: Workload every batch-sweep member simulates.
BATCH_SWEEP_WORKLOAD = "LL2"

#: The batch-backend sweep: one workload, eight two-thread
#: configurations — the shape of every paper experiment (SU depths,
#: cache pressure, fetch policies, bypassing) — run as one same-program
#: group. Keep in sync with the committed ``BENCH_engine.json``.
BATCH_SWEEP = [
    dict(nthreads=2, su_entries=32),
    dict(nthreads=2),
    dict(nthreads=2, su_entries=128),
    dict(nthreads=2,
         cache=CacheConfig(size_bytes=256, assoc=1, miss_penalty=64)),
    dict(nthreads=2, cache=CacheConfig(size_bytes=128, line_words=4,
                                       assoc=1, miss_penalty=96)),
    dict(nthreads=2, fetch_policy="icount"),
    dict(nthreads=2, fetch_policy="masked_rr"),
    dict(nthreads=2, bypassing=False),
]


def batch_sweep_configs():
    """Fresh :class:`MachineConfig` list for the batch-backend sweep."""
    return [MachineConfig(**kwargs) for kwargs in BATCH_SWEEP]


def matrix_configs(matrix=None):
    """``{label: (workload_name, MachineConfig)}`` for ``matrix``."""
    return {label: (wname, MachineConfig(**kwargs))
            for label, wname, kwargs in (matrix or MATRIX)}


def _null_sink(event):
    """Cheapest possible event consumer, for overhead measurement."""


def _run_once(program, config, instrument, backend):
    """One simulation of ``program`` under ``config`` via ``backend``.

    The scalar backend is a plain :class:`PipelineSim` run (with the
    full observability load, null event sink included, when
    instrumented); the batch backend wraps the same simulation in a
    one-member :class:`~repro.core.batch.BatchEngine` group, and the
    spec backend runs the config-specialized generated engine
    (:mod:`repro.core.codegen`) — so ``repro check --backend
    batch|spec`` pins the whole golden matrix through those loops.
    Cycle counts must be identical every way.
    """
    if backend == "batch":
        from repro.core.batch import run_batch
        outcome = run_batch(program, [config], instrument=instrument)[0]
        if outcome.error is not None:
            raise outcome.error
        return outcome.stats
    if backend == "spec":
        from repro.core.codegen import spec_engine_class
        sim = spec_engine_class(config)(program, config)
    else:
        sim = PipelineSim(program, config)
    if instrument:
        sim.attach_attribution()
        sim.attach_metrics()
        sim.add_sink(_null_sink)
    return sim.run()


def measure(reps=3, instrument=False, matrix=None, backend="scalar"):
    """Best-of-``reps`` cycles/sec for every matrix entry.

    Returns ``{label: entry}`` where each entry carries ``cycles``,
    ``cycles_per_sec``, ``wall_seconds`` (of the best rep), and the
    final rep's full ``stats`` dict (for ledger records).

    With ``instrument=True``, every run carries the full observability
    load: stall attribution, interval metrics, and (scalar backend
    only) an event-bus sink that discards events — the worst realistic
    case for hot-loop overhead. Cycle counts must match the
    uninstrumented engine exactly; only wall-clock throughput may
    differ.

    ``backend="batch"`` routes every run through a one-member
    :class:`~repro.core.batch.BatchEngine` group instead of a plain
    :class:`PipelineSim` — the regression gate's way of pinning the
    golden matrix's cycle counts through the batch advance loop.
    ``backend="spec"`` runs the config-specialized generated engine
    (:mod:`repro.core.codegen`), pinning the generated loops the same
    way.
    """
    if backend not in ("scalar", "batch", "spec"):
        raise ValueError(f"unknown backend {backend!r}; expected "
                         f"'scalar', 'batch', or 'spec'")
    out = {}
    for label, wname, kwargs in (matrix or MATRIX):
        config = MachineConfig(**kwargs)
        program = by_name(wname).program(config.nthreads)
        _run_once(program, config, False, backend)  # warm-up, untimed
        best = 0.0
        best_elapsed = None
        stats = None
        for _ in range(reps):
            start = time.perf_counter()
            stats = _run_once(program, config, instrument, backend)
            elapsed = time.perf_counter() - start
            rate = stats.cycles / elapsed
            if rate > best:
                best = rate
                best_elapsed = elapsed
        out[label] = {
            "cycles": stats.cycles,
            "cycles_per_sec": round(best),
            "wall_seconds": best_elapsed,
            "stats": stats.to_dict(),
        }
    return out


def measure_backends(reps=3):
    """Drift-resistant scalar-vs-batch sweep throughput measurement.

    Runs the fixed single-workload eight-configuration sweep
    (:data:`BATCH_SWEEP`) through ``run_grid(workers=1, backend=...)``
    with the timed reps *interleaved* — scalar, batch, scalar, batch —
    so host speed drift lands on both sides (the
    :func:`measure_overhead` methodology), and asserts the two backends
    return bit-identical per-member stats on every rep. Returns
    ``(scalar_entry, batch_entry)``: each carries the aggregate
    ``cycles`` (sum over the sweep — identical on both sides by
    construction), best-of-reps aggregate ``cycles_per_sec`` (sweep
    cycles over sweep wall clock), and that rep's ``wall_seconds``.
    """
    from repro.harness.parallel import run_grid

    jobs = [(BATCH_SWEEP_WORKLOAD, config)
            for config in batch_sweep_configs()]
    run_grid(jobs, workers=1)  # warm the decode cache, untimed
    best = {"scalar": 0.0, "batch": 0.0}
    best_elapsed = {"scalar": None, "batch": None}
    cycles = None
    for _ in range(reps):
        rep_stats = {}
        for backend in ("scalar", "batch"):
            start = time.perf_counter()
            results = run_grid(jobs, workers=1, backend=backend)
            elapsed = time.perf_counter() - start
            bad = [r for r in results if not r.ok]
            if bad:
                raise AssertionError(
                    f"{backend} sweep failed: {bad}")
            rep_stats[backend] = [r.stats.to_dict() for r in results]
            cycles = sum(r.stats.cycles for r in results)
            rate = cycles / elapsed
            if rate > best[backend]:
                best[backend] = rate
                best_elapsed[backend] = elapsed
        if rep_stats["scalar"] != rep_stats["batch"]:
            raise AssertionError(
                "batch backend diverged from scalar on the sweep — "
                "simulated stats must be bit-identical")
    scalar_entry, batch_entry = ({
        "cycles": cycles,
        "cycles_per_sec": round(best[backend]),
        "wall_seconds": best_elapsed[backend],
    } for backend in ("scalar", "batch"))
    return scalar_entry, batch_entry


def measure_spec(reps=3, matrix=None):
    """Drift-resistant interpreter-vs-spec throughput measurement.

    Interleaves the timed reps per matrix entry — scalar, spec, scalar,
    spec — so host speed drift lands on both sides (the
    :func:`measure_overhead` methodology), and asserts the two engines
    return bit-identical stats on every rep. Returns
    ``(measured_scalar, measured_spec)`` in the :func:`measure` format;
    ``tools/perf_profile.py`` folds the per-label ratios into the
    ``spec_over_scalar`` geomean stamped in ``BENCH_engine.json``.
    """
    from repro.core.codegen import spec_engine_class

    out_scalar = {}
    out_spec = {}
    for label, wname, kwargs in (matrix or MATRIX):
        config = MachineConfig(**kwargs)
        program = by_name(wname).program(config.nthreads)
        engines = {"scalar": PipelineSim, "spec": spec_engine_class(config)}
        engines["spec"](program, config).run()  # warm-up (codegen, caches)
        PipelineSim(program, config).run()
        best = {"scalar": 0.0, "spec": 0.0}
        best_elapsed = {"scalar": None, "spec": None}
        stats = {"scalar": None, "spec": None}
        for _ in range(reps):
            for backend in ("scalar", "spec"):
                sim = engines[backend](program, config)
                start = time.perf_counter()
                run_stats = sim.run()
                elapsed = time.perf_counter() - start
                stats[backend] = run_stats
                rate = run_stats.cycles / elapsed
                if rate > best[backend]:
                    best[backend] = rate
                    best_elapsed[backend] = elapsed
            if stats["scalar"].to_dict() != stats["spec"].to_dict():
                raise AssertionError(
                    f"{label}: spec backend diverged from the interpreter "
                    f"— simulated stats must be bit-identical")
        for backend, out in (("scalar", out_scalar), ("spec", out_spec)):
            run_stats = stats[backend]
            out[label] = {
                "cycles": run_stats.cycles,
                "cycles_per_sec": round(best[backend]),
                "wall_seconds": best_elapsed[backend],
                "stats": run_stats.to_dict(),
            }
    return out_scalar, out_spec


def measure_overhead(reps=3, matrix=None):
    """Drift-resistant instrumentation-overhead measurement.

    Measuring the uninstrumented and instrumented sweeps back-to-back
    (two :func:`measure` calls) lets host speed drift between them
    corrupt the on/off ratio — slow phases land entirely on one side.
    This routine instead *interleaves* the timed reps per entry
    (off, on, off, on, ...), so both sides sample the same host
    conditions, and returns ``(measured_off, measured_on)`` in the
    :func:`measure` format. Simulated cycle counts must agree pairwise
    — observability must never change timing.
    """
    out_off = {}
    out_on = {}
    for label, wname, kwargs in (matrix or MATRIX):
        config = MachineConfig(**kwargs)
        program = by_name(wname).program(config.nthreads)
        PipelineSim(program, config).run()  # warm caches, JIT-free warmup
        best = {False: 0.0, True: 0.0}
        best_elapsed = {False: None, True: None}
        stats = {False: None, True: None}
        for _ in range(reps):
            for instrument in (False, True):
                sim = PipelineSim(program, config)
                if instrument:
                    sim.attach_attribution()
                    sim.attach_metrics()
                    sim.add_sink(_null_sink)
                start = time.perf_counter()
                run_stats = sim.run()
                elapsed = time.perf_counter() - start
                stats[instrument] = run_stats
                rate = run_stats.cycles / elapsed
                if rate > best[instrument]:
                    best[instrument] = rate
                    best_elapsed[instrument] = elapsed
        for instrument, out in ((False, out_off), (True, out_on)):
            run_stats = stats[instrument]
            out[label] = {
                "cycles": run_stats.cycles,
                "cycles_per_sec": round(best[instrument]),
                "wall_seconds": best_elapsed[instrument],
                "stats": run_stats.to_dict(),
            }
    return out_off, out_on


def check_baseline(measured, baseline, tolerance=DEFAULT_TOLERANCE):
    """Compare a :func:`measure` result against a baseline document.

    ``baseline`` is the parsed ``BENCH_engine.json``: its ``cycles``
    section pins the exact simulated cycle count per label and its
    ``cycles_per_sec`` section the committed throughput. Returns
    ``(cycle_failures, perf_failures)`` — two lists of human-readable
    messages. Cycle failures mean the timing model changed (always
    fatal); perf failures mean throughput dropped more than
    ``tolerance`` below the committed number (fatal or advisory, the
    caller's choice). Labels absent from the baseline are ignored, so a
    subset matrix checks cleanly against the full committed file.
    """
    cycle_failures = []
    perf_failures = []
    committed_rates = baseline.get("cycles_per_sec", {})
    committed_cycles = baseline.get("cycles", {})
    for label, entry in measured.items():
        want = committed_cycles.get(label)
        if want is not None and entry["cycles"] != want:
            cycle_failures.append(
                f"{label}: simulated {entry['cycles']} cycles, committed "
                f"{want} — timing model changed; bump ENGINE_VERSION and "
                f"re-run tools/perf_profile.py --update")
        base = committed_rates.get(label)
        if base and entry["cycles_per_sec"] < base * (1 - tolerance):
            perf_failures.append(
                f"{label}: {entry['cycles_per_sec']:,} cyc/s is more than "
                f"{tolerance:.0%} below committed {base:,}")
    return cycle_failures, perf_failures


def ledger_records(measured, *, source, timestamp, matrix=None,
                   backend="scalar", sweep_id=None):
    """Ledger records for a :func:`measure` result, sorted by label.

    Sorted so two runs of the same matrix append in the same order —
    ledger files diff cleanly line-for-line. ``sweep_id`` groups the
    whole measurement pass as one sweep for ``--sweep`` scoping.
    """
    from repro.obs import ledger as ledger_mod

    configs = matrix_configs(matrix)
    records = []
    for label in sorted(measured):
        entry = measured[label]
        wname, config = configs[label]
        records.append(ledger_mod.make_record(
            source=source, workload=wname, config=config,
            stats=entry["stats"], timestamp=timestamp,
            wall_seconds=entry["wall_seconds"], backend=backend,
            sweep_id=sweep_id))
    return records
