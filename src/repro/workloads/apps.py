"""Group II benchmarks: Laplace, MPD, Matrix, Sieve, Water.

Laplace and Sieve follow Boothe's kernels, Water and MPD are small
reimplementations of the same computational pattern as the SPLASH
originals (pairwise-interaction dynamics; particle push), and Matrix is
the authors' matrix multiply. See DESIGN.md for the substitution notes.
"""

from repro.workloads.base import Workload, cyclic


def _parallel_sum(values, bound, nthreads):
    """Mirror of the per-thread partial-sum reduction the kernels emit."""
    total = 0.0
    for tid in range(nthreads):
        partial = 0.0
        for i in cyclic(0, bound, tid, nthreads):
            partial = partial + values[i]
        total = total + partial
    return total

# -------------------------------------------------------------- Laplace

_LAP_W = 16
_LAP_H = 16
_LAP_SWEEPS = 3

_LAPLACE_SOURCE = f"""
// Jacobi relaxation of Laplace's equation on a {_LAP_W}x{_LAP_H} grid.
int w = {_LAP_W};
int h = {_LAP_H};
int sweeps = {_LAP_SWEEPS};
float grid[{_LAP_W * _LAP_H}];
float fresh[{_LAP_W * _LAP_H}];
float partial[8];
float checksum;

void main() {{
    int t; int nt; int i; int j; int s;
    float ps;
    t = tid(); nt = nthreads();
    for (i = t; i < w * h; i = i + nt) {{
        grid[i] = 0.0;
    }}
    barrier();
    // Boundary: top row held at 1.0, bottom at -0.5 (thread 0 only).
    if (t == 0) {{
        for (j = 0; j < w; j = j + 1) {{
            grid[j] = 1.0;
            grid[(h - 1) * w + j] = 0.0 - 0.5;
        }}
    }}
    barrier();
    for (s = 0; s < sweeps; s = s + 1) {{
        for (i = 1 + t; i < h - 1; i = i + nt) {{
            for (j = 1; j < w - 1; j = j + 1) {{
                fresh[i * w + j] = 0.25 * (grid[(i - 1) * w + j]
                                           + grid[(i + 1) * w + j]
                                           + grid[i * w + j - 1]
                                           + grid[i * w + j + 1]);
            }}
        }}
        barrier();
        for (i = 1 + t; i < h - 1; i = i + nt) {{
            for (j = 1; j < w - 1; j = j + 1) {{
                grid[i * w + j] = fresh[i * w + j];
            }}
        }}
        barrier();
    }}
    ps = 0.0;
    for (i = t; i < w * h; i = i + nt) {{ ps = ps + grid[i]; }}
    partial[t] = ps;
    barrier();
    if (t == 0) {{
        float acc;
        acc = 0.0;
        for (i = 0; i < nt; i = i + 1) {{ acc = acc + partial[i]; }}
        checksum = acc;
    }}
    barrier();
}}
"""


def _laplace_mirror(nthreads):
    w, h = _LAP_W, _LAP_H
    grid = [0.0] * (w * h)
    for j in range(w):
        grid[j] = 1.0
        grid[(h - 1) * w + j] = 0.0 - 0.5
    for _ in range(_LAP_SWEEPS):
        fresh = dict()
        for i in range(1, h - 1):
            for j in range(1, w - 1):
                fresh[i * w + j] = 0.25 * (grid[(i - 1) * w + j]
                                           + grid[(i + 1) * w + j]
                                           + grid[i * w + j - 1]
                                           + grid[i * w + j + 1])
        for key, value in fresh.items():
            grid[key] = value
    return _parallel_sum(grid, w * h, nthreads)


LAPLACE = Workload("Laplace", 2, _LAPLACE_SOURCE, _laplace_mirror)

# ------------------------------------------------------------------ MPD

_MPD_N = 64
_MPD_CELLS = 32
_MPD_STEPS = 2

_MPD_SOURCE = f"""
// MPD: particle push with a field gather (irregular, data-dependent
// memory access pattern -- low locality, like Boothe's MPD).
int n = {_MPD_N};
int cells = {_MPD_CELLS};
int steps = {_MPD_STEPS};
float pos[{_MPD_N}];
float vel[{_MPD_N}];
float field[{_MPD_CELLS}];
float partial[8];
float checksum;

void main() {{
    int t; int nt; int i; int s; int c;
    float dt; float ps;
    t = tid(); nt = nthreads();
    dt = 0.125;
    for (i = t; i < cells; i = i + nt) {{
        field[i] = 0.01 * (i % 7) - 0.02;
    }}
    for (i = t; i < n; i = i + nt) {{
        pos[i] = (i * 13 % cells) + 0.5;
        vel[i] = 0.001 * (i % 11) - 0.005;
    }}
    barrier();
    for (s = 0; s < steps; s = s + 1) {{
        for (i = t; i < n; i = i + nt) {{
            c = pos[i];
            vel[i] = vel[i] + field[c] * dt;
            pos[i] = pos[i] + vel[i] * dt;
            while (pos[i] >= cells) {{ pos[i] = pos[i] - cells; }}
            while (pos[i] < 0.0) {{ pos[i] = pos[i] + cells; }}
        }}
        barrier();
    }}
    ps = 0.0;
    for (i = t; i < n; i = i + nt) {{ ps = ps + pos[i] + vel[i]; }}
    partial[t] = ps;
    barrier();
    if (t == 0) {{
        float acc;
        acc = 0.0;
        for (i = 0; i < nt; i = i + 1) {{ acc = acc + partial[i]; }}
        checksum = acc;
    }}
    barrier();
}}
"""


def _mpd_mirror(nthreads):
    n, cells, dt = _MPD_N, _MPD_CELLS, 0.125
    field = [0.01 * (i % 7) - 0.02 for i in range(cells)]
    pos = [float(i * 13 % cells) + 0.5 for i in range(n)]
    vel = [0.001 * (i % 11) - 0.005 for i in range(n)]
    for _ in range(_MPD_STEPS):
        for i in range(n):
            c = int(pos[i])
            vel[i] = vel[i] + field[c] * dt
            pos[i] = pos[i] + vel[i] * dt
            while pos[i] >= cells:
                pos[i] = pos[i] - cells
            while pos[i] < 0.0:
                pos[i] = pos[i] + cells
    total = 0.0
    for tid in range(nthreads):
        partial = 0.0
        for i in cyclic(0, n, tid, nthreads):
            partial = partial + pos[i] + vel[i]
        total = total + partial
    return total


MPD = Workload("MPD", 2, _MPD_SOURCE, _mpd_mirror)

# --------------------------------------------------------------- Matrix

_MAT_M = 12

_MATRIX_SOURCE = f"""
// Matrix multiply C = A * B, threads split rows of C cyclically.
int m = {_MAT_M};
float a[{_MAT_M * _MAT_M}];
float b[{_MAT_M * _MAT_M}];
float c[{_MAT_M * _MAT_M}];
float partial[8];
float checksum;

void main() {{
    int t; int nt; int i; int j; int k;
    float acc; float ps;
    t = tid(); nt = nthreads();
    for (i = t; i < m * m; i = i + nt) {{
        a[i] = 0.001 * (i % 17) + 0.01;
        b[i] = 0.002 * (i % 13) - 0.01;
    }}
    barrier();
    for (i = t; i < m; i = i + nt) {{
        for (j = 0; j < m; j = j + 1) {{
            acc = 0.0;
            for (k = 0; k < m; k = k + 1) {{
                acc = acc + a[i * m + k] * b[k * m + j];
            }}
            c[i * m + j] = acc;
        }}
    }}
    barrier();
    ps = 0.0;
    for (i = t; i < m * m; i = i + nt) {{ ps = ps + c[i]; }}
    partial[t] = ps;
    barrier();
    if (t == 0) {{
        acc = 0.0;
        for (i = 0; i < nt; i = i + 1) {{ acc = acc + partial[i]; }}
        checksum = acc;
    }}
    barrier();
}}
"""


def _matrix_mirror(nthreads):
    m = _MAT_M
    a = [0.001 * (i % 17) + 0.01 for i in range(m * m)]
    b = [0.002 * (i % 13) - 0.01 for i in range(m * m)]
    c = [0.0] * (m * m)
    for i in range(m):
        for j in range(m):
            acc = 0.0
            for k in range(m):
                acc = acc + a[i * m + k] * b[k * m + j]
            c[i * m + j] = acc
    return _parallel_sum(c, m * m, nthreads)


MATRIX = Workload("Matrix", 2, _MATRIX_SOURCE, _matrix_mirror)

# ---------------------------------------------------------------- Sieve

_SIEVE_M = 400

_SIEVE_SOURCE = f"""
// Parallel sieve of Eratosthenes: every thread walks all candidate
// primes but strikes an interleaved 1/nt of each prime's multiples,
// which balances the load. Racing reads of flags[p] are benign: a stale
// 1 only causes redundant strikes of an already-composite stride.
int m = {_SIEVE_M};
int flags[{_SIEVE_M}];
int partial[8];
int checksum;

void main() {{
    int t; int nt; int p; int q; int count;
    t = tid(); nt = nthreads();
    for (p = t; p < m; p = p + nt) {{
        flags[p] = 1;
    }}
    barrier();
    for (p = 2; p * p < m; p = p + 1) {{
        if (flags[p]) {{
            for (q = p * p + t * p; q < m; q = q + nt * p) {{
                flags[q] = 0;
            }}
        }}
    }}
    barrier();
    count = 0;
    for (p = 2 + t; p < m; p = p + nt) {{
        if (flags[p]) {{ count = count + 1; }}
    }}
    partial[t] = count;
    barrier();
    if (t == 0) {{
        count = 0;
        for (p = 0; p < nt; p = p + 1) {{ count = count + partial[p]; }}
        checksum = count;
    }}
    barrier();
}}
"""


def _sieve_mirror(nthreads):
    m = _SIEVE_M
    flags = [True] * m
    p = 2
    while p * p < m:
        if flags[p]:
            for q in range(p * p, m, p):
                flags[q] = False
        p += 1
    return sum(1 for p in range(2, m) if flags[p])


SIEVE = Workload("Sieve", 2, _SIEVE_SOURCE, _sieve_mirror, tolerance=0)

# ---------------------------------------------------------------- Water

_WATER_N = 12
_WATER_STEPS = 2

_WATER_SOURCE = f"""
// Water: pairwise-interaction molecular dynamics step (the SPLASH Water
// pattern: O(n^2) force phase, then integration, barriers between).
int n = {_WATER_N};
int steps = {_WATER_STEPS};
float pos[{_WATER_N}];
float vel[{_WATER_N}];
float force[{_WATER_N}];
float partial[8];
float checksum;

void main() {{
    int t; int nt; int i; int j; int s;
    float d; float f; float dt; float ps;
    t = tid(); nt = nthreads();
    dt = 0.01;
    for (i = t; i < n; i = i + nt) {{
        pos[i] = 0.37 * i + 0.1;
        vel[i] = 0.0;
        force[i] = 0.0;
    }}
    barrier();
    for (s = 0; s < steps; s = s + 1) {{
        for (i = t; i < n; i = i + nt) {{
            f = 0.0;
            for (j = 0; j < n; j = j + 1) {{
                if (j != i) {{
                    d = pos[j] - pos[i];
                    f = f + d / (d * d + 0.3);
                }}
            }}
            force[i] = f;
        }}
        barrier();
        for (i = t; i < n; i = i + nt) {{
            vel[i] = vel[i] + force[i] * dt;
            pos[i] = pos[i] + vel[i] * dt;
        }}
        barrier();
    }}
    ps = 0.0;
    for (i = t; i < n; i = i + nt) {{ ps = ps + pos[i] + vel[i]; }}
    partial[t] = ps;
    barrier();
    if (t == 0) {{
        f = 0.0;
        for (i = 0; i < nt; i = i + 1) {{ f = f + partial[i]; }}
        checksum = f;
    }}
    barrier();
}}
"""


def _water_mirror(nthreads):
    n, dt = _WATER_N, 0.01
    pos = [0.37 * i + 0.1 for i in range(n)]
    vel = [0.0] * n
    force = [0.0] * n
    for _ in range(_WATER_STEPS):
        for i in range(n):
            f = 0.0
            for j in range(n):
                if j != i:
                    d = pos[j] - pos[i]
                    f = f + d / (d * d + 0.3)
            force[i] = f
        for i in range(n):
            vel[i] = vel[i] + force[i] * dt
            pos[i] = pos[i] + vel[i] * dt
    total = 0.0
    for tid in range(nthreads):
        partial = 0.0
        for i in cyclic(0, n, tid, nthreads):
            partial = partial + pos[i] + vel[i]
        total = total + partial
    return total


WATER = Workload("Water", 2, _WATER_SOURCE, _water_mirror)

#: Group II in the paper's order.
GROUP_II = [LAPLACE, MPD, MATRIX, SIEVE, WATER]
