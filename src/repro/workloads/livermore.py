"""Group I benchmarks: six Livermore loops in MiniC.

Each loop is parallelized in the paper's homogeneous-multitasking style:
cyclic distribution of iterations over threads, barriers between phases,
and — for LL5's loop-carried recurrence — explicit lock-protected
progress synchronization (the paper notes this benchmark needs explicit
synchronization primitives and can lose performance from them).

Problem sizes are chosen so a full simulation takes thousands (not
millions) of cycles; the paper's qualitative behaviour is preserved.
"""

from repro.workloads.base import Workload, cyclic


def _parallel_sum(values, bound, nthreads):
    """Mirror of the per-thread partial-sum reduction the kernels emit."""
    total = 0.0
    for tid in range(nthreads):
        partial = 0.0
        for i in cyclic(0, bound, tid, nthreads):
            partial = partial + values[i]
        total = total + partial
    return total

# ----------------------------------------------------------------- LL1

_LL1_N = 120
_LL1_REPS = 3

_LL1_SOURCE = f"""
// Livermore loop 1: hydro fragment.
int n = {_LL1_N};
int reps = {_LL1_REPS};
float x[{_LL1_N + 12}];
float y[{_LL1_N + 12}];
float z[{_LL1_N + 12}];
float partial[8];
float checksum;

void main() {{
    int t; int nt; int i; int rep;
    float q; float r; float tt; float ps;
    t = tid(); nt = nthreads();
    for (i = t; i < n + 12; i = i + nt) {{
        y[i] = 0.0001 * (i + 1);
        z[i] = 0.0002 * (i + 2);
    }}
    barrier();
    q = 0.5; r = 0.25; tt = 0.125;
    for (rep = 0; rep < reps; rep = rep + 1) {{
        for (i = t; i < n; i = i + nt) {{
            x[i] = q + y[i] * (r * z[i + 10] + tt * z[i + 11]);
        }}
        barrier();
    }}
    ps = 0.0;
    for (i = t; i < n; i = i + nt) {{ ps = ps + x[i]; }}
    partial[t] = ps;
    barrier();
    if (t == 0) {{
        float acc;
        acc = 0.0;
        for (i = 0; i < nt; i = i + 1) {{ acc = acc + partial[i]; }}
        checksum = acc;
    }}
    barrier();
}}
"""


def _ll1_mirror(nthreads):
    n = _LL1_N
    y = [0.0001 * (i + 1) for i in range(n + 12)]
    z = [0.0002 * (i + 2) for i in range(n + 12)]
    q, r, tt = 0.5, 0.25, 0.125
    x = [q + y[i] * (r * z[i + 10] + tt * z[i + 11]) for i in range(n)]
    return _parallel_sum(x, n, nthreads)


LL1 = Workload("LL1", 1, _LL1_SOURCE, _ll1_mirror)

# ----------------------------------------------------------------- LL2

_LL2_N = 64
_LL2_SIZE = 2 * _LL2_N + 8

_LL2_SOURCE = f"""
// Livermore loop 2: ICCG excerpt (incomplete Cholesky conjugate gradient).
int n = {_LL2_N};
float x[{_LL2_SIZE}];
float v[{_LL2_SIZE}];
float partial[8];
float checksum;

void main() {{
    int t; int nt; int i; int k; int j;
    int ii; int ipnt; int ipntp; int count;
    float ps;
    t = tid(); nt = nthreads();
    for (i = t; i < 2 * n + 8; i = i + nt) {{
        x[i] = 0.0001 * (i + 1);
        v[i] = 0.0002 * (i + 3);
    }}
    barrier();
    ii = n;
    ipntp = 0;
    while (ii > 0) {{
        ipnt = ipntp;
        ipntp = ipntp + ii;
        ii = ii / 2;
        count = (ipntp - ipnt) / 2;
        // All iterations but the level's last run in parallel; the last
        // reads x[ipntp], which iteration 0 writes, so it runs after the
        // barrier (this boundary dependence exists in the original loop).
        for (j = t; j < count - 1; j = j + nt) {{
            k = ipnt + 1 + 2 * j;
            x[ipntp + j] = x[k] - v[k] * x[k - 1] - v[k + 1] * x[k + 1];
        }}
        barrier();
        if (t == 0) {{
            if (count > 0) {{
                j = count - 1;
                k = ipnt + 1 + 2 * j;
                x[ipntp + j] = x[k] - v[k] * x[k - 1] - v[k + 1] * x[k + 1];
            }}
        }}
        barrier();
    }}
    ps = 0.0;
    for (i = t; i < 2 * n + 8; i = i + nt) {{ ps = ps + x[i]; }}
    partial[t] = ps;
    barrier();
    if (t == 0) {{
        float acc;
        acc = 0.0;
        for (i = 0; i < nt; i = i + 1) {{ acc = acc + partial[i]; }}
        checksum = acc;
    }}
    barrier();
}}
"""


def _ll2_mirror(nthreads):
    n = _LL2_N
    size = 2 * n + 8
    x = [0.0001 * (i + 1) for i in range(size)]
    v = [0.0002 * (i + 3) for i in range(size)]
    ii, ipntp = n, 0
    while ii > 0:
        ipnt = ipntp
        ipntp = ipntp + ii
        ii = ii // 2
        for k in range(ipnt + 1, ipntp, 2):
            j = (k - ipnt - 1) // 2
            x[ipntp + j] = x[k] - v[k] * x[k - 1] - v[k + 1] * x[k + 1]
    return _parallel_sum(x, size, nthreads)


LL2 = Workload("LL2", 1, _LL2_SOURCE, _ll2_mirror)

# ----------------------------------------------------------------- LL3

_LL3_N = 192
_LL3_REPS = 3
_MAX_THREADS = 8

_LL3_SOURCE = f"""
// Livermore loop 3: inner product (per-thread partial sums).
int n = {_LL3_N};
int reps = {_LL3_REPS};
float x[{_LL3_N}];
float z[{_LL3_N}];
float partial[{_MAX_THREADS}];
float checksum;

void main() {{
    int t; int nt; int i; int rep;
    float q;
    t = tid(); nt = nthreads();
    for (i = t; i < n; i = i + nt) {{
        x[i] = 0.001 * (i + 1);
        z[i] = 0.002 * (i + 2);
    }}
    barrier();
    for (rep = 0; rep < reps; rep = rep + 1) {{
        q = 0.0;
        for (i = t; i < n; i = i + nt) {{
            q = q + z[i] * x[i];
        }}
        partial[t] = q;
        barrier();
    }}
    if (t == 0) {{
        float s;
        s = 0.0;
        for (i = 0; i < nt; i = i + 1) {{ s = s + partial[i]; }}
        checksum = s;
    }}
    barrier();
}}
"""


def _ll3_mirror(nthreads):
    n = _LL3_N
    x = [0.001 * (i + 1) for i in range(n)]
    z = [0.002 * (i + 2) for i in range(n)]
    partial = []
    for t in range(nthreads):
        q = 0.0
        for i in cyclic(0, n, t, nthreads):
            q = q + z[i] * x[i]
        partial.append(q)
    total = 0.0
    for value in partial:
        total = total + value
    return total


LL3 = Workload("LL3", 1, _LL3_SOURCE, _ll3_mirror)

# ----------------------------------------------------------------- LL5

_LL5_N = 48

_LL5_SOURCE = f"""
// Livermore loop 5: tri-diagonal elimination below the diagonal.
// The recurrence x[i] = z[i]*(y[i] - x[i-1]) carries a dependence across
// iterations, so threads synchronize with an explicit post/wait on a
// progress index (the explicit synchronization the paper describes).
int n = {_LL5_N};
float x[{_LL5_N}];
float y[{_LL5_N}];
float z[{_LL5_N}];
int progress;
float checksum;

void main() {{
    int t; int nt; int i;
    t = tid(); nt = nthreads();
    for (i = t; i < n; i = i + nt) {{
        y[i] = 0.001 * (i + 2);
        z[i] = 0.5 + 0.001 * i;
        x[i] = 0.0;
    }}
    barrier();
    // Post/wait handoff: iteration i waits for the producer of i-1 to
    // post progress = i-1. One writer at a time by construction, so
    // progress needs no lock; pause() keeps the spin polite.
    for (i = 1 + t; i < n; i = i + nt) {{
        while (progress < i - 1) {{ pause(); }}
        x[i] = z[i] * (y[i] - x[i - 1]);
        progress = i;
    }}
    barrier();
    if (t == 0) {{
        float s;
        s = 0.0;
        for (i = 0; i < n; i = i + 1) {{ s = s + x[i]; }}
        checksum = s;
    }}
    barrier();
}}
"""


def _ll5_mirror(nthreads):
    n = _LL5_N
    y = [0.001 * (i + 2) for i in range(n)]
    z = [0.5 + 0.001 * i for i in range(n)]
    x = [0.0] * n
    for i in range(1, n):
        x[i] = z[i] * (y[i] - x[i - 1])
    total = 0.0
    for value in x:
        total = total + value
    return total


LL5 = Workload("LL5", 1, _LL5_SOURCE, _ll5_mirror)

# ----------------------------------------------------------------- LL7

_LL7_N = 96
_LL7_REPS = 2

_LL7_SOURCE = f"""
// Livermore loop 7: equation of state fragment.
int n = {_LL7_N};
int reps = {_LL7_REPS};
float x[{_LL7_N}];
float y[{_LL7_N}];
float z[{_LL7_N}];
float u[{_LL7_N + 8}];
float partial[8];
float checksum;

void main() {{
    int t; int nt; int i; int rep;
    float q; float r; float tt; float e; float ps;
    t = tid(); nt = nthreads();
    for (i = t; i < n + 8; i = i + nt) {{
        u[i] = 0.0005 * (i + 1);
    }}
    for (i = t; i < n; i = i + nt) {{
        y[i] = 0.001 * (i + 3);
        z[i] = 0.002 * (i + 4);
    }}
    barrier();
    q = 0.5; r = 0.25; tt = 0.125;
    for (rep = 0; rep < reps; rep = rep + 1) {{
        for (i = t; i < n; i = i + nt) {{
            e = u[i + 6] + q * (u[i + 5] + q * u[i + 4]);
            x[i] = u[i] + r * (z[i] + r * y[i])
                 + tt * (u[i + 3] + r * (u[i + 2] + r * u[i + 1]) + tt * e);
        }}
        barrier();
    }}
    ps = 0.0;
    for (i = t; i < n; i = i + nt) {{ ps = ps + x[i]; }}
    partial[t] = ps;
    barrier();
    if (t == 0) {{
        float acc;
        acc = 0.0;
        for (i = 0; i < nt; i = i + 1) {{ acc = acc + partial[i]; }}
        checksum = acc;
    }}
    barrier();
}}
"""


def _ll7_mirror(nthreads):
    n = _LL7_N
    u = [0.0005 * (i + 1) for i in range(n + 8)]
    y = [0.001 * (i + 3) for i in range(n)]
    z = [0.002 * (i + 4) for i in range(n)]
    q, r, tt = 0.5, 0.25, 0.125
    x = []
    for i in range(n):
        e = u[i + 6] + q * (u[i + 5] + q * u[i + 4])
        x.append(u[i] + r * (z[i] + r * y[i])
                 + tt * (u[i + 3] + r * (u[i + 2] + r * u[i + 1]) + tt * e))
    return _parallel_sum(x, n, nthreads)


LL7 = Workload("LL7", 1, _LL7_SOURCE, _ll7_mirror)

# ---------------------------------------------------------------- LL12

_LL12_N = 160
_LL12_REPS = 3

_LL12_SOURCE = f"""
// Livermore loop 12: first difference.
int n = {_LL12_N};
int reps = {_LL12_REPS};
float x[{_LL12_N}];
float y[{_LL12_N + 1}];
float partial[8];
float checksum;

void main() {{
    int t; int nt; int i; int rep;
    float ps;
    t = tid(); nt = nthreads();
    for (i = t; i < n + 1; i = i + nt) {{
        y[i] = 0.003 * (i + 1) * (i + 1);
    }}
    barrier();
    for (rep = 0; rep < reps; rep = rep + 1) {{
        for (i = t; i < n; i = i + nt) {{
            x[i] = y[i + 1] - y[i];
        }}
        barrier();
    }}
    ps = 0.0;
    for (i = t; i < n; i = i + nt) {{ ps = ps + x[i]; }}
    partial[t] = ps;
    barrier();
    if (t == 0) {{
        float acc;
        acc = 0.0;
        for (i = 0; i < nt; i = i + 1) {{ acc = acc + partial[i]; }}
        checksum = acc;
    }}
    barrier();
}}
"""


def _ll12_mirror(nthreads):
    n = _LL12_N
    y = [0.003 * float(i + 1) * (i + 1) for i in range(n + 1)]
    x = [y[i + 1] - y[i] for i in range(n)]
    return _parallel_sum(x, n, nthreads)


LL12 = Workload("LL12", 1, _LL12_SOURCE, _ll12_mirror)

#: Group I in the paper's order.
GROUP_I = [LL1, LL2, LL3, LL5, LL7, LL12]
