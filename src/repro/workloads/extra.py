"""Extended workloads beyond the paper's eleven.

The paper notes that "many of the Livermore loops" fit the homogeneous-
multitasking model; these two extend the suite:

* **LL4** (banded linear equations) — more data-parallel FP work with a
  sequential reduction per band, a different balance point than LL1/LL7.
* **LL11** (first partial sums) — a prefix-sum recurrence
  ``x[k] = x[k-1] + y[k]``: like LL5 it is dominated by cross-iteration
  synchronization and is expected to *lose* from multithreading, which
  corroborates the paper's LL5 finding on a second kernel.

They are not part of GROUP_I/GROUP_II (the paper's figures) but are
exercised by tests and available to the CLI and harness.
"""

from repro.workloads.base import Workload, cyclic


def _parallel_sum(values, bound, nthreads):
    total = 0.0
    for tid in range(nthreads):
        partial = 0.0
        for i in cyclic(0, bound, tid, nthreads):
            partial = partial + values[i]
        total = total + partial
    return total


# ----------------------------------------------------------------- LL4

_LL4_N = 96
_LL4_BAND = 5

def _ll4_mirror(nthreads):
    n, band = _LL4_N, _LL4_BAND
    size = n + band + 1
    x = [0.001 * (i + 1) for i in range(size)]
    y = [0.002 * (i + 3) for i in range(size)]
    # Two-phase, like the MiniC source: the update reads x[i+1..i+band],
    # which other threads may write, so results go to a fresh array and
    # are copied back after a barrier.
    fresh = []
    for i in range(n):
        s = 0.0
        for j in range(band):
            s = s + y[i + j] * x[i + j + 1]
        fresh.append(x[i] - s * 0.25)
    for i in range(n):
        x[i] = fresh[i]
    return _parallel_sum(x, n, nthreads)


_LL4_SOURCE = f"""
// Livermore loop 4: banded linear equations. Two-phase (compute into a
// fresh array, barrier, copy back) so the cyclic parallelization is
// race-free.
int n = {_LL4_N};
int band = {_LL4_BAND};
float x[{_LL4_N + _LL4_BAND + 1}];
float y[{_LL4_N + _LL4_BAND + 1}];
float fresh[{_LL4_N}];
float partial[8];
float checksum;

void main() {{
    int t; int nt; int i; int j;
    float s; float ps;
    t = tid(); nt = nthreads();
    for (i = t; i < n + band + 1; i = i + nt) {{
        x[i] = 0.001 * (i + 1);
        y[i] = 0.002 * (i + 3);
    }}
    barrier();
    for (i = t; i < n; i = i + nt) {{
        s = 0.0;
        for (j = 0; j < band; j = j + 1) {{
            s = s + y[i + j] * x[i + j + 1];
        }}
        fresh[i] = x[i] - s * 0.25;
    }}
    barrier();
    for (i = t; i < n; i = i + nt) {{
        x[i] = fresh[i];
    }}
    barrier();
    ps = 0.0;
    for (i = t; i < n; i = i + nt) {{ ps = ps + x[i]; }}
    partial[t] = ps;
    barrier();
    if (t == 0) {{
        s = 0.0;
        for (i = 0; i < nt; i = i + 1) {{ s = s + partial[i]; }}
        checksum = s;
    }}
    barrier();
}}
"""

LL4 = Workload("LL4", 1, _LL4_SOURCE, _ll4_mirror)

# ---------------------------------------------------------------- LL11

_LL11_N = 48

_LL11_SOURCE = f"""
// Livermore loop 11: first partial sums, x[k] = x[k-1] + y[k].
// A prefix-sum recurrence: like LL5, threads must hand the running sum
// down the iteration chain through a post/wait progress index.
int n = {_LL11_N};
float x[{_LL11_N}];
float y[{_LL11_N}];
int progress;
float checksum;

void main() {{
    int t; int nt; int i;
    t = tid(); nt = nthreads();
    for (i = t; i < n; i = i + nt) {{
        y[i] = 0.002 * (i + 1);
        x[i] = 0.0;
    }}
    barrier();
    if (t == 0) {{ x[0] = y[0]; progress = 0; }}
    barrier();
    for (i = 1 + t; i < n; i = i + nt) {{
        while (progress < i - 1) {{ pause(); }}
        x[i] = x[i - 1] + y[i];
        progress = i;
    }}
    barrier();
    if (t == 0) {{ checksum = x[n - 1]; }}
    barrier();
}}
"""


def _ll11_mirror(nthreads):
    n = _LL11_N
    y = [0.002 * (i + 1) for i in range(n)]
    x = [0.0] * n
    x[0] = y[0]
    for i in range(1, n):
        x[i] = x[i - 1] + y[i]
    return x[n - 1]


LL11 = Workload("LL11", 1, _LL11_SOURCE, _ll11_mirror)

#: Workloads beyond the paper's eleven.
EXTRA_WORKLOADS = [LL4, LL11]
