"""Workload abstraction shared by tests, examples, and the harness."""

from repro.lang import compile_source


class Workload:
    """One benchmark: MiniC source plus a pure-Python mirror.

    Parameters
    ----------
    name:
        Benchmark name as the paper uses it (e.g. ``"LL7"``, ``"Water"``).
    group:
        1 for the Livermore loops, 2 for the application benchmarks.
    source:
        MiniC source text. The program must leave its result in the
        global ``checksum`` (float) after a final barrier.
    mirror:
        ``mirror(nthreads) -> float`` computing the expected checksum by
        replaying the same arithmetic (and reduction order) in Python.
    tolerance:
        Allowed absolute checksum error (0 for integer checksums).
    """

    def __init__(self, name, group, source, mirror, tolerance=1e-9):
        self.name = name
        self.group = group
        self.source = source
        self.mirror = mirror
        self.tolerance = tolerance
        self._programs = {}

    def program(self, nthreads, aligned=False):
        """Program compiled for an N-way register partition (cached).

        ``aligned`` applies the branch-target alignment optimization
        (paper Section 6.1, improvement 2).
        """
        key = (nthreads, aligned)
        if key not in self._programs:
            self._programs[key] = compile_source(
                self.source, nthreads=nthreads,
                align_branch_targets=aligned)
        return self._programs[key]

    def expected(self, nthreads):
        """The mirror's checksum for an N-thread run."""
        return self.mirror(nthreads)

    def checksum_address(self, nthreads):
        """Word address of the ``checksum`` global."""
        return self.program(nthreads).symbol("g_checksum")

    def verify(self, value, nthreads):
        """True when ``value`` matches the mirror within tolerance."""
        return abs(value - self.expected(nthreads)) <= self.tolerance

    def __repr__(self):
        return f"Workload({self.name}, group {self.group})"


def cyclic(start, stop, tid, nthreads):
    """Python mirror of the MiniC cyclic loop ``for (i = start + tid(); ...)``."""
    return range(start + tid, stop, nthreads)
