"""The paper's eleven benchmarks, written in MiniC.

Group I: six Livermore loops (LL1, LL2, LL3, LL5, LL7, LL12).
Group II: Laplace, MPD, Matrix, Sieve, Water.

All are *homogeneous multitasking* programs: every thread runs the same
``main()`` on a different slice of the data, synchronizing with
barriers (and, for LL5's loop-carried dependence, explicit locks). Each
workload carries a pure-Python mirror of its computation so tests can
verify simulated results against an independent implementation.
"""

from repro.workloads.base import Workload
from repro.workloads.livermore import LL1, LL2, LL3, LL5, LL7, LL12, GROUP_I
from repro.workloads.apps import LAPLACE, MATRIX, MPD, SIEVE, WATER, GROUP_II
from repro.workloads.extra import EXTRA_WORKLOADS, LL4, LL11

#: All eleven benchmarks, Group I first (the paper's presentation order).
ALL_WORKLOADS = GROUP_I + GROUP_II

#: Lookup by name (includes the beyond-paper extras).
BY_NAME = {w.name: w for w in ALL_WORKLOADS + EXTRA_WORKLOADS}


def by_name(name):
    """The workload called ``name``; raises ``KeyError`` with the roster.

    Parallel-harness workers ship workloads by name (the objects carry
    unpicklable mirror closures), so this is the canonical resolver.
    """
    try:
        return BY_NAME[name]
    except KeyError:
        known = ", ".join(sorted(BY_NAME))
        raise KeyError(f"unknown workload {name!r}; known: {known}") from None


__all__ = [
    "ALL_WORKLOADS",
    "BY_NAME",
    "by_name",
    "EXTRA_WORKLOADS",
    "GROUP_I",
    "GROUP_II",
    "LL1", "LL2", "LL3", "LL4", "LL5", "LL7", "LL11", "LL12",
    "LAPLACE", "MATRIX", "MPD", "SIEVE", "WATER",
    "Workload",
]
