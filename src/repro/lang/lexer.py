"""MiniC lexer."""

import re

from repro.lang.errors import CompileError

KEYWORDS = {"int", "float", "void", "if", "else", "while", "for",
            "return", "break", "continue"}

_TOKEN_RE = re.compile(r"""
    (?P<ws>\s+)
  | (?P<comment>//[^\n]*|/\*.*?\*/)
  | (?P<float>\d+\.\d*([eE][-+]?\d+)?|\.\d+([eE][-+]?\d+)?|\d+[eE][-+]?\d+)
  | (?P<int>0x[0-9a-fA-F]+|\d+)
  | (?P<ident>[A-Za-z_]\w*)
  | (?P<op>\+=|-=|\*=|/=|%=|<=|>=|==|!=|&&|\|\||[-+*/%<>=!(){}\[\];,&|^~])
""", re.VERBOSE | re.DOTALL)


class Token:
    """One lexical token."""

    __slots__ = ("kind", "value", "line")

    def __init__(self, kind, value, line):
        self.kind = kind  # 'int', 'float', 'ident', 'kw', 'op', 'eof'
        self.value = value
        self.line = line

    def __repr__(self):
        return f"Token({self.kind}, {self.value!r}, line={self.line})"


def tokenize(source):
    """Split MiniC source into tokens (comments and whitespace dropped)."""
    tokens = []
    pos = 0
    line = 1
    while pos < len(source):
        match = _TOKEN_RE.match(source, pos)
        if not match:
            raise CompileError(f"unexpected character {source[pos]!r}", line)
        text = match.group(0)
        if match.lastgroup == "ws" or match.lastgroup == "comment":
            line += text.count("\n")
        elif match.lastgroup == "float":
            tokens.append(Token("float", float(text), line))
        elif match.lastgroup == "int":
            tokens.append(Token("int", int(text, 0), line))
        elif match.lastgroup == "ident":
            kind = "kw" if text in KEYWORDS else "ident"
            tokens.append(Token(kind, text, line))
        else:
            tokens.append(Token("op", text, line))
        pos = match.end()
    tokens.append(Token("eof", None, line))
    return tokens
