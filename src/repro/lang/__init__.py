"""MiniC: the C-subset compiler used to build the benchmark programs.

The paper compiles its eleven C benchmarks with an SDSP compiler that
was "modified to produce code for a register set of different sizes" so
the 128 registers can be statically partitioned among N threads. MiniC
reproduces that: :func:`compile_source` takes the number of registers
available to each thread and emits a complete program (runtime + user
code) targeting exactly that many registers.

Language summary::

    int n = 64;              // global scalars (int/float), with initializers
    float a[64];             // global 1-D arrays
    int fib(int k) { ... }   // functions with parameters and return values

    void main() {            // every thread executes main()
        int i;
        for (i = tid(); i < n; i = i + nthreads()) {
            a[i] = a[i] * 2.0;
        }
        barrier();
    }

Intrinsics: ``tid()``, ``nthreads()``, ``barrier()``, ``lock(g)``,
``unlock(g)`` (``g`` a global int scalar). The parallel-programming
model is the paper's *homogeneous multitasking*: all threads run the
same code on different data.
"""

from repro.lang.compiler import compile_source, compile_to_asm
from repro.lang.errors import CompileError

__all__ = ["CompileError", "compile_source", "compile_to_asm"]
