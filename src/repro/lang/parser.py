"""MiniC recursive-descent parser."""

from repro.lang import ast_nodes as ast
from repro.lang.errors import CompileError
from repro.lang.lexer import tokenize

# Binary operator precedence (higher binds tighter).
_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "==": 3, "!=": 3,
    "<": 4, "<=": 4, ">": 4, ">=": 4,
    "+": 5, "-": 5,
    "*": 6, "/": 6, "%": 6,
}


class Parser:
    """Token-stream parser; use :func:`parse` for the one-shot API."""

    def __init__(self, tokens):
        self.tokens = tokens
        self.pos = 0

    # ------------------------------------------------------------ helpers

    @property
    def current(self):
        return self.tokens[self.pos]

    def advance(self):
        token = self.tokens[self.pos]
        if token.kind != "eof":
            self.pos += 1
        return token

    def expect_op(self, op):
        token = self.current
        if token.kind != "op" or token.value != op:
            raise CompileError(f"expected {op!r}, found {token.value!r}", token.line)
        return self.advance()

    def match_op(self, op):
        token = self.current
        if token.kind == "op" and token.value == op:
            self.advance()
            return True
        return False

    def expect_ident(self):
        token = self.current
        if token.kind != "ident":
            raise CompileError(f"expected identifier, found {token.value!r}", token.line)
        return self.advance()

    def at_type(self):
        return self.current.kind == "kw" and self.current.value in ("int", "float", "void")

    # ---------------------------------------------------------- top level

    def parse_program(self):
        globals_ = []
        functions = []
        while self.current.kind != "eof":
            if not self.at_type():
                raise CompileError(
                    f"expected declaration, found {self.current.value!r}",
                    self.current.line)
            decl_type = self.advance().value
            name_tok = self.expect_ident()
            if self.current.kind == "op" and self.current.value == "(":
                functions.append(self._function(decl_type, name_tok))
            else:
                globals_.extend(self._global_var(decl_type, name_tok))
        return ast.ProgramAst(globals=globals_, functions=functions, line=1)

    def _global_var(self, decl_type, name_tok):
        if decl_type == "void":
            raise CompileError("void variable", name_tok.line)
        out = []
        while True:
            size = None
            init = None
            if self.match_op("["):
                size_tok = self.advance()
                if size_tok.kind != "int":
                    raise CompileError("array size must be an integer literal",
                                       size_tok.line)
                size = size_tok.value
                self.expect_op("]")
            if self.match_op("="):
                init = self._initializer(size is not None)
            out.append(ast.GlobalVar(name=name_tok.value, type=decl_type,
                                     size=size, init=init, line=name_tok.line))
            if not self.match_op(","):
                break
            name_tok = self.expect_ident()
        self.expect_op(";")
        return out

    def _initializer(self, is_array):
        if is_array:
            self.expect_op("{")
            values = [self._const_value()]
            while self.match_op(","):
                values.append(self._const_value())
            self.expect_op("}")
            return values
        return self._const_value()

    def _const_value(self):
        negative = self.match_op("-")
        token = self.advance()
        if token.kind not in ("int", "float"):
            raise CompileError("initializers must be literals", token.line)
        value = -token.value if negative else token.value
        return value

    def _function(self, return_type, name_tok):
        self.expect_op("(")
        params = []
        if not self.match_op(")"):
            while True:
                if not self.at_type():
                    raise CompileError("expected parameter type", self.current.line)
                ptype = self.advance().value
                if ptype == "void":
                    raise CompileError("void parameter", self.current.line)
                pname = self.expect_ident()
                params.append(ast.Param(name=pname.value, type=ptype,
                                        line=pname.line))
                if self.match_op(")"):
                    break
                self.expect_op(",")
        body = self._block()
        return ast.Function(name=name_tok.value, return_type=return_type,
                            params=params, body=body, line=name_tok.line)

    # --------------------------------------------------------- statements

    def _block(self):
        start = self.expect_op("{")
        statements = []
        while not self.match_op("}"):
            if self.current.kind == "eof":
                raise CompileError("unterminated block", start.line)
            statements.append(self._statement())
        return ast.Block(statements=statements, line=start.line)

    def _statement(self):
        token = self.current
        if token.kind == "op" and token.value == "{":
            return self._block()
        if token.kind == "kw":
            if token.value in ("int", "float"):
                return self._declaration()
            if token.value == "if":
                return self._if()
            if token.value == "while":
                return self._while()
            if token.value == "for":
                return self._for()
            if token.value == "return":
                return self._return()
            if token.value == "break":
                self.advance()
                self.expect_op(";")
                return ast.Break(line=token.line)
            if token.value == "continue":
                self.advance()
                self.expect_op(";")
                return ast.Continue(line=token.line)
        return self._simple_statement(terminated=True)

    def _declaration(self):
        decl_type = self.advance().value
        name_tok = self.expect_ident()
        init = None
        if self.match_op("="):
            init = self._expression()
        self.expect_op(";")
        return ast.Declare(name=name_tok.value, type=decl_type, init=init,
                           line=name_tok.line)

    def _if(self):
        token = self.advance()
        self.expect_op("(")
        cond = self._expression()
        self.expect_op(")")
        then = self._statement()
        otherwise = None
        if self.current.kind == "kw" and self.current.value == "else":
            self.advance()
            otherwise = self._statement()
        return ast.If(cond=cond, then=then, otherwise=otherwise, line=token.line)

    def _while(self):
        token = self.advance()
        self.expect_op("(")
        cond = self._expression()
        self.expect_op(")")
        body = self._statement()
        return ast.While(cond=cond, body=body, line=token.line)

    def _for(self):
        token = self.advance()
        self.expect_op("(")
        init = None if self.current.value == ";" else self._simple_statement(False)
        self.expect_op(";")
        cond = None if self.current.value == ";" else self._expression()
        self.expect_op(";")
        update = None if self.current.value == ")" else self._simple_statement(False)
        self.expect_op(")")
        body = self._statement()
        return ast.For(init=init, cond=cond, update=update, body=body,
                       line=token.line)

    def _return(self):
        token = self.advance()
        value = None
        if not (self.current.kind == "op" and self.current.value == ";"):
            value = self._expression()
        self.expect_op(";")
        return ast.Return(value=value, line=token.line)

    def _simple_statement(self, terminated):
        """Assignment or expression statement (used bare inside ``for``)."""
        expr = self._expression()
        compound = None
        for op in ("+=", "-=", "*=", "/=", "%="):
            if self.current.kind == "op" and self.current.value == op:
                compound = op[0]
                self.advance()
                break
        if compound is not None:
            if not isinstance(expr, (ast.Name, ast.Index)):
                raise CompileError("invalid assignment target", expr.line)
            value = ast.Binary(op=compound, left=expr,
                               right=self._expression(), line=expr.line)
            stmt = ast.Assign(target=expr, value=value, line=expr.line)
        elif self.match_op("="):
            if not isinstance(expr, (ast.Name, ast.Index)):
                raise CompileError("invalid assignment target", expr.line)
            value = self._expression()
            stmt = ast.Assign(target=expr, value=value, line=expr.line)
        else:
            stmt = ast.ExprStmt(expr=expr, line=expr.line)
        if terminated:
            self.expect_op(";")
        return stmt

    # -------------------------------------------------------- expressions

    def _expression(self, min_prec=1):
        left = self._unary()
        while True:
            token = self.current
            if token.kind != "op":
                break
            prec = _PRECEDENCE.get(token.value, 0)
            if prec < min_prec:
                break
            self.advance()
            right = self._expression(prec + 1)
            left = ast.Binary(op=token.value, left=left, right=right,
                              line=token.line)
        return left

    def _unary(self):
        token = self.current
        if token.kind == "op" and token.value in ("-", "!"):
            self.advance()
            operand = self._unary()
            return ast.Unary(op=token.value, operand=operand, line=token.line)
        if token.kind == "op" and token.value == "+":
            self.advance()
            return self._unary()
        return self._primary()

    def _primary(self):
        token = self.advance()
        if token.kind == "int":
            return ast.IntLit(value=token.value, line=token.line)
        if token.kind == "float":
            return ast.FloatLit(value=token.value, line=token.line)
        if token.kind == "op" and token.value == "(":
            expr = self._expression()
            self.expect_op(")")
            return expr
        if token.kind == "ident":
            if self.current.kind == "op" and self.current.value == "(":
                self.advance()
                args = []
                if not self.match_op(")"):
                    while True:
                        args.append(self._expression())
                        if self.match_op(")"):
                            break
                        self.expect_op(",")
                return ast.Call(name=token.value, args=args, line=token.line)
            if self.current.kind == "op" and self.current.value == "[":
                self.advance()
                index = self._expression()
                self.expect_op("]")
                return ast.Index(name=token.value, index=index, line=token.line)
            return ast.Name(name=token.value, line=token.line)
        raise CompileError(f"unexpected token {token.value!r}", token.line)


def parse(source):
    """Parse MiniC source into a :class:`~repro.lang.ast_nodes.ProgramAst`."""
    return Parser(tokenize(source)).parse_program()
