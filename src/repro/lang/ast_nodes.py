"""MiniC abstract syntax tree.

Every node carries its source line for diagnostics. Expression nodes
gain a ``type`` attribute ("int" or "float") during semantic analysis.
"""

INT = "int"
FLOAT = "float"
VOID = "void"


class Node:
    """Base class: keyword-argument construction with a line number."""

    _fields = ()

    def __init__(self, line=None, **kwargs):
        self.line = line
        for field in self._fields:
            setattr(self, field, kwargs.pop(field))
        if kwargs:
            raise TypeError(f"unexpected fields {sorted(kwargs)} for {type(self).__name__}")

    def __repr__(self):
        parts = ", ".join(f"{f}={getattr(self, f)!r}" for f in self._fields)
        return f"{type(self).__name__}({parts})"


# ------------------------------------------------------------ top level

class ProgramAst(Node):
    _fields = ("globals", "functions")


class GlobalVar(Node):
    """Global scalar or array. ``size`` is None for scalars."""
    _fields = ("name", "type", "size", "init")


class Function(Node):
    _fields = ("name", "return_type", "params", "body")


class Param(Node):
    _fields = ("name", "type")


# ------------------------------------------------------------ statements

class Block(Node):
    _fields = ("statements",)


class Declare(Node):
    """Local scalar declaration with optional initializer."""
    _fields = ("name", "type", "init")


class Assign(Node):
    """Assignment to a scalar name or an array element."""
    _fields = ("target", "value")


class If(Node):
    _fields = ("cond", "then", "otherwise")


class While(Node):
    _fields = ("cond", "body")


class For(Node):
    _fields = ("init", "cond", "update", "body")


class Return(Node):
    _fields = ("value",)


class Break(Node):
    _fields = ()


class Continue(Node):
    _fields = ()


class ExprStmt(Node):
    _fields = ("expr",)


# ----------------------------------------------------------- expressions

class Expr(Node):
    type = None


class IntLit(Expr):
    _fields = ("value",)


class FloatLit(Expr):
    _fields = ("value",)


class Name(Expr):
    _fields = ("name",)


class Index(Expr):
    _fields = ("name", "index")


class Unary(Expr):
    _fields = ("op", "operand")


class Binary(Expr):
    _fields = ("op", "left", "right")


class Call(Expr):
    _fields = ("name", "args")
