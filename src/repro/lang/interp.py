"""MiniC AST interpreter: a compiler-independent oracle.

Executes the *analyzed* AST directly with the same value semantics as
the ISA (32-bit wrapping integers, truncating conversions, defined
division by zero), so a MiniC program's result can be checked without
trusting the code generator, assembler, or simulators.

Threads run as coroutines that yield at ``barrier()``; between barriers
each thread runs to completion before the next starts. That is a legal
schedule for data-race-free programs (the only kind the test generators
produce); ``lock``/``unlock`` regions therefore execute atomically by
construction and are treated as no-ops.
"""

from repro.isa.registers import to_int32
from repro.isa.semantics import _int_div, _int_rem  # shared semantics
from repro.lang import ast_nodes as ast
from repro.lang.errors import CompileError
from repro.lang.parser import parse
from repro.lang.sema import GlobalSymbol, analyze


class _Return(Exception):
    def __init__(self, value):
        self.value = value


class _Break(Exception):
    pass


class _Continue(Exception):
    pass


class Interpreter:
    """Interpret one analyzed program for N threads."""

    def __init__(self, source, nthreads=1):
        self.tree = parse(source)
        self.tables = analyze(self.tree)
        self.nthreads = nthreads
        self.globals = {}
        for name, symbol in self.tables.globals.items():
            if symbol.is_array:
                values = list(symbol.init or [])
                if symbol.type == ast.FLOAT:
                    values = [float(v) for v in values]
                values += [0.0 if symbol.type == ast.FLOAT else 0] \
                    * (symbol.size - len(values))
                self.globals[name] = values
            else:
                value = symbol.init if symbol.init is not None else 0
                if symbol.type == ast.FLOAT:
                    value = float(value)
                self.globals[name] = self._coerce(value, symbol.type)
        self.functions = {f.name: f for f in self.tree.functions}

    # ------------------------------------------------------------ driver

    def run(self, max_phases=100_000):
        """Run all threads to completion; returns the globals dict."""
        coroutines = [self._call_main(tid) for tid in range(self.nthreads)]
        live = list(coroutines)
        phases = 0
        while live:
            phases += 1
            if phases > max_phases:
                raise RuntimeError("interpreter exceeded max barrier phases")
            still = []
            for coroutine in live:
                try:
                    next(coroutine)
                    still.append(coroutine)
                except StopIteration:
                    pass
            live = still
        return self.globals

    def _call_main(self, tid):
        yield from self._exec_function(self.functions["main"], [], tid)

    # --------------------------------------------------------- execution

    def _exec_function(self, func, args, tid):
        env = {}
        for param, value in zip(func.params, args):
            env[param.name] = self._coerce(value, param.type)
        try:
            yield from self._exec_block(func.body, env, tid)
        except _Return as ret:
            return ret.value
        return None

    def _exec_block(self, block, env, tid):
        for stmt in block.statements:
            yield from self._exec_statement(stmt, env, tid)

    def _exec_statement(self, stmt, env, tid):
        if isinstance(stmt, ast.Block):
            yield from self._exec_block(stmt, env, tid)
        elif isinstance(stmt, ast.Declare):
            value = 0.0 if stmt.type == ast.FLOAT else 0
            if stmt.init is not None:
                value = self._coerce((yield from self._eval(stmt.init, env, tid)),
                                     stmt.type)
            env[stmt.name] = value
        elif isinstance(stmt, ast.Assign):
            value = yield from self._eval(stmt.value, env, tid)
            target = stmt.target
            if isinstance(target, ast.Index):
                index = yield from self._eval(target.index, env, tid)
                self.globals[target.name][index] = self._coerce(
                    value, target.symbol.type)
            elif isinstance(target.symbol, GlobalSymbol):
                self.globals[target.name] = self._coerce(
                    value, target.symbol.type)
            else:
                env[target.name] = self._coerce(value, target.symbol.type)
        elif isinstance(stmt, ast.If):
            cond = yield from self._eval(stmt.cond, env, tid)
            if cond:
                yield from self._exec_statement(stmt.then, env, tid)
            elif stmt.otherwise is not None:
                yield from self._exec_statement(stmt.otherwise, env, tid)
        elif isinstance(stmt, ast.While):
            while (yield from self._eval(stmt.cond, env, tid)):
                try:
                    yield from self._exec_statement(stmt.body, env, tid)
                except _Break:
                    break
                except _Continue:
                    continue
        elif isinstance(stmt, ast.For):
            if stmt.init is not None:
                yield from self._exec_statement(stmt.init, env, tid)
            while (stmt.cond is None
                   or (yield from self._eval(stmt.cond, env, tid))):
                try:
                    yield from self._exec_statement(stmt.body, env, tid)
                except _Break:
                    break
                except _Continue:
                    pass
                if stmt.update is not None:
                    yield from self._exec_statement(stmt.update, env, tid)
        elif isinstance(stmt, ast.Break):
            raise _Break()
        elif isinstance(stmt, ast.Continue):
            raise _Continue()
        elif isinstance(stmt, ast.Return):
            value = None
            if stmt.value is not None:
                value = yield from self._eval(stmt.value, env, tid)
            raise _Return(value)
        elif isinstance(stmt, ast.ExprStmt):
            yield from self._eval(stmt.expr, env, tid)
        else:
            raise CompileError(f"cannot interpret {type(stmt).__name__}")

    # ------------------------------------------------------- expressions

    def _eval(self, expr, env, tid):
        if isinstance(expr, ast.IntLit):
            return expr.value
        if isinstance(expr, ast.FloatLit):
            return expr.value
        if isinstance(expr, ast.Name):
            if isinstance(expr.symbol, GlobalSymbol):
                return self.globals[expr.name]
            return env[expr.name]
        if isinstance(expr, ast.Index):
            index = yield from self._eval(expr.index, env, tid)
            return self.globals[expr.name][index]
        if isinstance(expr, ast.Unary):
            operand = yield from self._eval(expr.operand, env, tid)
            if expr.op == "!":
                return int(not operand)
            if expr.type == ast.FLOAT:
                return -float(operand)
            return to_int32(-int(operand))
        if isinstance(expr, ast.Binary):
            return (yield from self._eval_binary(expr, env, tid))
        if isinstance(expr, ast.Call):
            return (yield from self._eval_call(expr, env, tid))
        raise CompileError(f"cannot interpret {type(expr).__name__}")

    def _eval_binary(self, expr, env, tid):
        op = expr.op
        if op == "&&":
            left = yield from self._eval(expr.left, env, tid)
            if not left:
                return 0
            return int(bool((yield from self._eval(expr.right, env, tid))))
        if op == "||":
            left = yield from self._eval(expr.left, env, tid)
            if left:
                return 1
            return int(bool((yield from self._eval(expr.right, env, tid))))
        left = yield from self._eval(expr.left, env, tid)
        right = yield from self._eval(expr.right, env, tid)
        operand_type = getattr(expr, "operand_type", expr.type)
        if operand_type == ast.FLOAT:
            left, right = float(left), float(right)
            table = {"+": lambda: left + right, "-": lambda: left - right,
                     "*": lambda: left * right,
                     "/": lambda: left / right if right else 0.0,
                     "==": lambda: int(left == right),
                     "!=": lambda: int(left != right),
                     "<": lambda: int(left < right),
                     "<=": lambda: int(left <= right),
                     ">": lambda: int(left > right),
                     ">=": lambda: int(left >= right)}
        else:
            left, right = int(left), int(right)
            table = {"+": lambda: to_int32(left + right),
                     "-": lambda: to_int32(left - right),
                     "*": lambda: to_int32(left * right),
                     "/": lambda: to_int32(_int_div(left, right)),
                     "%": lambda: to_int32(_int_rem(left, right)),
                     "==": lambda: int(left == right),
                     "!=": lambda: int(left != right),
                     "<": lambda: int(left < right),
                     "<=": lambda: int(left <= right),
                     ">": lambda: int(left > right),
                     ">=": lambda: int(left >= right)}
        return table[op]()

    def _eval_call(self, expr, env, tid):
        name = expr.name
        if expr.intrinsic:
            if name == "tid":
                return tid
            if name == "nthreads":
                return self.nthreads
            if name == "barrier":
                yield "barrier"
                return None
            return None  # lock/unlock: atomic by schedule
        func = self.functions[name]
        args = []
        for arg, ptype in zip(expr.args, expr.symbol.param_types):
            value = yield from self._eval(arg, env, tid)
            args.append(self._coerce(value, ptype))
        return (yield from self._exec_function(func, args, tid))

    # ----------------------------------------------------------- helpers

    @staticmethod
    def _coerce(value, type_):
        if type_ == ast.FLOAT:
            return float(value)
        return to_int32(int(value))


def interpret(source, nthreads=1):
    """Run MiniC source in the interpreter; returns the globals dict."""
    return Interpreter(source, nthreads=nthreads).run()
