"""MiniC runtime library (startup code and synchronization primitives).

The runtime is hand-written assembly appended to every compiled program:

* ``__start`` — computes the thread's private stack pointer
  (``stack_top - tid * stack_words``), calls ``main``, halts.
* ``__lock`` / ``__unlock`` — test-and-set spin lock on a global word.
* ``__barrier`` — a counter barrier with generation (sense) word,
  protected by its own internal lock. Spinning threads burn fetch slots,
  which is exactly the synchronization cost the paper discusses for the
  loop-carried-dependence benchmark.

The primitives clobber only the argument registers (r4..r7) and the
first temporaries (r8, r9); compiled callers save live temporaries
around every call.
"""

#: Words of private stack per thread. Deliberately not a multiple of the
#: cache-set stride: 4104 = 8 * 513 staggers the stacks across cache
#: sets so per-thread stacks do not all alias into one set.
STACK_WORDS = 4104

#: Default top-of-memory for stacks (matches MainMemory's default size).
DEFAULT_STACK_TOP = 1 << 20


def runtime_asm(stack_top=DEFAULT_STACK_TOP, stack_words=STACK_WORDS):
    """Assembly text of the runtime library."""
    return f"""
        .entry __start
        .data
__bar_lock:  .word 0
__bar_count: .word 0
__bar_gen:   .word 0
__bar_poke:  .word 0
        .text
__start:
        mftid r8
        li    r9, {stack_words}
        mul   r9, r8, r9
        li    sp, {stack_top}
        sub   sp, sp, r9
        call  f_main
        halt

__lock:
        # Test-and-set with per-thread, per-retry backoff: on a
        # deterministic machine a fixed-phase retry loop can livelock
        # against a lock holder that releases and promptly re-acquires
        # (observed with LL5's progress polling); a delay that varies
        # with the retry count breaks the phase lock.
        addi  r7, r0, 0
.lk_try:
        tas   r8, 0(r4)
        beqz  r8, .lk_got
        addi  r7, r7, 1
        mftid r9
        add   r9, r9, r7
        andi  r9, r9, 15
        addi  r9, r9, 1
.lk_off:
        addi  r9, r9, -1
        bnez  r9, .lk_off
        j     .lk_try
.lk_got:
        ret

__unlock:
        sw    r0, 0(r4)
        ret

__barrier:
        la    r4, __bar_lock
.bar_lk:
        tas   r8, 0(r4)
        bnez  r8, .bar_lk
        la    r5, __bar_gen
        lw    r9, 0(r5)
        la    r6, __bar_count
        lw    r7, 0(r6)
        addi  r7, r7, 1
        mfnth r8
        beq   r7, r8, .bar_last
        sw    r7, 0(r6)
        sw    r0, 0(r4)
.bar_spin:
        # The tas is a synchronization primitive the decoder recognizes,
        # so a Conditional-Switch front end rotates away from waiters
        # instead of fetching the spin loop forever.
        la    r7, __bar_poke
        tas   r8, 0(r7)
        lw    r8, 0(r5)
        beq   r8, r9, .bar_spin
        ret
.bar_last:
        sw    r0, 0(r6)
        addi  r9, r9, 1
        sw    r9, 0(r5)
        sw    r0, 0(r4)
        ret
"""
