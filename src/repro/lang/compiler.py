"""MiniC compiler driver: source text to an assembled Program."""

from repro.asm import assemble
from repro.isa.registers import regs_per_thread
from repro.lang.codegen import CodeGenerator
from repro.lang.parser import parse
from repro.lang.runtime import DEFAULT_STACK_TOP, STACK_WORDS, runtime_asm
from repro.lang.sema import analyze


def compile_to_asm(source, nthreads=1, regs=None):
    """Compile MiniC source to assembly text (without the runtime).

    ``regs`` overrides the per-thread register count; by default it is
    the static partition ``128 // nthreads``, matching the paper's
    equal-distribution register allocation.
    """
    k = regs if regs is not None else regs_per_thread(nthreads)
    ast_root = parse(source)
    tables = analyze(ast_root)
    return CodeGenerator(tables, k).run(ast_root)


def compile_source(source, nthreads=1, regs=None,
                   stack_top=DEFAULT_STACK_TOP, stack_words=STACK_WORDS,
                   align_branch_targets=False):
    """Compile MiniC source into an executable Program (runtime included).

    ``align_branch_targets`` pads control-transfer targets to fetch-block
    boundaries (the paper's code-alignment improvement).
    """
    user_asm = compile_to_asm(source, nthreads=nthreads, regs=regs)
    full = user_asm + runtime_asm(stack_top=stack_top, stack_words=stack_words)
    return assemble(full, align_targets=align_branch_targets)
