"""Compiler error type."""


class CompileError(Exception):
    """Raised for lexical, syntactic, or semantic errors, with location."""

    def __init__(self, message, line=None):
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)
