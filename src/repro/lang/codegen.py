"""MiniC code generator.

Emits SDSP assembly text for a configurable per-thread register count
(the paper's compiler "modified to produce code for a register set of
different sizes").

Register conventions (within a thread's partition of K registers)::

    r0        zero
    r1        return address
    r2        stack pointer (word-addressed, grows down)
    r3        codegen scratch (address formation)
    r4..r7    arguments / return value (r4)
    r8..      expression temporaries (caller-saved)
    ..K-1     register-allocated locals (allocated from the top down)

Scalar locals and parameters are register-allocated from the top of the
partition while at least :data:`MIN_TEMPS` temporaries remain; the rest
live in stack slots. A small partition (many threads) therefore spills
more — exactly the register-pressure cost of the paper's static equal
partitioning. Register locals are caller-saved into their stack slots
around calls.

Stack frames are word-granular: slot 0 holds the caller's return
address, then one slot per parameter and local (register-allocated ones
keep their slot as the call-time save area). Expression evaluation is a
register-stack discipline; running out of temporaries is a
:class:`~repro.lang.errors.CompileError` (deep expressions are not
spilled — :data:`MIN_TEMPS` temporaries are always reserved).
"""

from repro.lang import ast_nodes as ast
from repro.lang.errors import CompileError

FIRST_ARG_REG = 4
FIRST_TEMP_REG = 8
MIN_TEMPS = 9
MIN_REGS = 12


class TempPool:
    """Allocator for expression temporaries r8..K-1."""

    def __init__(self, k):
        self.first = FIRST_TEMP_REG
        self.limit = k
        self.free = list(range(self.first, k))
        self.live = []

    def alloc(self, line=None):
        if not self.free:
            raise CompileError("expression too complex (out of registers)", line)
        reg = self.free.pop(0)
        self.live.append(reg)
        return reg

    def release(self, reg):
        if reg not in self.live:
            raise CompileError(f"internal: double free of r{reg}")
        self.live.remove(reg)
        self.free.insert(0, reg)
        self.free.sort()

    def assert_empty(self, line=None):
        if self.live:
            raise CompileError(f"internal: leaked temporaries {self.live}", line)


class CodeGenerator:
    """Generates assembly for one analyzed program."""

    def __init__(self, tables, k):
        if k < MIN_REGS:
            raise CompileError(
                f"cannot compile for {k} registers; need at least {MIN_REGS}")
        self.tables = tables
        self.k = k
        self.lines = []
        self.data_lines = []
        self._label_count = 0
        self._float_consts = {}
        self.temps = None
        self.function = None
        self._loop_stack = []  # (continue_label, break_label)

    # ------------------------------------------------------------ helpers

    def emit(self, text):
        self.lines.append("        " + text)

    def emit_label(self, label):
        self.lines.append(f"{label}:")

    def new_label(self, hint="L"):
        self._label_count += 1
        return f".{hint}{self._label_count}"

    def move(self, dst, src, type_):
        """Register-to-register move preserving float values."""
        if type_ == ast.FLOAT:
            self.emit(f"fmov r{dst}, r{src}")
        else:
            self.emit(f"mov r{dst}, r{src}")

    def _assign_local_registers(self, func):
        """Map parameter/local symbols to registers from the top down.

        Registers are granted in declaration order while at least
        MIN_TEMPS temporaries remain; later locals stay in stack slots.
        """
        budget = max(0, self.k - FIRST_TEMP_REG - MIN_TEMPS)
        symbols = sorted(func.local_table.values(), key=lambda s: s.slot)
        assigned = {}
        for symbol in symbols[:budget]:
            assigned[symbol] = self.k - 1 - len(assigned)
        return assigned

    def float_const_label(self, value):
        value = float(value)
        key = repr(value)
        label = self._float_consts.get(key)
        if label is None:
            label = f"fc_{len(self._float_consts)}"
            self._float_consts[key] = label
            self.data_lines.append(f"{label}: .float {value!r}")
        return label

    # ----------------------------------------------------------- program

    def run(self, program):
        for gvar in program.globals:
            self._emit_global(gvar)
        for func in program.functions:
            self._emit_function(func)
        text = ["        .text"] + self.lines
        data = ["        .data"] + self.data_lines
        return "\n".join(data + text) + "\n"

    def _emit_global(self, gvar):
        symbol = gvar.symbol
        directive = ".float" if gvar.type == ast.FLOAT else ".word"
        if not symbol.is_array:
            value = gvar.init if gvar.init is not None else 0
            if gvar.type == ast.FLOAT:
                value = float(value)
            self.data_lines.append(f"{symbol.label}: {directive} {value!r}")
            return
        init = list(gvar.init or [])
        if gvar.type == ast.FLOAT:
            init = [float(v) for v in init]
        pad = symbol.size - len(init)
        if init:
            values = ", ".join(repr(v) for v in init)
            self.data_lines.append(f"{symbol.label}: {directive} {values}")
            if pad:
                self.data_lines.append(f"        .space {pad}")
        else:
            self.data_lines.append(f"{symbol.label}: .space {symbol.size}")

    def _emit_function(self, func):
        self.function = func
        self.local_regs = self._assign_local_registers(func)
        self.temps = TempPool(self.k - len(self.local_regs))
        self.emit_label(f"f_{func.name}")
        frame = func.frame_slots
        self.emit(f"addi sp, sp, -{frame}")
        self.emit("sw ra, 0(sp)")
        for index, param in enumerate(func.params):
            reg = self.local_regs.get(param.symbol)
            if reg is not None:
                self.move(reg, FIRST_ARG_REG + index, param.symbol.type)
            else:
                self.emit(f"sw r{FIRST_ARG_REG + index}, {param.symbol.slot}(sp)")
        self._epilogue_label = self.new_label("ret")
        self._gen_block(func.body)
        self.emit_label(self._epilogue_label)
        self.emit("lw ra, 0(sp)")
        self.emit(f"addi sp, sp, {frame}")
        self.emit("ret")
        self.temps.assert_empty(func.line)
        self.function = None

    # --------------------------------------------------------- statements

    def _gen_block(self, block):
        for stmt in block.statements:
            self._gen_statement(stmt)

    def _gen_statement(self, stmt):
        if isinstance(stmt, ast.Block):
            self._gen_block(stmt)
        elif isinstance(stmt, ast.Declare):
            if stmt.init is not None:
                reg = self._eval_as(stmt.init, stmt.symbol.type)
                home = self.local_regs.get(stmt.symbol)
                if home is not None:
                    self.move(home, reg, stmt.symbol.type)
                else:
                    self.emit(f"sw r{reg}, {stmt.symbol.slot}(sp)")
                self.temps.release(reg)
        elif isinstance(stmt, ast.Assign):
            self._gen_assign(stmt)
        elif isinstance(stmt, ast.If):
            self._gen_if(stmt)
        elif isinstance(stmt, ast.While):
            self._gen_while(stmt)
        elif isinstance(stmt, ast.For):
            self._gen_for(stmt)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                reg = self._eval_as(stmt.value, self.function.return_type)
                self.move(FIRST_ARG_REG, reg, self.function.return_type)
                self.temps.release(reg)
            self.emit(f"b {self._epilogue_label}")
        elif isinstance(stmt, ast.ExprStmt):
            reg = self._eval(stmt.expr)
            if reg is not None:
                self.temps.release(reg)
        elif isinstance(stmt, ast.Break):
            self.emit(f"b {self._loop_stack[-1][1]}")
        elif isinstance(stmt, ast.Continue):
            self.emit(f"b {self._loop_stack[-1][0]}")
        else:
            raise CompileError(f"cannot generate {type(stmt).__name__}",
                               stmt.line)

    def _gen_assign(self, stmt):
        target = stmt.target
        if isinstance(target, ast.Name):
            symbol = target.symbol
            reg = self._eval_as(stmt.value, symbol.type)
            store = "fsw" if symbol.type == ast.FLOAT else "sw"
            home = self.local_regs.get(symbol)
            if home is not None:
                self.move(home, reg, symbol.type)
            elif hasattr(symbol, "slot"):
                self.emit(f"{store} r{reg}, {symbol.slot}(sp)")
            else:
                self.emit(f"la r3, {symbol.label}")
                self.emit(f"{store} r{reg}, 0(r3)")
            self.temps.release(reg)
        else:  # Index
            symbol = target.symbol
            index_reg = self._eval(target.index)
            value_reg = self._eval_as(stmt.value, symbol.type)
            store = "fsw" if symbol.type == ast.FLOAT else "sw"
            self.emit(f"la r3, {symbol.label}")
            self.emit(f"add r3, r3, r{index_reg}")
            self.emit(f"{store} r{value_reg}, 0(r3)")
            self.temps.release(index_reg)
            self.temps.release(value_reg)

    def _gen_if(self, stmt):
        else_label = self.new_label("else")
        cond = self._eval_truthy(stmt.cond)
        self.emit(f"beqz r{cond}, {else_label}")
        self.temps.release(cond)
        self._gen_statement(stmt.then)
        if stmt.otherwise is not None:
            end_label = self.new_label("endif")
            self.emit(f"b {end_label}")
            self.emit_label(else_label)
            self._gen_statement(stmt.otherwise)
            self.emit_label(end_label)
        else:
            self.emit_label(else_label)

    def _gen_while(self, stmt):
        top = self.new_label("while")
        end = self.new_label("wend")
        self.emit_label(top)
        cond = self._eval_truthy(stmt.cond)
        self.emit(f"beqz r{cond}, {end}")
        self.temps.release(cond)
        self._loop_stack.append((top, end))
        self._gen_statement(stmt.body)
        self._loop_stack.pop()
        self.emit(f"b {top}")
        self.emit_label(end)

    def _gen_for(self, stmt):
        if stmt.init is not None:
            self._gen_statement(stmt.init)
        top = self.new_label("for")
        step = self.new_label("fstep")
        end = self.new_label("fend")
        self.emit_label(top)
        if stmt.cond is not None:
            cond = self._eval_truthy(stmt.cond)
            self.emit(f"beqz r{cond}, {end}")
            self.temps.release(cond)
        self._loop_stack.append((step, end))
        self._gen_statement(stmt.body)
        self._loop_stack.pop()
        self.emit_label(step)
        if stmt.update is not None:
            self._gen_statement(stmt.update)
        self.emit(f"b {top}")
        self.emit_label(end)

    # -------------------------------------------------------- expressions

    def _eval_as(self, expr, want_type):
        """Evaluate and convert to ``want_type`` if needed."""
        reg = self._eval(expr)
        return self._convert(reg, expr.type, want_type)

    def _convert(self, reg, have, want):
        if have == want or want == ast.VOID:
            return reg
        if have == ast.INT and want == ast.FLOAT:
            self.emit(f"cvtif r{reg}, r{reg}")
        elif have == ast.FLOAT and want == ast.INT:
            self.emit(f"cvtfi r{reg}, r{reg}")
        else:
            raise CompileError(f"cannot convert {have} to {want}")
        return reg

    def _eval_truthy(self, expr):
        """Evaluate to a 0/1 int register."""
        reg = self._eval(expr)
        if expr.type == ast.FLOAT:
            zero = self.temps.alloc(expr.line)
            label = self.float_const_label(0.0)
            self.emit(f"la r3, {label}")
            self.emit(f"flw r{zero}, 0(r3)")
            self.emit(f"feq r{reg}, r{reg}, r{zero}")
            self.emit(f"xori r{reg}, r{reg}, 1")
            self.temps.release(zero)
        return reg

    def _eval(self, expr):
        """Evaluate ``expr`` into a fresh temporary; returns the register.

        Returns ``None`` for void calls.
        """
        if isinstance(expr, ast.IntLit):
            reg = self.temps.alloc(expr.line)
            self.emit(f"li r{reg}, {expr.value}")
            return reg
        if isinstance(expr, ast.FloatLit):
            reg = self.temps.alloc(expr.line)
            label = self.float_const_label(expr.value)
            self.emit(f"la r3, {label}")
            self.emit(f"flw r{reg}, 0(r3)")
            return reg
        if isinstance(expr, ast.Name):
            return self._eval_name(expr)
        if isinstance(expr, ast.Index):
            return self._eval_index(expr)
        if isinstance(expr, ast.Unary):
            return self._eval_unary(expr)
        if isinstance(expr, ast.Binary):
            return self._eval_binary(expr)
        if isinstance(expr, ast.Call):
            return self._eval_call(expr)
        raise CompileError(f"cannot evaluate {type(expr).__name__}", expr.line)

    def _eval_name(self, expr):
        symbol = expr.symbol
        reg = self.temps.alloc(expr.line)
        load = "flw" if symbol.type == ast.FLOAT else "lw"
        home = self.local_regs.get(symbol)
        if home is not None:
            self.move(reg, home, symbol.type)
        elif hasattr(symbol, "slot"):
            self.emit(f"{load} r{reg}, {symbol.slot}(sp)")
        else:
            self.emit(f"la r3, {symbol.label}")
            self.emit(f"{load} r{reg}, 0(r3)")
        return reg

    def _eval_index(self, expr):
        index_reg = self._eval(expr.index)
        load = "flw" if expr.symbol.type == ast.FLOAT else "lw"
        self.emit(f"la r3, {expr.symbol.label}")
        self.emit(f"add r3, r3, r{index_reg}")
        self.emit(f"{load} r{index_reg}, 0(r3)")
        return index_reg

    def _eval_unary(self, expr):
        if expr.op == "!":
            reg = self._eval_truthy(expr.operand)
            self.emit(f"sltu r{reg}, r0, r{reg}")
            self.emit(f"xori r{reg}, r{reg}, 1")
            return reg
        reg = self._eval(expr.operand)
        if expr.type == ast.FLOAT:
            self.emit(f"fneg r{reg}, r{reg}")
        else:
            self.emit(f"neg r{reg}, r{reg}")
        return reg

    _INT_OPS = {"+": "add", "-": "sub", "*": "mul", "/": "div", "%": "rem"}
    _FLOAT_OPS = {"+": "fadd", "-": "fsub", "*": "fmul", "/": "fdiv"}

    def _eval_binary(self, expr):
        op = expr.op
        if op in ("&&", "||"):
            return self._eval_logical(expr)
        operand_type = getattr(expr, "operand_type", expr.type)
        left = self._eval_as(expr.left, operand_type)
        right = self._eval_as(expr.right, operand_type)
        if op in self._INT_OPS:
            mnemonic = (self._FLOAT_OPS[op] if operand_type == ast.FLOAT
                        else self._INT_OPS[op])
            self.emit(f"{mnemonic} r{left}, r{left}, r{right}")
            self.temps.release(right)
            return left
        return self._eval_compare(expr, left, right, operand_type)

    def _eval_compare(self, expr, left, right, operand_type):
        op = expr.op
        if operand_type == ast.FLOAT:
            table = {"==": ("feq", left, right, False),
                     "!=": ("feq", left, right, True),
                     "<": ("flt", left, right, False),
                     "<=": ("fle", left, right, False),
                     ">": ("flt", right, left, False),
                     ">=": ("fle", right, left, False)}
            mnemonic, a, b, negate = table[op]
            self.emit(f"{mnemonic} r{left}, r{a}, r{b}")
            if negate:
                self.emit(f"xori r{left}, r{left}, 1")
        else:
            if op == "==":
                self.emit(f"sub r{left}, r{left}, r{right}")
                self.emit(f"sltu r{left}, r0, r{left}")
                self.emit(f"xori r{left}, r{left}, 1")
            elif op == "!=":
                self.emit(f"sub r{left}, r{left}, r{right}")
                self.emit(f"sltu r{left}, r0, r{left}")
            elif op == "<":
                self.emit(f"slt r{left}, r{left}, r{right}")
            elif op == ">=":
                self.emit(f"slt r{left}, r{left}, r{right}")
                self.emit(f"xori r{left}, r{left}, 1")
            elif op == ">":
                self.emit(f"slt r{left}, r{right}, r{left}")
            elif op == "<=":
                self.emit(f"slt r{left}, r{right}, r{left}")
                self.emit(f"xori r{left}, r{left}, 1")
        self.temps.release(right)
        return left

    def _eval_logical(self, expr):
        result = self.temps.alloc(expr.line)
        end = self.new_label("sc")
        left = self._eval_truthy(expr.left)
        if expr.op == "&&":
            self.emit(f"li r{result}, 0")
            self.emit(f"beqz r{left}, {end}")
        else:
            self.emit(f"li r{result}, 1")
            self.emit(f"bnez r{left}, {end}")
        self.temps.release(left)
        right = self._eval_truthy(expr.right)
        self.emit(f"sltu r{result}, r0, r{right}")
        self.temps.release(right)
        self.emit_label(end)
        return result

    # -------------------------------------------------------------- calls

    def _eval_call(self, expr):
        if expr.intrinsic:
            return self._eval_intrinsic(expr)
        symbol = expr.symbol
        arg_regs = []
        for arg, ptype in zip(expr.args, symbol.param_types):
            arg_regs.append(self._eval_as(arg, ptype))
        return self._finish_call(expr, symbol.label, arg_regs,
                                 symbol.return_type,
                                 arg_types=symbol.param_types)

    def _eval_intrinsic(self, expr):
        name = expr.name
        if name == "tid":
            reg = self.temps.alloc(expr.line)
            self.emit(f"mftid r{reg}")
            return reg
        if name == "nthreads":
            reg = self.temps.alloc(expr.line)
            self.emit(f"mfnth r{reg}")
            return reg
        if name == "barrier":
            return self._finish_call(expr, "__barrier", [], ast.VOID)
        if name == "pause":
            # A tas on the runtime's scratch word: a synchronization
            # primitive the Conditional-Switch front end rotates on,
            # for polite lock-free spin-waiting.
            reg = self.temps.alloc(expr.line)
            self.emit("la r3, __bar_poke")
            self.emit(f"tas r{reg}, 0(r3)")
            self.temps.release(reg)
            return None
        # lock/unlock: pass the global's address.
        symbol = expr.args[0].symbol
        addr = self.temps.alloc(expr.line)
        self.emit(f"la r{addr}, {symbol.label}")
        target = "__lock" if name == "lock" else "__unlock"
        return self._finish_call(expr, target, [addr], ast.VOID)

    def _finish_call(self, expr, label, arg_regs, return_type,
                     arg_types=None):
        """Spill register locals, save live temporaries, marshal
        arguments, call, fetch the result, and restore."""
        # Register locals are caller-saved into their own frame slots
        # (while sp still points at the frame base).
        reg_locals = sorted((symbol.slot, reg)
                            for symbol, reg in self.local_regs.items())
        for slot, reg in reg_locals:
            self.emit(f"sw r{reg}, {slot}(sp)")
        save = [reg for reg in self.temps.live if reg not in arg_regs]
        if save:
            self.emit(f"addi sp, sp, -{len(save)}")
            for offset, reg in enumerate(save):
                self.emit(f"sw r{reg}, {offset}(sp)")
        arg_types = arg_types or [ast.INT] * len(arg_regs)
        for index, (reg, type_) in enumerate(zip(arg_regs, arg_types)):
            self.move(FIRST_ARG_REG + index, reg, type_)
        for reg in arg_regs:
            self.temps.release(reg)
        self.emit(f"call {label}")
        result = None
        if return_type != ast.VOID:
            result = self.temps.alloc(expr.line)
            self.move(result, FIRST_ARG_REG, return_type)
        if save:
            for offset, reg in enumerate(save):
                self.emit(f"lw r{reg}, {offset}(sp)")
            self.emit(f"addi sp, sp, {len(save)}")
        for slot, reg in reg_locals:
            self.emit(f"lw r{reg}, {slot}(sp)")
        return result
