"""MiniC semantic analysis: name resolution and type checking.

Annotates the AST in place: every expression node gets a ``type``
("int"/"float"), ``Name``/``Index`` nodes get a ``symbol``, calls are
classified as user calls or intrinsics, and each function learns its
stack-slot layout.
"""

from repro.lang import ast_nodes as ast
from repro.lang.errors import CompileError

INTRINSICS = {
    # name -> (param types, return type); None = address-of-global param
    "tid": ((), ast.INT),
    "nthreads": ((), ast.INT),
    "barrier": ((), ast.VOID),
    "pause": ((), ast.VOID),
    "lock": ((None,), ast.VOID),
    "unlock": ((None,), ast.VOID),
}


class GlobalSymbol:
    """A global scalar or array."""

    def __init__(self, name, type_, size, init):
        self.name = name
        self.type = type_
        self.size = size  # None for scalars
        self.init = init
        self.label = f"g_{name}"

    @property
    def is_array(self):
        return self.size is not None


class LocalSymbol:
    """A function parameter or local scalar, living in a stack slot."""

    def __init__(self, name, type_, slot):
        self.name = name
        self.type = type_
        self.slot = slot


class FunctionSymbol:
    """A user-defined function."""

    def __init__(self, node):
        self.name = node.name
        self.return_type = node.return_type
        self.param_types = [p.type for p in node.params]
        self.label = f"f_{node.name}"
        self.node = node


class SymbolTables:
    """Result of semantic analysis."""

    def __init__(self):
        self.globals = {}
        self.functions = {}


MAX_PARAMS = 4


class Analyzer:
    """Single-pass semantic analyzer; use :func:`analyze`."""

    def __init__(self):
        self.tables = SymbolTables()
        self._locals = None
        self._function = None

    # ---------------------------------------------------------- top level

    def run(self, program):
        for gvar in program.globals:
            self._declare_global(gvar)
        for func in program.functions:
            if func.name in self.tables.functions or func.name in INTRINSICS:
                raise CompileError(f"duplicate function {func.name!r}", func.line)
            if func.name in self.tables.globals:
                raise CompileError(f"{func.name!r} is already a global", func.line)
            self.tables.functions[func.name] = FunctionSymbol(func)
        main = self.tables.functions.get("main")
        if main is None:
            raise CompileError("program has no main()")
        if main.param_types or main.return_type != ast.VOID:
            raise CompileError("main must be 'void main()'", main.node.line)
        for func in program.functions:
            self._check_function(func)
        return self.tables

    def _declare_global(self, gvar):
        if gvar.name in self.tables.globals:
            raise CompileError(f"duplicate global {gvar.name!r}", gvar.line)
        if gvar.size is not None:
            if gvar.size < 1:
                raise CompileError(f"array {gvar.name!r} has size {gvar.size}",
                                   gvar.line)
            if gvar.init is not None and len(gvar.init) > gvar.size:
                raise CompileError(
                    f"too many initializers for {gvar.name!r}", gvar.line)
        symbol = GlobalSymbol(gvar.name, gvar.type, gvar.size, gvar.init)
        self.tables.globals[gvar.name] = symbol
        gvar.symbol = symbol

    def _check_function(self, func):
        if len(func.params) > MAX_PARAMS:
            raise CompileError(
                f"{func.name!r} has {len(func.params)} parameters; "
                f"at most {MAX_PARAMS} are supported", func.line)
        self._function = func
        self._locals = {}
        self._loop_depth = 0
        func.frame_slots = 1  # slot 0 holds the return address
        for param in func.params:
            param.symbol = self._add_local(param.name, param.type, param.line)
        self._check_block(func.body)
        func.local_table = dict(self._locals)
        self._locals = None
        self._function = None

    def _add_local(self, name, type_, line):
        if name in self._locals:
            raise CompileError(f"duplicate local {name!r}", line)
        symbol = LocalSymbol(name, type_, self._function.frame_slots)
        self._function.frame_slots += 1
        self._locals[name] = symbol
        return symbol

    # --------------------------------------------------------- statements

    def _check_block(self, block):
        for stmt in block.statements:
            self._check_statement(stmt)

    def _check_statement(self, stmt):
        if isinstance(stmt, ast.Block):
            self._check_block(stmt)
        elif isinstance(stmt, ast.Declare):
            stmt.symbol = self._add_local(stmt.name, stmt.type, stmt.line)
            if stmt.init is not None:
                self._check_expr(stmt.init)
        elif isinstance(stmt, ast.Assign):
            self._check_expr(stmt.target)
            self._check_expr(stmt.value)
            if isinstance(stmt.target, ast.Name) and stmt.target.symbol_is_array:
                raise CompileError("cannot assign to a whole array", stmt.line)
        elif isinstance(stmt, ast.If):
            self._check_expr(stmt.cond)
            self._check_statement(stmt.then)
            if stmt.otherwise is not None:
                self._check_statement(stmt.otherwise)
        elif isinstance(stmt, ast.While):
            self._check_expr(stmt.cond)
            self._loop_depth += 1
            self._check_statement(stmt.body)
            self._loop_depth -= 1
        elif isinstance(stmt, ast.For):
            if stmt.init is not None:
                self._check_statement(stmt.init)
            if stmt.cond is not None:
                self._check_expr(stmt.cond)
            if stmt.update is not None:
                self._check_statement(stmt.update)
            self._loop_depth += 1
            self._check_statement(stmt.body)
            self._loop_depth -= 1
        elif isinstance(stmt, (ast.Break, ast.Continue)):
            if self._loop_depth == 0:
                keyword = "break" if isinstance(stmt, ast.Break) else "continue"
                raise CompileError(f"{keyword} outside a loop", stmt.line)
        elif isinstance(stmt, ast.Return):
            rtype = self._function.return_type
            if stmt.value is None:
                if rtype != ast.VOID:
                    raise CompileError("missing return value", stmt.line)
            else:
                if rtype == ast.VOID:
                    raise CompileError("void function returns a value", stmt.line)
                self._check_expr(stmt.value)
        elif isinstance(stmt, ast.ExprStmt):
            self._check_expr(stmt.expr)
        else:
            raise CompileError(f"unknown statement {type(stmt).__name__}",
                               stmt.line)

    # -------------------------------------------------------- expressions

    def _check_expr(self, expr):
        if isinstance(expr, ast.IntLit):
            expr.type = ast.INT
        elif isinstance(expr, ast.FloatLit):
            expr.type = ast.FLOAT
        elif isinstance(expr, ast.Name):
            expr.symbol = self._lookup(expr.name, expr.line)
            expr.symbol_is_array = (isinstance(expr.symbol, GlobalSymbol)
                                    and expr.symbol.is_array)
            expr.type = expr.symbol.type
        elif isinstance(expr, ast.Index):
            symbol = self._lookup(expr.name, expr.line)
            if not isinstance(symbol, GlobalSymbol) or not symbol.is_array:
                raise CompileError(f"{expr.name!r} is not an array", expr.line)
            expr.symbol = symbol
            self._check_expr(expr.index)
            if expr.index.type != ast.INT:
                raise CompileError("array index must be int", expr.line)
            expr.type = symbol.type
        elif isinstance(expr, ast.Unary):
            self._check_expr(expr.operand)
            expr.type = ast.INT if expr.op == "!" else expr.operand.type
        elif isinstance(expr, ast.Binary):
            self._check_binary(expr)
        elif isinstance(expr, ast.Call):
            self._check_call(expr)
        else:
            raise CompileError(f"unknown expression {type(expr).__name__}",
                               expr.line)
        return expr.type

    def _check_binary(self, expr):
        self._check_expr(expr.left)
        self._check_expr(expr.right)
        op = expr.op
        operand_type = ast.FLOAT if ast.FLOAT in (expr.left.type,
                                                  expr.right.type) else ast.INT
        if op == "%" and operand_type == ast.FLOAT:
            raise CompileError("% is not defined on floats", expr.line)
        if op in ("&&", "||"):
            expr.type = ast.INT
        elif op in ("==", "!=", "<", "<=", ">", ">="):
            expr.type = ast.INT
            expr.operand_type = operand_type
        else:
            expr.type = operand_type

    def _check_call(self, expr):
        name = expr.name
        if name in INTRINSICS:
            param_types, return_type = INTRINSICS[name]
            expr.intrinsic = True
            if len(expr.args) != len(param_types):
                raise CompileError(
                    f"{name}() takes {len(param_types)} argument(s)", expr.line)
            for arg, ptype in zip(expr.args, param_types):
                if ptype is None:  # address-of-global argument (lock/unlock)
                    if not isinstance(arg, ast.Name):
                        raise CompileError(
                            f"{name}() needs a global int scalar", expr.line)
                    symbol = self._lookup(arg.name, arg.line)
                    if (not isinstance(symbol, GlobalSymbol)
                            or symbol.is_array or symbol.type != ast.INT):
                        raise CompileError(
                            f"{name}() needs a global int scalar", expr.line)
                    arg.symbol = symbol
                    arg.type = ast.INT
                else:
                    self._check_expr(arg)
            expr.type = return_type
            return
        symbol = self.tables.functions.get(name)
        if symbol is None:
            raise CompileError(f"unknown function {name!r}", expr.line)
        expr.intrinsic = False
        expr.symbol = symbol
        if len(expr.args) != len(symbol.param_types):
            raise CompileError(
                f"{name}() takes {len(symbol.param_types)} argument(s), "
                f"got {len(expr.args)}", expr.line)
        for arg in expr.args:
            self._check_expr(arg)
        expr.type = symbol.return_type

    def _lookup(self, name, line):
        if self._locals is not None and name in self._locals:
            return self._locals[name]
        symbol = self.tables.globals.get(name)
        if symbol is None:
            raise CompileError(f"unknown name {name!r}", line)
        return symbol


def analyze(program):
    """Run semantic analysis; returns the :class:`SymbolTables`."""
    return Analyzer().run(program)
