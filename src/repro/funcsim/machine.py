"""The functional simulator."""

from repro.isa.opcodes import Format, Op
from repro.isa.registers import RegisterFile
from repro.isa.semantics import branch_taken, compute
from repro.mem.memory import MainMemory


class SimFault(Exception):
    """Raised when a program does something architecturally illegal."""


class ThreadState:
    """Architectural state of one thread."""

    __slots__ = ("tid", "pc", "halted", "retired")

    def __init__(self, tid, pc):
        self.tid = tid
        self.pc = pc
        self.halted = False
        self.retired = 0

    def __repr__(self):
        state = "halted" if self.halted else f"pc={self.pc}"
        return f"ThreadState(tid={self.tid}, {state}, retired={self.retired})"


class FunctionalSim:
    """Instruction-level simulator for N homogeneous threads.

    All threads start at the program entry point with zeroed registers.
    Threads are stepped round-robin, one instruction each, which makes
    multithreaded runs deterministic.
    """

    def __init__(self, program, nthreads=1, mem_words=None):
        self.program = program
        self.nthreads = nthreads
        self.regs = RegisterFile(nthreads)
        self.memory = MainMemory() if mem_words is None else MainMemory(mem_words)
        self.memory.load_image(program.data)
        self.threads = [ThreadState(tid, program.entry) for tid in range(nthreads)]
        self.steps = 0
        self.opcode_counts = {}

    @property
    def done(self):
        """True when every thread has halted."""
        return all(t.halted for t in self.threads)

    def run(self, max_steps=10_000_000):
        """Run until all threads halt; returns total steps executed.

        Raises :class:`SimFault` if ``max_steps`` is exceeded, which in
        practice means a deadlocked or runaway program.
        """
        while not self.done:
            progress = False
            for thread in self.threads:
                if thread.halted:
                    continue
                self.step(thread)
                progress = True
                if self.steps > max_steps:
                    raise SimFault(f"exceeded {max_steps} steps; "
                                   f"threads: {self.threads}")
            if not progress:
                break
        return self.steps

    def step(self, thread):
        """Execute one instruction of ``thread``."""
        if not 0 <= thread.pc < len(self.program.instructions):
            raise SimFault(f"thread {thread.tid} pc {thread.pc} outside program")
        instr = self.program.instructions[thread.pc]
        self.steps += 1
        thread.retired += 1
        op_name = instr.op.name
        self.opcode_counts[op_name] = self.opcode_counts.get(op_name, 0) + 1
        next_pc = thread.pc + 1
        op = instr.op
        info = instr.info
        read = self.regs.read
        tid = thread.tid

        if info.is_load:
            addr = int(read(tid, instr.rs1)) + instr.imm
            value = self.memory.read(addr)
            if op is Op.TAS:
                self.memory.write(addr, 1)
            self.regs.write(tid, instr.rd, value)
        elif info.is_store:
            addr = int(read(tid, instr.rs1)) + instr.imm
            self.memory.write(addr, read(tid, instr.rs2))
        elif info.is_branch:
            if branch_taken(op, read(tid, instr.rs1), read(tid, instr.rs2)):
                next_pc = thread.pc + 1 + instr.imm
        elif op is Op.J:
            next_pc = instr.imm
        elif op is Op.JAL:
            self.regs.write(tid, instr.rd, thread.pc + 1)
            next_pc = instr.imm
        elif op is Op.JALR:
            target = int(read(tid, instr.rs1))
            self.regs.write(tid, instr.rd, thread.pc + 1)
            next_pc = target
        elif op is Op.HALT:
            thread.halted = True
        else:
            b = instr.imm if info.fmt in (Format.I,) else read(tid, instr.rs2)
            value = compute(op, read(tid, instr.rs1), b,
                            tid=tid, nthreads=self.nthreads, imm=instr.imm)
            self.regs.write(tid, instr.rd, value)

        thread.pc = next_pc

    # ------------------------------------------------------------ helpers

    def reg(self, tid, reg):
        """Architectural register value."""
        return self.regs.read(tid, reg)

    def mem(self, addr, count=1):
        """Memory contents (one value, or a list if ``count`` > 1)."""
        if count == 1:
            return self.memory.read(addr)
        return self.memory.read_block(addr, count)

    def instruction_mix(self):
        """Fraction of executed instructions per category.

        Categories: ``alu``, ``mul_div``, ``load``, ``store``,
        ``branch``, ``jump``, ``fp``, ``sync``, ``other`` — the workload
        characterization tables architecture papers report.
        """
        from repro.isa.opcodes import FuClass, Op, OPCODE_INFO
        buckets = {"alu": 0, "mul_div": 0, "load": 0, "store": 0,
                   "branch": 0, "jump": 0, "fp": 0, "sync": 0, "other": 0}
        for op_name, count in self.opcode_counts.items():
            info = OPCODE_INFO[Op[op_name]]
            if info.is_sync:
                buckets["sync"] += count
            elif info.is_load:
                buckets["load"] += count
            elif info.is_store:
                buckets["store"] += count
            elif info.is_branch:
                buckets["branch"] += count
            elif info.is_jump:
                buckets["jump"] += count
            elif info.fu in (FuClass.FPADD, FuClass.FPMUL, FuClass.FPDIV):
                buckets["fp"] += count
            elif info.fu in (FuClass.IMUL, FuClass.IDIV):
                buckets["mul_div"] += count
            elif info.fu is FuClass.IALU:
                buckets["alu"] += count
            else:
                buckets["other"] += count
        total = sum(buckets.values()) or 1
        return {k: v / total for k, v in buckets.items()}
