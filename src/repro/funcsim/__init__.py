"""Architectural (functional) reference simulator.

Executes programs instruction-at-a-time with round-robin thread
interleaving. It has no notion of pipelines or caches; it defines the
*architectural* meaning of a program and serves as the correctness
oracle for the cycle-accurate pipeline simulator.
"""

from repro.funcsim.machine import FunctionalSim, SimFault, ThreadState

__all__ = ["FunctionalSim", "SimFault", "ThreadState"]
