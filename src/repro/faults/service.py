"""Deterministic fault injectors for the simulation job service.

:class:`~repro.faults.inject.FaultPlan` injects faults *inside grid
workers* (crash, hang, transient exception). The job service
(:mod:`repro.service`) adds a client/server boundary with its own
failure modes, and every one of them must be injectable so
``tests/test_service.py`` and ``tools/service_chaos.py`` can prove the
recovery paths instead of trusting them:

* **slow client** — a client that dawdles between connecting and
  sending its request (or between request and read); the server must
  neither block other clients nor mis-account the job.
* **mid-stream disconnect** — a client that drops its lifecycle-event
  stream partway through; the job must still run to exactly one
  terminal state and remain fetchable.
* **queue-overflow burst** — one logical submission exploded into many
  concurrent duplicate copies; admission control must shed load with an
  explicit 429 + ``Retry-After`` while the in-flight dedup layer runs
  the simulation at most once.
* **worker-pool loss between accept and execute** — the job was
  admitted, then the worker that picked it up died before simulating;
  maps onto a :meth:`FaultPlan.crash` rule scoped to the dispatched
  grid, so the battle-tested ``BrokenProcessPool`` recovery handles it.

Like :class:`FaultPlan`, a :class:`ServiceFaultPlan` is plain picklable
data and decides purely from ``(seed, request index, attempt, rule)``
whether to fire — a failing chaos run replays bit-identically.
"""

from repro.faults.inject import FaultPlan, _chance


class ServiceFaultPlan:
    """Seedable schedule of service-layer faults.

    Usage::

        plan = (ServiceFaultPlan(seed=7)
                .slow_client(indices=[1], seconds=0.2)
                .disconnect(indices=[0], after_events=2)
                .burst(indices=[2], copies=16)
                .pool_loss(indices=[3]))

    The *request index* a rule selects on is the caller's numbering of
    its logical submissions (the order a test or chaos driver fires
    them), mirroring :class:`FaultPlan`'s job-index selection.
    """

    def __init__(self, seed=0):
        self.seed = seed
        self._rules = []

    # ------------------------------------------------------ rule builders

    def _add(self, kind, indices, attempts, probability, **extra):
        if attempts < 1:
            raise ValueError("attempts must be >= 1 (rule would never fire)")
        rule = dict(kind=kind, attempts=attempts, probability=probability,
                    indices=None if indices is None else sorted(indices),
                    **extra)
        self._rules.append(rule)
        return self

    def slow_client(self, indices=None, attempts=1, probability=None,
                    seconds=0.1):
        """Client sleeps ``seconds`` before sending the submission."""
        return self._add("slow-client", indices, attempts, probability,
                         seconds=seconds)

    def disconnect(self, indices=None, attempts=1, probability=None,
                   after_events=1):
        """Client drops its event stream after ``after_events`` events."""
        return self._add("disconnect", indices, attempts, probability,
                         after_events=after_events)

    def burst(self, indices=None, attempts=1, probability=None, copies=8):
        """Explode the submission into ``copies`` concurrent duplicates."""
        if copies < 1:
            raise ValueError("copies must be >= 1")
        return self._add("burst", indices, attempts, probability,
                         copies=copies)

    def pool_loss(self, indices=None, attempts=1, probability=None):
        """Kill the worker that accepted the job before it simulates."""
        return self._add("pool-loss", indices, attempts, probability)

    # -------------------------------------------------------- evaluation

    def _fires(self, rule, index, attempt):
        indices = rule["indices"]
        if indices is not None and index not in indices:
            return False
        if attempt >= rule["attempts"]:
            return False
        probability = rule["probability"]
        if probability is not None and _chance(
                self.seed, index, attempt, rule["kind"]) >= probability:
            return False
        return True

    def matches(self, index, attempt=0):
        """Kinds of every rule that fires for ``(index, attempt)``."""
        return [rule["kind"] for rule in self._rules
                if self._fires(rule, index, attempt)]

    def submit_delay(self, index, attempt=0):
        """Seconds a slow client sleeps before submission ``index``."""
        return sum(rule["seconds"] for rule in self._rules
                   if rule["kind"] == "slow-client"
                   and self._fires(rule, index, attempt))

    def should_disconnect(self, index, events_seen, attempt=0):
        """True when the streaming client drops the connection now."""
        return any(rule["kind"] == "disconnect"
                   and self._fires(rule, index, attempt)
                   and events_seen >= rule["after_events"]
                   for rule in self._rules)

    def burst_copies(self, index, attempt=0):
        """Concurrent duplicate copies to fire for submission ``index``
        (1 = no burst; copies multiply, mirroring stacked rules)."""
        copies = 1
        for rule in self._rules:
            if rule["kind"] == "burst" and self._fires(rule, index, attempt):
                copies *= rule["copies"]
        return copies

    def grid_plan(self, index_map):
        """Worker-level :class:`FaultPlan` for one service dispatch.

        ``index_map`` maps *request index* -> *grid index* for the jobs
        in the dispatch. Every ``pool_loss`` rule that selects a mapped
        request becomes a :meth:`FaultPlan.crash` rule on the
        corresponding grid index (firing in the worker after it accepts
        the task, before it simulates). Returns ``None`` when nothing
        fires — the dispatch then runs without a worker fault plan.
        """
        plan = FaultPlan(seed=self.seed)
        armed = False
        for rule in self._rules:
            if rule["kind"] != "pool-loss":
                continue
            grid_indices = sorted(
                grid_index for request_index, grid_index in index_map.items()
                if self._fires(rule, request_index, 0))
            if grid_indices:
                plan.crash(indices=grid_indices, attempts=rule["attempts"],
                           probability=rule["probability"])
                armed = True
        return plan if armed else None

    def __repr__(self):
        kinds = ", ".join(rule["kind"] for rule in self._rules) or "empty"
        return f"ServiceFaultPlan(seed={self.seed}, rules=[{kinds}])"
