"""Fault injectors: worker crash, worker hang, transient exception,
cache-file corruption.

A :class:`FaultPlan` is a small, picklable schedule of fault *rules*.
The parallel harness hands the plan to every worker inside the job
tuple; the worker calls :meth:`FaultPlan.apply` with its job index and
attempt number before simulating, and the plan decides — purely from
``(seed, index, attempt, rule)`` — whether to fire. Determinism is the
whole point: a fault-matrix test that fails replays identically.

Rule semantics
--------------
Each rule selects jobs by *index* (``indices=None`` matches every job)
and fires only while ``attempt < attempts``, so ``attempts=1`` models a
fault that heals on retry and a large ``attempts`` models a persistent
fault that must exhaust the harness's retry budget. An optional
``probability`` thins the selection deterministically via a seeded
hash.

Inline degradation
------------------
``run_grid(workers=1)`` executes jobs in the parent process, where a
real ``os._exit`` or multi-hour sleep would take the whole harness
down. Inline, ``crash`` and ``hang`` rules therefore degrade to
raising :class:`InjectedCrash` / :class:`InjectedHang` — still
exercising the retry bookkeeping, just not actual process death. In a
pool worker they are real: ``crash`` kills the process (producing a
``BrokenProcessPool`` in the parent) and ``hang`` sleeps past any
sensible per-job timeout.
"""

import hashlib
import json
import os
import pathlib
import time

#: Exit status used by an injected worker crash (visible in pool logs).
CRASH_EXIT_CODE = 86


class InjectedFault(RuntimeError):
    """A deliberately injected transient failure (retryable)."""


class InjectedCrash(InjectedFault):
    """Inline stand-in for a worker-process death."""


class InjectedHang(InjectedFault):
    """Inline stand-in for a hung worker."""


def _chance(seed, index, attempt, salt):
    """Deterministic uniform draw in [0, 1) from the rule coordinates."""
    text = f"{seed}:{salt}:{index}:{attempt}".encode()
    digest = hashlib.sha256(text).digest()
    return int.from_bytes(digest[:8], "big") / 2.0 ** 64


class FaultPlan:
    """Seedable schedule of faults for a :func:`run_grid` invocation.

    Usage::

        plan = FaultPlan(seed=7)
        plan.crash(indices=[2], attempts=1)      # dies once, then heals
        plan.hang(indices=[0], seconds=3600)     # wedges on every attempt
        plan.fail(probability=0.2)               # 20% of first attempts
        run_grid(jobs, fault_plan=plan, timeout=5.0)
    """

    def __init__(self, seed=0):
        self.seed = seed
        self._rules = []

    # ------------------------------------------------------ rule builders

    def _add(self, kind, indices, attempts, probability, **extra):
        if attempts < 1:
            raise ValueError("attempts must be >= 1 (rule would never fire)")
        rule = dict(kind=kind, attempts=attempts, probability=probability,
                    indices=None if indices is None else sorted(indices),
                    **extra)
        self._rules.append(rule)
        return self

    def crash(self, indices=None, attempts=1, probability=None):
        """Kill the worker process mid-job (``BrokenProcessPool``)."""
        return self._add("crash", indices, attempts, probability)

    def hang(self, indices=None, attempts=1, probability=None,
             seconds=3600.0):
        """Wedge the worker for ``seconds`` (per-job timeout territory)."""
        return self._add("hang", indices, attempts, probability,
                         seconds=seconds)

    def fail(self, indices=None, attempts=1, probability=None,
             message="injected transient fault"):
        """Raise :class:`InjectedFault` (exercises retry/backoff)."""
        return self._add("fail", indices, attempts, probability,
                         message=message)

    # -------------------------------------------------------- evaluation

    def matches(self, index, attempt):
        """Kinds of every rule that would fire for ``(index, attempt)``."""
        fired = []
        for rule in self._rules:
            indices = rule["indices"]
            if indices is not None and index not in indices:
                continue
            if attempt >= rule["attempts"]:
                continue
            probability = rule["probability"]
            if probability is not None and _chance(
                    self.seed, index, attempt, rule["kind"]) >= probability:
                continue
            fired.append(rule["kind"])
        return fired

    def apply(self, index, attempt, inline=False):
        """Fire every matching rule for this ``(index, attempt)``.

        Called by the worker entry point before simulating. ``inline``
        selects the degraded (exception-raising) form of ``crash`` and
        ``hang`` so a pool-less run survives the injection.
        """
        for rule in self._rules:
            indices = rule["indices"]
            if indices is not None and index not in indices:
                continue
            if attempt >= rule["attempts"]:
                continue
            probability = rule["probability"]
            if probability is not None and _chance(
                    self.seed, index, attempt, rule["kind"]) >= probability:
                continue
            self._trigger(rule, index, attempt, inline)

    def _trigger(self, rule, index, attempt, inline):
        kind = rule["kind"]
        if kind == "fail":
            raise InjectedFault(
                f"{rule['message']} (job {index}, attempt {attempt})")
        if kind == "crash":
            if inline:
                raise InjectedCrash(
                    f"injected worker crash (job {index}, attempt {attempt})")
            os._exit(CRASH_EXIT_CODE)
        if kind == "hang":
            if inline:
                raise InjectedHang(
                    f"injected worker hang (job {index}, attempt {attempt})")
            # A real wedge: sleep far past any per-job timeout. If the
            # parent's deadline fires first the process is terminated;
            # otherwise the job continues normally afterwards (a
            # merely-slow worker).
            time.sleep(rule["seconds"])

    def __repr__(self):
        kinds = ", ".join(rule["kind"] for rule in self._rules) or "empty"
        return f"FaultPlan(seed={self.seed}, rules=[{kinds}])"


def corrupt_file(path, mode="truncate", seed=0):
    """Deterministically corrupt ``path`` in place (cache-rot injector).

    Modes: ``truncate`` keeps the first half of the file (torn write),
    ``garbage`` prefixes an unterminated JSON object (bad serializer),
    ``binary`` replaces the content with seeded pseudo-random bytes
    (disk corruption). Returns the path for chaining.
    """
    path = pathlib.Path(path)
    data = path.read_bytes()
    if mode == "truncate":
        path.write_bytes(data[: len(data) // 2])
    elif mode == "garbage":
        path.write_bytes(b'{"unterminated": ' + data[:32])
    elif mode == "binary":
        out = bytearray()
        counter = 0
        while len(out) < max(64, len(data)):
            out += hashlib.sha256(f"{seed}:{counter}".encode()).digest()
            counter += 1
        path.write_bytes(bytes(out[: max(64, len(data))]))
    else:
        raise ValueError(f"unknown corruption mode {mode!r}; "
                         f"expected truncate, garbage, or binary")
    return path


def perturb_cycles(path, seed=0, section="cycles"):
    """Deterministically corrupt one simulated cycle count in ``path``.

    ``path`` is a JSON document with a ``section`` object mapping
    labels to integer cycle counts (``BENCH_engine.json``'s shape). One
    label — chosen by a seeded hash — gets its count nudged by a
    seeded, non-zero delta in ``[-8, +8]``, modelling a silent
    timing-model drift that the regression sentry (``repro check``)
    must catch via its bit-identical-cycles assertion. Returns
    ``(label, old, new)``; same seed, same file → same corruption.
    """
    path = pathlib.Path(path)
    data = json.loads(path.read_text())
    counts = data[section]
    if not isinstance(counts, dict) or not counts:
        raise ValueError(f"{path} has no {section!r} object to corrupt")
    labels = sorted(counts)
    label = labels[int(_chance(seed, 0, 0, "perturb-label") * len(labels))]
    delta = 1 + int(_chance(seed, 0, 0, "perturb-delta") * 8)
    if _chance(seed, 0, 0, "perturb-sign") < 0.5:
        delta = -delta
    old = counts[label]
    counts[label] = old + delta
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    return label, old, counts[label]
