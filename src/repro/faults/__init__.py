"""Deterministic fault injection for the experiment harness.

The evaluation is thousands of independent ``(workload, config)``
simulations fanned out over worker processes, and every infrastructure
failure mode — a worker that dies, a worker that wedges, a cache file
that rots on disk, a transient exception — must be *injectable* so the
recovery paths in :mod:`repro.harness.parallel` and
:mod:`repro.harness.diskcache` can be proven by tests instead of
trusted. This package provides those injectors.

Everything here is deterministic and seedable: a :class:`FaultPlan`
decides purely from ``(seed, job index, attempt)`` whether a fault
fires, so a failing fault-matrix test replays bit-identically. Plans
are plain picklable data and travel to worker processes inside the job
tuple; no global state, no environment variables.

See ``docs/ROBUSTNESS.md`` for the failure-mode catalogue and
``tests/test_faults.py`` for the matrix that exercises every recovery
path.
"""

from repro.faults.inject import (
    FaultPlan,
    InjectedCrash,
    InjectedFault,
    InjectedHang,
    corrupt_file,
    perturb_cycles,
)

__all__ = [
    "FaultPlan",
    "InjectedCrash",
    "InjectedFault",
    "InjectedHang",
    "corrupt_file",
    "perturb_cycles",
]
