"""Deterministic fault injection for the experiment harness.

The evaluation is thousands of independent ``(workload, config)``
simulations fanned out over worker processes, and every infrastructure
failure mode — a worker that dies, a worker that wedges, a cache file
that rots on disk, a transient exception — must be *injectable* so the
recovery paths in :mod:`repro.harness.parallel` and
:mod:`repro.harness.diskcache` can be proven by tests instead of
trusted. This package provides those injectors.

Everything here is deterministic and seedable: a :class:`FaultPlan`
decides purely from ``(seed, job index, attempt)`` whether a fault
fires, so a failing fault-matrix test replays bit-identically. Plans
are plain picklable data and travel to worker processes inside the job
tuple; no global state, no environment variables.

:mod:`repro.faults.service` extends the same discipline across the
client/server boundary of the job service (:mod:`repro.service`):
slow clients, mid-stream disconnects, queue-overflow bursts, and
worker-pool loss between accept and execute, all seedable the same way.

See ``docs/ROBUSTNESS.md`` for the failure-mode catalogue,
``docs/SERVICE.md`` for the service failure modes, and
``tests/test_faults.py`` / ``tests/test_service.py`` for the matrices
that exercise every recovery path.
"""

from repro.faults.inject import (
    FaultPlan,
    InjectedCrash,
    InjectedFault,
    InjectedHang,
    corrupt_file,
    perturb_cycles,
)
from repro.faults.service import ServiceFaultPlan

__all__ = [
    "FaultPlan",
    "InjectedCrash",
    "InjectedFault",
    "InjectedHang",
    "ServiceFaultPlan",
    "corrupt_file",
    "perturb_cycles",
]
