"""Program image produced by the assembler or compiler.

Addressing model
----------------
* The program counter is an *instruction index* into the text segment;
  a fetch block is four consecutive, block-aligned indices.
* Data memory is *word addressed* (one 32-bit word per address). The
  cache's 32-byte lines therefore cover 8 consecutive word addresses.
* The data segment starts at :data:`DATA_BASE`; per-thread stacks are
  carved from the top of memory by startup code.
"""

from repro.isa.encoding import encode

#: First word address of the data segment.
DATA_BASE = 0


class Program:
    """An assembled program.

    Attributes
    ----------
    instructions:
        Decoded text segment, indexed by PC.
    data:
        Initial data-segment image (list of words starting at
        :data:`DATA_BASE`); may contain ints and floats.
    symbols:
        Label name to address map. Text labels map to instruction
        indices, data labels to word addresses.
    entry:
        Initial PC for every thread.
    """

    def __init__(self, instructions, data=None, symbols=None, entry=0):
        self.instructions = list(instructions)
        self.data = list(data or [])
        self.symbols = dict(symbols or {})
        self.entry = entry
        self._words = None

    @property
    def words(self):
        """Encoded 32-bit text segment (computed lazily, cached)."""
        if self._words is None:
            self._words = [encode(instr) for instr in self.instructions]
        return self._words

    def __len__(self):
        return len(self.instructions)

    def symbol(self, name):
        """Address of a label, raising ``KeyError`` with context if absent."""
        try:
            return self.symbols[name]
        except KeyError:
            raise KeyError(f"no symbol {name!r}; known: {sorted(self.symbols)}") from None
