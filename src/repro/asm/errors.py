"""Assembler error type."""


class AsmError(Exception):
    """Raised for any assembly-time problem, with source location."""

    def __init__(self, message, line=None):
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)
