"""Disassembler: encoded words or instructions back to assembly text."""

from repro.isa.encoding import decode
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Format


def instruction_text(instr, addr=None):
    """Assembly text for one instruction.

    When ``addr`` is given, PC-relative branch offsets are rendered as
    absolute targets (which is also what the assembler accepts), so the
    output re-assembles to the same program.
    """
    if addr is not None and instr.info.fmt is Format.B:
        target = addr + 1 + instr.imm
        return (f"{instr.info.mnemonic} r{instr.rs1}, r{instr.rs2}, "
                f"{target}")
    return instr.text()


def disassemble(program_or_words):
    """Return assembly text, one instruction per line with addresses.

    Accepts a :class:`~repro.asm.program.Program`, a list of encoded
    32-bit words, or a list of :class:`Instruction` objects.
    """
    items = getattr(program_or_words, "instructions", program_or_words)
    lines = []
    for addr, item in enumerate(items):
        instr = item if isinstance(item, Instruction) else decode(item)
        lines.append(f"{addr:6d}: {instruction_text(instr, addr)}")
    return "\n".join(lines)
