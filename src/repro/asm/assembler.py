"""Two-pass assembler for the SDSP-like ISA.

Pass one parses statements, expands pseudo-instructions to a known
number of real instructions, and lays out the data segment; a layout
step then assigns text addresses (optionally padding so control-transfer
targets start on fetch-block boundaries — the alignment optimization the
paper lists under "scope for improvement"); pass two materializes
instructions with all label references resolved.
"""

import re

from repro.asm.errors import AsmError
from repro.asm.program import DATA_BASE, Program
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Format, Op
from repro.isa.opcodes import MNEMONIC_INFO

REG_ALIASES = {"zero": 0, "ra": 1, "sp": 2, "gp": 3}

_LABEL_RE = re.compile(r"^([A-Za-z_.$][\w.$]*):")
_MEM_RE = re.compile(r"^(-?\w+)\((\w+)\)$")
_INT_RE = re.compile(r"^-?(0x[0-9a-fA-F]+|\d+)$")

IMM12_MIN, IMM12_MAX = -2048, 2047


def _parse_reg(token, line):
    token = token.lower()
    if token in REG_ALIASES:
        return REG_ALIASES[token]
    if token.startswith("r") and token[1:].isdigit():
        reg = int(token[1:])
        if reg < 128:
            return reg
    raise AsmError(f"bad register {token!r}", line)


def _parse_int(token, line):
    if _INT_RE.match(token):
        return int(token, 0)
    raise AsmError(f"bad integer literal {token!r}", line)


def _split_hi_lo(value):
    """Split a constant into (hi, lo) for a ``lui``/``addi`` pair."""
    hi = (value + 2048) >> 12
    lo = value - (hi << 12)
    return hi, lo


#: Mnemonics whose label operands are control-transfer targets.
_CT_MNEMONICS = {"beq", "bne", "blt", "bge", "bgt", "ble", "beqz", "bnez",
                 "j", "jal", "b", "call"}


def _is_barrier(stmt):
    """True when control never falls through past ``stmt``.

    Padding is only inserted in such dead positions, so alignment nops
    are never executed.
    """
    if stmt is None:
        return False
    if stmt.mnemonic in ("j", "b", "halt", "ret"):
        return True
    if stmt.mnemonic == "jalr":
        return stmt.operands and stmt.operands[0].lower() in ("r0", "zero")
    return False

#: Fetch-block size in instructions (targets align to this).
_BLOCK = 4


class _Statement:
    """One parsed source statement destined for the text segment."""

    __slots__ = ("mnemonic", "operands", "line", "addr", "size",
                 "pad_before")

    def __init__(self, mnemonic, operands, line):
        self.mnemonic = mnemonic
        self.operands = operands
        self.line = line
        self.addr = None
        self.size = 1
        self.pad_before = 0


class Assembler:
    """Stateful two-pass assembler; use :func:`assemble` for the one-shot API."""

    def __init__(self):
        self.symbols = {}
        self.statements = []
        self.data = []
        self.entry_label = None
        self._text_labels = []  # (label, statement index) pending layout

    # ------------------------------------------------------------- pass 1

    def parse(self, source):
        """Parse source text, lay out the data segment, collect labels."""
        segment = "text"
        for lineno, raw in enumerate(source.splitlines(), start=1):
            line = raw.split("#")[0].split(";")[0].strip()
            while line:
                match = _LABEL_RE.match(line)
                if not match:
                    break
                label = match.group(1)
                if label in self.symbols:
                    raise AsmError(f"duplicate label {label!r}", lineno)
                if segment == "text":
                    self.symbols[label] = None  # resolved during layout
                    self._text_labels.append((label, len(self.statements)))
                else:
                    self.symbols[label] = DATA_BASE + len(self.data)
                line = line[match.end():].strip()
            if not line:
                continue
            if line.startswith("."):
                segment = self._directive(line, segment, lineno)
                continue
            if segment != "text":
                raise AsmError("instruction outside .text segment", lineno)
            self.statements.append(self._parse_instruction(line, lineno))

    def layout(self, align_targets=False):
        """Assign text addresses (and optional target-alignment padding).

        With ``align_targets`` every label that is the operand of a
        control transfer is padded (with nops) to the start of a fetch
        block, so a taken branch never wastes fetch slots on the
        instructions preceding its target in the block.
        """
        targets = set()
        if align_targets:
            for stmt in self.statements:
                if stmt.mnemonic in _CT_MNEMONICS:
                    for operand in stmt.operands:
                        if not _INT_RE.match(operand):
                            targets.add(operand)
        labels_at = {}
        for label, index in self._text_labels:
            labels_at.setdefault(index, []).append(label)
        addr = 0
        previous = None
        for index, stmt in enumerate(self.statements):
            here = labels_at.get(index, [])
            if (align_targets and addr % _BLOCK
                    and any(label in targets for label in here)
                    and _is_barrier(previous)):
                stmt.pad_before = _BLOCK - addr % _BLOCK
                addr += stmt.pad_before
            stmt.addr = addr
            for label in here:
                self.symbols[label] = addr
            addr += stmt.size
            previous = stmt
        # Labels at the very end of the text segment.
        for label in labels_at.get(len(self.statements), []):
            self.symbols[label] = addr

    def _directive(self, line, segment, lineno):
        parts = line.split(None, 1)
        name = parts[0]
        rest = parts[1] if len(parts) > 1 else ""
        if name == ".text":
            return "text"
        if name == ".data":
            return "data"
        if name == ".entry":
            self.entry_label = rest.strip()
            return segment
        if segment != "data":
            raise AsmError(f"directive {name} only valid in .data", lineno)
        if name == ".word":
            for token in _split_operands(rest):
                self.data.append(_parse_int(token, lineno))
        elif name == ".float":
            for token in _split_operands(rest):
                try:
                    self.data.append(float(token))
                except ValueError:
                    raise AsmError(f"bad float literal {token!r}", lineno) from None
        elif name == ".space":
            count = _parse_int(rest.strip(), lineno)
            if count < 0:
                raise AsmError(f".space count must be >= 0, got {count}", lineno)
            self.data.extend([0] * count)
        elif name == ".align":
            unit = _parse_int(rest.strip(), lineno)
            if unit < 1:
                raise AsmError(f".align unit must be >= 1, got {unit}", lineno)
            while len(self.data) % unit:
                self.data.append(0)
        else:
            raise AsmError(f"unknown directive {name}", lineno)
        return segment

    def _parse_instruction(self, line, lineno):
        parts = line.split(None, 1)
        mnemonic = parts[0].lower()
        operands = _split_operands(parts[1]) if len(parts) > 1 else []
        stmt = _Statement(mnemonic, operands, lineno)
        stmt.size = self._pseudo_size(stmt)
        return stmt

    def _pseudo_size(self, stmt):
        """Number of real instructions this statement expands to."""
        if stmt.mnemonic == "la":
            return 2
        if stmt.mnemonic == "li":
            if len(stmt.operands) != 2:
                raise AsmError("li needs 2 operands", stmt.line)
            token = stmt.operands[1]
            if _INT_RE.match(token):
                value = int(token, 0)
                if IMM12_MIN <= value <= IMM12_MAX:
                    return 1
                __, lo = _split_hi_lo(value)
                return 1 if lo == 0 else 2
            return 2  # label: always lui+addi
        return 1

    # ------------------------------------------------------------- pass 2

    def emit(self):
        """Materialize the instruction list (pass two)."""
        instructions = []
        for stmt in self.statements:
            for _ in range(stmt.pad_before):
                instructions.append(Instruction(Op.ADD, 0, 0, 0))
            emitted = self._emit_statement(stmt)
            if len(emitted) != stmt.size:
                raise AsmError(
                    f"internal: {stmt.mnemonic} expanded to {len(emitted)} "
                    f"instructions, expected {stmt.size}", stmt.line)
            instructions.extend(emitted)
        entry = 0
        if self.entry_label:
            if self.entry_label not in self.symbols:
                raise AsmError(f"unknown .entry label {self.entry_label!r}")
            entry = self.symbols[self.entry_label]
        return Program(instructions, data=self.data, symbols=self.symbols,
                       entry=entry)

    def _resolve(self, token, line):
        """An immediate operand: integer literal or label address."""
        if _INT_RE.match(token):
            return int(token, 0)
        value = self.symbols.get(token)
        if value is None:
            raise AsmError(f"unknown symbol {token!r}", line)
        return value

    def _emit_li(self, rd, value, line):
        if IMM12_MIN <= value <= IMM12_MAX:
            return [Instruction(Op.ADDI, rd=rd, rs1=0, imm=value)]
        hi, lo = _split_hi_lo(value)
        if not IMM12_MIN <= hi <= IMM12_MAX:
            raise AsmError(f"constant {value} out of li range", line)
        out = [Instruction(Op.LUI, rd=rd, rs1=0, imm=hi)]
        if lo:
            out.append(Instruction(Op.ADDI, rd=rd, rs1=rd, imm=lo))
        return out

    def _emit_statement(self, stmt):
        m, ops, line = stmt.mnemonic, stmt.operands, stmt.line
        handler = _PSEUDOS.get(m)
        if handler:
            return handler(self, ops, line, stmt)
        info = MNEMONIC_INFO.get(m)
        if info is None:
            raise AsmError(f"unknown mnemonic {m!r}", line)
        return [self._emit_real(info, ops, line, stmt)]

    def _emit_real(self, info, ops, line, stmt):
        fmt = info.fmt

        def need(count):
            if len(ops) != count:
                raise AsmError(f"{info.mnemonic} needs {count} operands, got {len(ops)}", line)

        if fmt is Format.R:
            if info.op in (Op.CVTIF, Op.CVTFI, Op.FNEG):
                need(2)
                return Instruction(info.op, rd=_parse_reg(ops[0], line),
                                   rs1=_parse_reg(ops[1], line))
            need(3)
            return Instruction(info.op, rd=_parse_reg(ops[0], line),
                               rs1=_parse_reg(ops[1], line),
                               rs2=_parse_reg(ops[2], line))
        if fmt is Format.I:
            need(3)
            return Instruction(info.op, rd=_parse_reg(ops[0], line),
                               rs1=_parse_reg(ops[1], line),
                               imm=_resolve_imm12(self, ops[2], line))
        if fmt in (Format.L, Format.S):
            need(2)
            match = _MEM_RE.match(ops[1])
            if not match:
                raise AsmError(f"bad memory operand {ops[1]!r}", line)
            offset = _parse_int(match.group(1), line)
            base = _parse_reg(match.group(2), line)
            reg = _parse_reg(ops[0], line)
            if fmt is Format.L:
                return Instruction(info.op, rd=reg, rs1=base, imm=offset)
            return Instruction(info.op, rs2=reg, rs1=base, imm=offset)
        if fmt is Format.B:
            need(3)
            target = self._resolve(ops[2], line)
            offset = target - (stmt.addr + 1)
            if not IMM12_MIN <= offset <= IMM12_MAX:
                raise AsmError(f"branch target out of range (offset {offset})", line)
            return Instruction(info.op, rs1=_parse_reg(ops[0], line),
                               rs2=_parse_reg(ops[1], line), imm=offset)
        if fmt is Format.J:
            if info.op is Op.JAL:
                need(2)
                return Instruction(info.op, rd=_parse_reg(ops[0], line),
                                   imm=self._resolve(ops[1], line))
            need(1)
            return Instruction(info.op, imm=self._resolve(ops[0], line))
        if fmt is Format.JR:
            need(2)
            return Instruction(info.op, rd=_parse_reg(ops[0], line),
                               rs1=_parse_reg(ops[1], line))
        if fmt is Format.X:
            need(1)
            return Instruction(info.op, rd=_parse_reg(ops[0], line))
        need(0)
        return Instruction(info.op)


def _resolve_imm12(assembler, token, line):
    value = assembler._resolve(token, line)
    if not IMM12_MIN <= value <= IMM12_MAX:
        raise AsmError(f"immediate {value} out of 12-bit range", line)
    return value


def _split_operands(text):
    return [part.strip() for part in text.split(",") if part.strip()]


# --------------------------------------------------------------- pseudos

def _pseudo_nop(asm, ops, line, stmt):
    return [Instruction(Op.ADD, 0, 0, 0)]


def _pseudo_mov(asm, ops, line, stmt):
    return [Instruction(Op.ADDI, rd=_parse_reg(ops[0], line),
                        rs1=_parse_reg(ops[1], line), imm=0)]


def _pseudo_fmov(asm, ops, line, stmt):
    return [Instruction(Op.FADD, rd=_parse_reg(ops[0], line),
                        rs1=_parse_reg(ops[1], line), rs2=0)]


def _pseudo_not(asm, ops, line, stmt):
    return [Instruction(Op.XORI, rd=_parse_reg(ops[0], line),
                        rs1=_parse_reg(ops[1], line), imm=-1)]


def _pseudo_neg(asm, ops, line, stmt):
    return [Instruction(Op.SUB, rd=_parse_reg(ops[0], line),
                        rs1=0, rs2=_parse_reg(ops[1], line))]


def _pseudo_li(asm, ops, line, stmt):
    return asm._emit_li(_parse_reg(ops[0], line), asm._resolve(ops[1], line), line)


def _pseudo_la(asm, ops, line, stmt):
    rd = _parse_reg(ops[0], line)
    value = asm._resolve(ops[1], line)
    hi, lo = _split_hi_lo(value)
    return [Instruction(Op.LUI, rd=rd, rs1=0, imm=hi),
            Instruction(Op.ADDI, rd=rd, rs1=rd, imm=lo)]


def _pseudo_b(asm, ops, line, stmt):
    return [Instruction(Op.J, imm=asm._resolve(ops[0], line))]


def _swapped_branch(op):
    def emit(asm, ops, line, stmt):
        target = asm._resolve(ops[2], line)
        offset = target - (stmt.addr + 1)
        return [Instruction(op, rs1=_parse_reg(ops[1], line),
                            rs2=_parse_reg(ops[0], line), imm=offset)]
    return emit


def _zero_branch(op):
    def emit(asm, ops, line, stmt):
        target = asm._resolve(ops[1], line)
        offset = target - (stmt.addr + 1)
        return [Instruction(op, rs1=_parse_reg(ops[0], line), rs2=0, imm=offset)]
    return emit


def _pseudo_call(asm, ops, line, stmt):
    return [Instruction(Op.JAL, rd=1, imm=asm._resolve(ops[0], line))]


def _pseudo_ret(asm, ops, line, stmt):
    return [Instruction(Op.JALR, rd=0, rs1=1)]


_PSEUDOS = {
    "nop": _pseudo_nop,
    "mov": _pseudo_mov,
    "fmov": _pseudo_fmov,
    "not": _pseudo_not,
    "neg": _pseudo_neg,
    "li": _pseudo_li,
    "la": _pseudo_la,
    "b": _pseudo_b,
    "bgt": _swapped_branch(Op.BLT),
    "ble": _swapped_branch(Op.BGE),
    "beqz": _zero_branch(Op.BEQ),
    "bnez": _zero_branch(Op.BNE),
    "call": _pseudo_call,
    "ret": _pseudo_ret,
}


def assemble(source, align_targets=False):
    """Assemble source text into a :class:`~repro.asm.program.Program`.

    ``align_targets`` enables the paper's code-alignment optimization:
    control-transfer targets are padded to fetch-block boundaries so
    every instruction in a fetched block is valid.
    """
    assembler = Assembler()
    assembler.parse(source)
    assembler.layout(align_targets=align_targets)
    return assembler.emit()
