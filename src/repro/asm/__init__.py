"""Two-pass assembler, disassembler, and program image.

The assembler turns SDSP assembly text into a
:class:`~repro.asm.program.Program`: an encoded text segment plus the
initial data-segment image. Pseudo-instructions (``li``, ``la``, ``mov``,
``not``, ``b``, ``bgt``, ``ble``, ``call``, ``ret``, ``nop``, ``fmov``)
expand to real instructions during pass one so that label addresses are
exact.
"""

from repro.asm.assembler import assemble
from repro.asm.disassembler import disassemble
from repro.asm.errors import AsmError
from repro.asm.program import DATA_BASE, Program

__all__ = ["AsmError", "DATA_BASE", "Program", "assemble", "disassemble"]
