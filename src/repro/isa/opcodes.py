"""Opcode table.

Each opcode carries the metadata the rest of the system needs:

* its assembly mnemonic and encoding :class:`Format`;
* the :class:`FuClass` (functional-unit class) it executes on;
* whether decoding it triggers a context switch under the
  Conditional-Switch fetch policy (the paper lists integer divide,
  FP multiply/divide, and synchronization primitives);
* whether it is a control transfer / memory operation.
"""

import enum


class Format(enum.Enum):
    """Instruction encoding/operand formats.

    ``R``  op rd, rs1, rs2          three-register ALU/FP
    ``I``  op rd, rs1, imm          register-immediate
    ``L``  op rd, imm(rs1)          load
    ``S``  op rs2, imm(rs1)         store
    ``B``  op rs1, rs2, offset      compare-and-branch (PC-relative)
    ``J``  op target / op rd,target jump / jump-and-link (absolute)
    ``JR`` op rd, rs1               jump register
    ``X``  op rd                    destination only (mftid/mfnth)
    ``N``  op                       no operands (halt/nop)
    """

    R = "R"
    I = "I"  # noqa: E741 - conventional format name
    L = "L"
    S = "S"
    B = "B"
    J = "J"
    JR = "JR"
    X = "X"
    N = "N"


class FuClass(enum.Enum):
    """Functional-unit classes, matching Table 1 of the paper."""

    IALU = "int_alu"
    IMUL = "int_mul"
    IDIV = "int_div"
    LOAD = "load"
    STORE = "store"
    CT = "control_transfer"
    FPADD = "fp_add"
    FPMUL = "fp_mul"
    FPDIV = "fp_div"


class Op(enum.IntEnum):
    """All opcodes, with stable encoding values."""

    # Integer ALU
    ADD = 0
    SUB = 1
    AND = 2
    OR = 3
    XOR = 4
    SLL = 5
    SRL = 6
    SRA = 7
    SLT = 8
    SLTU = 9
    ADDI = 10
    ANDI = 11
    ORI = 12
    XORI = 13
    SLTI = 14
    SLLI = 15
    SRLI = 16
    SRAI = 17
    LUI = 18
    MFTID = 19
    MFNTH = 20
    # Integer multiply / divide
    MUL = 21
    DIV = 22
    REM = 23
    # Memory
    LW = 24
    SW = 25
    FLW = 26
    FSW = 27
    TAS = 28  # atomic test-and-set: the synchronization primitive
    # Control transfer
    BEQ = 29
    BNE = 30
    BLT = 31
    BGE = 32
    J = 33
    JAL = 34
    JALR = 35
    HALT = 36
    # Floating point
    FADD = 37
    FSUB = 38
    FMUL = 39
    FDIV = 40
    FEQ = 41
    FLT = 42
    FLE = 43
    CVTIF = 44  # int -> float
    CVTFI = 45  # float -> int (truncate)
    FNEG = 46


#: FuClass members in stable order; ``OpInfo.fu_index`` indexes this.
FU_CLASSES = list(FuClass)
_FU_INDEX = {cls: i for i, cls in enumerate(FU_CLASSES)}


class OpInfo:
    """Static metadata for one opcode."""

    __slots__ = ("op", "mnemonic", "fmt", "fu", "fu_index", "is_branch",
                 "is_jump", "is_load", "is_store", "switch_trigger",
                 "is_sync", "is_control", "is_mem", "ctl_kind")

    def __init__(self, op, mnemonic, fmt, fu, *, is_branch=False,
                 is_jump=False, is_load=False, is_store=False,
                 switch_trigger=False, is_sync=False):
        self.op = op
        self.mnemonic = mnemonic
        self.fmt = fmt
        self.fu = fu
        self.fu_index = _FU_INDEX[fu]
        self.is_branch = is_branch
        self.is_jump = is_jump
        self.is_load = is_load
        self.is_store = is_store
        self.switch_trigger = switch_trigger
        self.is_sync = is_sync
        # Derived flags, precomputed: OpInfo instances are per-opcode
        # singletons read millions of times on the simulator hot path.
        #: True for any control-transfer operation.
        self.is_control = is_branch or is_jump or op is Op.HALT
        #: True for loads and stores (including ``tas``).
        self.is_mem = is_load or is_store
        #: Fetch-side dispatch: 0 plain, 1 branch, 2 direct jump (j/jal),
        #: 3 jalr, 4 halt. One integer compare replaces a chain of
        #: flag/op tests in the fetch unit's inner loop.
        if is_branch:
            self.ctl_kind = 1
        elif op in (Op.J, Op.JAL):
            self.ctl_kind = 2
        elif op is Op.JALR:
            self.ctl_kind = 3
        elif op is Op.HALT:
            self.ctl_kind = 4
        else:
            self.ctl_kind = 0

    def __repr__(self):
        return f"OpInfo({self.mnemonic})"


def _build_table():
    table = {}

    def add(op, fmt, fu, **flags):
        table[op] = OpInfo(op, op.name.lower(), fmt, fu, **flags)

    for op in (Op.ADD, Op.SUB, Op.AND, Op.OR, Op.XOR, Op.SLL, Op.SRL,
               Op.SRA, Op.SLT, Op.SLTU):
        add(op, Format.R, FuClass.IALU)
    for op in (Op.ADDI, Op.ANDI, Op.ORI, Op.XORI, Op.SLTI, Op.SLLI,
               Op.SRLI, Op.SRAI):
        add(op, Format.I, FuClass.IALU)
    add(Op.LUI, Format.I, FuClass.IALU)
    add(Op.MFTID, Format.X, FuClass.IALU)
    add(Op.MFNTH, Format.X, FuClass.IALU)

    add(Op.MUL, Format.R, FuClass.IMUL)
    add(Op.DIV, Format.R, FuClass.IDIV, switch_trigger=True)
    add(Op.REM, Format.R, FuClass.IDIV, switch_trigger=True)

    add(Op.LW, Format.L, FuClass.LOAD, is_load=True)
    add(Op.FLW, Format.L, FuClass.LOAD, is_load=True)
    add(Op.SW, Format.S, FuClass.STORE, is_store=True)
    add(Op.FSW, Format.S, FuClass.STORE, is_store=True)
    add(Op.TAS, Format.L, FuClass.LOAD, is_load=True, is_store=True,
        switch_trigger=True, is_sync=True)

    for op in (Op.BEQ, Op.BNE, Op.BLT, Op.BGE):
        add(op, Format.B, FuClass.CT, is_branch=True)
    add(Op.J, Format.J, FuClass.CT, is_jump=True)
    add(Op.JAL, Format.J, FuClass.CT, is_jump=True)
    add(Op.JALR, Format.JR, FuClass.CT, is_jump=True)
    add(Op.HALT, Format.N, FuClass.CT)

    add(Op.FADD, Format.R, FuClass.FPADD)
    add(Op.FSUB, Format.R, FuClass.FPADD)
    add(Op.FMUL, Format.R, FuClass.FPMUL, switch_trigger=True)
    add(Op.FDIV, Format.R, FuClass.FPDIV, switch_trigger=True)
    add(Op.FEQ, Format.R, FuClass.FPADD)
    add(Op.FLT, Format.R, FuClass.FPADD)
    add(Op.FLE, Format.R, FuClass.FPADD)
    add(Op.CVTIF, Format.R, FuClass.FPADD)
    add(Op.CVTFI, Format.R, FuClass.FPADD)
    add(Op.FNEG, Format.R, FuClass.FPADD)
    return table


#: Mapping from :class:`Op` to its :class:`OpInfo`.
OPCODE_INFO = _build_table()

#: Mapping from mnemonic string to :class:`OpInfo`.
MNEMONIC_INFO = {info.mnemonic: info for info in OPCODE_INFO.values()}
