"""Fixed-width 32-bit binary encoding.

Layout (bit 31 is the MSB)::

    [31:26] opcode        (6 bits)
    [25:19] field a       (7 bits)  rd, or rs1 for branches, or rs2 for stores
    [18:12] field b       (7 bits)  rs1
    [11:0]  field c       (12 bits) rs2 (low 7 bits) or signed imm12

J-format instructions instead use ``[18:0]`` as a signed 19-bit absolute
instruction index. The 12-bit immediate limits constants to ±2048;
larger values are materialized with ``lui``/``ori`` pairs (the assembler
provides the ``li``/``la`` pseudo-instructions).
"""

from repro.isa.instruction import Instruction
from repro.isa.opcodes import Format, Op, OPCODE_INFO

IMM12_MIN, IMM12_MAX = -(1 << 11), (1 << 11) - 1
IMM19_MIN, IMM19_MAX = -(1 << 18), (1 << 18) - 1


class EncodingError(ValueError):
    """Raised when an instruction cannot be represented in 32 bits."""


def _check_reg(name, value):
    if not 0 <= value < 128:
        raise EncodingError(f"{name}={value} out of 7-bit register range")
    return value


def _check_imm(value, lo, hi):
    if not lo <= value <= hi:
        raise EncodingError(f"immediate {value} outside [{lo}, {hi}]")
    return value


def encode(instr):
    """Encode an :class:`~repro.isa.instruction.Instruction` to a 32-bit int."""
    info = instr.info
    word = int(instr.op) << 26
    fmt = info.fmt
    if fmt is Format.J:
        word |= _check_reg("rd", instr.rd) << 19
        imm = _check_imm(instr.imm, IMM19_MIN, IMM19_MAX)
        word |= imm & 0x7FFFF
        return word
    if fmt is Format.R:
        word |= _check_reg("rd", instr.rd) << 19
        word |= _check_reg("rs1", instr.rs1) << 12
        word |= _check_reg("rs2", instr.rs2)
        return word
    if fmt in (Format.I, Format.L):
        word |= _check_reg("rd", instr.rd) << 19
        word |= _check_reg("rs1", instr.rs1) << 12
        word |= _check_imm(instr.imm, IMM12_MIN, IMM12_MAX) & 0xFFF
        return word
    if fmt is Format.S:
        word |= _check_reg("rs2", instr.rs2) << 19
        word |= _check_reg("rs1", instr.rs1) << 12
        word |= _check_imm(instr.imm, IMM12_MIN, IMM12_MAX) & 0xFFF
        return word
    if fmt is Format.B:
        word |= _check_reg("rs1", instr.rs1) << 19
        word |= _check_reg("rs2", instr.rs2) << 12
        word |= _check_imm(instr.imm, IMM12_MIN, IMM12_MAX) & 0xFFF
        return word
    if fmt is Format.JR:
        word |= _check_reg("rd", instr.rd) << 19
        word |= _check_reg("rs1", instr.rs1) << 12
        return word
    if fmt is Format.X:
        word |= _check_reg("rd", instr.rd) << 19
        return word
    return word  # Format.N


def _sext(value, bits):
    sign = 1 << (bits - 1)
    return (value & (sign - 1)) - (value & sign)


def decode(word):
    """Decode a 32-bit int back to an :class:`Instruction`."""
    opnum = (word >> 26) & 0x3F
    try:
        op = Op(opnum)
    except ValueError:
        raise EncodingError(f"unknown opcode {opnum} in word {word:#010x}") from None
    info = OPCODE_INFO[op]
    a = (word >> 19) & 0x7F
    b = (word >> 12) & 0x7F
    c = word & 0xFFF
    fmt = info.fmt
    if fmt is Format.J:
        return Instruction(op, rd=a, imm=_sext(word & 0x7FFFF, 19))
    if fmt is Format.R:
        return Instruction(op, rd=a, rs1=b, rs2=c & 0x7F)
    if fmt in (Format.I, Format.L):
        return Instruction(op, rd=a, rs1=b, imm=_sext(c, 12))
    if fmt is Format.S:
        return Instruction(op, rs2=a, rs1=b, imm=_sext(c, 12))
    if fmt is Format.B:
        return Instruction(op, rs1=a, rs2=b, imm=_sext(c, 12))
    if fmt is Format.JR:
        return Instruction(op, rd=a, rs1=b)
    if fmt is Format.X:
        return Instruction(op, rd=a)
    return Instruction(op)
