"""SDSP-like instruction-set architecture.

This package defines the RISC instruction set used throughout the
reproduction: the architectural register file model (128 physical
registers statically partitioned among threads), the opcode table with
per-opcode metadata (format, functional-unit class, context-switch
trigger flags), the in-memory :class:`~repro.isa.instruction.Instruction`
representation, and a fixed-width 32-bit binary encoding.
"""

from repro.isa.instruction import Instruction
from repro.isa.opcodes import Format, FuClass, Op, OPCODE_INFO, OpInfo
from repro.isa.registers import (
    NUM_PHYSICAL_REGS,
    REG_GP,
    REG_RA,
    REG_SP,
    REG_ZERO,
    RegisterFile,
    regs_per_thread,
)
from repro.isa.encoding import decode, encode

__all__ = [
    "Format",
    "FuClass",
    "Instruction",
    "NUM_PHYSICAL_REGS",
    "Op",
    "OPCODE_INFO",
    "OpInfo",
    "REG_GP",
    "REG_RA",
    "REG_SP",
    "REG_ZERO",
    "RegisterFile",
    "decode",
    "encode",
    "regs_per_thread",
]
