"""In-memory instruction representation.

An :class:`Instruction` is the decoded form shared by the assembler,
both simulators, and the disassembler. Operand fields that a format does
not use are zero.
"""

from repro.isa.opcodes import Format, Op, OPCODE_INFO

_UNARY_R = {Op.CVTIF, Op.CVTFI, Op.FNEG}


class Instruction:
    """One decoded instruction.

    Attributes
    ----------
    op:
        The :class:`~repro.isa.opcodes.Op`.
    rd, rs1, rs2:
        Architectural (thread-relative) register numbers.
    imm:
        Signed immediate. For branches it is the offset, in instructions,
        relative to the *next* sequential instruction; for jumps it is an
        absolute instruction index.
    """

    __slots__ = ("op", "rd", "rs1", "rs2", "imm", "info",
                 "_sources", "_dest", "_exec", "_text")

    def __init__(self, op, rd=0, rs1=0, rs2=0, imm=0):
        self.op = op
        self.rd = rd
        self.rs1 = rs1
        self.rs2 = rs2
        self.imm = imm
        self.info = OPCODE_INFO[op]
        self._sources = None
        self._dest = False  # sentinel: not yet computed (None is valid)
        self._exec = None  # lazily built by repro.isa.semantics.build_exec
        self._text = None

    def sources(self):
        """Architectural registers this instruction reads, in order.

        Cached: instructions are immutable and decoded repeatedly by
        the pipeline's front end.
        """
        if self._sources is not None:
            return self._sources
        self._sources = self._compute_sources()
        return self._sources

    def _compute_sources(self):
        fmt = self.info.fmt
        if fmt is Format.R:
            if self.op in _UNARY_R:
                return (self.rs1,)
            return (self.rs1, self.rs2)
        if fmt in (Format.I, Format.L):
            return (self.rs1,)
        if fmt is Format.S:
            return (self.rs1, self.rs2)
        if fmt is Format.B:
            return (self.rs1, self.rs2)
        if fmt is Format.JR:
            return (self.rs1,)
        return ()

    def dest(self):
        """Architectural register written, or ``None`` (cached)."""
        if self._dest is not False:
            return self._dest
        self._dest = self._compute_dest()
        return self._dest

    def _compute_dest(self):
        fmt = self.info.fmt
        if fmt in (Format.R, Format.I, Format.L, Format.X):
            return self.rd
        if fmt is Format.J and self.op is Op.JAL:
            return self.rd
        if fmt is Format.JR:
            return self.rd
        return None

    def __eq__(self, other):
        return (isinstance(other, Instruction)
                and self.op == other.op and self.rd == other.rd
                and self.rs1 == other.rs1 and self.rs2 == other.rs2
                and self.imm == other.imm)

    def __hash__(self):
        return hash((self.op, self.rd, self.rs1, self.rs2, self.imm))

    def __repr__(self):
        return f"Instruction({self.text()})"

    def text(self):
        """Assembly text for this instruction.

        Cached: instructions are immutable, and event emission formats
        the same instruction once per issue/decode.
        """
        if self._text is None:
            self._text = self._format_text()
        return self._text

    def _format_text(self):
        m = self.info.mnemonic
        fmt = self.info.fmt
        if fmt is Format.R:
            if self.op in _UNARY_R:
                return f"{m} r{self.rd}, r{self.rs1}"
            return f"{m} r{self.rd}, r{self.rs1}, r{self.rs2}"
        if fmt is Format.I:
            return f"{m} r{self.rd}, r{self.rs1}, {self.imm}"
        if fmt is Format.L:
            return f"{m} r{self.rd}, {self.imm}(r{self.rs1})"
        if fmt is Format.S:
            return f"{m} r{self.rs2}, {self.imm}(r{self.rs1})"
        if fmt is Format.B:
            return f"{m} r{self.rs1}, r{self.rs2}, {self.imm}"
        if fmt is Format.J:
            if self.op is Op.JAL:
                return f"{m} r{self.rd}, {self.imm}"
            return f"{m} {self.imm}"
        if fmt is Format.JR:
            return f"{m} r{self.rd}, r{self.rs1}"
        if fmt is Format.X:
            return f"{m} r{self.rd}"
        return m


def nop():
    """Canonical no-op (``add r0, r0, r0``)."""
    return Instruction(Op.ADD, 0, 0, 0)
