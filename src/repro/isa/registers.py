"""Architectural register model.

The SDSP register file has 128 physical registers shared by all threads.
Register allocation is static: the compiler produces code for a register
set of ``128 // nthreads`` registers, all threads execute the same
binary, and the hardware maps an architectural register number ``r`` of
thread ``t`` to physical register ``t * K + r``.

Register values are plain Python numbers. Integer registers notionally
hold 32-bit two's-complement values; floating-point values are stored
directly as Python floats (a documented simplification — the simulator
does not model IEEE-754 bit packing).
"""

NUM_PHYSICAL_REGS = 128

#: Software conventions (within each thread's private partition).
REG_ZERO = 0  #: hardwired zero
REG_RA = 1  #: link register for ``jal``/``jalr``
REG_SP = 2  #: stack pointer
REG_GP = 3  #: global/scratch pointer used by the runtime

INT_MIN = -(1 << 31)
INT_MASK = (1 << 32) - 1


def regs_per_thread(nthreads):
    """Number of architectural registers each thread receives.

    The paper distributes the 128 registers equally among threads; the
    modified compiler then targets that many registers.
    """
    if nthreads < 1:
        raise ValueError(f"nthreads must be >= 1, got {nthreads}")
    if nthreads > NUM_PHYSICAL_REGS:
        raise ValueError(f"cannot partition {NUM_PHYSICAL_REGS} registers among {nthreads} threads")
    return NUM_PHYSICAL_REGS // nthreads


def to_int32(value):
    """Wrap an integer to signed 32-bit two's-complement range."""
    value &= INT_MASK
    if value >= 1 << 31:
        value -= 1 << 32
    return value


class RegisterFile:
    """The shared physical register file with per-thread partitions.

    Parameters
    ----------
    nthreads:
        Number of resident threads. Determines the partition size
        ``K = 128 // nthreads``.
    """

    def __init__(self, nthreads):
        self.nthreads = nthreads
        self.k = regs_per_thread(nthreads)
        self._regs = [0] * NUM_PHYSICAL_REGS

    def physical(self, tid, reg):
        """Map ``(tid, architectural reg)`` to a physical register index."""
        if not 0 <= reg < self.k:
            raise IndexError(f"register r{reg} out of range for partition of {self.k}")
        if not 0 <= tid < self.nthreads:
            raise IndexError(f"thread {tid} out of range for {self.nthreads} threads")
        return tid * self.k + reg

    def read(self, tid, reg):
        """Read architectural register ``reg`` of thread ``tid``."""
        if 0 <= reg < self.k and 0 <= tid < self.nthreads:
            if reg == REG_ZERO:
                return 0
            return self._regs[tid * self.k + reg]
        return self._regs[self.physical(tid, reg)]  # raises IndexError

    def write(self, tid, reg, value):
        """Write architectural register ``reg`` of thread ``tid``.

        Writes to ``r0`` are discarded; integer values are wrapped to
        32 bits, floats are stored as-is.
        """
        if reg == REG_ZERO:
            return
        if 0 <= reg < self.k and 0 <= tid < self.nthreads:
            if isinstance(value, int):
                value = to_int32(value)
            self._regs[tid * self.k + reg] = value
            return
        self.physical(tid, reg)  # raises the canonical IndexError

    def snapshot(self, tid):
        """Return thread ``tid``'s architectural registers as a list."""
        base = tid * self.k
        regs = list(self._regs[base:base + self.k])
        regs[REG_ZERO] = 0
        return regs
