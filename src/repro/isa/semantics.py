"""Operation semantics shared by the functional and pipeline simulators.

Keeping the arithmetic in one place guarantees the two simulators can
only disagree about *timing*, never about *values* — the property-based
equivalence tests rely on this.

Integer results wrap to signed 32-bit. Floating-point values are Python
floats (no IEEE bit packing). Division by zero is defined, not trapped:
integer ``div``/``rem`` by zero yield 0 and the dividend respectively;
float division by zero yields ±inf/nan via Python semantics guarded to
0.0 to keep register contents finite.
"""

from repro.isa.opcodes import Op
from repro.isa.registers import to_int32


def _shift_amount(value):
    return value & 31


def _as_unsigned(value):
    return int(value) & 0xFFFFFFFF


def _int_div(a, b):
    if b == 0:
        return 0
    quotient = abs(a) // abs(b)
    if (a < 0) != (b < 0):
        quotient = -quotient
    return quotient


def _int_rem(a, b):
    if b == 0:
        return a
    return a - _int_div(a, b) * b


def _fdiv(a, b):
    if b == 0:
        return 0.0
    return a / b


#: op -> binary function over (rs1 value, rs2-or-immediate value).
_BINOPS = {
    Op.ADD: lambda a, b: to_int32(int(a) + int(b)),
    Op.ADDI: lambda a, b: to_int32(int(a) + int(b)),
    Op.SUB: lambda a, b: to_int32(int(a) - int(b)),
    Op.AND: lambda a, b: to_int32(int(a) & int(b)),
    Op.ANDI: lambda a, b: to_int32(int(a) & int(b)),
    Op.OR: lambda a, b: to_int32(int(a) | int(b)),
    Op.ORI: lambda a, b: to_int32(int(a) | int(b)),
    Op.XOR: lambda a, b: to_int32(int(a) ^ int(b)),
    Op.XORI: lambda a, b: to_int32(int(a) ^ int(b)),
    Op.SLL: lambda a, b: to_int32(int(a) << _shift_amount(int(b))),
    Op.SLLI: lambda a, b: to_int32(int(a) << _shift_amount(int(b))),
    Op.SRL: lambda a, b: to_int32(_as_unsigned(a) >> _shift_amount(int(b))),
    Op.SRLI: lambda a, b: to_int32(_as_unsigned(a) >> _shift_amount(int(b))),
    Op.SRA: lambda a, b: to_int32(int(a) >> _shift_amount(int(b))),
    Op.SRAI: lambda a, b: to_int32(int(a) >> _shift_amount(int(b))),
    Op.SLT: lambda a, b: int(int(a) < int(b)),
    Op.SLTI: lambda a, b: int(int(a) < int(b)),
    Op.SLTU: lambda a, b: int(_as_unsigned(a) < _as_unsigned(b)),
    Op.MUL: lambda a, b: to_int32(int(a) * int(b)),
    Op.DIV: lambda a, b: to_int32(_int_div(int(a), int(b))),
    Op.REM: lambda a, b: to_int32(_int_rem(int(a), int(b))),
    Op.FADD: lambda a, b: float(a) + float(b),
    Op.FSUB: lambda a, b: float(a) - float(b),
    Op.FMUL: lambda a, b: float(a) * float(b),
    Op.FDIV: lambda a, b: _fdiv(float(a), float(b)),
    Op.FEQ: lambda a, b: int(float(a) == float(b)),
    Op.FLT: lambda a, b: int(float(a) < float(b)),
    Op.FLE: lambda a, b: int(float(a) <= float(b)),
}

#: op -> unary function over the rs1 value.
_UNOPS = {
    Op.CVTIF: lambda a: float(a),
    Op.CVTFI: lambda a: to_int32(int(a)),
    Op.FNEG: lambda a: -float(a),
}

_BRANCH_CONDS = {
    Op.BEQ: lambda a, b: a == b,
    Op.BNE: lambda a, b: a != b,
    Op.BLT: lambda a, b: a < b,
    Op.BGE: lambda a, b: a >= b,
}


# Integer-indexed dispatch tables (Op is an IntEnum) for speed.
_BINOP_LIST = [None] * 64
for _op, _fn in _BINOPS.items():
    _BINOP_LIST[int(_op)] = _fn
_UNOP_LIST = [None] * 64
for _op, _fn in _UNOPS.items():
    _UNOP_LIST[int(_op)] = _fn


def compute(op, a=0, b=0, *, tid=0, nthreads=1, imm=0):
    """Compute the register result of a non-memory, non-CT instruction.

    ``a`` and ``b`` are the already-selected operand values (``b`` is the
    rs2 value or the immediate, per the instruction format).
    """
    index = int(op)
    fn = _BINOP_LIST[index]
    if fn is not None:
        return fn(a, b)
    fn = _UNOP_LIST[index]
    if fn is not None:
        return fn(a)
    if op is Op.LUI:
        return to_int32(imm << 12)
    if op is Op.MFTID:
        return tid
    if op is Op.MFNTH:
        return nthreads
    raise ValueError(f"compute() does not handle {op.name}")


def branch_taken(op, a, b):
    """Evaluate a conditional branch's direction."""
    return _BRANCH_CONDS[op](a, b)


def build_exec(instr):
    """Build, cache, and return ``instr``'s execution closure.

    The closure has signature ``fn(vals, tid, nthreads) -> result``,
    folding operand selection (register/register, register/immediate,
    unary) and the opcode dispatch of :func:`compute` into a single
    call — the pipeline's issue stage executes every ALU/FP instruction
    through it. Instructions are immutable and shared, so the closure is
    cached on ``instr._exec``; it must therefore close over nothing
    configuration-dependent (``tid``/``nthreads`` are arguments).
    """
    from repro.isa.opcodes import Format
    op = instr.op
    fmt = instr.info.fmt
    # Flattened closures for the hottest integer ops: one frame instead
    # of exec_fn -> table lambda -> to_int32. The wrap arithmetic is
    # to_int32 inlined, so results are bit-identical to the table path.
    if op is Op.ADDI:
        def exec_fn(vals, tid, nthreads, _imm=instr.imm):
            r = (int(vals[0]) + _imm) & 0xFFFFFFFF
            return r - 0x100000000 if r >= 0x80000000 else r
        instr._exec = exec_fn
        return exec_fn
    if op is Op.ADD:
        def exec_fn(vals, tid, nthreads):
            r = (int(vals[0]) + int(vals[1])) & 0xFFFFFFFF
            return r - 0x100000000 if r >= 0x80000000 else r
        instr._exec = exec_fn
        return exec_fn
    if op is Op.SUB:
        def exec_fn(vals, tid, nthreads):
            r = (int(vals[0]) - int(vals[1])) & 0xFFFFFFFF
            return r - 0x100000000 if r >= 0x80000000 else r
        instr._exec = exec_fn
        return exec_fn
    if op is Op.MUL:
        def exec_fn(vals, tid, nthreads):
            r = (int(vals[0]) * int(vals[1])) & 0xFFFFFFFF
            return r - 0x100000000 if r >= 0x80000000 else r
        instr._exec = exec_fn
        return exec_fn
    if op is Op.SLT:
        def exec_fn(vals, tid, nthreads):
            return int(int(vals[0]) < int(vals[1]))
        instr._exec = exec_fn
        return exec_fn
    if op is Op.SLTI:
        def exec_fn(vals, tid, nthreads, _imm=instr.imm):
            return int(int(vals[0]) < _imm)
        instr._exec = exec_fn
        return exec_fn
    fn = _BINOP_LIST[op]
    if fn is not None:
        if fmt is Format.I:
            def exec_fn(vals, tid, nthreads, _fn=fn, _imm=instr.imm):
                return _fn(vals[0], _imm)
        else:
            def exec_fn(vals, tid, nthreads, _fn=fn):
                return _fn(vals[0], vals[1])
    else:
        ufn = _UNOP_LIST[op]
        if ufn is not None:
            def exec_fn(vals, tid, nthreads, _fn=ufn):
                return _fn(vals[0])
        elif op is Op.LUI:
            constant = to_int32(instr.imm << 12)
            def exec_fn(vals, tid, nthreads, _c=constant):
                return _c
        elif op is Op.MFTID:
            def exec_fn(vals, tid, nthreads):
                return tid
        elif op is Op.MFNTH:
            def exec_fn(vals, tid, nthreads):
                return nthreads
        else:
            raise ValueError(f"build_exec() does not handle {op.name}")
    instr._exec = exec_fn
    return exec_fn
