"""Admission control for the job service: backpressure made explicit.

An overloaded simulation farm must *say no* — queueing without bound
turns overload into unbounded latency and an eventual OOM. Two
mechanisms, both answered with an explicit rejection the client can
act on (HTTP 429/503 plus ``Retry-After``), never a silent stall:

* a **bounded in-flight window** — at most ``depth`` unique jobs
  admitted-but-not-terminal at once; beyond that, ``queue-full``;
* **per-client token buckets** — each client identity gets ``rate``
  fresh tokens per second up to a ``burst`` ceiling; beyond that,
  ``rate-limited`` with the exact wait until the next token.

Coalesced duplicates of an already-admitted job spend a rate token
(the request still costs the server work) but no window slot (no new
simulation will run), so a duplicate storm can never exhaust the
queue for distinct work — the storm test in ``tests/test_service.py``
pins this.

The clock is injectable and everything is driven by explicit method
calls, so every backpressure path is deterministic under test — the
same discipline as :mod:`repro.faults`.
"""

import threading
import time


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/second, ``burst`` capacity.

    :meth:`acquire` never blocks; a refusal returns the exact seconds
    until a token will be available, which the server forwards as
    ``Retry-After``.
    """

    __slots__ = ("rate", "burst", "tokens", "_stamp", "_clock")

    def __init__(self, rate, burst, clock=time.monotonic):
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        self.rate = float(rate)
        self.burst = max(1.0, float(burst))
        self.tokens = self.burst
        self._clock = clock
        self._stamp = clock()

    def acquire(self):
        """Take one token; returns ``(ok, seconds_until_next)``."""
        now = self._clock()
        self.tokens = min(self.burst,
                          self.tokens + (now - self._stamp) * self.rate)
        self._stamp = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True, 0.0
        return False, (1.0 - self.tokens) / self.rate


class AdmissionController:
    """Thread-safe gatekeeper in front of the job registry.

    Parameters
    ----------
    depth:
        In-flight window: unique jobs admitted but not yet terminal.
    rate, burst:
        Per-client token-bucket parameters; ``rate=None`` disables
        rate limiting. ``burst`` defaults to ``2 * rate``.
    retry_after:
        Seconds suggested to a client rejected for a full queue (the
        rate limiter computes its own exact wait).
    clock:
        Injectable monotonic clock (deterministic tests).
    """

    def __init__(self, depth=64, rate=None, burst=None, retry_after=1.0,
                 clock=time.monotonic):
        if depth < 1:
            raise ValueError(f"depth must be >= 1, got {depth}")
        self.depth = depth
        self.rate = rate
        self.burst = burst if burst is not None else (
            2.0 * rate if rate else None)
        self.retry_after = retry_after
        self.inflight = 0
        self.draining = False
        self.admitted = 0
        self.coalesced = 0
        self.rejected = {"draining": 0, "rate-limited": 0, "queue-full": 0}
        self._clock = clock
        self._buckets = {}
        self._lock = threading.Lock()

    # ---------------------------------------------------------- admission

    def precheck(self, client=None):
        """Drain and rate-limit gates, charged per *request*.

        Returns ``(ok, reason, retry_after)``; ``reason`` is
        ``"draining"`` or ``"rate-limited"`` on refusal.
        """
        with self._lock:
            if self.draining:
                self.rejected["draining"] += 1
                return False, "draining", None
            if self.rate:
                bucket = self._buckets.get(client or "*")
                if bucket is None:
                    bucket = self._buckets[client or "*"] = TokenBucket(
                        self.rate, self.burst, self._clock)
                ok, wait = bucket.acquire()
                if not ok:
                    self.rejected["rate-limited"] += 1
                    return False, "rate-limited", wait
            return True, None, None

    def acquire_slot(self):
        """Claim one in-flight window slot for a *new* unique job.

        Returns ``(ok, retry_after)``; refusal means ``queue-full``.
        """
        with self._lock:
            if self.inflight >= self.depth:
                self.rejected["queue-full"] += 1
                return False, self.retry_after
            self.inflight += 1
            self.admitted += 1
            return True, None

    def release_slot(self):
        """A previously admitted job reached its terminal state."""
        with self._lock:
            self.inflight = max(0, self.inflight - 1)

    def note_coalesced(self):
        """A duplicate submission attached to an existing job."""
        with self._lock:
            self.coalesced += 1

    # ------------------------------------------------------------ control

    def drain(self):
        """Stop admitting; in-flight work is unaffected."""
        with self._lock:
            self.draining = True

    def snapshot(self):
        """Plain-data state for the health endpoints and tests."""
        with self._lock:
            return {
                "depth": self.depth,
                "inflight": self.inflight,
                "draining": self.draining,
                "rate": self.rate,
                "burst": self.burst,
                "clients": len(self._buckets),
                "admitted": self.admitted,
                "coalesced": self.coalesced,
                "rejected": dict(self.rejected),
            }
