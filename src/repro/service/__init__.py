"""The simulation job service: ``repro serve`` / ``repro submit``.

The paper's evaluation is parameter sweeps — hundreds of
``(workload, config)`` simulations — and this package serves that
workload over HTTP so many clients (a design-space autopilot, CI, a
colleague's laptop) can share one simulation farm. Stdlib only: an
:mod:`asyncio` front end over the fault-tolerant
:func:`repro.harness.parallel.run_grid` event loop.

Layering, bottom up:

:mod:`repro.service.protocol`
    Request parsing/validation and the content-addressed job identity
    ``(program hash, config fingerprint, ENGINE_VERSION)`` — the same
    key the disk result cache uses, so the dedup and cache layers can
    never disagree about what "the same job" means.
:mod:`repro.service.queue`
    Admission control: a bounded in-flight window (explicit 429 +
    ``Retry-After`` when full) and per-client token-bucket rate
    limiting.
:mod:`repro.service.dedup`
    In-flight request coalescing: N identical concurrent submissions
    share one :class:`~repro.service.dedup.JobEntry`, run at most one
    simulation, and all receive the same bit-identical result.
:mod:`repro.service.server`
    :class:`~repro.service.server.JobService` (the thread-safe core:
    submit, dispatch onto ``run_grid``, graceful drain, health) and the
    asyncio HTTP layer with per-job lifecycle-event streaming reusing
    the :class:`~repro.obs.telemetry.SweepEvent` taxonomy.
:mod:`repro.service.client`
    ``repro submit``'s client: exponential-backoff retries, idempotent
    resubmission, ``Retry-After``-honouring backpressure handling, and
    event-stream following with disconnect recovery.

Every failure mode is injectable via
:class:`repro.faults.ServiceFaultPlan` and proven by
``tests/test_service.py`` and the CI chaos driver
``tools/service_chaos.py``. See ``docs/SERVICE.md`` for the API and
the failure-mode catalogue.
"""

from repro.service.client import (ClientDisconnect, ServiceClient,
                                  ServiceError, ServiceUnavailable,
                                  new_request_id)
from repro.service.dedup import JobEntry, JobRegistry
from repro.service.protocol import JobRequest, ProtocolError, parse_job_request
from repro.service.queue import AdmissionController, TokenBucket
from repro.service.server import (AccessLog, JobService, ServiceHTTP,
                                  ServiceMetrics, run_server)

__all__ = [
    "AccessLog",
    "AdmissionController",
    "ClientDisconnect",
    "JobEntry",
    "JobRegistry",
    "JobRequest",
    "JobService",
    "ProtocolError",
    "ServiceClient",
    "ServiceError",
    "ServiceHTTP",
    "ServiceMetrics",
    "ServiceUnavailable",
    "TokenBucket",
    "new_request_id",
    "parse_job_request",
    "run_server",
]
