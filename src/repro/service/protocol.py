"""Wire protocol of the job service: request validation and identity.

A submission is one JSON object::

    {"workload": "matmul",            # required, a paper workload name
     "config": {"nthreads": 4},       # optional partial MachineConfig
     "aligned": false,                # optional fetch-alignment variant
     "instrument": false,             # optional stall attribution
     "sweep_id": "autopilot-3",       # optional ledger sweep stamp
     "client": "laptop-a",            # optional rate-limit identity
     "request_id": "c0ffee12",        # optional correlation id
     "chaos": {"crash": {...}}}       # optional, --allow-chaos only

``config`` is a *partial* :meth:`MachineConfig.to_spec` dict: the
given fields are overlaid on the defaults, so a client states only
what it varies. Unknown request or config fields are rejected with a
field-by-field error rather than silently ignored — a typoed knob must
never simulate the wrong machine.

The **job id** is the content-addressed identity
``hash(ENGINE_VERSION, (workload, aligned[, instrumented], config key),
program hash)`` — byte-for-byte the disk result cache's key
(:func:`repro.harness.parallel._job_key`). That single identity drives
both layers of dedup: the registry coalesces concurrent identical
submissions onto one in-flight job, and the cache answers repeats of
finished ones, and the two can never disagree about what "identical"
means. Resubmitting a payload is therefore idempotent by construction.

``chaos`` maps a :class:`repro.faults.FaultPlan` rule name (``crash``,
``hang``, ``fail``) to its keyword arguments and fires inside the
worker that executes this job — the over-the-wire fault-injection hook
the chaos suite uses. It is refused (403) unless the server was
started with ``--allow-chaos``, and it is deliberately *excluded* from
the job id: a chaos run and a clean run of the same job are the same
job, which is exactly what makes crash-then-retry recovery testable
against the cached truth.

``request_id`` is the correlation id threaded through the stack
(access log, telemetry events, ledger record); clients usually send it
as the ``X-Repro-Request-Id`` header, but the payload field wins when
both are present. Like ``chaos`` it is *excluded* from the job id —
tracing identity never changes simulation identity.
"""

from repro.core import MachineConfig
from repro.obs.ledger import fingerprint
from repro.workloads import BY_NAME, by_name

#: FaultPlan rule builders a submission may invoke via ``chaos``.
CHAOS_RULES = ("crash", "hang", "fail")

_REQUEST_FIELDS = ("workload", "config", "aligned", "instrument",
                   "sweep_id", "client", "request_id", "chaos")


class ProtocolError(Exception):
    """A malformed or refused submission; carries the HTTP status."""

    def __init__(self, message, status=400):
        super().__init__(message)
        self.status = status


class JobRequest:
    """One parsed, validated submission.

    Plain data plus the derived identity: ``config`` is the fully
    resolved :class:`MachineConfig`, ``job_id`` the content-addressed
    dedup/cache key, and ``fingerprint`` the short config fingerprint
    the ledger and telemetry display.
    """

    __slots__ = ("workload", "config", "aligned", "instrument", "sweep_id",
                 "client", "request_id", "chaos", "job_id", "fingerprint")

    def __init__(self, workload, config, aligned, instrument, sweep_id,
                 client, chaos, job_id, request_id=None):
        self.workload = workload        # canonical workload name
        self.config = config
        self.aligned = aligned
        self.instrument = instrument
        self.sweep_id = sweep_id
        self.client = client
        self.request_id = request_id
        self.chaos = chaos
        self.job_id = job_id
        self.fingerprint = fingerprint(config.to_spec())

    def __repr__(self):
        return (f"JobRequest({self.workload!r}, job_id={self.job_id[:12]}, "
                f"sweep_id={self.sweep_id!r})")


def _require(condition, message, status=400):
    if not condition:
        raise ProtocolError(message, status=status)


def _build_config(spec):
    """Overlay a partial user spec on the defaults and validate it."""
    defaults = MachineConfig().to_spec()
    unknown = sorted(set(spec) - set(defaults))
    _require(not unknown,
             f"unknown config field(s): {', '.join(unknown)} "
             f"(see MachineConfig.to_spec for the schema)")
    merged = dict(defaults)
    merged.update(spec)
    try:
        return MachineConfig.from_spec(merged).validate()
    except (ValueError, TypeError) as error:
        raise ProtocolError(f"invalid configuration: {error}") from error


def _check_chaos(chaos, allow_chaos):
    from repro.faults import FaultPlan

    _require(isinstance(chaos, dict),
             "chaos must be an object mapping rule name to kwargs")
    _require(allow_chaos,
             "chaos injection refused: server started without "
             "--allow-chaos", status=403)
    probe = FaultPlan()
    for rule, kwargs in chaos.items():
        _require(rule in CHAOS_RULES,
                 f"unknown chaos rule {rule!r} "
                 f"(expected one of: {', '.join(CHAOS_RULES)})")
        _require(isinstance(kwargs, dict),
                 f"chaos rule {rule!r} must map to a kwargs object")
        try:
            getattr(probe, rule)(indices=[0], **kwargs)
        except (TypeError, ValueError) as error:
            raise ProtocolError(
                f"invalid chaos rule {rule!r}: {error}") from error
    return chaos


def parse_job_request(payload, allow_chaos=False):
    """Validate one submission payload into a :class:`JobRequest`.

    Raises :class:`ProtocolError` (status 400, or 403 for refused
    chaos) with a message naming every problem it can see.
    """
    from repro.harness.parallel import _job_key

    _require(isinstance(payload, dict), "request body must be a JSON object")
    unknown = sorted(set(payload) - set(_REQUEST_FIELDS))
    _require(not unknown,
             f"unknown request field(s): {', '.join(unknown)} "
             f"(expected: {', '.join(_REQUEST_FIELDS)})")

    wname = payload.get("workload")
    _require(isinstance(wname, str) and wname,
             "missing required field 'workload'")
    _require(wname in BY_NAME,
             f"unknown workload {wname!r} "
             f"(expected one of: {', '.join(sorted(BY_NAME))})")
    workload = by_name(wname)

    spec = payload.get("config") or {}
    _require(isinstance(spec, dict), "config must be an object")
    config = _build_config(spec)

    aligned = payload.get("aligned", False)
    instrument = payload.get("instrument", False)
    _require(isinstance(aligned, bool), "aligned must be a boolean")
    _require(isinstance(instrument, bool), "instrument must be a boolean")

    sweep_id = payload.get("sweep_id")
    _require(sweep_id is None or (isinstance(sweep_id, str) and sweep_id),
             "sweep_id must be a non-empty string")
    client = payload.get("client")
    _require(client is None or isinstance(client, str),
             "client must be a string")
    request_id = payload.get("request_id")
    _require(request_id is None
             or (isinstance(request_id, str) and request_id),
             "request_id must be a non-empty string")

    chaos = payload.get("chaos")
    if chaos is not None:
        chaos = _check_chaos(chaos, allow_chaos)

    program = workload.program(config.nthreads, aligned=aligned)
    job_id = _job_key(workload, config, aligned, program, instrument)
    return JobRequest(workload.name, config, aligned, instrument,
                      sweep_id, client, chaos, job_id,
                      request_id=request_id)
