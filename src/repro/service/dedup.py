"""In-flight request coalescing: one simulation per unique job.

The disk result cache already dedupes *finished* work; this module
dedupes *concurrent* work. When N clients submit the same
content-addressed job id (see :mod:`repro.service.protocol`) while it
is queued or running, all N attach to one :class:`JobEntry`: one
simulation runs, every subscriber receives the same lifecycle events,
and every client reads the same bit-identical result payload. The
concurrent-duplicate property test in ``tests/test_service.py`` pins
exactly that.

State machine per entry::

    queued -> running -> done
                     \\-> failed

Terminal entries stay in the registry as memoized answers — a repeat
submission of a ``done`` job is answered instantly (and would be a
disk-cache hit anyway). A ``failed`` entry, by contrast, is *replaced*
by a fresh entry on resubmission: retrying a failure is the idempotent
recovery path a client's backoff loop relies on, while retrying a
success must never burn another simulation.

Everything is guarded by a per-entry condition variable; subscriber
callbacks are invoked outside the lock (they bridge into the asyncio
loop via ``call_soon_threadsafe``). The terminal transition appends
the final ``result`` record and detaches subscribers under one lock
hold, so a late subscriber either sees the result in its backlog or
receives it live — never neither, never both.
"""

import threading

QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"

#: States from which an entry never transitions again.
TERMINAL_STATES = (DONE, FAILED)


class JobEntry:
    """One unique job: identity, state, buffered events, subscribers.

    ``index`` is the job's position in the service's server-lifetime
    telemetry stream (the ``job`` field of its events) — distinct from
    the per-dispatch grid index, which the relay remaps away.
    """

    __slots__ = ("request", "index", "state", "result", "failure",
                 "submissions", "cached", "events", "_subscribers", "_cond")

    def __init__(self, request, index):
        self.request = request
        self.index = index
        self.state = QUEUED
        self.result = None      # Runner payload dict once DONE
        self.failure = None     # {"kind", "message", "attempts"} once FAILED
        self.submissions = 1
        self.cached = False     # answered by the disk cache, no simulation
        self.events = []        # buffered event records (plain dicts)
        self._subscribers = []
        self._cond = threading.Condition()

    @property
    def terminal(self):
        return self.state in TERMINAL_STATES

    def job_doc(self):
        """The job's status document (``GET /v1/jobs/<id>`` body)."""
        with self._cond:
            doc = {
                "job_id": self.request.job_id,
                "index": self.index,
                "state": self.state,
                "workload": self.request.workload,
                "config": self.request.fingerprint,
                "sweep_id": self.request.sweep_id,
                "request_id": self.request.request_id,
                "submissions": self.submissions,
                # Dedup visibility: did the disk cache answer this job,
                # and how many clients coalesced onto it after the first?
                "cached": self.cached,
                "coalesced_clients": self.submissions - 1,
            }
            if self.result is not None:
                doc["result"] = self.result
            if self.failure is not None:
                doc["failure"] = self.failure
            return doc

    # -------------------------------------------------------- coalescing

    def coalesce(self):
        with self._cond:
            self.submissions += 1

    # ------------------------------------------------------ event stream

    def publish(self, record):
        """Append one lifecycle record and fan it out to subscribers."""
        with self._cond:
            self.events.append(record)
            subscribers = list(self._subscribers)
        for callback in subscribers:
            callback(record)

    def subscribe(self, callback):
        """Attach a live subscriber; returns ``(backlog, live)``.

        ``backlog`` is every record so far (ending with the ``result``
        record when the entry is already terminal); ``live`` is False
        in that case and the callback was *not* registered.
        """
        with self._cond:
            backlog = list(self.events)
            live = not self.terminal
            if live:
                self._subscribers.append(callback)
        return backlog, live

    def unsubscribe(self, callback):
        with self._cond:
            try:
                self._subscribers.remove(callback)
            except ValueError:
                pass

    # ----------------------------------------------------------- lifecycle

    def mark_running(self):
        with self._cond:
            if self.state == QUEUED:
                self.state = RUNNING

    def finish(self, state, result=None, failure=None, on_transition=None):
        """Terminal transition; returns False if already terminal.

        Publishes the final ``result`` record to every subscriber and
        detaches them — a per-job event stream always ends with exactly
        one ``result`` record. ``on_transition(state)``, when given,
        runs under the entry lock *before* the terminal state becomes
        observable — accounting updated there (the service's completion
        counters) can never lag a client that already saw the job end.
        """
        if state not in TERMINAL_STATES:
            raise ValueError(f"finish() needs a terminal state, got {state!r}")
        with self._cond:
            if self.terminal:
                return False
            if on_transition is not None:
                on_transition(state)
            self.state = state
            self.result = result
            self.failure = failure
            record = {"event": "result", "job": self.index,
                      "job_id": self.request.job_id, "state": state,
                      "workload": self.request.workload}
            if result is not None:
                record["result"] = result
            if failure is not None:
                record["failure"] = failure
            self.events.append(record)
            subscribers = list(self._subscribers)
            self._subscribers.clear()
            self._cond.notify_all()
        for callback in subscribers:
            callback(record)
        return True

    def wait(self, timeout=None):
        """Block until terminal; returns True unless ``timeout`` expired."""
        with self._cond:
            return self._cond.wait_for(lambda: self.terminal, timeout)

    def __repr__(self):
        return (f"JobEntry(#{self.index} {self.request.workload} "
                f"{self.state}, {self.submissions} submission(s))")


class JobRegistry:
    """Job-id -> :class:`JobEntry` map; the coalescing point."""

    def __init__(self):
        self._entries = {}
        self._order = []        # insertion order, for iteration
        self._next_index = 0
        self._lock = threading.Lock()

    def get_or_create(self, request, admit=None):
        """Find or create the entry for ``request.job_id``.

        Returns ``(entry, created, retry_after)``. A live or ``done``
        entry is reused (``created=False``, submission coalesced) —
        without consulting ``admit``, so a duplicate of an admitted job
        needs no window slot even when the window is full. Creating a
        *new* entry first calls ``admit()`` (the admission controller's
        ``acquire_slot``) inside the registry lock, making
        coalesce-versus-admit atomic; on refusal nothing is registered
        and ``(None, False, retry_after)`` is returned. A ``failed``
        entry is replaced by a fresh entry so resubmission retries it.
        """
        with self._lock:
            entry = self._entries.get(request.job_id)
            if entry is not None and entry.state != FAILED:
                entry.coalesce()
                return entry, False, None
            if admit is not None:
                ok, retry_after = admit()
                if not ok:
                    return None, False, retry_after
            entry = JobEntry(request, self._next_index)
            self._next_index += 1
            self._entries[request.job_id] = entry
            self._order.append(entry)
            return entry, True, None

    def get(self, job_id):
        with self._lock:
            return self._entries.get(job_id)

    def entries(self):
        """Every entry ever registered, in admission order (replaced
        ``failed`` entries included — their event history is part of
        the service's accounting)."""
        with self._lock:
            return list(self._order)

    def counts(self):
        """Entry count per state, plus ``total``."""
        with self._lock:
            counts = {QUEUED: 0, RUNNING: 0, DONE: 0, FAILED: 0}
            for entry in self._order:
                counts[entry.state] += 1
            counts["total"] = len(self._order)
            return counts

    def __len__(self):
        with self._lock:
            return len(self._order)
