"""The job service core and its asyncio HTTP front end.

:class:`JobService` is the thread-safe heart: it admits submissions
(:mod:`repro.service.queue`), coalesces duplicates
(:mod:`repro.service.dedup`), and dispatches unique jobs onto the
existing fault-tolerant :func:`repro.harness.parallel.run_grid` event
loop from a single background dispatcher thread — so every recovery
path the harness already proves (timeouts, bounded retries,
``BrokenProcessPool`` culprit isolation, batch degradation,
incremental disk-cache persistence) serves remote clients unchanged,
and served results are bit-identical to a direct ``run_grid`` call.

**One server-lifetime telemetry stream.** The service emits through a
single :class:`~repro.obs.telemetry.SweepTelemetry` hub: one
``sweep-start`` (with ``total=0`` — the job population is open-ended)
when the service starts, one ``queued`` per admitted unique job, the
relayed per-job lifecycle events of every dispatch, and one terminal
``sweep-end`` at drain. Each dispatch's inner ``run_grid`` hub is
private; :class:`_DispatchRelay` remaps its grid indices onto
service-global job indices and re-emits, suppressing the inner
sweep-level events — so the server's event log satisfies the same
accounting invariant as a single sweep (exactly one ``queued`` and one
terminal event per job) and ``repro sweep`` audits a served session
exactly like a local one.

**Graceful drain.** SIGTERM/SIGINT stops admission (503 to new
submissions), lets the dispatcher finish everything already admitted,
publishes each job's terminal ``result`` record to its streaming
subscribers, appends the ledger (inside ``run_grid``, per dispatch),
emits ``sweep-end``, and only then lets the process exit. A second
signal force-quits via ``KeyboardInterrupt``.

The HTTP layer is deliberately small: hand-rolled HTTP/1.1 over
``asyncio.start_server`` (stdlib only, ``Connection: close``), JSON
bodies, and an ndjson per-job event stream that always ends with one
``result`` record. A client that disconnects mid-stream costs the
server one write error; the job itself is unaffected.
"""

import asyncio
import contextlib
import json
import queue as queue_mod
import signal
import sys
import threading
import time
import uuid

from repro.harness.parallel import default_workers, run_grid
from repro.harness.runner import Runner
from repro.service.dedup import DONE, FAILED, JobRegistry
from repro.service.protocol import ProtocolError, parse_job_request
from repro.service.queue import AdmissionController

#: Inner run_grid events not forwarded to the service stream: the
#: service owns its own sweep framing and queued/heartbeat cadence.
_SUPPRESSED_KINDS = ("sweep-start", "sweep-end", "queued", "heartbeat")


class _DispatchRelay:
    """Sink on a dispatch's private hub: remap grid -> service indices.

    Re-emits every per-job event on the service hub (folding it into
    the server-lifetime metrics and sinks) and fans a copy out to the
    per-job subscriber streams of the entries it concerns.
    """

    __slots__ = ("service", "index_map")

    def __init__(self, service, index_map):
        self.service = service
        self.index_map = index_map      # grid index -> JobEntry

    def __call__(self, event):
        if event.kind in _SUPPRESSED_KINDS:
            return
        data = dict(event.data or {})
        job = None
        targets = []
        if event.job is not None:
            entry = self.index_map.get(event.job)
            if entry is None:
                return
            job = entry.index
            targets = [entry]
            if event.kind == "cache-hit":
                entry.cached = True
            if entry.request.request_id is not None:
                # Correlate the relayed lifecycle with the HTTP request
                # that first admitted this job.
                data.setdefault("request_id", entry.request.request_id)
        if event.kind == "worker-crash":
            targets = [self.index_map[victim]
                       for victim in data.get("victims") or ()
                       if victim in self.index_map]
            data["victims"] = sorted(entry.index for entry in targets)
        elif event.kind == "batched":
            targets = [self.index_map[member]
                       for member in data.get("members") or ()
                       if member in self.index_map]
            data["members"] = sorted(entry.index for entry in targets)
        record = self.service._emit(event.kind, job=job,
                                    workload=event.workload, **data)
        for entry in targets:
            entry.publish(record)


class ServiceMetrics:
    """The service's runtime metric families in one place.

    Push-style families (HTTP request timing, dispatch/completion
    accounting) are incremented at their emission sites — every one of
    which is gated by a bare ``service.metrics is None`` predicate, per
    the PR-2 zero-overhead contract. Counters and gauges whose source
    of truth already exists elsewhere (admission stats, cache counters,
    queue sizes) are *mirrored* at scrape time by
    :meth:`JobService.render_metrics` instead of instrumenting those
    hot paths — see ``docs/OBSERVABILITY.md``.
    """

    __slots__ = ("registry", "requests", "request_seconds", "rejections",
                 "admitted", "coalesced", "executed", "completed",
                 "ledger_appends", "inflight", "inflight_limit", "pending",
                 "running", "workers", "workers_busy", "cache_hits",
                 "cache_misses", "cache_dropped", "cache_quarantined",
                 "cache_entries")

    def __init__(self, registry=None):
        from repro.obs.runtime import MetricsRegistry

        if registry is None:
            registry = MetricsRegistry()
        self.registry = registry
        self.requests = registry.counter(
            "repro_requests_total",
            "HTTP requests served, by route, method, and status.",
            ("route", "method", "status"))
        self.request_seconds = registry.histogram(
            "repro_request_seconds",
            "HTTP request wall time in seconds, by route (the events "
            "route counts full stream lifetime).",
            ("route",))
        self.rejections = registry.counter(
            "repro_admission_rejections_total",
            "Submissions refused by admission control, by reason.",
            ("reason",))
        self.admitted = registry.counter(
            "repro_jobs_admitted_total",
            "Unique jobs granted an in-flight window slot.")
        self.coalesced = registry.counter(
            "repro_jobs_coalesced_total",
            "Duplicate submissions coalesced onto an existing job.")
        self.executed = registry.counter(
            "repro_jobs_executed_total",
            "Jobs handed to a run_grid dispatch (cache hits included).")
        self.completed = registry.counter(
            "repro_jobs_completed_total",
            "Jobs reaching a terminal state, by state.",
            ("state",))
        self.ledger_appends = registry.counter(
            "repro_ledger_appends_total",
            "Ledger records appended by dispatches.")
        self.inflight = registry.gauge(
            "repro_inflight_window",
            "Unique jobs admitted but not yet terminal.")
        self.inflight_limit = registry.gauge(
            "repro_inflight_window_limit",
            "Admission window depth (--queue-depth).")
        self.pending = registry.gauge(
            "repro_dispatch_pending",
            "Admitted jobs waiting for the dispatcher thread.")
        self.running = registry.gauge(
            "repro_jobs_running",
            "Jobs currently inside a run_grid dispatch.")
        self.workers = registry.gauge(
            "repro_workers", "Worker processes per dispatch.")
        self.workers_busy = registry.gauge(
            "repro_workers_busy",
            "Workers occupied by the current dispatch (0 when idle).")
        self.cache_hits = registry.counter(
            "repro_cache_hits_total", "Disk result cache hits.")
        self.cache_misses = registry.counter(
            "repro_cache_misses_total", "Disk result cache misses.")
        self.cache_dropped = registry.counter(
            "repro_cache_dropped_total",
            "Cache entries dropped (schema/version mismatch).")
        self.cache_quarantined = registry.counter(
            "repro_cache_quarantined_total",
            "Corrupt cache entries quarantined.")
        self.cache_entries = registry.gauge(
            "repro_cache_entries", "Entries resident in the disk cache.")


class JobService:
    """Thread-safe job service over :func:`run_grid`.

    Parameters mirror ``run_grid`` where they share meaning
    (``workers``, ``timeout``, ``retries``, ``backoff``, ``backend``,
    ``verify``). ``backend`` accepts every ``run_grid`` value —
    ``"auto"`` (the default) composes batch and spec per dispatch, and
    worker processes of every dispatch share one on-disk codegen cache
    (:mod:`repro.harness.codecache`), so a fleet pays source generation
    once per config shape for the server's lifetime and beyond. The
    rest configure the service envelope:
    ``queue_depth``/``rate``/``burst`` the admission controller,
    ``disk_cache``/``ledger`` the durable layers, ``sinks`` the
    server-lifetime telemetry sinks, ``allow_chaos`` the over-the-wire
    fault-injection gate, and ``clock`` an injectable monotonic clock
    for deterministic tests.

    ``metrics`` attaches a runtime metrics registry (a
    :class:`repro.obs.runtime.MetricsRegistry`, or a prebuilt
    :class:`ServiceMetrics`) rendered by ``GET /metrics``. ``None``
    (the default) keeps the zero-overhead contract literal: no counter
    is touched, no line of ``repro.obs.runtime`` ever executes.
    """

    def __init__(self, *, workers=None, queue_depth=64, rate=None,
                 burst=None, timeout=None, retries=2, backoff=0.25,
                 backend="auto", verify=True, disk_cache=None, ledger=None,
                 sinks=(), allow_chaos=False, heartbeat=2.0,
                 clock=time.monotonic, metrics=None):
        from repro.harness.diskcache import DiskResultCache
        from repro.obs.telemetry import SweepTelemetry

        if disk_cache is not None and not isinstance(disk_cache,
                                                     DiskResultCache):
            disk_cache = DiskResultCache(disk_cache,
                                         schema=Runner.RESULT_SCHEMA)
        self.workers = workers if workers is not None else default_workers()
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.backend = backend
        self.verify = verify
        self.disk_cache = disk_cache
        self.ledger = ledger
        self.allow_chaos = allow_chaos
        self.heartbeat = heartbeat
        if metrics is not None and not isinstance(metrics, ServiceMetrics):
            metrics = ServiceMetrics(metrics)
        self.metrics = metrics
        self.registry = JobRegistry()
        self.admission = AdmissionController(depth=queue_depth, rate=rate,
                                             burst=burst, clock=clock)
        self.hub = SweepTelemetry(sinks=sinks, heartbeat=heartbeat,
                                  clock=clock)
        self.started = False
        self.drained = False
        self._clock = clock
        self._queue = queue_mod.Queue()
        self._stop = threading.Event()
        self._thread = None
        self._emit_lock = threading.Lock()

    # ------------------------------------------------------------ telemetry

    def _emit(self, event_kind, job=None, workload=None, **data):
        """Emit one event on the server-lifetime stream; returns its
        JSONL record. The lock serializes the asyncio thread (queued
        events) against the dispatcher thread (relayed events). First
        parameter deliberately not named ``kind`` — failure and retry
        events carry a ``kind`` *payload* field via ``**data``."""
        with self._emit_lock:
            event = self.hub._emit(event_kind, job=job, workload=workload,
                                   **data)
        return event.to_dict()

    # ------------------------------------------------------------ lifecycle

    def start(self):
        """Emit ``sweep-start`` and start the dispatcher thread."""
        if self.started:
            return self
        self.started = True
        self._emit("sweep-start", total=0, workers=self.workers,
                   backend=self.backend)
        self._thread = threading.Thread(target=self._dispatch_loop,
                                        name="repro-serve-dispatch",
                                        daemon=True)
        self._thread.start()
        return self

    def begin_drain(self):
        """Stop admitting immediately; in-flight work continues."""
        self.admission.drain()

    def drain(self, timeout=None):
        """Graceful shutdown: stop admitting, finish everything
        admitted, emit the terminal ``sweep-end``.

        Blocks until the dispatcher has drained its queue (every
        admitted job reaches exactly one terminal state and its
        subscribers receive the final ``result`` record) or ``timeout``
        expires. Idempotent.
        """
        if self.drained:
            return self
        self.begin_drain()
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout)
            if not self._thread.is_alive():
                # Belt and braces: the queue is drained, so nothing
                # should still be open — but a dispatcher died mid-batch
                # must not leave a job without a terminal event.
                for entry in self.registry.entries():
                    if not entry.terminal:
                        self._fail_entry(entry, "interrupted",
                                         "service drained before the job "
                                         "finished")
        if self.started:
            with self._emit_lock:
                self.hub.sweep_end(cache=(self.disk_cache.counters()
                                          if self.disk_cache is not None
                                          else None))
        self.drained = True
        return self

    # ------------------------------------------------------------ admission

    def submit(self, payload, client=None, request_id=None):
        """Admit one submission; returns ``(status, doc, headers)``.

        202 queued (or coalesced onto a live job), 200 already
        terminal, 400/403 protocol errors, 429 backpressure with
        ``Retry-After``, 503 draining.

        ``request_id`` is the transport-level correlation id (the
        ``X-Repro-Request-Id`` header); an explicit ``request_id``
        payload field wins over it. A job keeps the id of its *first*
        submission — like ``sweep_id``, the job belongs to whichever
        request admitted it.
        """
        self.start()
        ok, reason, retry_after = self.admission.precheck(client)
        if not ok:
            status = 503 if reason == "draining" else 429
            doc = {"error": reason}
            headers = {}
            if retry_after is not None:
                doc["retry_after"] = round(retry_after, 3)
                headers["Retry-After"] = f"{max(retry_after, 0.001):.3f}"
            return status, doc, headers
        try:
            request = parse_job_request(payload,
                                        allow_chaos=self.allow_chaos)
        except ProtocolError as error:
            return error.status, {"error": str(error)}, {}
        if request.request_id is None:
            request.request_id = request_id
        entry, created, retry_after = self.registry.get_or_create(
            request, admit=self.admission.acquire_slot)
        if entry is None:
            return 429, {"error": "queue-full",
                         "retry_after": retry_after}, \
                   {"Retry-After": f"{retry_after:.3f}"}
        if not created:
            # Coalesced onto an existing live/done entry: no window
            # slot is spent — no new simulation will run, so a
            # duplicate storm can never exhaust the queue.
            self.admission.note_coalesced()
            doc = entry.job_doc()
            doc["coalesced"] = True
            return (200 if entry.terminal else 202), doc, {}
        extra = ({"request_id": request.request_id}
                 if request.request_id is not None else {})
        record = self._emit("queued", job=entry.index,
                            workload=request.workload,
                            config=request.fingerprint, **extra)
        entry.publish(record)
        self._queue.put(entry)
        doc = entry.job_doc()
        doc["coalesced"] = False
        return 202, doc, {}

    def job_status(self, job_id):
        """Status document for ``job_id``, or ``None`` if unknown."""
        entry = self.registry.get(job_id)
        return entry.job_doc() if entry is not None else None

    # --------------------------------------------------------------- health

    def snapshot(self):
        """Worker-pool, queue, dedup, and cache state (health body)."""
        return {
            "sweep_id": self.hub.sweep_id,
            "workers": self.workers,
            "backend": self.backend,
            "started": self.started,
            "drained": self.drained,
            "dispatcher_alive": bool(self._thread is not None
                                     and self._thread.is_alive()),
            "pending_dispatch": self._queue.qsize(),
            "jobs": self.registry.counts(),
            "admission": self.admission.snapshot(),
            "cache": (self.disk_cache.counters()
                      if self.disk_cache is not None else None),
        }

    def ready(self):
        """``(ok, snapshot)`` — ready means admitting and dispatching."""
        snapshot = self.snapshot()
        ok = (self.started and not self.drained
              and not snapshot["admission"]["draining"]
              and snapshot["dispatcher_alive"])
        return ok, snapshot

    def render_metrics(self):
        """Prometheus text for ``GET /metrics``.

        Mirrors the counters whose source of truth lives elsewhere
        (admission stats, cache counters, queue sizes) into the
        registry at scrape time — scrapes are rare, so the hot paths
        those numbers describe stay uninstrumented — then renders the
        whole registry. Requires ``metrics`` to have been attached.
        """
        m = self.metrics
        if m is None:
            raise RuntimeError("metrics are not enabled on this service")
        snapshot = self.snapshot()
        admission = snapshot["admission"]
        for reason, count in admission["rejected"].items():
            m.rejections.labels(reason=reason).set_to(count)
        m.admitted.set_to(admission["admitted"])
        m.coalesced.set_to(admission["coalesced"])
        m.inflight.set(admission["inflight"])
        m.inflight_limit.set(admission["depth"])
        m.pending.set(snapshot["pending_dispatch"])
        m.running.set(snapshot["jobs"]["running"])
        m.workers.set(snapshot["workers"])
        cache = snapshot["cache"]
        if cache is not None:
            m.cache_hits.set_to(cache["hits"])
            m.cache_misses.set_to(cache["misses"])
            m.cache_dropped.set_to(cache["dropped"])
            m.cache_quarantined.set_to(cache["quarantined"])
            m.cache_entries.set(cache["entries"])
        return m.registry.render()

    # ------------------------------------------------------------- dispatch

    def _dispatch_loop(self):
        """Dispatcher thread: batch queued entries into ``run_grid``
        calls, grouped by ``(sweep_id, aligned, instrument)``."""
        while True:
            try:
                first = self._queue.get(timeout=0.05)
            except queue_mod.Empty:
                if self._stop.is_set():
                    return
                counts = self.registry.counts()
                with self._emit_lock:
                    self.hub.maybe_heartbeat(
                        running=counts["running"],
                        queued=counts["queued"],
                        inflight=self.admission.inflight)
                continue
            batch = [first]
            while True:
                try:
                    batch.append(self._queue.get_nowait())
                except queue_mod.Empty:
                    break
            groups = {}
            for entry in batch:
                request = entry.request
                key = (request.sweep_id, request.aligned, request.instrument)
                groups.setdefault(key, []).append(entry)
            for key, entries in groups.items():
                self._dispatch(key, entries)

    def _chaos_plan(self, entries):
        """Merge the entries' over-the-wire chaos rules into one
        :class:`FaultPlan` keyed by grid index."""
        plan = None
        for grid_index, entry in enumerate(entries):
            chaos = entry.request.chaos
            if not chaos:
                continue
            if plan is None:
                from repro.faults import FaultPlan
                plan = FaultPlan()
            for rule, kwargs in chaos.items():
                getattr(plan, rule)(indices=[grid_index], **kwargs)
        return plan

    def _fail_entry(self, entry, kind, message, attempts=0):
        """Terminal failure outside the normal relay path (dispatch
        errors, drain leftovers): emit the service-level ``failed``
        event and finish the entry, keeping the accounting invariant."""
        record = self._emit("failed", job=entry.index,
                            workload=entry.request.workload, kind=kind,
                            attempts=attempts, message=message)
        entry.publish(record)
        if entry.finish(FAILED, failure={"kind": kind, "message": message,
                                         "attempts": attempts},
                        on_transition=self._count_completion):
            self.admission.release_slot()

    @property
    def _count_completion(self):
        """``finish()`` hook counting terminal transitions, or ``None``
        when metrics are off — the increment runs under the entry lock
        so a scrape can never observe a terminal job the completion
        counter has not yet counted."""
        if self.metrics is None:
            return None
        return lambda state: self.metrics.completed.labels(state=state).inc()

    def _dispatch(self, key, entries):
        """Run one entry group through ``run_grid`` and settle it."""
        sweep_id, aligned, instrument = key
        for entry in entries:
            entry.mark_running()
        index_map = dict(enumerate(entries))
        relay = _DispatchRelay(self, index_map)
        from repro.obs.telemetry import SweepTelemetry
        inner = SweepTelemetry(sinks=(relay,), heartbeat=self.heartbeat,
                               clock=self._clock)
        jobs = [(entry.request.workload, entry.request.config)
                for entry in entries]
        request_ids = {grid_index: entry.request.request_id
                       for grid_index, entry in enumerate(entries)
                       if entry.request.request_id is not None}
        if self.metrics is not None:
            self.metrics.executed.inc(len(entries))
            self.metrics.workers_busy.set(min(self.workers, len(entries)))
        try:
            results = run_grid(
                jobs, workers=self.workers, verify=self.verify,
                disk_cache=self.disk_cache, aligned=aligned,
                instrument=instrument, backend=self.backend,
                timeout=self.timeout, retries=self.retries,
                backoff=self.backoff, strict=False,
                fault_plan=self._chaos_plan(entries),
                ledger=self.ledger, telemetry=inner, sweep_id=sweep_id,
                request_ids=request_ids or None)
        except Exception as error:  # noqa: BLE001 — dispatcher must survive
            message = f"dispatch error: {error!r}"
            for entry in entries:
                if not entry.terminal:
                    self._fail_entry(entry, "dispatch", message)
            if self.metrics is not None:
                self.metrics.workers_busy.set(0)
            return
        ok_count = 0
        count = self._count_completion
        for entry, result in zip(entries, results):
            if result is not None and result.ok:
                ok_count += 1
                done = entry.finish(DONE, result=Runner._to_payload(result),
                                    on_transition=count)
            else:
                failure = ({"kind": result.kind, "message": result.message,
                            "attempts": result.attempts}
                           if result is not None else
                           {"kind": "lost", "attempts": 0,
                            "message": "run_grid returned no result"})
                done = entry.finish(FAILED, failure=failure,
                                    on_transition=count)
            if done:
                self.admission.release_slot()
        if self.metrics is not None:
            self.metrics.workers_busy.set(0)
            if self.ledger is not None:
                # run_grid appended one record per successful result
                # (cache hits included).
                self.metrics.ledger_appends.inc(ok_count)


# --------------------------------------------------------------- HTTP layer

_REASONS = {200: "OK", 202: "Accepted", 400: "Bad Request",
            403: "Forbidden", 404: "Not Found", 405: "Method Not Allowed",
            429: "Too Many Requests", 500: "Internal Server Error",
            503: "Service Unavailable"}


def _json_response(status, payload, headers=()):
    body = (json.dumps(payload) + "\n").encode()
    lines = [f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
             "Content-Type: application/json",
             f"Content-Length: {len(body)}",
             "Connection: close"]
    lines.extend(f"{name}: {value}" for name, value in headers)
    return ("\r\n".join(lines) + "\r\n\r\n").encode() + body


def _text_response(status, text, headers=()):
    """Plain-text response; Content-Type pins the Prometheus text
    exposition version scrapers negotiate on."""
    body = text.encode()
    lines = [f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
             "Content-Type: text/plain; version=0.0.4; charset=utf-8",
             f"Content-Length: {len(body)}",
             "Connection: close"]
    lines.extend(f"{name}: {value}" for name, value in headers)
    return ("\r\n".join(lines) + "\r\n\r\n").encode() + body


def _stream_head(request_id=None):
    lines = ["HTTP/1.1 200 OK",
             "Content-Type: application/x-ndjson",
             "Connection: close"]
    if request_id is not None:
        lines.append(f"X-Repro-Request-Id: {request_id}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode()


def _route_label(method, path):
    """Canonical route label for metrics — bounded cardinality no matter
    what paths clients probe."""
    if path in ("/healthz", "/readyz", "/metrics", "/v1/jobs"):
        return path
    if path.startswith("/v1/jobs/"):
        if path.endswith("/events"):
            return "/v1/jobs/{id}/events"
        return "/v1/jobs/{id}"
    return "other"


class AccessLog:
    """Structured ndjson access log, one line per HTTP request.

    Defaults to stderr — *never* stdout, which carries the banner and
    the drain summary that ``tools/service_chaos.py`` parses — and can
    target any line-buffered stream. When a
    :class:`~repro.obs.telemetry.LiveProgress` shares the destination
    tty, pass it as ``live``: lines are then routed through
    ``live.println`` so the single-line status refresh and the log
    never interleave mid-line (the PR-9 fix; regression-tested in
    ``tests/test_service.py``).
    """

    __slots__ = ("stream", "live", "count", "_lock")

    def __init__(self, stream=None, live=None):
        self.stream = stream if stream is not None else sys.stderr
        self.live = live
        self.count = 0
        self._lock = threading.Lock()

    def __call__(self, record):
        line = json.dumps(record, sort_keys=True)
        with self._lock:
            self.count += 1
            if self.live is not None:
                self.live.println(line)
            else:
                self.stream.write(line + "\n")
                with contextlib.suppress(Exception):
                    self.stream.flush()


class ServiceHTTP:
    """Asyncio HTTP/1.1 front end for a :class:`JobService`.

    Routes::

        POST /v1/jobs             submit (see JobService.submit)
        GET  /v1/jobs/<id>        status document (404 unknown)
        GET  /v1/jobs/<id>/events ndjson lifecycle stream, ends with
                                  one {"event": "result", ...} record
        GET  /healthz             200 + full state snapshot, always
        GET  /readyz              200 admitting / 503 draining or dead
        GET  /metrics             Prometheus text (404 when the service
                                  was built without a metrics registry)

    Every response carries ``X-Repro-Request-Id`` — the client's
    header echoed back, or a server-generated id — and ``access_log``
    (an :class:`AccessLog`) gets one structured line per request with
    that id, so a slow request joins its job's telemetry and ledger
    records by a single grep.

    ``port=0`` binds an ephemeral port; :meth:`start` fills in the
    real one.
    """

    def __init__(self, service, host="127.0.0.1", port=0, *,
                 access_log=None):
        self.service = service
        self.host = host
        self.port = port
        self.access_log = access_log
        self._server = None

    async def start(self):
        self.service.start()
        self._server = await asyncio.start_server(self._handle, self.host,
                                                  self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def close(self):
        if self._server is not None:
            self._server.close()
            with contextlib.suppress(asyncio.TimeoutError, TimeoutError):
                await asyncio.wait_for(self._server.wait_closed(),
                                       timeout=5.0)

    # ------------------------------------------------------------- handling

    async def _handle(self, reader, writer):
        try:
            await self._handle_inner(reader, writer)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass        # client went away mid-request/stream; jobs unaffected
        except Exception as error:  # noqa: BLE001 — one bad request only
            with contextlib.suppress(Exception):
                writer.write(_json_response(
                    500, {"error": f"internal error: {error!r}"}))
        finally:
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    async def _handle_inner(self, reader, writer):
        request_line = await reader.readline()
        if not request_line:
            return
        start = time.perf_counter()
        try:
            method, target, _ = request_line.decode("latin-1").split(None, 2)
        except ValueError:
            writer.write(_json_response(400,
                                        {"error": "malformed request line"}))
            return
        headers = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length") or 0)
        body = await reader.readexactly(length) if length > 0 else b""
        path = target.split("?", 1)[0]
        request_id = (headers.get("x-repro-request-id")
                      or uuid.uuid4().hex[:12])
        status = await self._route(method, path, body, writer, request_id)
        seconds = time.perf_counter() - start
        if self.service.metrics is not None:
            route = _route_label(method, path)
            self.service.metrics.requests.labels(
                route=route, method=method, status=str(status)).inc()
            self.service.metrics.request_seconds.labels(
                route=route).observe(seconds)
        if self.access_log is not None:
            self.access_log({"t": round(time.time(), 3), "method": method,
                             "path": path, "status": status,
                             "seconds": round(seconds, 6),
                             "request_id": request_id})

    def _respond(self, writer, status, payload, headers=(),
                 request_id=None):
        all_headers = list(headers)
        if request_id is not None:
            all_headers.append(("X-Repro-Request-Id", request_id))
        writer.write(_json_response(status, payload, all_headers))
        return status

    async def _route(self, method, path, body, writer, request_id):
        """Dispatch one request; returns the response status code."""
        if path == "/healthz" and method == "GET":
            return self._respond(
                writer, 200, {"status": "ok", **self.service.snapshot()},
                request_id=request_id)
        if path == "/readyz" and method == "GET":
            ok, snapshot = self.service.ready()
            return self._respond(
                writer, 200 if ok else 503,
                {"status": "ready" if ok else "not-ready", **snapshot},
                request_id=request_id)
        if path == "/metrics" and method == "GET":
            if self.service.metrics is None:
                return self._respond(
                    writer, 404,
                    {"error": "metrics disabled "
                              "(server started with --no-metrics)"},
                    request_id=request_id)
            loop = asyncio.get_running_loop()
            # render takes the registry/admission locks; keep it off
            # the event loop like every other service call.
            text = await loop.run_in_executor(
                None, self.service.render_metrics)
            writer.write(_text_response(
                200, text, (("X-Repro-Request-Id", request_id),)))
            return 200
        if path == "/v1/jobs":
            if method != "POST":
                return self._respond(
                    writer, 405, {"error": "submit with POST /v1/jobs"},
                    request_id=request_id)
            return await self._submit(body, writer, request_id)
        if path.startswith("/v1/jobs/") and method == "GET":
            job_id = path[len("/v1/jobs/"):]
            if job_id.endswith("/events"):
                return await self._events(
                    job_id[:-len("/events")].rstrip("/"), writer,
                    request_id)
            return self._status(job_id, writer, request_id)
        return self._respond(
            writer, 404, {"error": f"no route for {method} {path}"},
            request_id=request_id)

    async def _submit(self, body, writer, request_id):
        try:
            payload = json.loads(body.decode() or "null")
        except (ValueError, UnicodeDecodeError):
            return self._respond(
                writer, 400, {"error": "request body is not valid JSON"},
                request_id=request_id)
        client = payload.get("client") if isinstance(payload, dict) else None
        loop = asyncio.get_running_loop()
        # submit() parses and hashes the program off the event loop, so
        # a slow (or injected-slow) client never stalls its neighbours.
        status, doc, headers = await loop.run_in_executor(
            None, self.service.submit, payload, client, request_id)
        return self._respond(writer, status, doc, headers.items(),
                             request_id=request_id)

    def _status(self, job_id, writer, request_id):
        doc = self.service.job_status(job_id)
        if doc is None:
            return self._respond(
                writer, 404, {"error": f"unknown job {job_id!r}"},
                request_id=request_id)
        return self._respond(writer, 200, doc, request_id=request_id)

    async def _events(self, job_id, writer, request_id):
        entry = self.service.registry.get(job_id)
        if entry is None:
            return self._respond(
                writer, 404, {"error": f"unknown job {job_id!r}"},
                request_id=request_id)
        loop = asyncio.get_running_loop()
        pending = asyncio.Queue()

        def forward(record):
            loop.call_soon_threadsafe(pending.put_nowait, record)

        backlog, live = entry.subscribe(forward)
        try:
            writer.write(_stream_head(request_id))
            for record in backlog:
                writer.write((json.dumps(record) + "\n").encode())
            await writer.drain()
            while live:
                record = await pending.get()
                writer.write((json.dumps(record) + "\n").encode())
                await writer.drain()
                if record.get("event") == "result":
                    break
        finally:
            if live:
                entry.unsubscribe(forward)
        return 200


def run_server(service, host="127.0.0.1", port=0, *, banner=None,
               access_log=None):
    """Serve until SIGTERM/SIGINT, then drain gracefully; blocking.

    ``banner`` is called with the started :class:`ServiceHTTP` (the
    CLI prints the "listening on" line from it — with ``port=0`` the
    real port is only known here). ``access_log`` is forwarded to
    :class:`ServiceHTTP`. The first signal stops admission and drains;
    a second one force-quits with ``KeyboardInterrupt``. Returns the
    drained ``service``.
    """
    asyncio.run(_serve_until_signal(service, host, port, banner,
                                    access_log))
    return service


async def _serve_until_signal(service, host, port, banner, access_log=None):
    http = await ServiceHTTP(service, host, port,
                             access_log=access_log).start()
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()

    def _initiate(signum):
        if stop.is_set():       # second signal: force-quit
            import _thread
            _thread.interrupt_main()
            return
        service.begin_drain()   # reject admissions before drain begins
        stop.set()

    installed = []
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(signum, _initiate, signum)
            installed.append(signum)
        except (NotImplementedError, ValueError, OSError):
            continue
    try:
        if banner is not None:
            banner(http)
        await stop.wait()
        # Drain off the event loop: streaming handlers keep running and
        # receive their final ``result`` records as jobs finish.
        await loop.run_in_executor(None, service.drain)
    finally:
        for signum in installed:
            with contextlib.suppress(ValueError, OSError):
                loop.remove_signal_handler(signum)
        await http.close()
