"""Client for the job service: ``repro submit`` and the chaos suite.

Built on :mod:`http.client` (stdlib only). The design centre is
*idempotent resubmission*: job ids are content-addressed
(:mod:`repro.service.protocol`), so retrying a submit — after a
connection error, a 429, a 503, or a dropped event stream — can never
start a second simulation; it coalesces onto the original job
server-side. That makes the aggressive retry loop here safe by
construction.

:meth:`ServiceClient.run_job` is the full client story the fault
matrix exercises end to end: optional injected submit delay (slow
client), submit with exponential backoff honouring ``Retry-After``,
follow the job's ndjson event stream, and — when the stream drops
mid-flight, injected or real — fall back to polling the job's status
document until its terminal state. Faults are driven by a
:class:`repro.faults.ServiceFaultPlan`; a ``pool-loss`` rule is
translated into the over-the-wire ``chaos`` field (the server must be
started with ``--allow-chaos``).
"""

import http.client
import json
import time
import uuid


def new_request_id():
    """A fresh correlation id for ``X-Repro-Request-Id``."""
    return uuid.uuid4().hex[:16]


class ServiceError(Exception):
    """A non-retryable HTTP error (4xx other than backpressure)."""

    def __init__(self, status, message):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


class ServiceUnavailable(Exception):
    """The retry budget ran out without a successful response."""


class ClientDisconnect(Exception):
    """The event stream dropped before its ``result`` record
    (raised for injected disconnects and truncated streams alike)."""


#: Ceiling on any single backoff sleep, seconds.
_MAX_BACKOFF = 5.0


class ServiceClient:
    """One service endpoint plus a retry policy.

    ``sleep`` and ``clock`` are injectable so the retry/backoff paths
    are deterministic under test (no real waiting).

    Every request carries an ``X-Repro-Request-Id`` correlation header
    (caller-supplied or generated); the id echoed by the server's last
    response is kept in ``last_request_id`` — grep it in the server's
    access log, telemetry stream, and ledger.
    """

    def __init__(self, host="127.0.0.1", port=8421, *, retries=5,
                 backoff=0.2, timeout=60.0, sleep=time.sleep,
                 clock=time.monotonic):
        self.host = host
        self.port = port
        self.retries = retries
        self.backoff = backoff
        self.timeout = timeout
        self.sleep = sleep
        self.clock = clock
        self.last_request_id = None

    # ------------------------------------------------------------ plumbing

    def _request(self, method, path, payload=None, request_id=None):
        connection = http.client.HTTPConnection(self.host, self.port,
                                                timeout=self.timeout)
        try:
            body = json.dumps(payload).encode() if payload is not None \
                else None
            headers = {"Content-Type": "application/json"} if body else {}
            if request_id is not None:
                headers["X-Repro-Request-Id"] = request_id
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            data = response.read()
            headers = {name.lower(): value
                       for name, value in response.getheaders()}
            echoed = headers.get("x-repro-request-id")
            if echoed is not None:
                self.last_request_id = echoed
            try:
                doc = json.loads(data.decode() or "null")
            except (ValueError, UnicodeDecodeError):
                doc = None
            return response.status, headers, doc
        finally:
            connection.close()

    def _with_retries(self, send, what):
        """Run an idempotent request under the retry policy.

        Connection errors, 5xx, and explicit backpressure (429/503)
        retry with exponential backoff, preferring the server's
        ``Retry-After`` hint when it is longer; other 4xx raise
        :class:`ServiceError` immediately.
        """
        delay = self.backoff
        last = "no attempt made"
        for attempt in range(self.retries + 1):
            wait = delay
            try:
                status, headers, doc = send()
            except (OSError, http.client.HTTPException) as error:
                last = f"connection error: {error}"
            else:
                if status < 400:
                    return status, headers, doc
                message = (doc or {}).get("error") or f"HTTP {status}"
                if status not in (429, 503) and status < 500:
                    raise ServiceError(status, message)
                last = message
                retry_after = headers.get("retry-after")
                if retry_after is not None:
                    try:
                        wait = max(wait, float(retry_after))
                    except ValueError:
                        pass
            if attempt < self.retries:
                self.sleep(min(wait, _MAX_BACKOFF))
                delay = min(delay * 2, _MAX_BACKOFF)
        raise ServiceUnavailable(
            f"{what}: gave up after {self.retries + 1} attempt(s): {last}")

    # ------------------------------------------------------------- requests

    def submit(self, payload, request_id=None):
        """Submit one job (idempotent); returns its status document.

        ``request_id`` rides as the ``X-Repro-Request-Id`` header on
        every attempt — content-addressed idempotence means a retried
        submit is the *same* request, so it keeps the same id.
        """
        _, _, doc = self._with_retries(
            lambda: self._request("POST", "/v1/jobs", payload,
                                  request_id=request_id),
            f"submit {payload.get('workload', '?')}")
        return doc

    def status(self, job_id, request_id=None):
        """The job's current status document (404 -> ServiceError)."""
        _, _, doc = self._with_retries(
            lambda: self._request("GET", f"/v1/jobs/{job_id}",
                                  request_id=request_id),
            f"status {job_id[:12]}")
        return doc

    def health(self):
        """The ``/healthz`` snapshot (no retries)."""
        _, _, doc = self._request("GET", "/healthz")
        return doc

    def readiness(self):
        """``(ready, snapshot)`` from ``/readyz`` (no retries)."""
        status, _, doc = self._request("GET", "/readyz")
        return status == 200, doc

    def metrics_text(self):
        """The raw Prometheus text from ``GET /metrics`` (no retries).

        Raises :class:`ServiceError` when the server runs without a
        metrics registry (404).
        """
        connection = http.client.HTTPConnection(self.host, self.port,
                                                timeout=self.timeout)
        try:
            connection.request("GET", "/metrics")
            response = connection.getresponse()
            data = response.read()
            if response.status != 200:
                raise ServiceError(response.status,
                                   "metrics scrape failed")
            return data.decode()
        finally:
            connection.close()

    def wait(self, job_id, poll=0.1, timeout=300.0, request_id=None):
        """Poll until the job is terminal; returns its final document."""
        deadline = self.clock() + timeout
        while True:
            doc = self.status(job_id, request_id=request_id)
            if doc.get("state") in ("done", "failed"):
                return doc
            if self.clock() >= deadline:
                raise ServiceUnavailable(
                    f"job {job_id[:12]} still {doc.get('state')!r} after "
                    f"{timeout}s")
            self.sleep(poll)

    def stream(self, job_id, *, plan=None, index=0, request_id=None):
        """Yield the job's lifecycle records, ending with ``result``.

        With a :class:`ServiceFaultPlan`, drops the connection after
        the plan's ``after_events`` threshold and raises
        :class:`ClientDisconnect` — also raised when the stream
        genuinely truncates (server died mid-stream).
        """
        connection = http.client.HTTPConnection(self.host, self.port,
                                                timeout=self.timeout)
        headers = {} if request_id is None \
            else {"X-Repro-Request-Id": request_id}
        try:
            connection.request("GET", f"/v1/jobs/{job_id}/events",
                               headers=headers)
            response = connection.getresponse()
            if response.status != 200:
                raise ServiceError(response.status,
                                   f"no event stream for {job_id[:12]}")
            seen = 0
            while True:
                line = response.readline()
                if not line:
                    raise ClientDisconnect(
                        f"stream for {job_id[:12]} ended after {seen} "
                        f"record(s) without a result")
                record = json.loads(line)
                yield record
                if record.get("event") == "result":
                    return
                seen += 1
                if plan is not None and plan.should_disconnect(index, seen):
                    raise ClientDisconnect(
                        f"injected disconnect after {seen} record(s)")
        finally:
            connection.close()

    def run_job(self, payload, *, plan=None, index=0, request_id=None):
        """The whole client story; returns the job's final document.

        Applies the plan's client-side faults for ``index`` (submit
        delay, pool-loss chaos translation, stream disconnect), then
        recovers from any disconnect by polling — the second half of
        idempotent resubmission: reattaching never re-runs the job.

        A correlation id is always sent (generated when not supplied)
        and kept in ``last_request_id``.
        """
        if request_id is None:
            request_id = new_request_id()
        self.last_request_id = request_id
        if plan is not None:
            delay = plan.submit_delay(index)
            if delay:
                self.sleep(delay)
            if "pool-loss" in plan.matches(index):
                payload = dict(payload)
                chaos = dict(payload.get("chaos") or {})
                chaos.setdefault("crash", {"attempts": 1})
                payload["chaos"] = chaos
        doc = self.submit(payload, request_id=request_id)
        if doc.get("state") in ("done", "failed"):
            return doc
        job_id = doc["job_id"]
        try:
            for record in self.stream(job_id, plan=plan, index=index,
                                      request_id=request_id):
                pass
        except ClientDisconnect:
            pass
        return self.wait(job_id, request_id=request_id)
