"""Data-cache timing model.

Models the paper's data cache: 8 KB, 32-byte lines, LRU replacement,
either direct-mapped or set-associative. The cache "is capable of
servicing one line refill while simultaneously providing data. A second
miss renders the cache incapable of servicing data requests" — so one
refill may be outstanding; while a second miss is waiting, *all*
requests (hits included) are delayed until the first refill completes.

The model is timing/statistics only: an access returns the cycle at
which its data is available; the caller reads or writes the value in
main memory itself.
"""


class CacheConfig:
    """Cache geometry and timing.

    Parameters
    ----------
    size_bytes:
        Total capacity. The paper uses 8 KB; the default here is 2 KB
        because the benchmark working sets are scaled down ~10-50x from
        the paper's to keep cycle-accurate simulation fast, and the
        cache is scaled with them to preserve the working-set/cache
        ratio that drives the paper's cache experiments (DESIGN.md).
    line_words:
        Line size in 32-bit words (8 words = the paper's 32-byte lines).
    assoc:
        Associativity; 1 = direct-mapped. The paper's default is 4-way.
    miss_penalty:
        Cycles to refill a line from memory.
    """

    def __init__(self, size_bytes=2048, line_words=8, assoc=4,
                 miss_penalty=8, ports=2):
        self.size_bytes = size_bytes
        self.line_words = line_words
        self.assoc = assoc
        self.miss_penalty = miss_penalty
        if ports < 1:
            raise ValueError("cache needs at least one port")
        self.ports = ports
        total_lines = size_bytes // (line_words * 4)
        if total_lines % assoc:
            raise ValueError(f"{total_lines} lines not divisible by assoc {assoc}")
        self.num_sets = total_lines // assoc
        if self.num_sets < 1:
            raise ValueError("cache too small for its associativity")

    def describe(self):
        """Human-readable one-liner."""
        kind = "direct-mapped" if self.assoc == 1 else f"{self.assoc}-way set-associative"
        return (f"{self.size_bytes // 1024}KB {kind}, "
                f"{self.line_words * 4}B lines, {self.num_sets} sets")


class CacheStats:
    """Access counters."""

    def __init__(self):
        self.accesses = 0
        self.hits = 0
        self.misses = 0
        self.blocked_cycles = 0

    @property
    def hit_rate(self):
        """Hit fraction in [0, 1]; 1.0 when there were no accesses."""
        if self.accesses == 0:
            return 1.0
        return self.hits / self.accesses


class DataCache:
    """LRU set-associative (or direct-mapped) cache with one refill port."""

    def __init__(self, config=None):
        self.config = config or CacheConfig()
        self.stats = CacheStats()
        # Per-set list of line tags, most recently used last.
        self._sets = [[] for _ in range(self.config.num_sets)]
        # Completion cycle of the refill currently in flight (0 = idle).
        self._refill_done = 0
        # Completion cycle of a queued second miss's refill (0 = none).
        self._queued_done = 0
        # Port arbitration: accesses already granted this cycle.
        self._port_cycle = -1
        self._port_used = 0

    def _locate(self, addr):
        line = addr // self.config.line_words
        return line % self.config.num_sets, line

    def can_access(self, now):
        """True if a cache port is free at cycle ``now``.

        The paper's closing discussion suggests "more cache ports" as an
        improvement; the default models a dual-ported array (one load
        unit plus the store-buffer drain proceed without conflict).
        """
        if now != self._port_cycle:
            return True
        return self._port_used < self.config.ports

    def _take_port(self, now):
        if now != self._port_cycle:
            self._port_cycle = now
            self._port_used = 0
        self._port_used += 1

    def contains(self, addr):
        """True if the word's line is resident (no state change)."""
        index, line = self._locate(addr)
        return line in self._sets[index]

    def refill_horizon(self, now):
        """Next-event horizon: latest in-flight refill completion, or
        ``None`` when no refill is outstanding at cycle ``now``.

        Part of the fast-forward protocol (``docs/PERFORMANCE.md``).
        Classification-only: every miss's data-ready cycle is already a
        writeback-calendar entry, so the refill never needs to bound the
        jump itself — it tells the skip engine that an inert span is a
        dcache-miss wait. Port arbitration is per-cycle state and can
        never block a fresh cycle.
        """
        done = self._queued_done or self._refill_done
        return done if done > now else None

    def _touch(self, index, line):
        ways = self._sets[index]
        ways.remove(line)
        ways.append(line)

    def _install(self, index, line):
        ways = self._sets[index]
        if len(ways) >= self.config.assoc:
            ways.pop(0)  # evict LRU
        ways.append(line)

    def access(self, addr, now):
        """Perform one access at cycle ``now``; return the data-ready cycle.

        Updates LRU state and statistics. Reads and writes are treated
        identically (write-allocate); the store buffer serializes writes
        so a write access is also one request.
        """
        self.stats.accesses += 1
        self._take_port(now)
        index, line = self._locate(addr)
        resident = line in self._sets[index]

        # Retire completed refills before judging availability.
        if self._queued_done and now >= self._queued_done:
            self._refill_done = 0
            self._queued_done = 0
        elif self._refill_done and now >= self._refill_done:
            self._refill_done = self._queued_done
            self._queued_done = 0

        if resident:
            self.stats.hits += 1
            self._touch(index, line)
            if self._queued_done and now < self._queued_done:
                # A second miss is pending: the cache cannot serve data
                # until the *first* refill completes.
                self.stats.blocked_cycles += self._refill_done - now
                return max(now, self._refill_done)
            return now

        self.stats.misses += 1
        penalty = self.config.miss_penalty
        if not self._refill_done or now >= self._refill_done:
            # Refill port free: start immediately.
            ready = now + penalty
            self._refill_done = ready
        elif not self._queued_done:
            # One refill outstanding: this miss queues behind it.
            ready = self._refill_done + penalty
            self._queued_done = ready
            self.stats.blocked_cycles += self._refill_done - now
        else:
            # Two misses already in the system: serialize after both.
            ready = self._queued_done + penalty
            self._refill_done = self._queued_done
            self._queued_done = ready
            self.stats.blocked_cycles += ready - penalty - now
        self._install(index, line)
        return ready

    def reset_stats(self):
        """Zero the counters (keeps cache contents)."""
        self.stats = CacheStats()
