"""Trace-driven cache simulation.

The paper's era explored cache organizations with trace-driven
simulation: collect a memory-reference trace once, then replay it
through candidate cache configurations in seconds. This module provides
both halves:

* :func:`collect_trace` runs a program on the functional simulator and
  records every data-memory reference (address, is_write, tid) in
  execution order;
* :class:`TraceCacheSim` replays a trace through a
  :class:`~repro.mem.cache.DataCache` for hit-rate statistics, orders of
  magnitude faster than the cycle-accurate pipeline.

Because the functional simulator interleaves threads round-robin per
instruction while the pipeline interleaves per fetch block, trace-driven
hit rates approximate (not equal) the pipeline's — the classic
methodological caveat, which `tests/test_tracesim.py` quantifies.
"""

from repro.funcsim.machine import FunctionalSim
from repro.isa.opcodes import Op
from repro.mem.cache import DataCache


class MemoryReference:
    """One data-memory access."""

    __slots__ = ("addr", "is_write", "tid")

    def __init__(self, addr, is_write, tid):
        self.addr = addr
        self.is_write = is_write
        self.tid = tid

    def __repr__(self):
        kind = "W" if self.is_write else "R"
        return f"{kind} t{self.tid} @{self.addr}"


class _TracingSim(FunctionalSim):
    """Functional simulator that records data-memory references."""

    def __init__(self, program, nthreads=1, mem_words=None):
        super().__init__(program, nthreads=nthreads, mem_words=mem_words)
        self.trace = []

    def step(self, thread):
        instr = self.program.instructions[thread.pc] \
            if 0 <= thread.pc < len(self.program.instructions) else None
        if instr is not None and instr.info.is_mem:
            addr = int(self.regs.read(thread.tid, instr.rs1)) + instr.imm
            is_write = instr.info.is_store and instr.op is not Op.TAS
            self.trace.append(MemoryReference(addr, is_write, thread.tid))
            if instr.op is Op.TAS:
                # tas is a read-modify-write: one read + one write.
                self.trace.append(MemoryReference(addr, True, thread.tid))
        super().step(thread)


def collect_trace(program, nthreads=1, max_steps=20_000_000):
    """Run ``program`` and return its data-reference trace."""
    sim = _TracingSim(program, nthreads=nthreads)
    sim.run(max_steps=max_steps)
    return sim.trace


class TraceCacheSim:
    """Replay a reference trace through a cache configuration."""

    def __init__(self, config):
        self.cache = DataCache(config)

    def replay(self, trace):
        """Replay all references; returns the cache's stats object.

        References are spaced far apart in time so the refill port never
        interferes — trace simulation measures *locality*, not port
        contention.
        """
        cache = self.cache
        now = 0
        for ref in trace:
            now += 100
            cache.access(ref.addr, now)
        return cache.stats


def sweep_cache_sizes(trace, sizes, assoc=4, line_words=8):
    """Hit rate for each cache size over one trace.

    Returns ``{size_bytes: hit_rate}`` — the classic trace-driven
    working-set curve.
    """
    from repro.mem.cache import CacheConfig
    out = {}
    for size in sizes:
        stats = TraceCacheSim(CacheConfig(size_bytes=size, assoc=assoc,
                                          line_words=line_words)).replay(trace)
        out[size] = stats.hit_rate
    return out
