"""Store buffer between the scheduling unit and the data cache.

A store occupies an entry from the moment it *issues* (address and value
computed) until the line has been written to the cache. The entry only
becomes drainable once the store's scheduling-unit entry has been
committed ("an instruction stays in the store buffer until its entry in
the SU is shifted out"). One committed entry drains per cycle, subject
to the cache's refill port.

Loads consult the buffer for same-address forwarding so a thread always
sees its own completed stores.
"""


class StoreBufferEntry:
    """One pending store."""

    __slots__ = ("tag", "tid", "addr", "value", "committed")

    def __init__(self, tag, tid, addr, value):
        self.tag = tag
        self.tid = tid
        self.addr = addr
        self.value = value
        self.committed = False

    def __repr__(self):
        state = "committed" if self.committed else "speculative"
        return f"StoreBufferEntry(tag={self.tag}, tid={self.tid}, addr={self.addr}, {state})"


class StoreBuffer:
    """FIFO store buffer with a fixed number of entries (8 in the paper)."""

    def __init__(self, depth=8):
        self.depth = depth
        self.entries = []
        self.drained = 0
        self._busy_until = 0

    @property
    def full(self):
        return len(self.entries) >= self.depth

    def allocate(self, tag, tid, addr, value):
        """Add a store at issue time; raises if the buffer is full."""
        if self.full:
            raise RuntimeError("store buffer overflow; caller must check .full")
        entry = StoreBufferEntry(tag, tid, addr, value)
        self.entries.append(entry)
        return entry

    def commit(self, tag):
        """Mark the entry with ``tag`` drainable (its SU entry committed)."""
        for entry in self.entries:
            if entry.tag == tag:
                entry.committed = True
                return
        raise KeyError(f"no store-buffer entry with tag {tag}")

    def squash(self, tags):
        """Drop speculative entries whose tags are in ``tags``."""
        self.entries = [e for e in self.entries
                        if e.committed or e.tag not in tags]

    def forward(self, addr):
        """Most recent buffered value for ``addr``, or ``None``.

        Used for load forwarding; returns the youngest matching entry's
        value regardless of thread (the youngest is the architecturally
        latest store to that address that has issued).
        """
        for entry in reversed(self.entries):
            if entry.addr == addr:
                return entry.value
        return None

    def has_match(self, addr):
        """True if any buffered store targets ``addr``."""
        return any(entry.addr == addr for entry in self.entries)

    def next_drain_cycle(self, now):
        """Next-event horizon: earliest cycle at or after ``now`` when a
        drain could succeed.

        Only meaningful while the buffer is non-empty; part of the
        fast-forward protocol (``docs/PERFORMANCE.md``). The head entry
        is always committed (stores enter the buffer at commit), so the
        only wait is for the previous drain's refill to release the
        drain port — a cycle this object knows exactly.
        """
        return self._busy_until if self._busy_until > now else now

    def drain_one(self, cache, memory, now):
        """Write the oldest committed entry to cache+memory.

        Returns True if an entry drained. Only the oldest buffer entry
        may drain (FIFO order preserves store ordering); it must be
        committed, and the previous drain must have completed — a store
        that misses occupies the drain port for the whole refill, which
        is how a small buffer backs up and gates commit.
        """
        if now < self._busy_until:
            return False
        if not self.entries or not self.entries[0].committed:
            return False
        if not cache.can_access(now):
            return False
        entry = self.entries.pop(0)
        ready = cache.access(entry.addr, now)
        self._busy_until = max(ready, now + 1)
        memory.write(entry.addr, entry.value)
        self.drained += 1
        return True
