"""Flat word-addressed main memory."""

from repro.asm.program import DATA_BASE

#: Default memory size: 1 Mi words (4 MB equivalent).
DEFAULT_WORDS = 1 << 20


class MemoryFault(Exception):
    """Raised on an out-of-range memory access."""

    def __init__(self, addr, size):
        super().__init__(f"address {addr} outside memory of {size} words")
        self.addr = addr


class MainMemory:
    """Word-addressed memory holding Python numbers (ints or floats)."""

    def __init__(self, words=DEFAULT_WORDS):
        self.size = words
        self._cells = [0] * words

    def load_image(self, data, base=DATA_BASE):
        """Install a program's initial data segment."""
        if base + len(data) > self.size:
            raise MemoryFault(base + len(data), self.size)
        self._cells[base:base + len(data)] = list(data)

    def read(self, addr):
        """Read one word."""
        if not 0 <= addr < self.size:
            raise MemoryFault(addr, self.size)
        return self._cells[addr]

    def write(self, addr, value):
        """Write one word."""
        if not 0 <= addr < self.size:
            raise MemoryFault(addr, self.size)
        self._cells[addr] = value

    def read_block(self, addr, count):
        """Read ``count`` consecutive words (for inspecting results)."""
        if not (0 <= addr and addr + count <= self.size):
            raise MemoryFault(addr, self.size)
        return self._cells[addr:addr + count]
