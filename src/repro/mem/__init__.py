"""Memory subsystem: flat main memory, data caches, and the store buffer.

The caches model *timing and statistics* (hits, misses, the
one-outstanding-refill restriction); data values always live in
:class:`~repro.mem.memory.MainMemory`, so the cache can never corrupt
architectural state. This is a deliberate split: the paper's results
depend on cache hit rates and refill stalls, not on modelling coherence
of a single-core cache.
"""

from repro.mem.memory import MainMemory, MemoryFault
from repro.mem.cache import CacheConfig, CacheStats, DataCache
from repro.mem.storebuffer import StoreBuffer, StoreBufferEntry

__all__ = [
    "CacheConfig",
    "CacheStats",
    "DataCache",
    "MainMemory",
    "MemoryFault",
    "StoreBuffer",
    "StoreBufferEntry",
]
