"""Reproduction of "Performance Study of a Multithreaded Superscalar
Microprocessor" (Gulati & Bagherzadeh, HPCA 1996).

A complete SDSP-style toolkit built from scratch:

* :mod:`repro.isa` — the instruction set and register model;
* :mod:`repro.asm` — assembler / disassembler;
* :mod:`repro.lang` — the MiniC compiler (plus an AST interpreter);
* :mod:`repro.funcsim` — architectural reference simulator;
* :mod:`repro.mem` — caches, store buffer, main memory;
* :mod:`repro.core` — the cycle-accurate multithreaded superscalar
  pipeline (the paper's contribution);
* :mod:`repro.workloads` — the paper's eleven benchmarks;
* :mod:`repro.harness` — experiment drivers for every table and figure.

Quick start::

    from repro.lang import compile_source
    from repro.core import PipelineSim, MachineConfig

    program = compile_source(minic_source, nthreads=4)
    stats = PipelineSim(program, MachineConfig(nthreads=4)).run()
    print(stats.summary())
"""

__version__ = "1.0.0"
