"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``asm FILE``
    Assemble an ``.s`` file and print a listing (address, word, text).
``cc FILE``
    Compile a MiniC file; print the generated assembly.
``run FILE``
    Assemble/compile (by extension) and simulate, printing run statistics.
``bench NAME``
    Run one of the paper's workloads by name and verify its checksum.
``workloads``
    List the available workloads.
``trace PROG``
    Simulate with the event bus attached and export the trace:
    ``--format perfetto`` (open in https://ui.perfetto.dev), ``jsonl``
    (one event per line), or ``text``. ``PROG`` is a file or a
    workload name.
``stats PROG``
    Simulate and print run statistics; ``--breakdown`` adds the
    per-cycle stall-attribution table (see docs/OBSERVABILITY.md);
    ``--json`` dumps the full machine-readable record (stats counters,
    attribution, metrics summaries) in the ledger's serialization.
``diff RUNA RUNB``
    Compare two ledger records (``last``, ``last~N``, or a run-id
    prefix): per-counter deltas plus the attribution waterfall.
``check --baseline BENCH_engine.json``
    Regression sentry: re-measure the fixed profiling matrix and fail
    unless simulated cycle counts are bit-identical to the baseline and
    throughput is within the tolerance band (``--advisory-throughput``
    demotes throughput failures to warnings for noisy shared runners).
``report --experiment {threads,fetch,su,cache}``
    Re-run one paper experiment grid through the ledger and render the
    corresponding EXPERIMENTS.md table from ledger data (``--csv`` for
    a machine-readable copy). ``--live`` shows a one-line progress
    view, ``--events``/``--trace`` record the sweep's telemetry as a
    JSONL event log and a Perfetto timeline, and ``--sweep ID``
    renders a *finished* sweep's table without re-simulating.
``sweep LOG``
    Summarize a finished sweep from its JSONL event log (see
    ``--events``): lifecycle accounting, cache/batch counters, backend
    mix, ``--waterfall`` per-job timelines, and failure forensics.
    Exits 1 if the accounting invariant is violated (a job without
    exactly one queued + one terminal event).
``serve``
    Run the HTTP simulation job service (see docs/SERVICE.md):
    content-addressed dedup of concurrent submissions, admission
    control with 429 + ``Retry-After``, per-job lifecycle-event
    streaming, graceful drain on SIGTERM/SIGINT. ``--events`` records
    the server-lifetime event stream for a ``repro sweep`` audit.
``submit WORKLOAD``
    Submit one job to a running ``repro serve`` and (by default) follow
    it to its terminal state, with exponential-backoff retries and
    idempotent resubmission; prints the final job document as JSON.

``run``, ``bench``, ``check``, and ``report`` append durable records
to the run ledger (``~/.cache/repro-sdsp/ledger.jsonl``, overridden by
``REPRO_LEDGER`` or ``--ledger``; disabled by ``--no-ledger``).
``--sweep-id`` stamps appended records as one sweep; ``repro diff``
and ``repro report`` scope to a recorded sweep with ``--sweep``.
"""

import argparse
import json
import os
import sys
import time

from repro.asm import assemble, disassemble
from repro.core import FetchPolicy, CommitPolicy, MachineConfig, PipelineSim
from repro.funcsim import FunctionalSim
from repro.lang import compile_source, compile_to_asm
from repro.mem.cache import CacheConfig
from repro.workloads import ALL_WORKLOADS, BY_NAME

_MINIC_SUFFIXES = (".mc", ".c", ".minic")


class CliError(Exception):
    """A user-input error: printed as one line, exit status 2.

    Raised instead of letting a raw ``KeyError``/``ValueError``
    traceback escape for unknown workload names, missing files, and
    invalid machine configurations.
    """


def _workload_choices():
    return ", ".join(sorted(BY_NAME))


def _machine_args(parser):
    parser.add_argument("--threads", type=int, default=1,
                        help="number of resident threads (default 1)")
    parser.add_argument("--policy", default="true_rr",
                        choices=[p.value for p in FetchPolicy],
                        help="fetch policy")
    parser.add_argument("--commit", default="flexible",
                        choices=[p.value for p in CommitPolicy],
                        help="result-commit policy")
    parser.add_argument("--su", type=int, default=64,
                        help="scheduling-unit entries")
    parser.add_argument("--cache-kb", type=float, default=2.0,
                        help="data-cache size in KB")
    parser.add_argument("--cache-assoc", type=int, default=4,
                        help="cache associativity (1 = direct-mapped)")
    parser.add_argument("--store-buffer", type=int, default=8,
                        help="store-buffer entries")
    parser.add_argument("--enhanced-fus", action="store_true",
                        help="use the enhanced functional-unit mix")
    parser.add_argument("--max-cycles", type=int, default=20_000_000)


def _ledger_args(parser):
    parser.add_argument("--ledger", default=None, metavar="PATH",
                        help="run-ledger file (default: REPRO_LEDGER or "
                             "~/.cache/repro-sdsp/ledger.jsonl)")
    parser.add_argument("--no-ledger", action="store_true",
                        help="do not append records to the run ledger")
    parser.add_argument("--sweep-id", default=None, metavar="ID",
                        help="stamp appended ledger records with this "
                             "sweep id (see 'repro sweep' and "
                             "report/diff --sweep)")


def _ledger_append(args, *, source, workload, config, stats, program=None,
                   checksum=None, verified=None, wall_seconds=None,
                   sweep_id=None):
    """Append one record to the run ledger; never fails the command."""
    if getattr(args, "no_ledger", False):
        return
    from repro.harness.runner import program_hash
    from repro.obs import ledger as ledger_mod

    if sweep_id is None:
        sweep_id = getattr(args, "sweep_id", None)
    record = ledger_mod.make_record(
        source=source, workload=workload, config=config, stats=stats,
        timestamp=ledger_mod.utc_now_iso(),
        program_hash=program_hash(program) if program is not None else None,
        checksum=checksum, verified=verified, wall_seconds=wall_seconds,
        sweep_id=sweep_id)
    try:
        ledger_mod.RunLedger(args.ledger).append(record)
    except OSError as error:
        print(f"repro: warning: could not append to run ledger: {error}",
              file=sys.stderr)


def _open_telemetry(args):
    """Build a sweep-telemetry hub from ``--live/--events/--trace``.

    Returns ``(telemetry, finish)``: ``telemetry`` is ``None`` when no
    flag asked for one (so commands stay on their zero-overhead path),
    and ``finish()`` flushes the file-backed sinks — the JSONL event
    log and the Perfetto sweep trace — after the sweep ends.
    """
    live = getattr(args, "live", False)
    events_path = getattr(args, "events", None)
    trace_path = getattr(args, "trace", None)
    if not live and not events_path and not trace_path:
        return None, lambda: None
    from repro.obs.export import JsonlSink, SweepTraceCollector
    from repro.obs.telemetry import LiveProgress, SweepTelemetry

    telemetry = SweepTelemetry(sweep_id=getattr(args, "sweep_id", None))
    handle = None
    collector = None
    if live:
        telemetry.subscribe(LiveProgress())
    if events_path:
        handle = open(events_path, "w")
        telemetry.subscribe(JsonlSink(handle))
    if trace_path:
        collector = SweepTraceCollector()
        telemetry.subscribe(collector)

    def finish():
        if handle is not None:
            handle.close()
            print(f"sweep events -> {events_path} "
                  f"(sweep {telemetry.sweep_id}; inspect with "
                  f"'repro sweep {events_path}')", file=sys.stderr)
        if collector is not None:
            with open(trace_path, "w") as out:
                collector.write(out)
            print(f"sweep trace -> {trace_path} (perfetto)",
                  file=sys.stderr)

    return telemetry, finish


def _machine_config(args):
    from repro.core.config import FU_DEFAULT, FU_ENHANCED
    try:
        cache = CacheConfig(size_bytes=int(args.cache_kb * 1024),
                            assoc=args.cache_assoc)
        return MachineConfig(
            nthreads=args.threads,
            fetch_policy=args.policy,
            commit_policy=args.commit,
            su_entries=args.su,
            store_buffer_depth=args.store_buffer,
            fu_counts=FU_ENHANCED if args.enhanced_fus else FU_DEFAULT,
            cache=cache,
            max_cycles=args.max_cycles,
        ).validate()
    except ValueError as error:
        raise CliError(f"invalid configuration: {error}") from error


def _load_program(path, nthreads, align):
    try:
        with open(path) as handle:
            source = handle.read()
    except OSError as error:
        raise CliError(
            f"cannot read {path!r}: {error.strerror or error}") from error
    if any(path.endswith(suffix) for suffix in _MINIC_SUFFIXES):
        return compile_source(source, nthreads=nthreads,
                              align_branch_targets=align)
    return assemble(source, align_targets=align)


def cmd_asm(args):
    program = _load_program(args.file, 1, args.align)
    listing = disassemble(program)
    words = program.words
    for line, word in zip(listing.splitlines(), words):
        print(f"{word:08x}  {line}")
    print(f"# {len(program)} instructions, {len(program.data)} data words, "
          f"entry pc={program.entry}", file=sys.stderr)
    return 0


def cmd_cc(args):
    with open(args.file) as handle:
        source = handle.read()
    print(compile_to_asm(source, nthreads=args.threads))
    return 0


def cmd_run(args):
    config = _machine_config(args)  # validate flags before compiling
    program = _load_program(args.file, args.threads, args.align)
    if args.functional:
        sim = FunctionalSim(program, nthreads=args.threads)
        sim.run(max_steps=args.max_cycles)
        print(f"functional run complete: {sim.steps} instructions")
        for thread in sim.threads:
            print(f"  thread {thread.tid}: {thread.retired} retired")
        return 0
    sim = PipelineSim(program, config)
    telemetry, finish = _open_telemetry(args)
    beat_stop = beat_thread = None
    if telemetry is not None:
        # Degenerate one-job sweep: the same lifecycle events a grid
        # emits, with heartbeats carrying the live simulated cycle.
        import threading
        telemetry.sweep_start(total=1, workers=1)
        telemetry.job_queued(0, args.file)
        telemetry.job_started(0, args.file, 1)
        beat_stop = threading.Event()

        def _beat():
            while not beat_stop.wait(telemetry.heartbeat):
                telemetry.maybe_heartbeat(running=1, queued=0,
                                          cycle=sim.cycle)

        beat_thread = threading.Thread(target=_beat, daemon=True)
        beat_thread.start()
    start = time.perf_counter()
    try:
        stats = sim.run()
    finally:
        if beat_stop is not None:
            beat_stop.set()
            beat_thread.join(timeout=2.0)
    wall = time.perf_counter() - start
    if telemetry is not None:
        telemetry.job_done(0, args.file, cycles=stats.cycles,
                           wall_seconds=wall)
        telemetry.sweep_end()
        finish()
    print(stats.summary())
    _ledger_append(args, source="cli.run", workload=args.file, config=config,
                   stats=stats, program=program, wall_seconds=wall,
                   sweep_id=telemetry.sweep_id if telemetry else None)
    return 0


def _resolve_program(name_or_path, nthreads, align):
    """A workload name (``repro workloads``) or a source-file path."""
    workload = BY_NAME.get(name_or_path)
    if workload is not None:
        return workload.program(nthreads)
    if not any(name_or_path.endswith(s)
               for s in (".s",) + _MINIC_SUFFIXES) \
            and not os.path.exists(name_or_path):
        raise CliError(f"unknown workload {name_or_path!r}; valid "
                       f"workloads: {_workload_choices()}")
    return _load_program(name_or_path, nthreads, align)


def cmd_trace(args):
    config = _machine_config(args)
    program = _resolve_program(args.prog, args.threads, args.align)
    sim = PipelineSim(program, config)
    out = args.out
    if args.format == "perfetto":
        from repro.obs.export import PerfettoCollector
        collector = PerfettoCollector(config)
        sim.add_sink(collector)
        stats = sim.run()
        with open(out, "w") as stream:
            collector.write(stream, stats.cycles)
        count = collector.count
    else:
        from repro.obs.export import JsonlSink, TextSink
        with open(out, "w") as stream:
            sink_cls = JsonlSink if args.format == "jsonl" else TextSink
            sink = sink_cls(stream)
            sim.add_sink(sink)
            stats = sim.run()
            count = sink.count
    print(f"{stats.cycles} cycles, {stats.committed} instructions; "
          f"{count} events -> {out} ({args.format})", file=sys.stderr)
    return 0


def cmd_stats(args):
    config = _machine_config(args)
    program = _resolve_program(args.prog, args.threads, args.align)
    backend = args.backend
    if backend == "auto":
        # Resolve to the concrete engine before anything records it:
        # ledger records and --json carry the backend that executed,
        # never the literal "auto". For a single ad-hoc run, spec wins
        # only when a prior run already paid for codegen (process or
        # on-disk source cache); otherwise the interpreter runs.
        from repro.core.codegen import have_engine
        backend = "spec" if have_engine(config) else "scalar"
    if backend == "spec":
        from repro.core.codegen import make_spec
        sim = make_spec(program, config)
    else:
        sim = PipelineSim(program, config)
    if args.breakdown or args.json:
        attr = sim.attach_attribution()
        sim.attach_metrics()
    start = time.perf_counter()
    stats = sim.run()
    wall = time.perf_counter() - start
    if args.breakdown or args.json:
        attr.verify(stats)
    if args.json:
        # One serialization path for everything machine-readable: the
        # ledger's record shape (full histograms included here).
        from repro.harness.runner import program_hash
        from repro.obs import ledger as ledger_mod
        record = ledger_mod.make_record(
            source="cli.stats", workload=args.prog, config=config,
            stats=stats, timestamp=ledger_mod.utc_now_iso(),
            program_hash=program_hash(program), wall_seconds=wall,
            keep_interval_metrics=True, backend=backend)
        print(json.dumps(record, indent=2, sort_keys=True))
        return 0
    print(stats.summary())
    if args.breakdown:
        from repro.obs.attribution import format_breakdown
        print()
        print(format_breakdown(stats.stall_breakdown, stats.cycles))
    return 0


def _bench_grid(args, workload, config, telemetry, finish):
    """``repro bench --live``: a one-job sweep through ``run_grid`` so
    the progress line / event log come from the exact telemetry hooks
    every grid sweep uses (``verify=False``: a checksum mismatch is
    reported as MISMATCH + exit 1, not an exception)."""
    from repro.harness.parallel import run_grid

    try:
        results = run_grid([(workload, config)], workers=1, verify=False,
                           telemetry=telemetry)
    finally:
        finish()
    result = results[0]
    if not result.ok:
        raise CliError(f"{workload.name}: {result.kind} after "
                       f"{result.attempts} attempt(s): {result.message}")
    ok = result.verified
    print(result.stats.summary())
    verdict = ("verified" if ok
               else f"MISMATCH vs {workload.expected(args.threads)!r}")
    print(f"checksum:            {result.checksum!r} ({verdict})")
    _ledger_append(args, source="cli.bench", workload=workload.name,
                   config=config, stats=result.stats,
                   program=workload.program(args.threads),
                   checksum=result.checksum, verified=ok,
                   wall_seconds=result.wall_seconds,
                   sweep_id=telemetry.sweep_id)
    return 0 if ok else 1


def cmd_bench(args):
    workload = BY_NAME.get(args.name)
    if workload is None:
        raise CliError(f"unknown workload {args.name!r}; valid "
                       f"workloads: {_workload_choices()}")
    config = _machine_config(args)
    telemetry, finish = _open_telemetry(args)
    if telemetry is not None:
        return _bench_grid(args, workload, config, telemetry, finish)
    program = workload.program(args.threads)
    sim = PipelineSim(program, config)
    start = time.perf_counter()
    stats = sim.run()
    wall = time.perf_counter() - start
    checksum = sim.mem(workload.checksum_address(args.threads))
    ok = workload.verify(checksum, args.threads)
    print(stats.summary())
    verdict = ("verified" if ok
               else f"MISMATCH vs {workload.expected(args.threads)!r}")
    print(f"checksum:            {checksum!r} ({verdict})")
    _ledger_append(args, source="cli.bench", workload=workload.name,
                   config=config, stats=stats, program=program,
                   checksum=checksum, verified=ok, wall_seconds=wall)
    return 0 if ok else 1


def cmd_diff(args):
    from repro.obs.ledger import LedgerError, RunLedger
    from repro.obs.report import render_diff

    ledger = RunLedger(args.ledger)
    try:
        record_a = ledger.resolve(args.run_a, sweep=args.sweep)
        record_b = ledger.resolve(args.run_b, sweep=args.sweep)
    except LedgerError as error:
        raise CliError(str(error)) from error
    print(render_diff(record_a, record_b))
    return 0


def cmd_check(args):
    from repro.obs import sentry
    from repro.obs import ledger as ledger_mod

    try:
        with open(args.baseline) as handle:
            baseline = json.load(handle)
    except (OSError, ValueError) as error:
        raise CliError(
            f"cannot read baseline {args.baseline!r}: {error}") from error
    matrix = sentry.MATRIX
    want_sweep = False
    if args.entry:
        wanted = set(args.entry)
        # The batch-sweep label is not a matrix entry: it pins the
        # aggregate of the interleaved scalar/batch sweep measurement.
        want_sweep = sentry.BATCH_SWEEP_LABEL in wanted
        wanted.discard(sentry.BATCH_SWEEP_LABEL)
        known = {label for label, _, _ in sentry.MATRIX}
        unknown = sorted(wanted - known)
        if unknown:
            valid = sorted(known) + [sentry.BATCH_SWEEP_LABEL]
            raise CliError(f"unknown matrix entr"
                           f"{'y' if len(unknown) == 1 else 'ies'} "
                           f"{', '.join(unknown)}; valid: "
                           f"{', '.join(valid)}")
        matrix = [m for m in sentry.MATRIX if m[0] in wanted]
    tolerance = (args.tolerance if args.tolerance is not None
                 else sentry.DEFAULT_TOLERANCE)
    measured = (sentry.measure(args.reps, matrix=matrix,
                               backend=args.backend) if matrix else {})
    sweep_measured = {}
    if want_sweep:
        # Interleaved sweep: asserts scalar/batch bit-identity itself;
        # the pinned entry is the batch side's aggregate throughput.
        _scalar_entry, batch_entry = sentry.measure_backends(args.reps)
        sweep_measured = {sentry.BATCH_SWEEP_LABEL: batch_entry}
    cycle_failures, perf_failures = sentry.check_baseline(
        {**measured, **sweep_measured}, baseline, tolerance=tolerance)
    if not args.no_ledger and measured:
        try:
            ledger_mod.RunLedger(args.ledger).append_all(
                sentry.ledger_records(
                    measured, source="cli.check",
                    timestamp=ledger_mod.utc_now_iso(), matrix=matrix,
                    backend=args.backend,
                    sweep_id=getattr(args, "sweep_id", None)))
        except OSError as error:
            print(f"repro: warning: could not append to run ledger: "
                  f"{error}", file=sys.stderr)
    for failure in cycle_failures:
        print(f"CYCLES: {failure}", file=sys.stderr)
    for failure in perf_failures:
        tag = ("THROUGHPUT (advisory)" if args.advisory_throughput
               else "THROUGHPUT")
        print(f"{tag}: {failure}", file=sys.stderr)
    fatal = bool(cycle_failures) or (
        bool(perf_failures) and not args.advisory_throughput)
    if fatal:
        print(f"repro check FAILED: {len(cycle_failures)} cycle-count "
              f"mismatch(es), {len(perf_failures)} throughput "
              f"regression(s)", file=sys.stderr)
        return 1
    note = (f", {len(perf_failures)} advisory throughput warning(s)"
            if perf_failures else "")
    checked = len(measured) + len(sweep_measured)
    backend_note = ("" if args.backend == "scalar"
                    else f" via {args.backend} backend")
    print(f"repro check ok: {checked} entries{backend_note}, simulated "
          f"cycle counts bit-identical to {args.baseline}{note}")
    return 0


def _parse_service_url(url, default_port=8421):
    """``(host, port)`` from ``http://host:port``, ``host:port``, or
    ``host``."""
    bare = url.strip()
    for scheme in ("http://", "https://"):
        if bare.startswith(scheme):
            bare = bare[len(scheme):]
            break
    bare = bare.split("/", 1)[0]
    host, _, port_text = bare.partition(":")
    if not host:
        raise CliError(f"cannot parse service URL {url!r}")
    if not port_text:
        return host, default_port
    try:
        return host, int(port_text)
    except ValueError:
        raise CliError(f"cannot parse service URL {url!r}: bad port "
                       f"{port_text!r}") from None


def cmd_report(args):
    from repro.harness.diskcache import default_path as cache_default
    from repro.harness.parallel import GridError
    from repro.obs.ledger import LedgerError
    from repro.obs.report import run_report

    telemetry, finish = _open_telemetry(args)
    if args.sweep is not None and telemetry is not None:
        raise CliError("--live/--events/--trace instrument a fresh grid; "
                       "--sweep renders an already-finished one")
    client = None
    recoverable = (GridError, LedgerError, ValueError, KeyError)
    if args.service:
        if telemetry is not None:
            raise CliError("--live/--events/--trace watch a local grid; "
                           "with --service the server owns the telemetry "
                           "stream (see repro serve --events)")
        from repro.service.client import (ServiceClient, ServiceError,
                                          ServiceUnavailable)
        host, port = _parse_service_url(args.service)
        client = ServiceClient(host, port)
        recoverable += (ServiceError, ServiceUnavailable, OSError)
    disk_cache = None if args.fresh else cache_default()
    try:
        text = run_report(
            args.experiment, ledger=args.ledger,
            workloads=args.workloads or None,
            threads=tuple(args.threads) if args.threads else None,
            workers=args.workers, disk_cache=disk_cache,
            instrument=args.instrument, csv_path=args.csv,
            backend=args.backend, sweep=args.sweep, telemetry=telemetry,
            sweep_id=getattr(args, "sweep_id", None), client=client)
    except recoverable as error:
        message = error.args[0] if error.args else str(error)
        raise CliError(str(message)) from error
    finally:
        finish()
    print(text)
    return 0


def cmd_sweep(args):
    from repro.obs.telemetry import load_events, render_summary

    try:
        events = load_events(args.log)
    except OSError as error:
        raise CliError(f"cannot read {args.log!r}: "
                       f"{error.strerror or error}") from error
    if not events:
        raise CliError(f"{args.log!r} contains no sweep events")
    text, ok = render_summary(events, waterfall=args.waterfall,
                              show_failures=not args.no_failures)
    print(text)
    return 0 if ok else 1


def cmd_serve(args):
    from repro.obs.export import JsonlSink
    from repro.service import AccessLog, JobService, run_server

    sinks = []
    handle = None
    if args.events:
        # Line-buffered so the event log tails live (the CI chaos
        # driver watches it while the server runs).
        handle = open(args.events, "w", buffering=1)
        sinks.append(JsonlSink(handle))
    ledger = None
    if not args.no_ledger:
        from repro.obs.ledger import RunLedger
        ledger = RunLedger(args.ledger)
    disk_cache = None
    if not args.no_cache:
        from repro.harness.diskcache import DiskResultCache
        from repro.harness.runner import Runner
        disk_cache = DiskResultCache(args.cache,
                                     schema=Runner.RESULT_SCHEMA)
    metrics = None
    if not args.no_metrics:
        from repro.obs.runtime import MetricsRegistry
        metrics = MetricsRegistry()
    # Access log defaults to stderr: stdout carries the banner and the
    # drain summary that tools (the chaos driver) parse, and stderr may
    # be shared with a LiveProgress elsewhere — never raw stdout.
    access_log = None
    access_handle = None
    if not args.no_access_log:
        if args.access_log:
            access_handle = open(args.access_log, "w", buffering=1)
            access_log = AccessLog(access_handle)
        else:
            access_log = AccessLog(sys.stderr)
    service = JobService(
        workers=args.workers, queue_depth=args.queue_depth, rate=args.rate,
        burst=args.burst, timeout=args.timeout, retries=args.retries,
        backoff=args.backoff, backend=args.backend, disk_cache=disk_cache,
        ledger=ledger, sinks=sinks, allow_chaos=args.allow_chaos,
        heartbeat=args.heartbeat, metrics=metrics)

    def banner(http):
        print(f"repro serve: listening on http://{http.host}:{http.port} "
              f"(sweep {service.hub.sweep_id})", flush=True)

    try:
        run_server(service, args.host, args.port, banner=banner,
                   access_log=access_log)
    except KeyboardInterrupt:
        print("repro serve: force quit before drain finished",
              file=sys.stderr)
        return 130
    finally:
        if handle is not None:
            handle.close()
        if access_handle is not None:
            access_handle.close()
    jobs = service.registry.counts()
    print(f"repro serve: drained — {jobs['done']} done, "
          f"{jobs['failed']} failed, {jobs['total']} job(s) total")
    return 0


def cmd_submit(args):
    from repro.service.client import (ServiceClient, ServiceError,
                                      ServiceUnavailable, new_request_id)

    payload = {"workload": args.workload}
    config = {}
    if args.config:
        try:
            config = json.loads(args.config)
        except ValueError as error:
            raise CliError(f"--config is not valid JSON: {error}") from error
        if not isinstance(config, dict):
            raise CliError("--config must be a JSON object")
    if args.threads is not None:
        config["nthreads"] = args.threads
    if config:
        payload["config"] = config
    if args.aligned:
        payload["aligned"] = True
    if args.instrument:
        payload["instrument"] = True
    if args.sweep_id:
        payload["sweep_id"] = args.sweep_id
    if args.client:
        payload["client"] = args.client
    request_id = args.request_id or new_request_id()
    client = ServiceClient(args.host, args.port, retries=args.retries,
                           backoff=args.backoff, timeout=args.timeout)
    try:
        if args.no_wait:
            doc = client.submit(payload, request_id=request_id)
        else:
            doc = client.run_job(payload, request_id=request_id)
    except (ServiceError, ServiceUnavailable, OSError) as error:
        raise CliError(str(error)) from error
    print(json.dumps(doc, indent=2, sort_keys=True))
    print(f"request id: {request_id} (grep it in the server's access "
          f"log, event stream, and ledger)", file=sys.stderr)
    return 1 if doc.get("state") == "failed" else 0


def cmd_top(args):
    from repro.obs.runtime import TopView, parse_promtext
    from repro.service.client import (ServiceClient, ServiceError,
                                      ServiceUnavailable)

    host, port = _parse_service_url(args.url)
    client = ServiceClient(host, port, timeout=args.timeout)
    view = TopView()
    stream = sys.stdout
    width = 0
    try:
        while True:
            text = client.metrics_text()
            view.update(parse_promtext(text))
            line = f"[{host}:{port}] {view.render()}"
            pad = max(width - len(line), 0)
            width = len(line)
            stream.write("\r" + line + " " * pad)
            stream.flush()
            if args.once:
                stream.write("\n")
                return 0
            time.sleep(args.interval)
    except KeyboardInterrupt:
        stream.write("\n")
        return 0
    except (ServiceError, ServiceUnavailable, OSError) as error:
        if width:
            stream.write("\n")
        raise CliError(str(error)) from error


def cmd_workloads(args):
    from repro.workloads import EXTRA_WORKLOADS
    for workload in ALL_WORKLOADS:
        group = "Group I " if workload.group == 1 else "Group II"
        print(f"{workload.name:8s} {group}  "
              f"{workload.source.strip().splitlines()[0].lstrip('/ ')}")
    for workload in EXTRA_WORKLOADS:
        print(f"{workload.name:8s} extra     "
              f"{workload.source.strip().splitlines()[0].lstrip('/ ')}")
    return 0


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Multithreaded superscalar (SDSP/SMT) simulator toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    p_asm = sub.add_parser("asm", help="assemble and list an .s file")
    p_asm.add_argument("file")
    p_asm.add_argument("--align", action="store_true",
                       help="align branch targets to fetch blocks")
    p_asm.set_defaults(func=cmd_asm)

    p_cc = sub.add_parser("cc", help="compile MiniC to assembly")
    p_cc.add_argument("file")
    p_cc.add_argument("--threads", type=int, default=1)
    p_cc.set_defaults(func=cmd_cc)

    p_run = sub.add_parser("run", help="simulate a program")
    p_run.add_argument("file")
    p_run.add_argument("--align", action="store_true")
    p_run.add_argument("--functional", action="store_true",
                       help="use the architectural simulator only")
    p_run.add_argument("--live", action="store_true",
                       help="single-line live progress (cycle heartbeats) "
                            "on stderr while simulating")
    _machine_args(p_run)
    _ledger_args(p_run)
    p_run.set_defaults(func=cmd_run)

    p_bench = sub.add_parser("bench", help="run a paper workload")
    p_bench.add_argument("name")
    p_bench.add_argument("--live", action="store_true",
                         help="single-line live progress on stderr "
                              "(routes through the grid harness)")
    p_bench.add_argument("--events", default=None, metavar="PATH",
                         help="record the sweep's JSONL event log "
                              "(inspect with 'repro sweep PATH')")
    _machine_args(p_bench)
    _ledger_args(p_bench)
    p_bench.set_defaults(func=cmd_bench)

    p_trace = sub.add_parser(
        "trace", help="simulate and export a pipeline trace")
    p_trace.add_argument("prog",
                         help="source file (.s/.mc) or workload name")
    p_trace.add_argument("--out", default="trace.json",
                         help="output path (default trace.json)")
    p_trace.add_argument("--format", default="perfetto",
                         choices=["perfetto", "jsonl", "text"],
                         help="perfetto: Chrome trace_event JSON for "
                              "ui.perfetto.dev; jsonl: one event per "
                              "line; text: human-readable log")
    p_trace.add_argument("--align", action="store_true")
    _machine_args(p_trace)
    p_trace.set_defaults(func=cmd_trace)

    p_stats = sub.add_parser(
        "stats", help="simulate and print statistics")
    p_stats.add_argument("prog",
                         help="source file (.s/.mc) or workload name")
    p_stats.add_argument("--breakdown", action="store_true",
                         help="print the per-cycle stall-attribution "
                              "table")
    p_stats.add_argument("--json", action="store_true",
                         help="print the full machine-readable record "
                              "(stats, attribution, metrics) instead of "
                              "the text summary")
    p_stats.add_argument("--align", action="store_true")
    p_stats.add_argument("--backend", default="scalar",
                         choices=["scalar", "spec", "auto"],
                         help="engine: 'spec' runs the config-"
                              "specialized generated loop (bit-"
                              "identical); 'auto' picks spec when its "
                              "source is already cached — records "
                              "always carry the backend that executed")
    _machine_args(p_stats)
    p_stats.set_defaults(func=cmd_stats)

    p_diff = sub.add_parser(
        "diff", help="compare two recorded runs from the ledger")
    p_diff.add_argument("run_a", metavar="RUNA",
                        help="'last', 'last~N', or a run-id prefix")
    p_diff.add_argument("run_b", metavar="RUNB",
                        help="'last', 'last~N', or a run-id prefix")
    p_diff.add_argument("--ledger", default=None, metavar="PATH",
                        help="ledger file (default: REPRO_LEDGER or "
                             "~/.cache/repro-sdsp/ledger.jsonl)")
    p_diff.add_argument("--sweep", default=None, metavar="ID",
                        help="resolve RUNA/RUNB within this sweep's "
                             "records only ('last' = last of the sweep)")
    p_diff.set_defaults(func=cmd_diff)

    p_check = sub.add_parser(
        "check", help="regression sentry over the profiling matrix")
    p_check.add_argument("--baseline", required=True,
                        help="committed baseline (BENCH_engine.json)")
    p_check.add_argument("--reps", type=int, default=3,
                         help="timed repetitions per entry, best-of "
                              "(default 3)")
    p_check.add_argument("--tolerance", type=float, default=None,
                         help="allowed relative throughput drop "
                              "(default 0.30)")
    p_check.add_argument("--advisory-throughput", action="store_true",
                         help="report throughput regressions as warnings "
                              "only (shared/noisy runners); cycle-count "
                              "mismatches stay fatal")
    p_check.add_argument("--entry", action="append", metavar="LABEL",
                         help="check only this matrix entry (repeatable); "
                              "the batch-sweep label runs the interleaved "
                              "scalar/batch sweep and pins its aggregate "
                              "throughput instead")
    p_check.add_argument("--backend", default="scalar",
                         choices=["scalar", "batch", "spec"],
                         help="simulation backend for the matrix: 'batch' "
                              "routes every entry through a one-member "
                              "BatchEngine group, 'spec' through the "
                              "config-specialized generated engine — "
                              "cycle counts must stay bit-identical to "
                              "the committed baseline either way")
    _ledger_args(p_check)
    p_check.set_defaults(func=cmd_check)

    p_report = sub.add_parser(
        "report", help="regenerate a paper figure's table from the ledger")
    p_report.add_argument("--experiment", required=True,
                          choices=["threads", "fetch", "su", "cache"],
                          help="which paper experiment to regenerate")
    p_report.add_argument("--workloads", nargs="+", metavar="NAME",
                          help="workload subset (default: all paper "
                               "workloads)")
    p_report.add_argument("--threads", nargs="+", type=int, metavar="N",
                          help="thread counts to sweep (experiment-"
                               "specific default)")
    p_report.add_argument("--csv", default=None, metavar="PATH",
                          help="also write the table as CSV")
    p_report.add_argument("--workers", type=int, default=None,
                          help="parallel worker processes")
    p_report.add_argument("--instrument", action="store_true",
                          help="attach attribution + metrics to every "
                               "grid point (richer ledger records)")
    p_report.add_argument("--backend", default="scalar",
                          choices=["scalar", "batch", "spec", "auto"],
                          help="grid backend: 'batch' advances same-"
                               "program jobs in one fused BatchEngine "
                               "loop, 'spec' runs config-specialized "
                               "generated engines, 'auto' composes them "
                               "(results are bit-identical)")
    p_report.add_argument("--fresh", action="store_true",
                          help="bypass the disk result cache")
    p_report.add_argument("--ledger", default=None, metavar="PATH",
                          help="ledger file (default: REPRO_LEDGER or "
                               "~/.cache/repro-sdsp/ledger.jsonl)")
    p_report.add_argument("--live", action="store_true",
                          help="single-line live sweep progress on stderr")
    p_report.add_argument("--events", default=None, metavar="PATH",
                          help="record the sweep's JSONL event log "
                               "(inspect with 'repro sweep PATH')")
    p_report.add_argument("--trace", default=None, metavar="PATH",
                          help="export the sweep timeline as a Perfetto "
                               "trace (one track per worker lane)")
    p_report.add_argument("--sweep-id", default=None, metavar="ID",
                          help="stamp this sweep's ledger records with a "
                               "fixed id (default: a fresh one when "
                               "telemetry is attached)")
    p_report.add_argument("--sweep", default=None, metavar="ID",
                          help="render the table from an already-finished "
                               "sweep's ledger records (no simulation)")
    p_report.add_argument("--service", default=None, metavar="URL",
                          help="run the grid through a running 'repro "
                               "serve' (e.g. 127.0.0.1:8421) instead of "
                               "simulating locally; the table still "
                               "renders from this process's ledger, so "
                               "point --ledger/REPRO_LEDGER at the "
                               "server's ledger file")
    p_report.set_defaults(func=cmd_report)

    p_sweep = sub.add_parser(
        "sweep", help="summarize a finished sweep from its event log")
    p_sweep.add_argument("log", metavar="LOG",
                         help="JSONL sweep-event log (bench/report "
                              "--events, or a JsonlSink on a "
                              "SweepTelemetry hub)")
    p_sweep.add_argument("--waterfall", action="store_true",
                         help="per-job lifecycle waterfall (queued time, "
                              "attempts, outcome, timeline bar)")
    p_sweep.add_argument("--no-failures", action="store_true",
                         help="omit the failure-forensics event dump")
    p_sweep.set_defaults(func=cmd_sweep)

    p_serve = sub.add_parser(
        "serve", help="run the HTTP simulation job service")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8421,
                         help="listen port (0 picks an ephemeral one, "
                              "printed in the startup banner)")
    p_serve.add_argument("--workers", type=int, default=None,
                         help="simulation worker processes per dispatch "
                              "(default: cores - 1, REPRO_WORKERS)")
    p_serve.add_argument("--queue-depth", type=int, default=64,
                         help="max jobs admitted but not yet finished; "
                              "beyond it submissions get 429 queue-full")
    p_serve.add_argument("--rate", type=float, default=None,
                         help="per-client token-bucket rate, requests/s "
                              "(default: unlimited)")
    p_serve.add_argument("--burst", type=float, default=None,
                         help="token-bucket burst (default: 2x rate)")
    p_serve.add_argument("--timeout", type=float, default=None,
                         help="per-job wall-clock seconds (run_grid)")
    p_serve.add_argument("--retries", type=int, default=2,
                         help="per-job retry budget (run_grid)")
    p_serve.add_argument("--backoff", type=float, default=0.25,
                         help="retry backoff base, seconds (run_grid)")
    p_serve.add_argument("--backend", default="auto",
                         choices=["scalar", "batch", "spec", "auto"],
                         help="simulation backend for dispatched grids")
    p_serve.add_argument("--cache", default=None, metavar="PATH",
                         help="disk result cache (default: REPRO_CACHE or "
                              "~/.cache/repro-sdsp/results.json)")
    p_serve.add_argument("--no-cache", action="store_true",
                         help="serve without the disk result cache "
                              "(disables cross-restart dedup)")
    p_serve.add_argument("--events", default=None, metavar="PATH",
                         help="append the server-lifetime sweep-event "
                              "stream to this JSONL file (audit with "
                              "'repro sweep PATH')")
    p_serve.add_argument("--ledger", default=None, metavar="PATH",
                         help="run-ledger file (default: REPRO_LEDGER or "
                              "~/.cache/repro-sdsp/ledger.jsonl)")
    p_serve.add_argument("--no-ledger", action="store_true",
                         help="do not append served runs to the ledger")
    p_serve.add_argument("--heartbeat", type=float, default=2.0,
                         help="seconds between telemetry heartbeats")
    p_serve.add_argument("--allow-chaos", action="store_true",
                         help="accept per-job 'chaos' fault-injection "
                              "fields (testing only)")
    p_serve.add_argument("--no-metrics", action="store_true",
                         help="serve without the runtime metrics "
                              "registry (GET /metrics returns 404)")
    p_serve.add_argument("--access-log", default=None, metavar="PATH",
                         help="append one JSON access-log line per "
                              "request to this file (default: stderr)")
    p_serve.add_argument("--no-access-log", action="store_true",
                         help="disable the request access log")
    p_serve.set_defaults(func=cmd_serve)

    p_submit = sub.add_parser(
        "submit", help="submit one job to a running 'repro serve'")
    p_submit.add_argument("workload",
                          help=f"workload name ({_workload_choices()})")
    p_submit.add_argument("--threads", type=int, default=None,
                          help="number of resident threads")
    p_submit.add_argument("--config", default=None, metavar="JSON",
                          help="partial MachineConfig spec as JSON, e.g. "
                               "'{\"su_entries\": 128}' (overlaid on the "
                               "defaults; --threads wins on nthreads)")
    p_submit.add_argument("--aligned", action="store_true",
                          help="align branch targets to fetch-block "
                               "boundaries")
    p_submit.add_argument("--instrument", action="store_true",
                          help="attach the stall-attribution instrument")
    p_submit.add_argument("--sweep-id", default=None, metavar="ID",
                          help="stamp the served run's ledger record with "
                               "this sweep id")
    p_submit.add_argument("--client", default=None, metavar="NAME",
                          help="client identity for rate limiting")
    p_submit.add_argument("--host", default="127.0.0.1")
    p_submit.add_argument("--port", type=int, default=8421)
    p_submit.add_argument("--retries", type=int, default=5,
                          help="submit retry budget (exponential backoff, "
                               "honours Retry-After)")
    p_submit.add_argument("--backoff", type=float, default=0.2,
                          help="retry backoff base, seconds")
    p_submit.add_argument("--timeout", type=float, default=60.0,
                          help="per-request socket timeout, seconds")
    p_submit.add_argument("--no-wait", action="store_true",
                          help="return the submission document without "
                               "waiting for the result")
    p_submit.add_argument("--request-id", default=None, metavar="ID",
                          help="correlation id sent as X-Repro-Request-Id "
                               "(default: a fresh one, printed on stderr)")
    p_submit.set_defaults(func=cmd_submit)

    p_top = sub.add_parser(
        "top", help="live dashboard over a server's GET /metrics")
    p_top.add_argument("url", metavar="URL",
                       help="service endpoint, e.g. 127.0.0.1:8421")
    p_top.add_argument("--interval", type=float, default=2.0,
                       help="seconds between scrapes (default 2.0)")
    p_top.add_argument("--once", action="store_true",
                       help="print one snapshot line and exit")
    p_top.add_argument("--timeout", type=float, default=10.0,
                       help="per-scrape socket timeout, seconds")
    p_top.set_defaults(func=cmd_top)

    p_list = sub.add_parser("workloads", help="list the paper's workloads")
    p_list.set_defaults(func=cmd_workloads)
    return parser


def main(argv=None):
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except CliError as error:
        print(f"repro: {error}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Reader went away (`repro diff | head`); die quietly, and hand
        # the interpreter a dead stdout so its exit-time flush cannot
        # raise the same error again.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
