"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``asm FILE``
    Assemble an ``.s`` file and print a listing (address, word, text).
``cc FILE``
    Compile a MiniC file; print the generated assembly.
``run FILE``
    Assemble/compile (by extension) and simulate, printing run statistics.
``bench NAME``
    Run one of the paper's workloads by name and verify its checksum.
``workloads``
    List the available workloads.
"""

import argparse
import sys

from repro.asm import assemble, disassemble
from repro.core import FetchPolicy, CommitPolicy, MachineConfig, PipelineSim
from repro.funcsim import FunctionalSim
from repro.lang import compile_source, compile_to_asm
from repro.mem.cache import CacheConfig
from repro.workloads import ALL_WORKLOADS, BY_NAME

_MINIC_SUFFIXES = (".mc", ".c", ".minic")


def _machine_args(parser):
    parser.add_argument("--threads", type=int, default=1,
                        help="number of resident threads (default 1)")
    parser.add_argument("--policy", default="true_rr",
                        choices=[p.value for p in FetchPolicy],
                        help="fetch policy")
    parser.add_argument("--commit", default="flexible",
                        choices=[p.value for p in CommitPolicy],
                        help="result-commit policy")
    parser.add_argument("--su", type=int, default=64,
                        help="scheduling-unit entries")
    parser.add_argument("--cache-kb", type=float, default=2.0,
                        help="data-cache size in KB")
    parser.add_argument("--cache-assoc", type=int, default=4,
                        help="cache associativity (1 = direct-mapped)")
    parser.add_argument("--store-buffer", type=int, default=8,
                        help="store-buffer entries")
    parser.add_argument("--enhanced-fus", action="store_true",
                        help="use the enhanced functional-unit mix")
    parser.add_argument("--max-cycles", type=int, default=20_000_000)


def _machine_config(args):
    from repro.core.config import FU_DEFAULT, FU_ENHANCED
    cache = CacheConfig(size_bytes=int(args.cache_kb * 1024),
                        assoc=args.cache_assoc)
    return MachineConfig(
        nthreads=args.threads,
        fetch_policy=args.policy,
        commit_policy=args.commit,
        su_entries=args.su,
        store_buffer_depth=args.store_buffer,
        fu_counts=FU_ENHANCED if args.enhanced_fus else FU_DEFAULT,
        cache=cache,
        max_cycles=args.max_cycles,
    )


def _load_program(path, nthreads, align):
    with open(path) as handle:
        source = handle.read()
    if any(path.endswith(suffix) for suffix in _MINIC_SUFFIXES):
        return compile_source(source, nthreads=nthreads,
                              align_branch_targets=align)
    return assemble(source, align_targets=align)


def cmd_asm(args):
    program = _load_program(args.file, 1, args.align)
    listing = disassemble(program)
    words = program.words
    for line, word in zip(listing.splitlines(), words):
        print(f"{word:08x}  {line}")
    print(f"# {len(program)} instructions, {len(program.data)} data words, "
          f"entry pc={program.entry}", file=sys.stderr)
    return 0


def cmd_cc(args):
    with open(args.file) as handle:
        source = handle.read()
    print(compile_to_asm(source, nthreads=args.threads))
    return 0


def cmd_run(args):
    program = _load_program(args.file, args.threads, args.align)
    if args.functional:
        sim = FunctionalSim(program, nthreads=args.threads)
        sim.run(max_steps=args.max_cycles)
        print(f"functional run complete: {sim.steps} instructions")
        for thread in sim.threads:
            print(f"  thread {thread.tid}: {thread.retired} retired")
        return 0
    sim = PipelineSim(program, _machine_config(args))
    stats = sim.run()
    print(stats.summary())
    return 0


def cmd_bench(args):
    workload = BY_NAME.get(args.name)
    if workload is None:
        print(f"unknown workload {args.name!r}; try: "
              + ", ".join(sorted(BY_NAME)), file=sys.stderr)
        return 2
    program = workload.program(args.threads)
    sim = PipelineSim(program, _machine_config(args))
    stats = sim.run()
    checksum = sim.mem(workload.checksum_address(args.threads))
    ok = workload.verify(checksum, args.threads)
    print(stats.summary())
    verdict = ("verified" if ok
               else f"MISMATCH vs {workload.expected(args.threads)!r}")
    print(f"checksum:            {checksum!r} ({verdict})")
    return 0 if ok else 1


def cmd_workloads(args):
    from repro.workloads import EXTRA_WORKLOADS
    for workload in ALL_WORKLOADS:
        group = "Group I " if workload.group == 1 else "Group II"
        print(f"{workload.name:8s} {group}  "
              f"{workload.source.strip().splitlines()[0].lstrip('/ ')}")
    for workload in EXTRA_WORKLOADS:
        print(f"{workload.name:8s} extra     "
              f"{workload.source.strip().splitlines()[0].lstrip('/ ')}")
    return 0


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Multithreaded superscalar (SDSP/SMT) simulator toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    p_asm = sub.add_parser("asm", help="assemble and list an .s file")
    p_asm.add_argument("file")
    p_asm.add_argument("--align", action="store_true",
                       help="align branch targets to fetch blocks")
    p_asm.set_defaults(func=cmd_asm)

    p_cc = sub.add_parser("cc", help="compile MiniC to assembly")
    p_cc.add_argument("file")
    p_cc.add_argument("--threads", type=int, default=1)
    p_cc.set_defaults(func=cmd_cc)

    p_run = sub.add_parser("run", help="simulate a program")
    p_run.add_argument("file")
    p_run.add_argument("--align", action="store_true")
    p_run.add_argument("--functional", action="store_true",
                       help="use the architectural simulator only")
    _machine_args(p_run)
    p_run.set_defaults(func=cmd_run)

    p_bench = sub.add_parser("bench", help="run a paper workload")
    p_bench.add_argument("name")
    _machine_args(p_bench)
    p_bench.set_defaults(func=cmd_bench)

    p_list = sub.add_parser("workloads", help="list the paper's workloads")
    p_list.set_defaults(func=cmd_workloads)
    return parser


def main(argv=None):
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
