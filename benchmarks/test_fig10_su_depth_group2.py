"""Figure 10: Group II performance for scheduling units of 32/64/128/256
entries, single-threaded and 4-threaded."""

from benchmarks.conftest import record
from repro.harness import format_table, su_depth_study

DEPTHS = (32, 64, 128, 256)


def test_fig10_su_depth_group2(benchmark, runner, group2):
    study = benchmark.pedantic(
        lambda: su_depth_study(runner, group2, depths=DEPTHS, threads=(1, 4)),
        rounds=1, iterations=1)
    names = [w.name for w in group2]

    def avg(n, depth):
        return sum(study[(n, depth)][name] for name in names) / len(names)

    rows = [[f"SU{d}", avg(1, d), avg(4, d)] for d in DEPTHS]
    print()
    print(format_table("Fig. 10: avg Group II cycles vs SU depth",
                       ["depth", "1 thread", "4 threads"], rows))
    record("fig10", {f"{n}T_su{d}": study[(n, d)]
                     for n in (1, 4) for d in DEPTHS})

    # Diminishing returns: the last doubling buys less than the first.
    assert (avg(1, 32) - avg(1, 64)) >= (avg(1, 128) - avg(1, 256)) - 1
    # 4-thread runs also see little change beyond 64 entries (<10%).
    assert abs(avg(4, 256) - avg(4, 64)) / avg(4, 64) < 0.10
