"""Ablations beyond the paper (DESIGN.md Section 6).

* Commit-window depth sweep (the paper fixes 4): 1 -> 2 -> 4 -> 8.
* Shared vs per-thread branch predictor/BTB (the paper shares one).
* Store-buffer depth sweep around the paper's 8 entries.
"""

from benchmarks.conftest import record
from repro.core import MachineConfig
from repro.harness import format_table

_ABLATION_WORKLOAD_NAMES = ("LL1", "LL7", "Water", "Laplace")


def _subset(group1, group2):
    pool = {w.name: w for w in group1 + group2}
    return [pool[name] for name in _ABLATION_WORKLOAD_NAMES]


def _total_cycles(runner, workloads, config):
    return sum(runner.run(w, config).cycles for w in workloads)


def test_ablation_commit_window_depth(benchmark, runner, group1, group2):
    workloads = _subset(group1, group2)

    def run():
        return {depth: _total_cycles(
                    runner, workloads,
                    MachineConfig(nthreads=4, commit_blocks=depth))
                for depth in (1, 2, 4, 8)}

    totals = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[f"window {d}", totals[d]] for d in sorted(totals)]
    print()
    print(format_table("Ablation: flexible-commit window depth "
                       "(total cycles, 4 workloads)", ["config", "cycles"],
                       rows))
    record("ablation_commit_depth", {str(k): v for k, v in totals.items()})

    # Deeper windows monotonically help (or at worst tie); the paper's
    # choice of 4 captures nearly all of the benefit of 8.
    assert totals[2] <= totals[1]
    assert totals[4] <= totals[2]
    assert totals[8] <= totals[4] * 1.01
    gain_1_to_4 = totals[1] - totals[4]
    gain_4_to_8 = totals[4] - totals[8]
    assert gain_4_to_8 <= gain_1_to_4


def test_ablation_shared_vs_private_predictor(benchmark, runner, group1,
                                              group2):
    workloads = _subset(group1, group2)

    def run():
        shared = _total_cycles(runner, workloads,
                               MachineConfig(nthreads=4,
                                             shared_predictor=True))
        private = _total_cycles(runner, workloads,
                                MachineConfig(nthreads=4,
                                              shared_predictor=False))
        return shared, private

    shared, private = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table("Ablation: shared vs per-thread predictor/BTB",
                       ["config", "cycles"],
                       [["shared", shared], ["per-thread", private]]))
    record("ablation_predictor", {"shared": shared, "private": private})

    # The paper's observation: sharing one history across threads that
    # execute the same code costs little (they report >80% accuracy with
    # a single shared table). Homogeneous threads may even help each
    # other train the counters.
    assert abs(shared - private) / private < 0.10


def test_ablation_store_buffer_depth(benchmark, runner, group1, group2):
    workloads = _subset(group1, group2)

    def run():
        return {depth: _total_cycles(
                    runner, workloads,
                    MachineConfig(nthreads=4, store_buffer_depth=depth))
                for depth in (4, 8, 16)}

    totals = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[f"{d} entries", totals[d]] for d in sorted(totals)]
    print()
    print(format_table("Ablation: store-buffer depth", ["config", "cycles"],
                       rows))
    record("ablation_store_buffer", {str(k): v for k, v in totals.items()})

    # More buffering never hurts, and the paper's 8 entries already
    # capture almost all of the benefit of 16.
    assert totals[8] <= totals[4] * 1.005
    assert totals[16] <= totals[8] * 1.005
    assert (totals[8] - totals[16]) <= (totals[4] - totals[8]) + 50


def test_ablation_cache_ports(benchmark, runner, group1, group2):
    """Paper improvement #1: 'employ more cache ports'."""
    from repro.mem.cache import CacheConfig
    workloads = _subset(group1, group2)

    def run():
        out = {}
        for ports in (1, 2, 4):
            config = MachineConfig(nthreads=4, cache=CacheConfig(ports=ports))
            out[ports] = _total_cycles(runner, workloads, config)
        return out

    totals = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[f"{p} port(s)", totals[p]] for p in sorted(totals)]
    print()
    print(format_table("Ablation: cache ports (paper improvement #1)",
                       ["config", "cycles"], rows))
    record("ablation_cache_ports", {str(k): v for k, v in totals.items()})

    # More ports never hurt; a single port costs something because loads
    # then contend with the store-buffer drain.
    assert totals[2] <= totals[1]
    assert totals[4] <= totals[2] * 1.005


def test_ablation_masked_rr_criterion(benchmark, runner, group1, group2):
    """Masking criterion variants for Masked RR (DESIGN.md Section 6)."""
    from repro.core import FetchPolicy
    workloads = _subset(group1, group2)

    def run():
        out = {}
        for criterion in ("commit_stall", "long_latency"):
            config = MachineConfig(nthreads=4,
                                   fetch_policy=FetchPolicy.MASKED_RR,
                                   masked_criterion=criterion)
            out[criterion] = _total_cycles(runner, workloads, config)
        return out

    totals = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[k, v] for k, v in sorted(totals.items())]
    print()
    print(format_table("Ablation: Masked-RR masking criterion",
                       ["criterion", "cycles"], rows))
    record("ablation_masked_criterion", totals)

    # Both criteria complete and land in the same ballpark; the paper
    # notes commit-stall masking can fire on short-latency ops too, so
    # neither criterion dominates universally.
    ratio = totals["long_latency"] / totals["commit_stall"]
    assert 0.85 <= ratio <= 1.15


def test_ablation_instruction_cache(benchmark, runner, group1, group2):
    """The paper assumes a perfect I-cache; quantify that assumption."""
    from repro.mem.cache import CacheConfig
    workloads = _subset(group1, group2)

    def run():
        out = {"perfect": _total_cycles(runner, workloads,
                                        MachineConfig(nthreads=4))}
        for size in (512, 2048):
            config = MachineConfig(nthreads=4,
                                   icache=CacheConfig(size_bytes=size))
            out[f"{size}B"] = _total_cycles(runner, workloads, config)
        return out

    totals = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[k, v] for k, v in totals.items()]
    print()
    print(format_table("Ablation: instruction cache (paper assumes perfect)",
                       ["config", "cycles"], rows))
    record("ablation_icache", totals)

    # A real I-cache costs something; a bigger one costs less; loops
    # make the overall penalty modest, which justifies the paper's
    # perfect-I-cache assumption.
    assert totals["perfect"] <= totals["2048B"] <= totals["512B"]
    assert totals["512B"] <= totals["perfect"] * 1.5
