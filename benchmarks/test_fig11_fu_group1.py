"""Figure 11: Livermore-loop cycles with the default and enhanced
functional-unit configurations, 1 and 4 threads.

Paper's findings: with the enhanced configuration the multithreaded
speedup over single-threaded execution is *larger* than with the default
configuration — extra units matter more when multithreading supplies the
parallelism to keep them busy (compute-intensive loops benefit most).
"""

from benchmarks.conftest import geomean_speedup, record
from repro.harness import format_table, fu_study


def test_fig11_fu_group1(benchmark, runner, group1):
    study = benchmark.pedantic(
        lambda: fu_study(runner, group1, threads=(1, 4)),
        rounds=1, iterations=1)
    names = [w.name for w in group1]
    rows = [[name,
             study[(1, "default")][name], study[(4, "default")][name],
             study[(1, "enhanced")][name], study[(4, "enhanced")][name]]
            for name in names]
    print()
    print(format_table(
        "Fig. 11: Livermore cycles, default vs enhanced FUs",
        ["benchmark", "1T", "4T", "1T++", "4T++"], rows))
    record("fig11", {f"{n}T_{label}": study[(n, label)]
                     for n in (1, 4) for label in ("default", "enhanced")})

    # The paper reports a *greater* relative multithreaded speedup with
    # the enhanced configuration. Our machine reproduces that for
    # Group II (Fig. 12) but not quite for Group I: with pipelined FP
    # units, single-threaded runs already exploit the extra units, so
    # the relative gap narrows by a few points (documented divergence
    # in EXPERIMENTS.md). Assert the gains stay close.
    default_gain = geomean_speedup(study[(4, "default")],
                                   study[(1, "default")], names)
    enhanced_gain = geomean_speedup(study[(4, "enhanced")],
                                    study[(1, "enhanced")], names)
    assert enhanced_gain >= default_gain - 0.08, \
        f"default {default_gain:.1%} vs enhanced {enhanced_gain:.1%}"

    # Extra units never hurt.
    for n in (1, 4):
        avg_default = sum(study[(n, "default")][x] for x in names)
        avg_enhanced = sum(study[(n, "enhanced")][x] for x in names)
        assert avg_enhanced <= avg_default * 1.01
