"""Figure 6: cycles of the Group II benchmarks for 1-6 threads."""

from benchmarks.conftest import record
from repro.harness import format_table, thread_sweep

THREADS = (1, 2, 3, 4, 5, 6)


def test_fig6_threads_group2(benchmark, runner, group2):
    sweep = benchmark.pedantic(
        lambda: thread_sweep(runner, group2, threads=THREADS),
        rounds=1, iterations=1)
    names = [w.name for w in group2]
    rows = [[name] + [sweep[n][name] for n in THREADS] for name in names]
    print()
    print(format_table("Fig. 6: Group II cycles vs thread count",
                       ["benchmark"] + [f"{n}T" for n in THREADS], rows))
    record("fig6", {str(n): sweep[n] for n in THREADS})

    improved = 0
    for name in names:
        single = sweep[1][name]
        best = min(sweep[n][name] for n in THREADS[1:])
        if best < single:
            improved += 1
    # Most application benchmarks gain from multithreading.
    assert improved >= 4, f"only {improved}/5 benchmarks improve"

    # Average over the group: more threads than the sweet spot hurts.
    def avg(n):
        return sum(sweep[n][name] for name in names) / len(names)
    best_avg_n = min(THREADS[1:], key=avg)
    assert avg(6) > avg(best_avg_n)
