"""Shared fixtures for the per-figure benchmark suite.

All benchmark modules share one memoizing Runner, so configurations
common to several figures (e.g. the default 4-thread machine) are
simulated once. Results accumulate in ``benchmarks/results.json`` for
EXPERIMENTS.md.

The Runner is additionally backed by a persistent disk cache
(``benchmarks/.result_cache.json``), so a repeated session replays
finished simulations from JSON — set ``REPRO_NO_DISK_CACHE=1`` to
force everything to re-simulate. Entries key on the engine version,
workload program content, and full configuration, so simulator or
kernel changes invalidate them automatically.
"""

import json
import os
import pathlib

import pytest

from repro.harness import DiskResultCache, Runner
from repro.workloads import GROUP_I, GROUP_II

RESULTS_PATH = pathlib.Path(__file__).parent / "results.json"
CACHE_PATH = pathlib.Path(__file__).parent / ".result_cache.json"

_results = {}
_disk_cache = None


@pytest.fixture(scope="session")
def runner():
    global _disk_cache
    if os.environ.get("REPRO_NO_DISK_CACHE") == "1":
        return Runner()
    _disk_cache = DiskResultCache(CACHE_PATH, autosave=False)
    return Runner(disk_cache=_disk_cache)


@pytest.fixture(scope="session")
def group1():
    return GROUP_I


@pytest.fixture(scope="session")
def group2():
    return GROUP_II


def record(experiment, data):
    """Store one experiment's data for the results file."""
    _results[experiment] = data


def median(values):
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2


def geomean_speedup(cycles_a, cycles_b, names):
    """Average of per-benchmark speedups of a over b."""
    speedups = [cycles_b[n] / cycles_a[n] - 1 for n in names]
    return sum(speedups) / len(speedups)


def pytest_terminal_summary(terminalreporter):
    if _disk_cache is not None:
        terminalreporter.write_line(_disk_cache.stats_line())


@pytest.fixture(scope="session", autouse=True)
def _write_results():
    yield
    if _disk_cache is not None:
        _disk_cache.save()
    if _results:
        existing = {}
        if RESULTS_PATH.exists():
            try:
                existing = json.loads(RESULTS_PATH.read_text())
            except json.JSONDecodeError:
                existing = {}
        existing.update(_results)
        RESULTS_PATH.write_text(json.dumps(existing, indent=2, default=str))
