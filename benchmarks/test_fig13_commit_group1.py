"""Figure 13: Livermore-loop cycles with the reorder buffer committing
from a single block vs multiple (four) blocks, 4 threads.

Paper's findings: Flexible Result Commit improves Group I by several
percent on average because scheduling-unit stalls occur less often.
"""

from benchmarks.conftest import record
from repro.harness import commit_study, series_table


def test_fig13_commit_group1(benchmark, runner, group1):
    series = benchmark.pedantic(
        lambda: commit_study(runner, group1, nthreads=4),
        rounds=1, iterations=1)
    names = [w.name for w in group1]
    print()
    print(series_table("Fig. 13: Livermore cycles, commit policy",
                       series, benchmarks=names))
    record("fig13", series)

    # Flexible commit wins on the large majority of loops. (LL5 is
    # spin-wait dominated, so its cycle count is noise-sensitive to
    # commit policy and may go either way.)
    wins = sum(1 for n in names
               if series["Multiple"][n] <= series["Lowest"][n] * 1.02)
    assert wins >= len(names) - 1

    # And wins on total cycles over the compute-bound loops.
    compute_bound = [n for n in names if n != "LL5"]
    total_multiple = sum(series["Multiple"][n] for n in compute_bound)
    total_lowest = sum(series["Lowest"][n] for n in compute_bound)
    assert total_multiple < total_lowest
