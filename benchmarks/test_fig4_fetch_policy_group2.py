"""Figure 4: cycles of the Group II benchmarks (Laplace, MPD, Matrix,
Sieve, Water) under the three fetch policies vs the base case."""

from benchmarks.conftest import median, record
from repro.harness import fetch_policy_study, series_table


def test_fig4_fetch_policy_group2(benchmark, runner, group2):
    series = benchmark.pedantic(
        lambda: fetch_policy_study(runner, group2, nthreads=4),
        rounds=1, iterations=1)
    names = [w.name for w in group2]
    print()
    print(series_table("Fig. 4: Group II cycles by fetch policy",
                       series, benchmarks=names))
    record("fig4", series)

    # The three policies perform comparably.
    for policy in ("MaskedRR", "CSwitch"):
        ratios = [series[policy][n] / series["TrueRR"][n] for n in names]
        assert 0.75 <= median(ratios) <= 1.25

    # Multithreading helps the majority of the application benchmarks.
    wins = [n for n in names if series["TrueRR"][n] < series["BaseCase"][n]]
    assert len(wins) >= 3, f"only {wins} benefit from multithreading"
