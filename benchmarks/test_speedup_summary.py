"""Section 5.2 summary: peak improvement per benchmark and group
averages, computed with the paper's speedup formula
(Mt_perf - St_perf) / St_perf with performance = 1/cycles.

Paper's numbers: peak improvements between -8.5% and 77%; Group I
average peak ~2x%, Group II average peak ~3x%; the headline claim is a
"significant performance gain (20 - 55%) across a range of benchmarks".
We assert the same qualitative band.
"""

from benchmarks.conftest import record
from repro.harness import format_table, speedup_summary

THREADS = (1, 2, 3, 4, 5, 6)


def test_speedup_summary(benchmark, runner, group1, group2):
    workloads = group1 + group2

    summary = benchmark.pedantic(
        lambda: speedup_summary(runner, workloads, threads=THREADS),
        rounds=1, iterations=1)
    rows = [[name, f"{entry['peak']:+.1%}", entry["best_threads"]]
            for name, entry in summary.items()]
    print()
    print(format_table("Peak multithreading improvement per benchmark",
                       ["benchmark", "peak speedup", "at threads"], rows))
    record("speedup_summary",
           {name: {"peak": entry["peak"],
                   "best_threads": entry["best_threads"]}
            for name, entry in summary.items()})

    peaks = {name: entry["peak"] for name, entry in summary.items()}

    # The paper's range: every peak within (-30%, +90%) and most
    # benchmarks showing a significant (>= 15%) gain.
    assert all(-0.40 <= p <= 0.95 for p in peaks.values()), peaks
    significant = [n for n, p in peaks.items() if p >= 0.15]
    assert len(significant) >= 7, f"only {significant} gain >= 15%"

    # The synchronization-bound LL5 is the consistent loser.
    assert peaks["LL5"] < 0

    # Group averages are positive.
    group1_names = [w.name for w in group1]
    group2_names = [w.name for w in group2]
    avg1 = sum(peaks[n] for n in group1_names) / len(group1_names)
    avg2 = sum(peaks[n] for n in group2_names) / len(group2_names)
    print(f"\nGroup I average peak improvement:  {avg1:+.1%}")
    print(f"Group II average peak improvement: {avg2:+.1%}")
    assert avg1 > 0.10
    assert avg2 > 0.15
