"""Figure 5: cycles of the Livermore loops for 1-6 threads.

Paper's findings: peak improvement typically at 2-4 threads, clear
deterioration by 6 threads, and LL5 (loop-carried dependence with
explicit synchronization) performs *better with fewer threads* and worse
than single-threaded at every thread count.
"""

from benchmarks.conftest import record
from repro.harness import format_table, thread_sweep

THREADS = (1, 2, 3, 4, 5, 6)


def test_fig5_threads_group1(benchmark, runner, group1):
    sweep = benchmark.pedantic(
        lambda: thread_sweep(runner, group1, threads=THREADS),
        rounds=1, iterations=1)
    names = [w.name for w in group1]
    rows = [[name] + [sweep[n][name] for n in THREADS] for name in names]
    print()
    print(format_table("Fig. 5: Livermore loop cycles vs thread count",
                       ["benchmark"] + [f"{n}T" for n in THREADS], rows))
    record("fig5", {str(n): sweep[n] for n in THREADS})

    for name in names:
        single = sweep[1][name]
        best_n = min(THREADS[1:], key=lambda n: sweep[n][name])
        if name == "LL5":
            # Consistently worse than single-threaded, and degrades as
            # thread count grows (synchronization cost).
            assert all(sweep[n][name] > single for n in THREADS[1:])
            assert sweep[6][name] > sweep[2][name]
        else:
            # Peak improvement at a small-to-moderate thread count, with
            # six threads worse than the peak.
            assert 2 <= best_n <= 5, f"{name} peaks at {best_n}"
            assert sweep[6][name] > sweep[best_n][name]
