"""Figure 7: average execution cycles of the Livermore loops with
direct-mapped and 4-way set-associative caches, for 1-6 threads.

Paper's findings: the associative cache wins overall, and its advantage
grows as thread count (and therefore cache contention) increases.
"""

from benchmarks.conftest import record
from repro.harness import cache_study, format_table

# Thread points trimmed from the paper's 1-6 to keep the
# single-core cycle-accurate suite tractable; the trend is
# unchanged.
THREADS = (1, 2, 4, 6)


def _averages(study, names):
    out = {}
    for label in ("direct", "assoc"):
        out[label] = {n: sum(study[label][n]["cycles"][name]
                             for name in names) / len(names)
                      for n in THREADS}
    return out


def test_fig7_cache_group1(benchmark, runner, group1):
    study = benchmark.pedantic(
        lambda: cache_study(runner, group1, threads=THREADS),
        rounds=1, iterations=1)
    names = [w.name for w in group1]
    avgs = _averages(study, names)
    rows = [[f"{n} threads", avgs["direct"][n], avgs["assoc"][n],
             avgs["direct"][n] / avgs["assoc"][n]]
            for n in THREADS]
    print()
    print(format_table("Fig. 7: avg Livermore cycles, direct vs associative",
                       ["config", "direct", "assoc", "ratio"], rows))
    record("fig7", {label: {str(n): avgs[label][n] for n in THREADS}
                    for label in avgs})

    # Associative is at least as good on average at every thread count.
    for n in THREADS:
        assert avgs["assoc"][n] <= avgs["direct"][n] * 1.02

    # The direct-mapped penalty grows with thread count: the gap at the
    # high end exceeds the gap at the low end.
    low_gap = avgs["direct"][1] / avgs["assoc"][1]
    high_gap = max(avgs["direct"][n] / avgs["assoc"][n]
                   for n in THREADS[2:])
    assert high_gap >= low_gap
