"""Figure 12: Group II cycles with the default and enhanced
functional-unit configurations, 1 and 4 threads."""

from benchmarks.conftest import geomean_speedup, record
from repro.harness import format_table, fu_study


def test_fig12_fu_group2(benchmark, runner, group2):
    study = benchmark.pedantic(
        lambda: fu_study(runner, group2, threads=(1, 4)),
        rounds=1, iterations=1)
    names = [w.name for w in group2]
    rows = [[name,
             study[(1, "default")][name], study[(4, "default")][name],
             study[(1, "enhanced")][name], study[(4, "enhanced")][name]]
            for name in names]
    print()
    print(format_table(
        "Fig. 12: Group II cycles, default vs enhanced FUs",
        ["benchmark", "1T", "4T", "1T++", "4T++"], rows))
    record("fig12", {f"{n}T_{label}": study[(n, label)]
                     for n in (1, 4) for label in ("default", "enhanced")})

    enhanced_gain = geomean_speedup(study[(4, "enhanced")],
                                    study[(1, "enhanced")], names)
    default_gain = geomean_speedup(study[(4, "default")],
                                   study[(1, "default")], names)
    assert enhanced_gain >= default_gain - 0.05

    for n in (1, 4):
        avg_default = sum(study[(n, "default")][x] for x in names)
        avg_enhanced = sum(study[(n, "enhanced")][x] for x in names)
        assert avg_enhanced <= avg_default * 1.01
