"""Benches for the paper's "scope for improvement" items, implemented.

* **ICOUNT fetch policy** — the paper's suggestion of "a judicious fetch
  policy, that slows down fetching for a thread in a region of low
  execution rate", realized with the instruction-count heuristic of
  Tullsen et al. (ISCA 1996). Compared against the paper's three
  policies at 4 threads.
* **Branch-target alignment** — "align instructions in memory in such a
  way that control transfer operations lie at the end of a fetched
  block, and branch targets at the beginning of a block". Implemented in
  the assembler (padding only in dead positions); compared on/off.
"""

from benchmarks.conftest import record
from repro.core import FetchPolicy, MachineConfig
from repro.harness import format_table


def test_extension_icount_policy(benchmark, runner, group1, group2):
    workloads = group1 + group2
    names = [w.name for w in workloads]

    def run():
        out = {}
        for policy in (FetchPolicy.TRUE_RR, FetchPolicy.ICOUNT):
            config = MachineConfig(nthreads=4, fetch_policy=policy)
            out[policy.value] = {w.name: runner.run(w, config).cycles
                                 for w in workloads}
        return out

    series = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[name, series["true_rr"][name], series["icount"][name],
             f"{series['true_rr'][name] / series['icount'][name] - 1:+.1%}"]
            for name in names]
    print()
    print(format_table("Extension: ICOUNT vs True RR (4 threads)",
                       ["benchmark", "TrueRR", "ICOUNT", "ICOUNT gain"],
                       rows))
    record("ext_icount", series)

    # ICOUNT should be competitive overall: total cycles within 10% of
    # True RR, and strictly better on at least a few benchmarks.
    total_rr = sum(series["true_rr"][n] for n in names)
    total_ic = sum(series["icount"][n] for n in names)
    assert total_ic <= total_rr * 1.10
    better = sum(1 for n in names
                 if series["icount"][n] < series["true_rr"][n])
    assert better >= 3


def test_extension_branch_target_alignment(benchmark, runner, group1,
                                           group2):
    workloads = group1 + group2
    names = [w.name for w in workloads]

    def run():
        config = MachineConfig(nthreads=4)
        plain = {w.name: runner.run(w, config).cycles for w in workloads}
        aligned = {w.name: runner.run(w, config, aligned=True).cycles
                   for w in workloads}
        return {"plain": plain, "aligned": aligned}

    series = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[name, series["plain"][name], series["aligned"][name],
             f"{series['plain'][name] / series['aligned'][name] - 1:+.1%}"]
            for name in names]
    print()
    print(format_table("Extension: branch-target alignment (4 threads)",
                       ["benchmark", "plain", "aligned", "gain"], rows))
    record("ext_alignment", series)

    # Alignment is a small effect either way (code moves also perturb
    # predictor indexing); require it to be within a modest band and to
    # help at least some benchmarks.
    total_plain = sum(series["plain"][n] for n in names)
    total_aligned = sum(series["aligned"][n] for n in names)
    assert 0.90 <= total_aligned / total_plain <= 1.10
    helped = sum(1 for n in names
                 if series["aligned"][n] < series["plain"][n])
    assert helped >= 2
