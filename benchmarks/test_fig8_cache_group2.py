"""Figure 8: average execution cycles of Laplace, MPD, Matrix, Sieve,
and Water with direct-mapped and associative caches, for 1-6 threads."""

from benchmarks.conftest import record
from repro.harness import cache_study, format_table

# Thread points trimmed from the paper's 1-6 to keep the
# single-core cycle-accurate suite tractable; the trend is
# unchanged.
THREADS = (1, 2, 4, 6)


def test_fig8_cache_group2(benchmark, runner, group2):
    study = benchmark.pedantic(
        lambda: cache_study(runner, group2, threads=THREADS),
        rounds=1, iterations=1)
    names = [w.name for w in group2]
    avgs = {label: {n: sum(study[label][n]["cycles"][name]
                           for name in names) / len(names)
                    for n in THREADS}
            for label in ("direct", "assoc")}
    rows = [[f"{n} threads", avgs["direct"][n], avgs["assoc"][n],
             avgs["direct"][n] / avgs["assoc"][n]]
            for n in THREADS]
    print()
    print(format_table("Fig. 8: avg Group II cycles, direct vs associative",
                       ["config", "direct", "assoc", "ratio"], rows))
    record("fig8", {label: {str(n): avgs[label][n] for n in THREADS}
                    for label in avgs})

    for n in THREADS:
        assert avgs["assoc"][n] <= avgs["direct"][n] * 1.02
