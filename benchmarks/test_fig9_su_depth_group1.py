"""Figure 9: Livermore-loop performance for scheduling units of 32, 64,
128, and 256 entries, single-threaded and 4-threaded.

Paper's findings: a big step from the smallest to the next size, then
strongly diminishing returns; a deeper SU finds more independent
instructions by itself, so the *gap* between multithreaded and
single-threaded execution narrows as the SU deepens.
"""

from benchmarks.conftest import record
from repro.harness import format_table, su_depth_study

DEPTHS = (32, 64, 128, 256)


def test_fig9_su_depth_group1(benchmark, runner, group1):
    study = benchmark.pedantic(
        lambda: su_depth_study(runner, group1, depths=DEPTHS, threads=(1, 4)),
        rounds=1, iterations=1)
    names = [w.name for w in group1]

    def avg(n, depth):
        return sum(study[(n, depth)][name] for name in names) / len(names)

    rows = [[f"SU{d}", avg(1, d), avg(4, d), avg(1, d) / avg(4, d)]
            for d in DEPTHS]
    print()
    print(format_table("Fig. 9: avg Livermore cycles vs SU depth",
                       ["depth", "1 thread", "4 threads", "MT gain"], rows))
    record("fig9", {f"{n}T_su{d}": study[(n, d)]
                    for n in (1, 4) for d in DEPTHS})

    # Deeper SUs help single-threaded execution, with diminishing returns:
    # the 32->64 step is bigger than the 128->256 step.
    step_small = avg(1, 32) - avg(1, 64)
    step_large = avg(1, 128) - avg(1, 256)
    assert step_small >= step_large
    assert avg(1, 32) >= avg(1, 64) * 0.98

    # Multithreading's advantage shrinks as the SU deepens.
    gain_shallow = avg(1, 32) / avg(4, 32)
    gain_deep = avg(1, 256) / avg(4, 256)
    assert gain_deep <= gain_shallow * 1.05
