"""Figure 14: Group II cycles with single-block vs multiple-block
(Flexible) result commit, 4 threads."""

from benchmarks.conftest import record
from repro.harness import commit_study, series_table


def test_fig14_commit_group2(benchmark, runner, group2):
    series = benchmark.pedantic(
        lambda: commit_study(runner, group2, nthreads=4),
        rounds=1, iterations=1)
    names = [w.name for w in group2]
    print()
    print(series_table("Fig. 14: Group II cycles, commit policy",
                       series, benchmarks=names))
    record("fig14", series)

    total_multiple = sum(series["Multiple"][n] for n in names)
    total_lowest = sum(series["Lowest"][n] for n in names)
    assert total_multiple < total_lowest
