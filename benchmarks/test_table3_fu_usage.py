"""Table 3: average usage of the enhanced configuration's extra
functional units as a percentage of total cycles, per benchmark group.

Paper's findings: the results argue strongly for a second load unit, and
for a second FP multiplier (the latter mattering most to the
compute-intensive Group I loops); extra dividers are barely used.
"""

from benchmarks.conftest import record
from repro.harness import format_table, fu_usage_study
from repro.isa.opcodes import FuClass


def test_table3_fu_usage(benchmark, runner, group1, group2):
    def run():
        return (fu_usage_study(runner, group1, nthreads=4),
                fu_usage_study(runner, group2, nthreads=4))

    usage1, usage2 = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for cls in FuClass:
        for group, usage in (("Group I", usage1), ("Group II", usage2)):
            for index, fraction in enumerate(usage.get(cls, [])):
                rows.append([group, f"{cls.value} #{index + 2}",
                             f"{fraction:.1%}"])
    print()
    print(format_table("Table 3: extra functional-unit usage (% of cycles)",
                       ["group", "extra unit", "usage"], rows))
    record("table3", {
        "group1": {cls.value: usage1[cls] for cls in usage1},
        "group2": {cls.value: usage2[cls] for cls in usage2},
    })

    def first_extra(usage, cls):
        return usage.get(cls, [0.0])[0]

    for usage in (usage1, usage2):
        # The second load unit is among the most useful extras.
        load_use = first_extra(usage, FuClass.LOAD)
        assert load_use >= first_extra(usage, FuClass.IDIV)
        assert load_use >= first_extra(usage, FuClass.FPDIV)
        # Extra dividers are essentially idle (long-latency, rare ops).
        assert first_extra(usage, FuClass.IDIV) < 0.10

    # The extra FP multiplier is more useful to the compute-intensive
    # Livermore loops than... (the paper observes 7.7% for Group II and
    # high use for Group I; we only require it to be clearly used by
    # whichever group exercises FP multiply heavily).
    assert max(first_extra(usage1, FuClass.FPMUL),
               first_extra(usage2, FuClass.FPMUL)) > 0.005
