"""Table 2: average data-cache hit rates for direct-mapped and 4-way
set-associative caches, both benchmark groups, 1-6 threads.

Paper's findings: the associative cache has the higher hit rate; as
threads are added the hit rate first holds/improves (working sets still
fit) and then falls (too many threads contend for the same lines), more
pronounced for the small-working-set Livermore loops.
"""

from benchmarks.conftest import record
from repro.harness import cache_study, format_table

# Thread points trimmed from the paper's 1-6 to keep the
# single-core cycle-accurate suite tractable; the trend is
# unchanged.
THREADS = (1, 2, 4, 6)


def _avg_rates(study, names):
    return {label: {n: sum(study[label][n]["hit_rates"][name]
                           for name in names) / len(names)
                    for n in THREADS}
            for label in ("direct", "assoc")}


def test_table2_hit_rates(benchmark, runner, group1, group2):
    def run():
        return (cache_study(runner, group1, threads=THREADS),
                cache_study(runner, group2, threads=THREADS))

    study1, study2 = benchmark.pedantic(run, rounds=1, iterations=1)
    rates1 = _avg_rates(study1, [w.name for w in group1])
    rates2 = _avg_rates(study2, [w.name for w in group2])

    rows = []
    for n in THREADS:
        rows.append([n, "Group I", f"{rates1['direct'][n]:.1%}",
                     f"{rates1['assoc'][n]:.1%}"])
        rows.append([n, "Group II", f"{rates2['direct'][n]:.1%}",
                     f"{rates2['assoc'][n]:.1%}"])
    print()
    print(format_table("Table 2: average cache hit rates",
                       ["threads", "group", "direct", "assoc"], rows))
    record("table2", {"group1": {k: {str(n): v for n, v in d.items()}
                                 for k, d in rates1.items()},
                      "group2": {k: {str(n): v for n, v in d.items()}
                                 for k, d in rates2.items()}})

    for rates in (rates1, rates2):
        # Associative beats direct at (almost) every thread count.
        for n in THREADS:
            assert rates["assoc"][n] >= rates["direct"][n] - 0.005
        # Cache effectiveness does not *improve* at six threads relative
        # to the best point (contention shows up at the high end).
        for label in ("direct", "assoc"):
            best = max(rates[label][n] for n in THREADS)
            assert rates[label][6] <= best + 1e-9
