"""Figure 3: cycles of execution of the Livermore loops under the three
fetch policies (TrueRR / MaskedRR / CSwitch, 4 threads) vs the base case.

Paper's findings: True RR and Masked RR are about equivalent,
Conditional Switch has similar performance, and multithreading beats the
single-threaded base case for most loops.
"""

from benchmarks.conftest import median, record
from repro.harness import fetch_policy_study, series_table


def test_fig3_fetch_policy_group1(benchmark, runner, group1):
    series = benchmark.pedantic(
        lambda: fetch_policy_study(runner, group1, nthreads=4),
        rounds=1, iterations=1)
    names = [w.name for w in group1]
    print()
    print(series_table("Fig. 3: Livermore loop cycles by fetch policy",
                       series, benchmarks=names))
    record("fig3", series)
    benchmark.extra_info["series"] = {k: dict(v) for k, v in series.items()}

    # Shape: the three policies are comparable (within 25% median ratio).
    for policy in ("MaskedRR", "CSwitch"):
        ratios = [series[policy][n] / series["TrueRR"][n] for n in names]
        assert 0.75 <= median(ratios) <= 1.25, \
            f"{policy} diverges from TrueRR: median ratio {median(ratios)}"

    # Shape: multithreading beats the base case on most loops, but not
    # on the synchronization-bound LL5 (the paper's consistent loser).
    wins = [n for n in names if series["TrueRR"][n] < series["BaseCase"][n]]
    assert len(wins) >= len(names) - 2, f"only {wins} benefit"
    assert series["TrueRR"]["LL5"] > series["BaseCase"]["LL5"]
