"""Fault-matrix suite: every recovery path of the fault-tolerant
harness, driven by deterministic injectors (see docs/ROBUSTNESS.md).

Each test injects one fault class — transient exception, worker crash,
worker hang, cache corruption — and proves the grid still returns
correct results for every other job, persists completed work, and
reports unrecoverable jobs as structured :class:`JobFailure` records.
Uses the cheapest workloads (LL11/LL5/LL2 at one thread simulate in
well under a second) so the whole matrix stays fast.
"""

import json
import signal
import threading

import pytest

from repro.core.config import MachineConfig
from repro.faults import (FaultPlan, InjectedCrash, InjectedFault,
                          InjectedHang, corrupt_file)
from repro.faults.inject import _chance
from repro.harness import (CacheCorruptionWarning, DiskResultCache,
                           GridError, GridInterrupted, JobFailure, Runner,
                           run_grid)
from repro.workloads import by_name


def _cheap_jobs(names=("LL11", "LL5", "LL2")):
    config = MachineConfig(nthreads=1)
    return [(by_name(name), config) for name in names]


def _expected(jobs):
    runner = Runner()
    return [runner.run(workload, config) for workload, config in jobs]


def _assert_slot_correct(result, expected):
    assert result.ok
    assert result.verified
    assert result.cycles == expected.cycles
    assert result.stats.to_dict() == expected.stats.to_dict()


# --------------------------------------------------------- plan mechanics


def test_plan_is_deterministic_and_seedable():
    probe = [(i, a) for i in range(40) for a in range(2)]
    one = FaultPlan(seed=7).fail(probability=0.3)
    two = FaultPlan(seed=7).fail(probability=0.3)
    other = FaultPlan(seed=8).fail(probability=0.3)
    hits = [pair for pair in probe if one.matches(*pair)]
    assert hits == [pair for pair in probe if two.matches(*pair)]
    assert hits != [pair for pair in probe if other.matches(*pair)]
    assert 0 < len(hits) < len(probe)  # probability actually thins


def test_chance_is_uniform_ish():
    draws = [_chance(0, i, 0, "fail") for i in range(200)]
    assert all(0.0 <= d < 1.0 for d in draws)
    assert 0.35 < sum(draws) / len(draws) < 0.65


def test_plan_rule_selection():
    plan = FaultPlan().crash(indices=[2], attempts=1).hang(attempts=2)
    assert plan.matches(2, 0) == ["crash", "hang"]
    assert plan.matches(1, 0) == ["hang"]
    assert plan.matches(1, 1) == ["hang"]
    assert plan.matches(1, 2) == []  # attempts exhausted: rule heals
    assert "crash" in repr(plan) and "hang" in repr(plan)


def test_plan_rejects_never_firing_rule():
    with pytest.raises(ValueError):
        FaultPlan().fail(attempts=0)


def test_apply_raises_matching_fault_inline():
    with pytest.raises(InjectedFault):
        FaultPlan().fail().apply(0, 0, inline=True)
    with pytest.raises(InjectedCrash):
        FaultPlan().crash().apply(0, 0, inline=True)
    with pytest.raises(InjectedHang):
        FaultPlan().hang().apply(0, 0, inline=True)


# ----------------------------------------------------- transient failures


def test_transient_failure_heals_on_retry_inline():
    jobs = _cheap_jobs()
    plan = FaultPlan().fail(indices=[0], attempts=1)
    results = run_grid(jobs, workers=1, fault_plan=plan, backoff=0.0)
    for result, expected in zip(results, _expected(jobs)):
        _assert_slot_correct(result, expected)


def test_transient_failure_heals_on_retry_pool():
    jobs = _cheap_jobs()
    plan = FaultPlan().fail(indices=[1], attempts=1)
    results = run_grid(jobs, workers=2, fault_plan=plan, backoff=0.0)
    for result, expected in zip(results, _expected(jobs)):
        _assert_slot_correct(result, expected)


def test_persistent_failure_exhausts_retries():
    jobs = _cheap_jobs()
    plan = FaultPlan().fail(indices=[0], attempts=99)
    results = run_grid(jobs, workers=2, fault_plan=plan,
                       retries=1, backoff=0.0)
    failure = results[0]
    assert isinstance(failure, JobFailure)
    assert failure.kind == "exception"
    assert failure.attempts == 2  # first try + one retry
    assert "injected transient fault" in failure.message
    for result, expected in zip(results[1:], _expected(jobs)[1:]):
        _assert_slot_correct(result, expected)


# --------------------------------------------------------- worker crashes


def test_worker_crash_recovers_and_retries():
    jobs = _cheap_jobs()
    plan = FaultPlan().crash(indices=[1], attempts=1)
    results = run_grid(jobs, workers=2, fault_plan=plan, backoff=0.0)
    for result, expected in zip(results, _expected(jobs)):
        _assert_slot_correct(result, expected)


def test_persistent_crash_fails_job_but_preserves_grid(tmp_path):
    jobs = _cheap_jobs()
    cache_path = tmp_path / "cache.json"
    plan = FaultPlan().crash(indices=[0], attempts=99)
    results = run_grid(jobs, workers=2, fault_plan=plan, retries=1,
                       backoff=0.0, disk_cache=cache_path)
    failure = results[0]
    assert isinstance(failure, JobFailure)
    assert failure.kind == "crash"
    assert "died" in failure.message
    expected = _expected(jobs)
    for result, want in zip(results[1:], expected[1:]):
        _assert_slot_correct(result, want)
    # Completed jobs were persisted incrementally despite the crashes.
    persisted = DiskResultCache(cache_path, schema=Runner.RESULT_SCHEMA)
    assert len(persisted) == len(jobs) - 1


def test_inline_crash_degrades_to_exception():
    jobs = _cheap_jobs(("LL11",))
    plan = FaultPlan().crash(indices=[0], attempts=1)
    results = run_grid(jobs, workers=1, fault_plan=plan, backoff=0.0)
    _assert_slot_correct(results[0], _expected(jobs)[0])


# ------------------------------------------------------------ worker hangs


def test_hung_worker_reaped_and_retried():
    jobs = _cheap_jobs(("LL11", "LL5"))
    plan = FaultPlan().hang(indices=[0], attempts=1, seconds=30.0)
    results = run_grid(jobs, workers=2, fault_plan=plan,
                       timeout=1.5, backoff=0.0)
    for result, expected in zip(results, _expected(jobs)):
        _assert_slot_correct(result, expected)


def test_persistent_hang_becomes_timeout_failure():
    jobs = _cheap_jobs(("LL11", "LL5"))
    plan = FaultPlan().hang(indices=[0], attempts=99, seconds=30.0)
    results = run_grid(jobs, workers=2, fault_plan=plan,
                       timeout=1.0, retries=0, backoff=0.0)
    failure = results[0]
    assert isinstance(failure, JobFailure)
    assert failure.kind == "timeout"
    assert "timeout" in failure.message
    _assert_slot_correct(results[1], _expected(jobs)[1])


def test_strict_mode_raises_grid_error_on_injected_fault():
    jobs = _cheap_jobs(("LL11", "LL5"))
    plan = FaultPlan().fail(indices=[0], attempts=99)
    with pytest.raises(GridError) as excinfo:
        run_grid(jobs, workers=1, fault_plan=plan, retries=0,
                 backoff=0.0, strict=True)
    assert excinfo.value.failures[0].kind == "exception"
    assert excinfo.value.results[1].ok  # the good job still completed


# -------------------------------------------------------- cache corruption


@pytest.mark.parametrize("mode", ["truncate", "garbage", "binary"])
def test_cache_corruption_quarantined_and_grid_recovers(tmp_path, mode):
    jobs = _cheap_jobs(("LL11", "LL5"))
    cache_path = tmp_path / "cache.json"
    run_grid(jobs, workers=1, disk_cache=cache_path)
    corrupt_file(cache_path, mode=mode)
    with pytest.warns(CacheCorruptionWarning):
        results = run_grid(jobs, workers=1, disk_cache=cache_path)
    for result, expected in zip(results, _expected(jobs)):
        _assert_slot_correct(result, expected)
    assert (tmp_path / "cache.json.corrupt-1").exists()
    # The re-run repopulated the cache with valid entries.
    document = json.loads(cache_path.read_text())
    assert len(document["entries"]) == len(jobs)


def test_corrupt_file_modes_are_deterministic(tmp_path):
    for name, mode in (("a", "binary"), ("b", "binary")):
        path = tmp_path / name
        path.write_bytes(b"x" * 100)
        corrupt_file(path, mode=mode, seed=3)
    assert (tmp_path / "a").read_bytes() == (tmp_path / "b").read_bytes()
    path = tmp_path / "c"
    path.write_bytes(b"0123456789")
    assert corrupt_file(path, mode="truncate").read_bytes() == b"01234"
    with pytest.raises(ValueError):
        corrupt_file(path, mode="shred")


def test_golden_counts_unchanged_by_harness_features(tmp_path):
    """The fault machinery must never perturb simulation results: a
    grid run through the fault-tolerant pool, with a (non-firing) plan
    and a disk cache, reproduces the serial runner bit-for-bit."""
    jobs = _cheap_jobs()
    plan = FaultPlan(seed=1).fail(indices=[999])  # never matches
    results = run_grid(jobs, workers=2, fault_plan=plan,
                       disk_cache=tmp_path / "cache.json", timeout=60.0)
    for result, expected in zip(results, _expected(jobs)):
        _assert_slot_correct(result, expected)
        assert result.checksum == expected.checksum


# ---------------------------------------------------- graceful interruption


class _InterruptAfterFirstDone:
    """Telemetry sink that delivers a real signal to the main thread
    the moment the first job finishes — mid-sweep, deterministically."""

    def __init__(self, signum=signal.SIGINT):
        self.signum = signum
        self.fired = False

    def __call__(self, event):
        if event.kind == "done" and not self.fired:
            self.fired = True
            signal.raise_signal(self.signum)


def test_interrupt_mid_sweep_inline_shuts_down_gracefully():
    from repro.obs.ledger import RunLedger
    from repro.obs.telemetry import SweepTelemetry, summarize

    jobs = _cheap_jobs()
    events = []
    hub = SweepTelemetry(sinks=[lambda e: events.append(e.to_dict()),
                                _InterruptAfterFirstDone()])
    ledger = RunLedger(None)            # REPRO_LEDGER, isolated per test
    with pytest.raises(GridInterrupted) as caught:
        run_grid(jobs, workers=1, telemetry=hub, ledger=ledger)
    error = caught.value
    assert error.signum == signal.SIGINT
    assert "interrupted" in str(error)
    # the finished job survives, with its full result...
    _assert_slot_correct(error.results[0], _expected(jobs[:1])[0])
    # ...every unfinished job is a structured interrupted failure...
    assert [f.kind for f in error.failures] == ["interrupted", "interrupted"]
    assert all(not error.results[i].ok for i in (1, 2))
    # ...the ledger was flushed with the completed work...
    records = ledger.records()
    assert [r["workload"] for r in records] == [jobs[0][0].name]
    # ...and the event accounting still reconciles: one terminal event
    # per job plus the final sweep-end.
    assert events[-1]["event"] == "sweep-end"
    summary = summarize(events)
    assert summary["violations"] == []
    assert summary["metrics"].done == 1
    assert summary["metrics"].failed == 2


def test_interrupt_mid_sweep_pool_harvests_finished_work():
    from repro.obs.telemetry import SweepTelemetry, summarize

    jobs = _cheap_jobs()
    # keep one job provably unfinished at interrupt time
    plan = FaultPlan(seed=0).hang(indices=[2], seconds=60.0)
    events = []
    hub = SweepTelemetry(sinks=[lambda e: events.append(e.to_dict()),
                                _InterruptAfterFirstDone(signal.SIGTERM)])
    with pytest.raises(GridInterrupted) as caught:
        run_grid(jobs, workers=2, fault_plan=plan, telemetry=hub)
    error = caught.value
    assert error.signum == signal.SIGTERM
    done = [r for r in error.results if r is not None and r.ok]
    interrupted = [f for f in error.failures if f.kind == "interrupted"]
    assert len(done) >= 1                      # harvested, not thrown away
    assert len(interrupted) >= 1               # the hung job, at least
    assert len(done) + len(interrupted) == len(jobs)
    assert not error.results[2].ok             # the hung job never finished
    summary = summarize(events)
    assert summary["violations"] == []
    assert summary["metrics"].done == len(done)


def test_interrupt_guard_is_main_thread_only():
    """Off the main thread the guard declines to install and the grid
    runs unguarded — library callers on worker threads are unaffected."""
    from repro.harness.parallel import _InterruptGuard

    out = {}

    def _probe():
        out["guard"] = _InterruptGuard.install()
        out["results"] = run_grid(_cheap_jobs(("LL11",)), workers=1)

    thread = threading.Thread(target=_probe)
    thread.start()
    thread.join(120)
    assert not thread.is_alive()
    assert out["guard"] is None
    assert out["results"][0].ok
