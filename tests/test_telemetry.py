"""Sweep-telemetry suite: the harness-level event stream of
``run_grid`` (see docs/OBSERVABILITY.md, "Sweep telemetry").

Pins the accounting invariant — every job gets exactly one ``queued``
and exactly one terminal event, reconciling with the returned results,
the :class:`JobFailure` records, and the ledger — under the same fault
injectors ``tests/test_faults.py`` uses, plus the exact lifecycle
sequences for the retry/timeout/crash/batch recovery paths, the
Perfetto sweep-timeline export, sweep-scoped ledger queries, and the
requirement that attaching telemetry never changes a cycle count.
"""

import io
import json

import pytest

from repro.core.config import MachineConfig
from repro.faults import FaultPlan
from repro.harness import DiskResultCache, JobFailure, Runner, run_grid
from repro.obs.export import (PID_SWEEP, SweepTraceCollector,
                              validate_trace)
from repro.obs.ledger import RunLedger, LedgerError, utc_now_iso
from repro.obs.telemetry import (LIFECYCLE_KINDS, TERMINAL_KINDS,
                                 LiveProgress, SweepEvent, SweepMetrics,
                                 SweepTelemetry, TelemetryWarning,
                                 load_events, new_sweep_id, render_summary,
                                 summarize)
from repro.workloads import by_name


def _cheap_jobs(names=("LL11", "LL5", "LL2")):
    config = MachineConfig(nthreads=1)
    return [(by_name(name), config) for name in names]


class Cap:
    """Sink that captures every event's dict form, in order."""

    def __init__(self):
        self.events = []

    def __call__(self, event):
        self.events.append(event.to_dict())

    def kinds(self):
        return [record["event"] for record in self.events]

    def of(self, kind):
        return [record for record in self.events if record["event"] == kind]


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


def _hub(**kwargs):
    """Hub with heartbeats suppressed so sequences are deterministic."""
    kwargs.setdefault("heartbeat", 1e9)
    return SweepTelemetry(**kwargs)


def _reconcile(cap, results):
    """Assert the accounting invariant against run_grid's results."""
    by_job = {}
    for record in cap.events:
        if "job" in record:
            by_job.setdefault(record["job"], []).append(record["event"])
    assert set(by_job) == set(range(len(results)))
    for index, kinds in by_job.items():
        assert kinds.count("queued") == 1, (index, kinds)
        terminals = [kind for kind in kinds if kind in TERMINAL_KINDS]
        assert len(terminals) == 1, (index, kinds)
        if terminals[0] == "failed":
            assert isinstance(results[index], JobFailure)
        else:
            assert results[index].ok
    assert not summarize(cap.events)["violations"]


# ------------------------------------------------------------ pure pieces


def test_event_to_dict_round_trips():
    event = SweepEvent("retry", 1.25, "abc", job=3, workload="LL5",
                       data={"kind": "crash", "attempt": 2})
    record = event.to_dict()
    assert record == {"event": "retry", "t": 1.25, "sweep_id": "abc",
                      "job": 3, "workload": "LL5", "kind": "crash",
                      "attempt": 2}
    back = SweepEvent.from_dict(record)
    assert back.kind == "retry" and back.job == 3
    assert back.data == {"kind": "crash", "attempt": 2}
    # Sweep-level events omit job/workload entirely.
    assert "job" not in SweepEvent("sweep-end", 0.0, "abc").to_dict()


def test_new_sweep_ids_are_short_and_unique():
    ids = {new_sweep_id() for _ in range(64)}
    assert len(ids) == 64
    assert all(len(sid) == 12 for sid in ids)


def test_metrics_fold_and_derived_views():
    clock = FakeClock()
    hub = _hub(sweep_id="s", clock=clock)
    hub.sweep_start(total=4, workers=2, backend="scalar")
    for index in range(4):
        hub.job_queued(index, "LL5")
    hub.cache_hit(0, "LL5")
    clock.advance(1.0)
    hub.job_started(1, "LL5", attempt=1)
    hub.job_done(1, "LL5", cycles=100, wall_seconds=2.0, backend="scalar")
    hub.job_started(2, "LL5", attempt=1)
    m = hub.metrics
    assert m.total == 4 and m.workers == 2
    assert m.queued_events == 4 and m.cache_hits == 1 and m.done == 1
    assert m.terminal == 2 and m.remaining == 2
    assert m.running == {2}
    assert m.cache_hit_rate() == 0.5
    assert m.jobs_per_sec() == pytest.approx(2.0)
    # ETA from mean wall of done jobs over the worker width.
    assert m.eta_seconds() == pytest.approx(2 * 2.0 / 2)
    snapshot = m.to_dict()
    assert snapshot["backends"] == {"scalar": 1}
    assert snapshot["running"] == 1
    assert snapshot["eta_seconds"] == pytest.approx(2.0)


def test_metrics_eta_rate_fallback_before_any_done():
    m = SweepMetrics()
    assert m.jobs_per_sec() is None
    assert m.eta_seconds() == 0.0  # nothing queued: nothing remains
    m.apply(SweepEvent("sweep-start", 0.0, "s", data={"total": 2}))
    m.apply(SweepEvent("queued", 0.0, "s", job=0))
    m.apply(SweepEvent("queued", 0.0, "s", job=1))
    m.apply(SweepEvent("cache-hit", 2.0, "s", job=0))
    assert m.eta_seconds() == pytest.approx(2.0)  # 1 left at 0.5 job/s


def test_heartbeat_is_throttled_by_hub_clock():
    clock = FakeClock()
    cap = Cap()
    hub = SweepTelemetry(sweep_id="s", sinks=[cap], heartbeat=2.0,
                         clock=clock)
    assert hub.maybe_heartbeat(running=1) is not None
    clock.advance(1.0)
    assert hub.maybe_heartbeat(running=1) is None
    clock.advance(1.5)
    beat = hub.maybe_heartbeat(running=3, queued=2)
    assert beat is not None
    assert beat.data["metrics"]["total"] == 0
    assert [r["event"] for r in cap.events] == ["heartbeat", "heartbeat"]


def test_subscribe_rejects_non_callable_and_unsubscribe_is_idempotent():
    hub = _hub()
    with pytest.raises(TypeError):
        hub.subscribe("not-a-sink")
    cap = Cap()
    hub.subscribe(cap)
    hub.unsubscribe(cap)
    hub.unsubscribe(cap)  # unknown sink: no-op
    hub.sweep_start(total=0)
    assert cap.events == []


# ------------------------------------------------------- grid lifecycles


def test_inline_grid_emits_exact_happy_path_sequence():
    jobs = _cheap_jobs(("LL11", "LL5"))
    cap = Cap()
    hub = _hub(sweep_id="seq1", sinks=[cap])
    results = run_grid(jobs, workers=1, telemetry=hub)
    assert cap.kinds() == [
        "sweep-start", "queued", "queued", "started", "done",
        "started", "done", "sweep-end"]
    start = cap.events[0]
    assert start["total"] == 2 and start["backend"] == "scalar"
    assert start["schema"] == 1 and start["workers"] == 1
    done = cap.of("done")
    assert [r["job"] for r in done] == [0, 1]
    for record, result in zip(done, results):
        assert record["cycles"] == result.cycles
        assert record["attempts"] == 1
    assert all(r["sweep_id"] == "seq1" for r in cap.events)
    end = cap.events[-1]
    assert end["metrics"]["done"] == 2 and end["metrics"]["failed"] == 0
    _reconcile(cap, results)


def test_transient_failure_emits_retry_then_heals():
    jobs = _cheap_jobs(("LL11",))
    plan = FaultPlan().fail(indices=[0], attempts=1)
    cap = Cap()
    results = run_grid(jobs, workers=1, fault_plan=plan, backoff=0.0,
                       telemetry=_hub(sinks=[cap]))
    assert cap.kinds() == [
        "sweep-start", "queued", "started", "retry", "started", "done",
        "sweep-end"]
    retry = cap.of("retry")[0]
    assert retry["kind"] == "exception" and retry["attempt"] == 1
    starts = cap.of("started")
    assert [r["attempt"] for r in starts] == [1, 2]
    assert cap.of("done")[0]["attempts"] == 2
    _reconcile(cap, results)


def test_persistent_failure_emits_exactly_one_failed_terminal():
    jobs = _cheap_jobs(("LL11", "LL5"))
    plan = FaultPlan().fail(indices=[0], attempts=99)
    cap = Cap()
    results = run_grid(jobs, workers=1, fault_plan=plan, retries=1,
                       backoff=0.0, telemetry=_hub(sinks=[cap]))
    failed = cap.of("failed")
    assert len(failed) == 1
    assert failed[0]["job"] == 0 and failed[0]["kind"] == "exception"
    assert failed[0]["attempts"] == 2
    assert results[0].message in failed[0]["message"] \
        or failed[0]["message"] == results[0].message
    assert cap.events[-1]["metrics"]["failed"] == 1
    _reconcile(cap, results)


def test_pool_crash_emits_worker_crash_and_reconciles():
    jobs = _cheap_jobs(("LL11", "LL5"))
    plan = FaultPlan().crash(indices=[0], attempts=1)
    cap = Cap()
    results = run_grid(jobs, workers=2, fault_plan=plan, backoff=0.0,
                       telemetry=_hub(sinks=[cap]))
    crashes = cap.of("worker-crash")
    assert crashes, "pool breakage must surface as worker-crash events"
    assert all(0 in r["victims"] for r in crashes)
    assert all(result.ok for result in results)
    _reconcile(cap, results)


def test_hang_emits_timeout_then_retry_then_done():
    jobs = _cheap_jobs(("LL11", "LL5"))
    plan = FaultPlan().hang(indices=[0], attempts=1, seconds=30.0)
    cap = Cap()
    results = run_grid(jobs, workers=2, fault_plan=plan, timeout=1.5,
                       backoff=0.0, telemetry=_hub(sinks=[cap]))
    job0 = [r["event"] for r in cap.events if r.get("job") == 0]
    assert "timeout" in job0
    sequence = [kind for kind in job0
                if kind in ("timeout", "retry", "done")]
    assert sequence == ["timeout", "retry", "done"]
    retry = cap.of("retry")[0]
    assert retry["kind"] == "timeout"
    _reconcile(cap, results)


def test_persistent_hang_emits_timeout_failure():
    jobs = _cheap_jobs(("LL11", "LL5"))
    plan = FaultPlan().hang(indices=[0], attempts=99, seconds=30.0)
    cap = Cap()
    results = run_grid(jobs, workers=2, fault_plan=plan, timeout=1.0,
                       retries=0, backoff=0.0, telemetry=_hub(sinks=[cap]))
    failed = cap.of("failed")
    assert len(failed) == 1 and failed[0]["kind"] == "timeout"
    assert isinstance(results[0], JobFailure)
    _reconcile(cap, results)


def test_cache_hits_are_terminal_and_sweep_end_carries_counters(tmp_path):
    jobs = _cheap_jobs(("LL11", "LL5"))
    cache_path = tmp_path / "cache.json"
    run_grid(jobs, workers=1, disk_cache=cache_path)
    cap = Cap()
    results = run_grid(jobs, workers=1, disk_cache=cache_path,
                       telemetry=_hub(sinks=[cap]))
    assert cap.kinds() == ["sweep-start", "queued", "cache-hit", "queued",
                           "cache-hit", "sweep-end"]
    end = cap.events[-1]
    assert end["cache"]["hits"] == 2
    assert end["cache"]["entries"] == 2
    assert end["metrics"]["cache_hits"] == 2
    assert end["metrics"]["cache_hit_rate"] == 1.0
    _reconcile(cap, results)


def test_batch_degrade_emits_scalar_fallback_sequence():
    config = MachineConfig(nthreads=1)
    jobs = [(by_name("LL5"), config.replace(su_entries=depth))
            for depth in (4, 8, 16, 32)]
    plan = FaultPlan().fail(indices=[1], attempts=1)
    cap = Cap()
    results = run_grid(jobs, workers=1, backend="batch", fault_plan=plan,
                       backoff=0.0, telemetry=_hub(sinks=[cap]))
    batched = cap.of("batched")
    assert len(batched) == 1
    assert batched[0]["members"] == [0, 1, 2, 3]
    assert batched[0]["size"] == 4
    assert all(r["batched"] for r in cap.of("started")[:4])
    degraded = cap.of("degraded-to-scalar")
    assert [r["job"] for r in degraded] == [1]
    retry = cap.of("retry")[0]
    assert retry["job"] == 1
    # The healed member reruns scalar: a second, unbatched start.
    rerun = [r for r in cap.of("started") if r["job"] == 1][-1]
    assert rerun["batched"] is False
    assert all(result.ok for result in results)
    end_metrics = cap.events[-1]["metrics"]
    assert end_metrics["batches"] == 1
    assert end_metrics["degraded_to_scalar"] == 1
    _reconcile(cap, results)


def test_telemetry_attachment_never_changes_cycle_counts():
    jobs = _cheap_jobs()
    bare = run_grid(jobs, workers=1)
    cap = Cap()
    watched = run_grid(jobs, workers=1, telemetry=_hub(sinks=[cap]))
    for a, b in zip(bare, watched):
        assert a.cycles == b.cycles
        assert a.checksum == b.checksum
        assert a.stats.to_dict() == b.stats.to_dict()
    expected = [Runner().run(w, c) for w, c in jobs]
    for result, gold in zip(watched, expected):
        assert result.cycles == gold.cycles


def test_progress_argument_accepts_plain_callable():
    cap = Cap()
    run_grid(_cheap_jobs(("LL11",)), workers=1, progress=cap)
    assert cap.kinds()[0] == "sweep-start"
    assert cap.kinds()[-1] == "sweep-end"


# ----------------------------------------------------- trace + event log


def test_sweep_trace_collector_produces_valid_trace():
    jobs = _cheap_jobs(("LL11", "LL5", "LL2"))
    plan = FaultPlan().fail(indices=[0], attempts=1)
    trace_sink = SweepTraceCollector()
    results = run_grid(jobs, workers=1, fault_plan=plan, backoff=0.0,
                       telemetry=_hub(sinks=[trace_sink]))
    assert all(result.ok for result in results)
    trace = trace_sink.trace()
    assert validate_trace(trace) == []
    spans = [r for r in trace["traceEvents"]
             if r.get("ph") == "X" and r.get("pid") == PID_SWEEP]
    # One span per charged attempt: 3 jobs + 1 retry of job 0.
    assert len(spans) == 4
    outcomes = sorted(s["args"]["outcome"] for s in spans)
    assert outcomes == ["done", "done", "done", "retry"]
    assert all(s["dur"] >= 1 for s in spans)
    buffer = io.StringIO()
    trace_sink.write(buffer)
    assert json.loads(buffer.getvalue())["traceEvents"]


def test_trace_collector_closes_unfinished_spans_at_sweep_end():
    hub = _hub(sweep_id="t")
    sink = hub.subscribe(SweepTraceCollector())
    hub.sweep_start(total=1, workers=1)
    hub.job_queued(0, "LL5")
    hub.job_started(0, "LL5", attempt=1)
    hub.sweep_end()
    spans = [r for r in sink.trace()["traceEvents"] if r.get("ph") == "X"]
    assert len(spans) == 1
    assert spans[0]["args"]["outcome"] == "unfinished"
    assert validate_trace(sink.trace()) == []


def test_event_log_round_trips_and_summarizes(tmp_path):
    jobs = _cheap_jobs(("LL11", "LL5"))
    plan = FaultPlan().fail(indices=[0], attempts=1)
    log_path = tmp_path / "events.jsonl"
    with open(log_path, "w") as handle:
        from repro.obs.export import JsonlSink
        hub = _hub(sinks=[JsonlSink(handle)])
        run_grid(jobs, workers=1, fault_plan=plan, backoff=0.0,
                 telemetry=hub)
    events = load_events(log_path)
    assert [r["event"] for r in events][0] == "sweep-start"
    summary = summarize(events)
    assert summary["violations"] == []
    assert summary["metrics"].done == 2
    assert summary["metrics"].retries == 1
    assert summary["sweep_ids"] == [hub.sweep_id]
    text, ok = render_summary(events, waterfall=True)
    assert ok
    assert "accounting: ok" in text
    assert "per-job waterfall" in text
    assert hub.sweep_id in text


def test_load_events_skips_malformed_lines_with_warning(tmp_path):
    log_path = tmp_path / "events.jsonl"
    good = {"event": "queued", "t": 0.0, "sweep_id": "s", "job": 0}
    log_path.write_text(json.dumps(good) + "\n"
                        "{this is not json\n"
                        "[1, 2, 3]\n"
                        "\n"
                        + json.dumps({"no_event_key": 1}) + "\n")
    with pytest.warns(TelemetryWarning, match="3 malformed"):
        events = load_events(log_path)
    assert events == [good]


def test_summarize_flags_accounting_violations():
    events = [
        {"event": "sweep-start", "t": 0.0, "sweep_id": "s", "total": 2,
         "workers": 1},
        {"event": "queued", "t": 0.0, "sweep_id": "s", "job": 0},
        {"event": "queued", "t": 0.0, "sweep_id": "s", "job": 0},
        {"event": "done", "t": 1.0, "sweep_id": "s", "job": 0},
        {"event": "done", "t": 1.0, "sweep_id": "s", "job": 0},
        {"event": "queued", "t": 0.0, "sweep_id": "s", "job": 1},
    ]
    violations = summarize(events)["violations"]
    assert any("2 queued" in v for v in violations)
    assert any("2 terminal" in v for v in violations)
    assert any("job 1" in v and "none" in v for v in violations)
    text, ok = render_summary(events)
    assert not ok
    assert "accounting: VIOLATED" in text


def test_render_summary_includes_failure_forensics():
    events = [
        {"event": "sweep-start", "t": 0.0, "sweep_id": "s", "total": 1,
         "workers": 1},
        {"event": "queued", "t": 0.0, "sweep_id": "s", "job": 0,
         "workload": "LL5"},
        {"event": "started", "t": 0.1, "sweep_id": "s", "job": 0,
         "workload": "LL5", "attempt": 1},
        {"event": "failed", "t": 0.2, "sweep_id": "s", "job": 0,
         "workload": "LL5", "kind": "exception", "attempts": 1,
         "message": "boom"},
    ]
    text, ok = render_summary(events)
    assert ok  # accounting holds even though the job failed
    assert "failure forensics" in text
    assert "boom" in text
    muted, _ = render_summary(events, show_failures=False)
    assert "failure forensics" not in muted


def test_live_progress_renders_and_finishes_with_newline():
    clock = FakeClock()
    stream = io.StringIO()
    view = LiveProgress(stream=stream, min_interval=0.0, clock=clock)
    hub = _hub(sweep_id="live1", sinks=[view], clock=clock)
    hub.sweep_start(total=2, workers=1)
    hub.job_queued(0, "LL11")
    hub.job_queued(1, "LL5")
    hub.job_started(0, "LL11", attempt=1)
    clock.advance(0.5)
    hub.job_done(0, "LL11", cycles=10, wall_seconds=0.5)
    hub.job_failed(1, "LL5", kind="exception", attempts=1, message="x")
    hub.sweep_end()
    out = stream.getvalue()
    assert out.endswith("\n")
    line = view.render()
    assert "2/2 jobs" in line
    assert "1 done" in line and "1 FAILED" in line
    assert view.count == 7
    assert view.metrics.terminal == 2


def test_live_progress_println_keeps_status_line_intact():
    """``println`` lets another writer (e.g. the service access log)
    share the tty: the injected text lands on its own row — padded
    past the previous status width so no stale fragment survives —
    and the status line is redrawn underneath."""
    clock = FakeClock()
    stream = io.StringIO()
    view = LiveProgress(stream=stream, min_interval=0.0, clock=clock)
    hub = _hub(sweep_id="live3", sinks=[view], clock=clock)
    hub.sweep_start(total=2, workers=1)
    hub.job_queued(0, "LL11")
    before_width = view._width
    view.println("log!")
    out = stream.getvalue()
    # the short injected line is padded over the longer status line
    row = out.split("\n")[-2].split("\r")[-1]
    assert row.startswith("log!")
    assert len(row) >= before_width
    # and the status line is live again on the next row
    assert out.split("\n")[-1] == view.render()
    # the sweep keeps rendering normally afterwards
    hub.job_done(0, "LL11", cycles=10, wall_seconds=0.1)
    assert "1 done" in view.render()


def test_live_progress_throttles_redraws():
    clock = FakeClock()
    stream = io.StringIO()
    view = LiveProgress(stream=stream, min_interval=10.0, clock=clock)
    hub = _hub(sweep_id="live2", sinks=[view], clock=clock)
    hub.sweep_start(total=3, workers=1)
    first = stream.getvalue().count("\r")
    for index in range(3):
        hub.job_queued(index, "LL11")  # within min_interval: no redraw
    assert stream.getvalue().count("\r") == first
    hub.sweep_end()  # final event always redraws
    assert stream.getvalue().count("\r") == first + 1


# ------------------------------------------------------- ledger scoping


def test_run_grid_stamps_sweep_id_into_ledger(tmp_path):
    ledger = RunLedger(tmp_path / "ledger.jsonl")
    cap = Cap()
    hub = _hub(sinks=[cap])
    run_grid(_cheap_jobs(("LL11", "LL5")), workers=1, ledger=ledger,
             ledger_timestamp=utc_now_iso(), telemetry=hub)
    records = ledger.records()
    assert len(records) == 2
    assert all(r["sweep_id"] == hub.sweep_id for r in records)
    assert all(e["sweep_id"] == hub.sweep_id for e in cap.events)


def test_explicit_sweep_id_without_telemetry(tmp_path):
    ledger = RunLedger(tmp_path / "ledger.jsonl")
    run_grid(_cheap_jobs(("LL11",)), workers=1, ledger=ledger,
             ledger_timestamp=utc_now_iso(), sweep_id="pinned123456")
    assert ledger.records()[0]["sweep_id"] == "pinned123456"


def test_ledger_only_runs_stay_deterministic_without_sweep_id(tmp_path):
    """No telemetry, no sweep_id: run_grid must not invent one, so a
    repeat append with a pinned timestamp differs only in wall-clock
    noise (``wall_seconds`` and its derivatives), never in identity."""
    ledger_path = tmp_path / "ledger.jsonl"
    stamp = "2026-01-01T00:00:00Z"
    run_grid(_cheap_jobs(("LL11",)), workers=1, ledger=ledger_path,
             ledger_timestamp=stamp)
    run_grid(_cheap_jobs(("LL11",)), workers=1, ledger=ledger_path,
             ledger_timestamp=stamp)
    first, second = [json.loads(line) for line in
                     ledger_path.read_text().splitlines()]
    assert first["sweep_id"] is None and second["sweep_id"] is None
    for record in (first, second):
        for key in ("wall_seconds", "cycles_per_sec", "run_id"):
            record.pop(key)
    assert first == second


def test_legacy_records_load_with_none_sweep_id(tmp_path):
    ledger = RunLedger(tmp_path / "ledger.jsonl")
    run_grid(_cheap_jobs(("LL11",)), workers=1, ledger=ledger,
             ledger_timestamp=utc_now_iso(), sweep_id="sweepsweep12")
    line = ledger.path.read_text()
    record = json.loads(line)
    del record["sweep_id"]  # simulate a pre-telemetry record
    ledger.path.write_text(line + json.dumps(record) + "\n")
    old, new = sorted(ledger.records(), key=lambda r: r["sweep_id"] or "")
    assert old["sweep_id"] is None
    assert new["sweep_id"] == "sweepsweep12"


def test_resolve_and_latest_by_key_scope_to_sweep(tmp_path):
    ledger = RunLedger(tmp_path / "ledger.jsonl")
    jobs = _cheap_jobs(("LL11",))
    run_grid(jobs, workers=1, ledger=ledger,
             ledger_timestamp="2026-01-01T00:00:00Z", sweep_id="sweepa" * 2)
    run_grid(jobs, workers=1, ledger=ledger,
             ledger_timestamp="2026-01-02T00:00:00Z", sweep_id="sweepb" * 2)
    scoped = ledger.resolve("last", sweep="sweepa" * 2)
    assert scoped["sweep_id"] == "sweepa" * 2
    assert ledger.resolve("last")["sweep_id"] == "sweepb" * 2
    latest = ledger.latest_by_key(sweep="sweepa" * 2)
    assert all(r["sweep_id"] == "sweepa" * 2 for r in latest.values())
    with pytest.raises(LedgerError, match="no records for sweep"):
        ledger.resolve("last", sweep="missing12345")


# ----------------------------------------------------- disk-cache counters


def test_disk_cache_counters_expose_full_accounting(tmp_path):
    cache = DiskResultCache(tmp_path / "cache.json")
    jobs = _cheap_jobs(("LL11", "LL5"))
    run_grid(jobs, workers=1, disk_cache=cache)
    assert cache.counters()["misses"] == 2
    assert cache.counters()["entries"] == 2
    cache2 = DiskResultCache(tmp_path / "cache.json")
    run_grid(jobs, workers=1, disk_cache=cache2)
    counters = cache2.counters()
    assert counters["hits"] == 2
    assert counters["misses"] == 0
    assert counters["dropped"] == 0
    assert counters["quarantined"] == 0
    assert sorted(counters) == ["dropped", "entries", "hits", "misses",
                                "quarantined"]


def test_lifecycle_kind_tables_are_consistent():
    assert set(TERMINAL_KINDS) <= set(LIFECYCLE_KINDS)
    assert len(set(LIFECYCLE_KINDS)) == len(LIFECYCLE_KINDS)
