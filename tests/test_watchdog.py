"""No-progress watchdog and configuration validation.

A wedged pipeline used to spin silently until ``max_cycles`` (default
20M) before raising a bare :class:`DeadlockError`. The watchdog
(``hang_cycles``) raises a diagnosable :class:`SimulationHang` — with a
machine-state report attached — as soon as no block has committed for
the configured window.
"""

import pytest

from repro.asm import assemble
from repro.core import MachineConfig, PipelineSim
from repro.core.pipeline import DeadlockError, SimulationHang
from repro.isa.opcodes import FuClass
from repro.workloads import by_name

SOURCE = """
    .data
out: .word 0
    .text
    li r4, 21
    add r4, r4, r4
    la r5, out
    sw r4, 0(r5)
    halt
"""


def _wedged_sim(**overrides):
    """A real sim whose step is replaced by a no-commit spin.

    Genuine wedges (a stuck SU head, an undrainable store buffer) are
    what the watchdog exists for, but manufacturing one from legal
    machine code would couple this test to a specific simulator bug.
    Stalling ``step`` models the exact observable the watchdog watches:
    cycles advancing with ``stats.committed`` frozen.
    """
    program = assemble(SOURCE)
    config = MachineConfig(nthreads=1, fast_forward=False, **overrides)
    sim = PipelineSim(program, config)
    sim.step = lambda: setattr(sim, "cycle", sim.cycle + 1)
    return sim


def test_watchdog_raises_simulation_hang():
    sim = _wedged_sim(hang_cycles=500, max_cycles=100_000)
    with pytest.raises(SimulationHang) as excinfo:
        sim.run()
    error = excinfo.value
    assert "no block committed for 500 cycles" in str(error)
    assert sim.cycle < 1_000  # fired at the window, not at max_cycles


def test_simulation_hang_is_a_deadlock_error():
    # Existing guards catch DeadlockError; the watchdog must not
    # escape them.
    assert issubclass(SimulationHang, DeadlockError)
    sim = _wedged_sim(hang_cycles=300, max_cycles=100_000)
    with pytest.raises(DeadlockError):
        sim.run()


def test_hang_report_carries_machine_state():
    sim = _wedged_sim(hang_cycles=400, max_cycles=100_000)
    with pytest.raises(SimulationHang) as excinfo:
        sim.run()
    report = excinfo.value.report
    assert report["committed"] == 0
    assert report["halted"] == 0
    assert len(report["threads"]) == 1
    thread = report["threads"][0]
    assert {"tid", "pc", "done", "in_flight"} <= set(thread)
    assert {"entries", "capacity", "blocks"} <= set(report["su"])
    assert "store_buffer" in report
    # The message is self-contained for bug reports: key state inline.
    message = str(excinfo.value)
    assert "scheduling unit:" in message and "threads:" in message


def test_hang_report_includes_attribution_when_attached():
    sim = _wedged_sim(hang_cycles=300, max_cycles=100_000)
    sim.attach_attribution()
    with pytest.raises(SimulationHang) as excinfo:
        sim.run()
    assert "stall_breakdown" in excinfo.value.report


def test_watchdog_disabled_falls_back_to_max_cycles():
    sim = _wedged_sim(hang_cycles=None, max_cycles=2_000)
    with pytest.raises(DeadlockError) as excinfo:
        sim.run()
    assert not isinstance(excinfo.value, SimulationHang)
    assert sim.cycle >= 2_000


def test_default_watchdog_does_not_fire_on_real_workloads():
    # 200k cycles without a commit is orders of magnitude beyond any
    # legitimate gap; whole benches finish well below it.
    workload = by_name("LL2")
    config = MachineConfig(nthreads=2)
    assert config.hang_cycles == 200_000
    sim = PipelineSim(workload.program(2), config)
    stats = sim.run()
    assert stats.cycles < config.hang_cycles


def test_pipeline_rejects_config_that_cannot_execute_program():
    # A program needing integer multiply on a machine with zero IMUL
    # units would wedge forever; validate() refuses to build the sim.
    program = assemble("""
        .text
        li r4, 6
        li r5, 7
        mul r4, r4, r5
        halt
    """)
    config = MachineConfig(nthreads=1)
    counts = dict(config.fu_counts)
    counts[FuClass.IMUL] = 0
    with pytest.raises(ValueError, match="guaranteed hang"):
        PipelineSim(program, config.replace(fu_counts=counts))
