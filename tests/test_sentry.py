"""Regression sentry: baseline comparison, fault injection, repro check."""

import json
import shutil

import pytest

from repro.cli import main
from repro.faults import perturb_cycles
from repro.obs.sentry import (BATCH_SWEEP_LABEL, DEFAULT_TOLERANCE, MATRIX,
                              check_baseline, matrix_configs)

BENCH = "BENCH_engine.json"


def _measured(label="LL2-1t-default", cycles=5779, rate=40_000):
    return {label: {"cycles": cycles, "cycles_per_sec": rate,
                    "wall_seconds": cycles / rate, "stats": {}}}


def _baseline(label="LL2-1t-default", cycles=5779, rate=40_000):
    return {"cycles": {label: cycles}, "cycles_per_sec": {label: rate}}


# ------------------------------------------------- check_baseline paths

def test_check_baseline_clean_pass():
    cycles, perf = check_baseline(_measured(), _baseline())
    assert cycles == [] and perf == []


def test_check_baseline_cycle_drift_always_fatal():
    # One simulated cycle off is a timing-model change, regardless of
    # how generous the throughput tolerance is.
    cycles, perf = check_baseline(_measured(cycles=5780), _baseline(),
                                  tolerance=0.99)
    assert len(cycles) == 1
    assert "5780" in cycles[0] and "5779" in cycles[0]
    assert "ENGINE_VERSION" in cycles[0]
    assert perf == []


def test_check_baseline_throughput_tolerance_band():
    # 25% below the committed rate: inside the default 30% band...
    cycles, perf = check_baseline(_measured(rate=30_000),
                                  _baseline(rate=40_000))
    assert cycles == [] and perf == []
    # ...but outside a tight 10% band.
    cycles, perf = check_baseline(_measured(rate=30_000),
                                  _baseline(rate=40_000), tolerance=0.10)
    assert cycles == []
    assert len(perf) == 1 and "30,000" in perf[0]


def test_check_baseline_throughput_gain_never_fails():
    cycles, perf = check_baseline(_measured(rate=80_000),
                                  _baseline(rate=40_000))
    assert cycles == [] and perf == []


def test_check_baseline_ignores_labels_missing_from_baseline():
    # A subset matrix (repro check --entry) checks cleanly against the
    # full committed file; unknown labels never fail.
    measured = _measured(label="brand-new-entry", cycles=1, rate=1)
    cycles, perf = check_baseline(measured, _baseline())
    assert cycles == [] and perf == []


def test_matrix_labels_match_committed_baseline():
    bench = json.loads(open(BENCH).read())
    labels = {label for label, _, _ in MATRIX}
    # The batch-backend sweep pins its aggregate in the same maps under
    # its own label (see docs/PERFORMANCE.md, "Batch backend").
    pinned = labels | {BATCH_SWEEP_LABEL}
    assert pinned == set(bench["cycles"])
    assert pinned == set(bench["cycles_per_sec"])
    assert set(matrix_configs()) == labels


# -------------------------------------------------------- fault injector

def test_perturb_cycles_deterministic(tmp_path):
    for copy in ("a.json", "b.json"):
        shutil.copy(BENCH, tmp_path / copy)
    hit_a = perturb_cycles(tmp_path / "a.json", seed=7)
    hit_b = perturb_cycles(tmp_path / "b.json", seed=7)
    assert hit_a == hit_b  # same seed, same file -> same corruption
    label, old, new = hit_a
    assert new != old and 1 <= abs(new - old) <= 8
    data = json.loads((tmp_path / "a.json").read_text())
    assert data["cycles"][label] == new


def test_perturb_cycles_rejects_shapeless_file(tmp_path):
    path = tmp_path / "empty.json"
    path.write_text(json.dumps({"cycles": {}}))
    with pytest.raises(ValueError, match="no 'cycles' object"):
        perturb_cycles(path)


# ------------------------------------------------- repro check end-to-end

def test_repro_check_passes_on_golden_matrix(capsys):
    # The acceptance gate: a clean tree measures bit-identical cycles
    # against the committed baseline. One cheap entry keeps it fast;
    # throughput is advisory because test hosts are arbitrarily slow.
    assert main(["check", "--baseline", BENCH,
                 "--entry", "LL2-1t-default", "--reps", "1",
                 "--advisory-throughput"]) == 0
    assert "repro check ok" in capsys.readouterr().out


def test_repro_check_fails_on_seeded_corruption(tmp_path, capsys):
    bad = tmp_path / "BENCH_bad.json"
    shutil.copy(BENCH, bad)
    label, old, new = perturb_cycles(bad, seed=7)
    assert main(["check", "--baseline", str(bad),
                 "--entry", label, "--reps", "1",
                 "--advisory-throughput"]) == 1
    err = capsys.readouterr().err
    assert "CYCLES" in err and label in err
    assert str(old) in err and str(new) in err
    assert "repro check FAILED" in err


def test_repro_check_unknown_entry_exits_2(capsys):
    assert main(["check", "--baseline", BENCH, "--entry", "Nope"]) == 2
    assert "unknown matrix entry" in capsys.readouterr().err


def test_repro_check_missing_baseline_exits_2(capsys):
    assert main(["check", "--baseline", "/nonexistent/bench.json"]) == 2
    assert "cannot read baseline" in capsys.readouterr().err


def test_repro_check_appends_ledger(tmp_path):
    from repro.obs.ledger import RunLedger

    ledger = tmp_path / "check-ledger.jsonl"
    assert main(["check", "--baseline", BENCH,
                 "--entry", "LL2-1t-default", "--reps", "1",
                 "--advisory-throughput", "--ledger", str(ledger)]) == 0
    (record,) = RunLedger(ledger).records()
    assert record["source"] == "cli.check"
    assert record["workload"] == "LL2"
    assert record["cycles_per_sec"]
    assert DEFAULT_TOLERANCE == 0.30  # docs/PERFORMANCE.md contract
