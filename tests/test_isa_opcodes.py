"""Opcode-table metadata invariants."""

from repro.isa import Op, OPCODE_INFO
from repro.isa.instruction import Instruction, nop
from repro.isa.opcodes import Format, FuClass, MNEMONIC_INFO


def test_every_opcode_has_info():
    assert set(OPCODE_INFO) == set(Op)


def test_mnemonics_unique_and_lowercase():
    assert len(MNEMONIC_INFO) == len(OPCODE_INFO)
    for mnemonic in MNEMONIC_INFO:
        assert mnemonic == mnemonic.lower()


def test_switch_triggers_match_paper():
    """Integer divide, FP multiply/divide, and the sync primitive."""
    triggers = {op for op, info in OPCODE_INFO.items() if info.switch_trigger}
    assert triggers == {Op.DIV, Op.REM, Op.FMUL, Op.FDIV, Op.TAS}


def test_tas_is_sync_load_and_store():
    info = OPCODE_INFO[Op.TAS]
    assert info.is_sync and info.is_load and info.is_store and info.is_mem


def test_control_classification():
    for op in (Op.BEQ, Op.BNE, Op.BLT, Op.BGE):
        assert OPCODE_INFO[op].is_branch
        assert OPCODE_INFO[op].is_control
    for op in (Op.J, Op.JAL, Op.JALR):
        assert OPCODE_INFO[op].is_jump
        assert OPCODE_INFO[op].is_control
    assert OPCODE_INFO[Op.HALT].is_control
    assert not OPCODE_INFO[Op.ADD].is_control


def test_memory_ops_use_memory_units():
    for op, info in OPCODE_INFO.items():
        if info.is_load:
            assert info.fu is FuClass.LOAD
        elif info.is_store:
            assert info.fu is FuClass.STORE


def test_control_ops_use_ct_unit():
    for op, info in OPCODE_INFO.items():
        if info.is_control:
            assert info.fu is FuClass.CT


def test_sources_and_dest_consistent_with_format():
    cases = {
        Format.R: (Instruction(Op.ADD, rd=1, rs1=2, rs2=3), (2, 3), 1),
        Format.I: (Instruction(Op.ADDI, rd=1, rs1=2, imm=5), (2,), 1),
        Format.L: (Instruction(Op.LW, rd=1, rs1=2, imm=0), (2,), 1),
        Format.S: (Instruction(Op.SW, rs2=3, rs1=2, imm=0), (2, 3), None),
        Format.B: (Instruction(Op.BEQ, rs1=2, rs2=3, imm=0), (2, 3), None),
        Format.JR: (Instruction(Op.JALR, rd=1, rs1=2), (2,), 1),
        Format.X: (Instruction(Op.MFTID, rd=1), (), 1),
        Format.N: (Instruction(Op.HALT), (), None),
    }
    for fmt, (instr, sources, dest) in cases.items():
        assert instr.info.fmt is fmt
        assert instr.sources() == sources
        assert instr.dest() == dest


def test_unary_fp_ops_read_one_source():
    for op in (Op.CVTIF, Op.CVTFI, Op.FNEG):
        instr = Instruction(op, rd=1, rs1=2)
        assert instr.sources() == (2,)


def test_jal_writes_link_j_does_not():
    assert Instruction(Op.JAL, rd=1, imm=0).dest() == 1
    assert Instruction(Op.J, imm=0).dest() is None


def test_nop_is_add_zero():
    instr = nop()
    assert instr.op is Op.ADD
    assert instr.dest() == 0


def test_instruction_text_roundtrips_equality():
    a = Instruction(Op.ADD, rd=1, rs1=2, rs2=3)
    b = Instruction(Op.ADD, rd=1, rs1=2, rs2=3)
    c = Instruction(Op.ADD, rd=1, rs1=2, rs2=4)
    assert a == b and hash(a) == hash(b)
    assert a != c
