"""Stall-attribution tests: exact reconciliation on the golden matrix.

Running the full golden-cycle matrix with attribution attached proves
two things at once: the account sums to ``stats.cycles`` in both
engine modes, and attaching observability does not move a single
simulated cycle (the counts are compared to the same fixture the
uninstrumented engine is pinned against).
"""

import pytest

from repro.core import MachineConfig, PipelineSim
from repro.obs.attribution import CATEGORIES, StallAttribution, \
    format_breakdown
from repro.workloads import by_name
from tests.test_golden_cycles import CASES, GOLDEN


def instrumented_run(label, fast_forward):
    golden = GOLDEN[label]
    workload = by_name(golden["workload"])
    config = MachineConfig(fast_forward=fast_forward, **CASES[label])
    sim = PipelineSim(workload.program(config.nthreads), config)
    attr = sim.attach_attribution()
    stats = sim.run()
    return golden, attr, stats


@pytest.mark.parametrize("fast_forward", [True, False],
                         ids=["ff-on", "ff-off"])
@pytest.mark.parametrize("label", sorted(CASES))
def test_attribution_reconciles_on_golden_matrix(label, fast_forward):
    golden, attr, stats = instrumented_run(label, fast_forward)
    # Attaching attribution must not change the timing model.
    assert stats.cycles == golden["cycles"]
    assert stats.committed == golden["committed"]
    # Every cycle charged to exactly one category.
    attr.verify(stats)
    assert attr.total() == stats.cycles
    assert set(attr.counts) == set(CATEGORIES)
    # su-full agrees with the legacy counter exactly.
    assert attr.counts["su-full"] + attr.ff_su_full == stats.su_stall_cycles


def test_ff_modes_agree_where_attribution_is_comparable():
    # The executed-cycle categories are identical across engine modes
    # once fast-forwarded spans are folded back into their causes.
    __, on, stats_on = instrumented_run("LL2-4t-maskedrr", True)
    __, off, stats_off = instrumented_run("LL2-4t-maskedrr", False)
    assert stats_on.cycles == stats_off.cycles
    assert on.total() == off.total()
    # su-full is exactly reconstructible in both modes.
    assert on.counts["su-full"] + on.ff_su_full \
        == off.counts["su-full"] + off.ff_su_full


@pytest.mark.parametrize("label", ["LL2-1t-default", "LL2-4t-maskedrr",
                                   "LL3-2t-su32-norename",
                                   "Water-2t-divheavy", "LL2-2t-missheavy"])
def test_folded_breakdown_equals_slow_path_exactly(label):
    """Per-class attribution of skipped spans is exact, not approximate.

    Folding the ff-on account (``idle-ff`` redistributed over
    ``ff_classes``) must reproduce the ff-off per-cycle account
    bit-for-bit on every category — including the stall-heavy
    fu-latency and dcache-miss cases the next-event fast-forward
    engine now skips through.
    """
    __, on, stats_on = instrumented_run(label, True)
    __, off, stats_off = instrumented_run(label, False)
    assert stats_on.cycles == stats_off.cycles
    assert on.folded() == off.to_dict()


@pytest.mark.parametrize("label", ["Water-2t-divheavy", "LL2-2t-missheavy"])
def test_ff_classes_account_for_every_skipped_cycle(label):
    __, attr, __ = instrumented_run(label, True)
    assert attr.counts["idle-ff"] > 0, \
        "stall-heavy config should fast-forward at least once"
    assert sum(attr.ff_classes.values()) == attr.counts["idle-ff"]


def test_breakdown_lands_on_stats():
    __, attr, stats = instrumented_run("LL2-1t-default", True)
    assert stats.stall_breakdown == attr.to_dict()
    assert sum(stats.stall_breakdown.values()) == stats.cycles
    payload = stats.to_dict()
    assert payload["stall_breakdown"] == stats.stall_breakdown


def test_format_breakdown_renders_all_categories():
    __, attr, stats = instrumented_run("LL2-4t-maskedrr", True)
    text = format_breakdown(attr.to_dict(), stats.cycles)
    assert "cycle attribution" in text
    for key in CATEGORIES:
        assert key in text
    assert "total" in text and str(stats.cycles) in text


def test_verify_raises_on_corrupt_account():
    __, attr, stats = instrumented_run("LL2-1t-default", True)
    attr.counts["commit"] += 1
    with pytest.raises(AssertionError):
        attr.verify(stats)


def test_fresh_attribution_is_empty():
    attr = StallAttribution()
    assert attr.total() == 0
    assert attr.to_dict() == dict.fromkeys(CATEGORIES, 0)
