"""Register-file partitioning tests."""

import pytest

from repro.isa import NUM_PHYSICAL_REGS, RegisterFile, regs_per_thread


def test_partition_sizes():
    assert regs_per_thread(1) == 128
    assert regs_per_thread(2) == 64
    assert regs_per_thread(4) == 32
    assert regs_per_thread(6) == 21


def test_partition_rejects_bad_counts():
    with pytest.raises(ValueError):
        regs_per_thread(0)
    with pytest.raises(ValueError):
        regs_per_thread(NUM_PHYSICAL_REGS + 1)


def test_threads_have_disjoint_registers():
    rf = RegisterFile(4)
    for tid in range(4):
        rf.write(tid, 5, tid * 100 + 5)
    for tid in range(4):
        assert rf.read(tid, 5) == tid * 100 + 5


def test_physical_mapping_is_tid_times_k():
    rf = RegisterFile(4)
    assert rf.k == 32
    assert rf.physical(0, 0) == 0
    assert rf.physical(1, 0) == 32
    assert rf.physical(3, 31) == 127


def test_r0_is_hardwired_zero():
    rf = RegisterFile(2)
    rf.write(0, 0, 99)
    assert rf.read(0, 0) == 0
    assert rf.snapshot(0)[0] == 0


def test_int_writes_wrap_to_32_bits():
    rf = RegisterFile(1)
    rf.write(0, 1, 1 << 31)
    assert rf.read(0, 1) == -(1 << 31)
    rf.write(0, 1, -1)
    assert rf.read(0, 1) == -1


def test_float_values_stored_unchanged():
    rf = RegisterFile(1)
    rf.write(0, 1, 3.25)
    assert rf.read(0, 1) == 3.25


def test_out_of_partition_access_rejected():
    rf = RegisterFile(4)
    with pytest.raises(IndexError):
        rf.read(0, 32)
    with pytest.raises(IndexError):
        rf.read(4, 0)
