"""Event bus and hook-point tests."""

import pytest

from repro.asm import assemble
from repro.core import MachineConfig, PipelineSim
from repro.obs.events import EventBus, EVENT_TYPES, FetchEvent, IssueEvent
from repro.workloads import by_name

COUNTDOWN = """
    .text
    li r4, 20
lp: addi r4, r4, -1
    bnez r4, lp
    halt
"""


def run_with_sink(source=COUNTDOWN, **cfg):
    program = assemble(source)
    sim = PipelineSim(program, MachineConfig(nthreads=1, max_cycles=100_000,
                                             **cfg))
    events = []
    sim.add_sink(events.append)
    stats = sim.run()
    return sim, stats, events


# ------------------------------------------------------------ bus plumbing

def test_subscribe_dedup_and_unsubscribe():
    bus = EventBus()
    sink = lambda event: None
    assert bus.subscribe(sink) is sink
    bus.subscribe(sink)  # duplicate: ignored
    assert bus.sinks == (sink,)
    bus.unsubscribe(sink)
    assert bus.sinks == ()
    bus.unsubscribe(sink)  # unknown: ignored


def test_subscribe_rejects_non_callable():
    with pytest.raises(TypeError):
        EventBus().subscribe(42)


def test_emit_fans_out_in_subscription_order():
    bus = EventBus()
    seen = []
    bus.subscribe(lambda e: seen.append(("a", e)))
    bus.subscribe(lambda e: seen.append(("b", e)))
    event = FetchEvent(3, 0, 0, 4)
    bus.emit(event)
    assert seen == [("a", event), ("b", event)]


def test_event_to_dict_round_trips_fields():
    event = IssueEvent(7, 12, 1, 40, 0, 2, 9, "add r4, r4, r4")
    record = event.to_dict()
    assert record["event"] == "issue"
    assert record["cycle"] == 7 and record["tag"] == 12
    assert record["unit"] == 2 and record["ready"] == 9


def test_every_event_type_has_cycle_and_unique_kind():
    kinds = [cls.kind for cls in EVENT_TYPES]
    assert len(set(kinds)) == len(kinds)
    for cls in EVENT_TYPES:
        assert cls.__slots__[0] == "cycle"


# --------------------------------------------------- simulator integration

def test_bus_lifecycle_on_sim():
    program = assemble(COUNTDOWN)
    sim = PipelineSim(program, MachineConfig(nthreads=1))
    assert sim._bus is None  # no sink -> no bus, hooks dead
    sink = lambda event: None
    sim.add_sink(sink)
    assert sim._bus is not None
    assert sim.fetch_unit.bus is sim._bus
    sim.remove_sink(sink)
    assert sim._bus is None  # last sink out -> bus dropped again
    assert sim.fetch_unit.bus is None


def test_event_counts_match_statistics():
    sim, stats, events = run_with_sink()
    by_kind = {}
    for event in events:
        by_kind.setdefault(event.kind, []).append(event)
    assert len(by_kind["issue"]) == stats.issued
    assert sum(e.count for e in by_kind["fetch"]) \
        == stats.fetched_instructions
    committed_tags = [tag for e in by_kind["commit"] for tag in e.tags]
    assert len(committed_tags) == stats.committed
    squashed_tags = [tag for e in by_kind.get("squash", ())
                     for tag in e.tags]
    assert len(squashed_tags) == stats.squashed


def test_events_carry_monotonic_cycles():
    __, stats, events = run_with_sink()
    last = 0
    for event in events:
        assert event.cycle >= last
        last = event.cycle
    assert last <= stats.cycles


def test_mask_events_are_edge_triggered():
    workload = by_name("LL2")
    config = MachineConfig(nthreads=4, fetch_policy="masked_rr")
    sim = PipelineSim(workload.program(4), config)
    events = []
    sim.add_sink(events.append)
    sim.run()
    masks = [e for e in events if e.kind == "mask"]
    assert masks  # masked RR must suspend someone in LL2-4t
    state = {}
    for event in masks:
        # Edge-triggered: consecutive events per thread alternate.
        assert state.get(event.tid, False) != event.masked
        state[event.tid] = event.masked
