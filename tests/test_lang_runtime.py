"""Runtime-library tests: startup, stacks, locks, and barriers."""

import pytest

from repro.core import MachineConfig, PipelineSim
from repro.funcsim import FunctionalSim
from repro.lang import compile_source
from repro.lang.runtime import DEFAULT_STACK_TOP, STACK_WORDS, runtime_asm


def run_func(source, nthreads):
    program = compile_source(source, nthreads=nthreads)
    sim = FunctionalSim(program, nthreads=nthreads)
    sim.run(max_steps=20_000_000)
    return sim


def test_runtime_asm_mentions_primitives():
    text = runtime_asm()
    for symbol in ("__start", "__lock", "__unlock", "__barrier"):
        assert symbol in text


def test_stack_stride_not_cache_aliased():
    # The stride must not be a multiple of any plausible set stride
    # (sets * line = up to 512 words for an 8KB direct-mapped cache).
    assert STACK_WORDS % 512 != 0
    assert STACK_WORDS % 128 != 0


def test_threads_get_disjoint_stacks():
    source = """
    int sp_out[8];
    int depth(int d) {
        if (d == 0) { return tid(); }
        return depth(d - 1);
    }
    void main() {
        sp_out[tid()] = depth(6);
    }
    """
    sim = run_func(source, nthreads=4)
    base = sim.program.symbol("g_sp_out")
    assert sim.mem(base, 4) == [0, 1, 2, 3]


def test_stack_pointers_spaced_by_stack_words():
    program = compile_source("void main() { }", nthreads=4)
    sim = FunctionalSim(program, nthreads=4)
    # Step each thread through the startup sequence (6 instructions).
    for _ in range(6):
        for thread in sim.threads:
            if not thread.halted:
                sim.step(thread)
    sps = [sim.reg(t, 2) for t in range(4)]
    assert sps[0] - sps[1] == STACK_WORDS
    assert sps[0] <= DEFAULT_STACK_TOP


def test_many_barrier_generations():
    # The sense-reversing barrier must survive many rounds.
    source = """
    int rounds = 25;
    int trace[8];
    void main() {
        int r;
        for (r = 0; r < rounds; r = r + 1) {
            trace[tid()] = trace[tid()] + 1;
            barrier();
        }
    }
    """
    for nthreads in (2, 5):
        sim = run_func(source, nthreads)
        base = sim.program.symbol("g_trace")
        assert sim.mem(base, nthreads) == [25] * nthreads


def test_barrier_generations_on_pipeline():
    source = """
    int rounds = 10;
    int total; int l;
    void main() {
        int r;
        for (r = 0; r < rounds; r = r + 1) {
            lock(l);
            total = total + 1;
            unlock(l);
            barrier();
        }
    }
    """
    program = compile_source(source, nthreads=3)
    sim = PipelineSim(program, MachineConfig(nthreads=3, max_cycles=3_000_000))
    sim.run()
    assert sim.mem(program.symbol("g_total")) == 30


def test_lock_is_not_reentrant_but_is_exclusive():
    # Two threads ping-pong a token under a lock; order is arbitrary
    # but the token counter must be exact.
    source = """
    int l; int token;
    void main() {
        int i;
        for (i = 0; i < 12; i = i + 1) {
            lock(l);
            token = token + 2;
            unlock(l);
        }
    }
    """
    sim = run_func(source, nthreads=2)
    assert sim.mem(sim.program.symbol("g_token")) == 48
