"""MiniC parser tests."""

import pytest

from repro.lang import ast_nodes as ast
from repro.lang.errors import CompileError
from repro.lang.parser import parse


def parse_main(body):
    return parse("void main() { %s }" % body).functions[0].body.statements


class TestTopLevel:
    def test_globals_and_functions(self):
        tree = parse("""
            int n = 4;
            float a[8];
            int f(int x) { return x; }
            void main() { }
        """)
        assert [g.name for g in tree.globals] == ["n", "a"]
        assert [f.name for f in tree.functions] == ["f", "main"]

    def test_array_initializer(self):
        tree = parse("int a[4] = {1, 2, -3}; void main() { }")
        assert tree.globals[0].init == [1, 2, -3]

    def test_comma_separated_globals(self):
        tree = parse("int a, b = 2, c; void main() { }")
        assert [g.name for g in tree.globals] == ["a", "b", "c"]
        assert tree.globals[1].init == 2

    def test_void_variable_rejected(self):
        with pytest.raises(CompileError):
            parse("void x; void main() { }")


class TestStatements:
    def test_if_else(self):
        stmt, = parse_main("if (1) { } else { }")
        assert isinstance(stmt, ast.If)
        assert stmt.otherwise is not None

    def test_dangling_else_binds_inner(self):
        stmt, = parse_main("if (1) if (2) { } else { }")
        assert stmt.otherwise is None
        assert stmt.then.otherwise is not None

    def test_for_with_empty_parts(self):
        stmt, = parse_main("for (;;) { }")
        assert stmt.init is None and stmt.cond is None and stmt.update is None

    def test_for_full(self):
        stmt, = parse_main("for (i = 0; i < 4; i = i + 1) { }")
        assert isinstance(stmt.init, ast.Assign)
        assert isinstance(stmt.cond, ast.Binary)

    def test_return_with_and_without_value(self):
        tree = parse("int f() { return 1; } void main() { return; }")
        assert tree.functions[0].body.statements[0].value is not None
        assert tree.functions[1].body.statements[0].value is None

    def test_assignment_targets(self):
        a, b = parse_main("x = 1; a[2] = 3;")
        assert isinstance(a.target, ast.Name)
        assert isinstance(b.target, ast.Index)

    def test_invalid_assignment_target(self):
        with pytest.raises(CompileError):
            parse_main("1 = 2;")

    def test_unterminated_block(self):
        with pytest.raises(CompileError):
            parse("void main() { if (1) {")


class TestExpressions:
    def test_precedence_mul_over_add(self):
        stmt, = parse_main("x = 1 + 2 * 3;")
        expr = stmt.value
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_left_associativity(self):
        stmt, = parse_main("x = 10 - 4 - 3;")
        assert stmt.value.left.op == "-"

    def test_parentheses_override(self):
        stmt, = parse_main("x = (1 + 2) * 3;")
        assert stmt.value.op == "*"

    def test_comparison_below_logical(self):
        stmt, = parse_main("x = a < b && c > d;")
        assert stmt.value.op == "&&"

    def test_unary_minus_and_not(self):
        stmt, = parse_main("x = -a + !b;")
        assert stmt.value.left.op == "-"
        assert stmt.value.right.op == "!"

    def test_call_with_args(self):
        stmt, = parse_main("x = f(1, a + 2);")
        assert isinstance(stmt.value, ast.Call)
        assert len(stmt.value.args) == 2

    def test_index_expression(self):
        stmt, = parse_main("x = a[i + 1];")
        assert isinstance(stmt.value, ast.Index)

    def test_unary_plus_is_noop(self):
        stmt, = parse_main("x = +5;")
        assert isinstance(stmt.value, ast.IntLit)
